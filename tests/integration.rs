//! Cross-crate integration tests: exercise the public API end to end the
//! way the examples and harnesses do, wiring compression + collectives +
//! DNN + optimizer + engine together.

use cloudtrain::compress::exact::SortTopK;
use cloudtrain::prelude::*;
use cloudtrain::simnet::collectives as simc;
use cloudtrain::tensor::{init, ops};

/// End-to-end: a full distributed MSTopK-SGD run learns the synthetic task
/// and keeps every replica synchronised.
#[test]
fn full_mstopk_training_pipeline() {
    let cfg = DistConfig {
        epochs: 3,
        iters_per_epoch: 10,
        ..DistConfig::small(
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 30,
            },
            Workload::Mlp,
        )
    };
    let trainer = DistTrainer::new(cfg);
    let reports = trainer.run_all_ranks();
    assert_eq!(reports.len(), 8);
    assert!(
        reports[0].final_top1() > 0.6,
        "final accuracy {} too low",
        reports[0].final_top1()
    );
    for r in &reports {
        assert_eq!(r.final_top1(), reports[0].final_top1());
    }
}

/// The four strategies all converge on the same task; dense converges at
/// least as fast as the sparse ones in epoch 1 (Fig. 10's shape).
#[test]
fn all_strategies_converge_dense_leads_early() {
    let run = |strategy| {
        let cfg = DistConfig {
            epochs: 3,
            iters_per_epoch: 10,
            ..DistConfig::small(strategy, Workload::Mlp)
        };
        DistTrainer::new(cfg).run()
    };
    let dense = run(Strategy::DenseTorus);
    let topk = run(Strategy::TopKNaiveAg { rho: 0.02 });
    let mstopk = run(Strategy::MsTopKHiTopK {
        rho: 0.02,
        samplings: 30,
    });
    for r in [&dense, &topk, &mstopk] {
        assert!(r.final_top1() > 0.5, "{} did not converge", r.strategy);
    }
    let early = |r: &TrainReport| r.epochs[0].val_top1;
    assert!(
        early(&dense) >= early(&topk) - 0.05,
        "dense should lead early: {} vs topk {}",
        early(&dense),
        early(&topk)
    );
    assert!(
        early(&dense) >= early(&mstopk) - 0.05,
        "dense should lead early: {} vs mstopk {}",
        early(&dense),
        early(&mstopk)
    );
}

/// HiTopKComm with the exact selector over real worker threads agrees with
/// a sequential reference built from the public compression API.
#[test]
fn hitopk_distributed_equals_sequential_composition() {
    let (m, n, d, rho) = (2usize, 4usize, 200usize, 0.1f64);
    let grads: Vec<Vec<f32>> = (0..m * n)
        .map(|r| {
            let mut rng = init::rng_from_seed(7000 + r as u64);
            init::gradient_like_tensor(d, &mut rng).into_vec()
        })
        .collect();

    // Sequential reference: per-node dense sums, exact top-k per shard.
    let k = cloudtrain::collectives::hierarchical::shard_k(d, n, rho);
    let mut expect = vec![0.0f32; d];
    for (j, shard) in cloudtrain::tensor::partition::shards(d, n)
        .iter()
        .enumerate()
    {
        let _ = j;
        for node in 0..m {
            let mut node_sum = vec![0.0f32; shard.len()];
            for g in 0..n {
                ops::add_assign(&mut node_sum, shard.slice(&grads[node * n + g]));
            }
            let sel = cloudtrain::compress::exact::topk_sort(&node_sum, k.min(shard.len()));
            sel.add_into(shard.slice_mut(&mut expect));
        }
    }

    let results = run_on_group(m * n, |peer| {
        let mut x = grads[peer.rank()].clone();
        let mut c = SortTopK;
        hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c);
        x
    });
    for x in &results {
        assert!(ops::approx_eq(x, &expect, 1e-4));
    }
}

/// The performance plane reproduces the paper's headline orderings across
/// both the collective simulator and the iteration model.
#[test]
fn performance_plane_headline_orderings() {
    let spec = clouds::tencent(16);

    // Fig. 7 ordering at the two model sizes the paper highlights.
    for d in [25_000_000usize, 110_000_000] {
        let mut sim = NetSim::new(spec);
        let hitopk = simc::sim_hitopk(&mut sim, &spec, d, 2, 0.01, 1e-3).total;
        sim.reset();
        let torus = simc::sim_torus_all_reduce(&mut sim, &spec, d * 2).total;
        sim.reset();
        let tree = simc::sim_tree_all_reduce_hier(&mut sim, &spec, d * 2).total;
        sim.reset();
        let naive = simc::sim_naive_sparse_all_gather(&mut sim, &spec, d / 100).total;
        assert!(hitopk < torus && torus < tree && tree < naive, "d={d}");
    }

    // Table 3's ResNet-96 ordering through the full iteration model.
    let se = |strategy| {
        IterationModel::new(
            spec,
            SystemConfig {
                strategy,
                datacache: true,
                pto: true,
            },
            ModelProfile::resnet50_96(),
        )
        .scaling_efficiency()
    };
    let dense = se(Strategy::DenseTreeAr);
    let torus = se(Strategy::DenseTorus);
    let mstopk = se(Strategy::mstopk_default());
    assert!(mstopk > torus && torus > dense);
}

/// The DataCache and the trainer compose: preload a dataset through the
/// real multi-level cache, then verify the loader's steady state is
/// memory-only while a model trains on equivalent synthetic data.
#[test]
fn datacache_composes_with_training() {
    use cloudtrain::datacache::loader::{LoaderConfig, ServedBy};

    let cfg = LoaderConfig {
        use_disk: false,
        ..LoaderConfig::default()
    };
    let mut loader = CachedLoader::new(SyntheticNfs::new(16 * 16 * 3, 3), None, cfg);
    // Epoch 1 populates the cache.
    for id in 0..32 {
        loader.load(id);
    }
    // Epoch 2 must be all memory hits.
    loader.reset_stats();
    for id in 0..32 {
        let (_, served, _) = loader.load(id);
        assert_eq!(served, ServedBy::Memory);
    }

    let train = DistTrainer::new(DistConfig {
        epochs: 1,
        iters_per_epoch: 5,
        ..DistConfig::small(Strategy::DenseTorus, Workload::Mlp)
    })
    .run();
    assert_eq!(train.epochs.len(), 1);
}

/// DAWNBench schedule sanity through the public API.
#[test]
fn dawnbench_schedule_end_to_end() {
    let r = dawnbench::evaluate_schedule(clouds::tencent(16), &dawnbench::paper_schedule());
    assert_eq!(r.stages.iter().map(|s| s.epochs).sum::<u32>(), 28);
    assert!(r.total_seconds > 60.0 && r.total_seconds < 400.0);
    // Faster than the best published 128-V100 entry (the paper's claim).
    let best = dawnbench::published_leaderboard()
        .iter()
        .map(|e| e.seconds)
        .fold(f64::INFINITY, f64::min);
    assert!(
        r.total_seconds < best * 1.2,
        "not in the leaderboard's league"
    );
}
