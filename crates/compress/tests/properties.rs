//! Property-based tests for the compression operators.

use cloudtrain_compress::exact::{topk_quickselect, topk_sort};
use cloudtrain_compress::{Compressor, ErrorFeedback, MsTopK, MsTopKNaive, SparseGrad};
use cloudtrain_tensor::ops;
use proptest::prelude::*;

fn grad_vec() -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(-1e3f32..1e3, 1..500)
}

proptest! {
    /// Quickselect and full-sort top-k agree on every input and k.
    #[test]
    fn quickselect_equals_sort(x in grad_vec(), k in 0usize..600) {
        prop_assert_eq!(topk_quickselect(&x, k), topk_sort(&x, k));
    }

    /// The exact top-k selection captures at least as much magnitude mass as
    /// any other k-subset — verified against MSTopK's selection.
    #[test]
    fn exact_topk_mass_dominates_mstopk(x in grad_vec(), seed in 0u64..1000) {
        let k = (x.len() / 4).max(1);
        let exact = topk_sort(&x, k);
        let approx = MsTopK::new(30, seed).compress(&x, k);
        prop_assert!(exact.abs_mass() >= approx.abs_mass() - 1e-3);
    }

    /// MSTopK returns exactly k unique in-bounds indices for any input.
    #[test]
    fn mstopk_exactly_k(x in grad_vec(), k_frac in 0.0f64..1.0, n in 1usize..40, seed in 0u64..100) {
        let k = ((x.len() as f64 * k_frac) as usize).min(x.len());
        let s = MsTopK::new(n, seed).compress(&x, k);
        prop_assert_eq!(s.len(), k);
        let mut idx = s.indices.clone();
        idx.sort_unstable();
        idx.dedup();
        prop_assert_eq!(idx.len(), k);
        for (v, &i) in s.values.iter().zip(&s.indices) {
            prop_assert_eq!(*v, x[i as usize]);
        }
    }

    /// Error feedback conserves gradient mass exactly:
    /// transmitted + new residual == compensated gradient.
    #[test]
    fn error_feedback_conserves_mass(x in grad_vec(), k in 1usize..50) {
        let mut ef = ErrorFeedback::new(x.len());
        let mut g = x.clone();
        ef.compensate(&mut g);
        let s = topk_sort(&g, k);
        ef.absorb(&g, &s);
        let mut recon = s.densify();
        ops::add_assign(&mut recon, ef.residual());
        prop_assert!(ops::approx_eq(&recon, &g, 1e-5));
    }

    /// densify/add_into agree.
    #[test]
    fn densify_equals_add_into(x in grad_vec(), k in 0usize..50) {
        let s = topk_sort(&x, k);
        let dense = s.densify();
        let mut acc = vec![0.0; x.len()];
        s.add_into(&mut acc);
        prop_assert_eq!(dense, acc);
    }

    /// The histogram MSTopK is bitwise identical to the paper-literal N-pass
    /// search: same SparseGrad, same MsTopKStats, same RNG consumption —
    /// across random dimensions, sampling counts, and k (including 0, 1, d).
    #[test]
    fn histogram_mstopk_equals_naive(
        x in grad_vec(),
        k_frac in 0.0f64..1.0,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let d = x.len();
        for k in [0usize, 1, ((d as f64) * k_frac) as usize, d] {
            let mut hist = MsTopK::new(n, seed);
            let mut naive = MsTopKNaive::new(n, seed);
            let (sh, th) = hist.select_with_stats(&x, k);
            let (sn, tn) = naive.select_with_stats(&x, k);
            prop_assert_eq!(&sh, &sn, "selection diverged at k={} n={}", k, n);
            prop_assert_eq!(th, tn, "stats diverged at k={} n={}", k, n);
            // Same RNG state afterwards: a second draw must also agree.
            let (sh2, _) = hist.select_with_stats(&x, k.min(d.saturating_sub(1)).max(1).min(d));
            let (sn2, _) = naive.select_with_stats(&x, k.min(d.saturating_sub(1)).max(1).min(d));
            prop_assert_eq!(sh2, sn2, "RNG state diverged at k={} n={}", k, n);
        }
    }

    /// Histogram/naive equivalence holds on all-equal-magnitude inputs,
    /// where no threshold ever under-selects and the band supplies all k.
    #[test]
    fn histogram_mstopk_equals_naive_all_equal(
        mag in 0.5f32..100.0,
        d in 1usize..400,
        k_frac in 0.0f64..1.0,
        n in 1usize..40,
        seed in 0u64..1000,
    ) {
        let x = vec![mag; d];
        let k = ((d as f64) * k_frac) as usize;
        let (sh, th) = MsTopK::new(n, seed).select_with_stats(&x, k);
        let (sn, tn) = MsTopKNaive::new(n, seed).select_with_stats(&x, k);
        prop_assert_eq!(sh, sn);
        prop_assert_eq!(th, tn);
    }

    /// The k-th largest magnitude of the exact selection is a true
    /// threshold: every unselected element is <= every selected one.
    #[test]
    fn exact_selection_is_a_magnitude_cut(x in grad_vec(), k in 1usize..100) {
        let k = k.min(x.len());
        let s: SparseGrad = topk_sort(&x, k);
        let min_sel = s.values.iter().map(|v| v.abs()).fold(f32::INFINITY, f32::min);
        let sel: std::collections::HashSet<u32> = s.indices.iter().copied().collect();
        for (i, v) in x.iter().enumerate() {
            if !sel.contains(&(i as u32)) {
                prop_assert!(v.abs() <= min_sel);
            }
        }
    }
}
