use cloudtrain_tensor::ops;

/// A sparsified gradient: `k` `(value, index)` pairs drawn from a dense
/// vector of dimension `dim`.
///
/// This is the unit of data moved by the sparse collectives: the paper
/// transmits the value vector and the index vector as two separate messages
/// (two All-Gathers, §3.2), so they are stored as parallel arrays rather
/// than an array of pairs.
#[derive(Debug, Clone, PartialEq)]
pub struct SparseGrad {
    /// Selected gradient values.
    pub values: Vec<f32>,
    /// Original coordinates of `values` within the dense vector.
    pub indices: Vec<u32>,
    /// Dimension of the dense vector the selection was taken from.
    pub dim: usize,
}

impl SparseGrad {
    /// Creates a sparse gradient from parallel value/index arrays.
    ///
    /// # Panics
    /// Panics if the arrays have different lengths.
    pub fn new(values: Vec<f32>, indices: Vec<u32>, dim: usize) -> Self {
        assert_eq!(
            values.len(),
            indices.len(),
            "SparseGrad: values and indices must be parallel arrays"
        );
        Self {
            values,
            indices,
            dim,
        }
    }

    /// An empty selection over a `dim`-element vector.
    pub fn empty(dim: usize) -> Self {
        Self {
            values: Vec::new(),
            indices: Vec::new(),
            dim,
        }
    }

    /// Number of selected elements.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no elements were selected.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Materialises the selection as a dense vector with zeros elsewhere —
    /// `TopK(x, k)` as defined in Eq. (2) of the paper.
    pub fn densify(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.dim];
        ops::scatter_add(&mut out, &self.indices, &self.values);
        out
    }

    /// Adds this selection into an existing dense accumulator
    /// (`y[indices[i]] += values[i]`), the aggregation step of Algorithm 2.
    ///
    /// # Panics
    /// Panics if `y.len() != self.dim`.
    pub fn add_into(&self, y: &mut [f32]) {
        assert_eq!(y.len(), self.dim, "add_into: dimension mismatch");
        ops::scatter_add(y, &self.indices, &self.values);
    }

    /// Wire size in bytes: FP32 values plus 32-bit indices (the paper's `2k`
    /// elements per worker, §3.2).
    pub fn wire_bytes(&self) -> usize {
        self.values.len() * 4 + self.indices.len() * 4
    }

    /// Sum of |value| over the selection — the "captured mass", used to
    /// compare approximate selections against the exact top-k.
    pub fn abs_mass(&self) -> f32 {
        self.values.iter().map(|v| v.abs()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn densify_places_values() {
        let s = SparseGrad::new(vec![5.0, -2.0], vec![1, 3], 5);
        assert_eq!(s.densify(), vec![0.0, 5.0, 0.0, -2.0, 0.0]);
        assert_eq!(s.len(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn add_into_accumulates() {
        let s = SparseGrad::new(vec![1.0, 2.0], vec![0, 2], 3);
        let mut y = vec![10.0, 10.0, 10.0];
        s.add_into(&mut y);
        s.add_into(&mut y);
        assert_eq!(y, vec![12.0, 10.0, 14.0]);
    }

    #[test]
    fn wire_bytes_counts_both_arrays() {
        let s = SparseGrad::new(vec![1.0; 10], vec![0; 10], 100);
        assert_eq!(s.wire_bytes(), 80);
    }

    #[test]
    fn abs_mass_sums_magnitudes() {
        let s = SparseGrad::new(vec![1.0, -3.0], vec![0, 1], 2);
        assert_eq!(s.abs_mass(), 4.0);
    }

    #[test]
    fn empty_selection() {
        let s = SparseGrad::empty(4);
        assert!(s.is_empty());
        assert_eq!(s.densify(), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "parallel arrays")]
    fn mismatched_arrays_panic() {
        SparseGrad::new(vec![1.0], vec![0, 1], 4);
    }
}
