//! MSTopK: the paper's approximate top-k operator (§3.1, Algorithm 1).
//!
//! The exact top-k selection is hostile to many-core hardware: it needs
//! data-dependent, irregular memory access (sorting or partitioning).
//! MSTopK replaces it with `N` *branch-free streaming passes*: a binary
//! search over candidate thresholds in `[mean|x|, max|x|]`, where each step
//! only counts how many elements exceed the candidate (a coalesced scan).
//!
//! After the search, two bracketing thresholds remain:
//!
//! * `thres1` — the tightest threshold found with `count(|x| >= thres1) =
//!   k1 <= k` (an *under*-selection), and
//! * `thres2` — the tightest threshold found with `count(|x| >= thres2) =
//!   k2 > k` (an *over*-selection).
//!
//! The final selection takes all `k1` elements above `thres1` plus a random
//! contiguous run of `k - k1` elements from the band
//! `thres2 <= |x| < thres1` (Algorithm 1 lines 25–29), so the operator
//! returns **exactly `k` elements** — the property the fixed-size AllGather
//! of HiTopKComm depends on.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cloudtrain_tensor::ops;

use crate::{Compressor, SparseGrad};

/// Statistics of one MSTopK invocation, useful for ablations
/// (threshold-search convergence as a function of the sampling count `N`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsTopKStats {
    /// Number of elements selected from above `thres1` (exact-bracket part).
    pub k1: usize,
    /// Element count at the tightest over-selecting threshold.
    pub k2: usize,
    /// Final under-selecting threshold.
    pub thres1: f32,
    /// Final over-selecting threshold.
    pub thres2: f32,
    /// Streaming passes executed (equals the configured `N`).
    pub passes: usize,
}

/// The MSTopK approximate top-k operator.
///
/// # Examples
/// ```
/// use cloudtrain_compress::{Compressor, MsTopK};
///
/// let x: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin() * i as f32).collect();
/// let mut op = MsTopK::new(30, 42);
/// let s = op.compress(&x, 10);
/// assert_eq!(s.len(), 10);
/// ```
#[derive(Debug)]
pub struct MsTopK {
    /// Number of threshold-search iterations (`N` in Algorithm 1; the paper
    /// uses 30).
    pub samplings: usize,
    rng: StdRng,
}

impl MsTopK {
    /// Creates an operator with `samplings` search iterations and a seeded
    /// RNG for the band slice choice.
    pub fn new(samplings: usize, seed: u64) -> Self {
        Self {
            samplings,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs Algorithm 1, returning the selection and its search statistics.
    pub fn select_with_stats(&mut self, x: &[f32], k: usize) -> (SparseGrad, MsTopKStats) {
        mstopk_with_rng(x, k, self.samplings, &mut self.rng)
    }
}

impl Compressor for MsTopK {
    fn compress(&mut self, x: &[f32], k: usize) -> SparseGrad {
        self.select_with_stats(x, k).0
    }

    fn name(&self) -> &'static str {
        "MSTopK"
    }
}

/// Algorithm 1 with an explicit RNG (deterministic given the RNG state).
pub fn mstopk_with_rng(
    x: &[f32],
    k: usize,
    samplings: usize,
    rng: &mut StdRng,
) -> (SparseGrad, MsTopKStats) {
    let d = x.len();
    let k = k.min(d);
    if k == 0 || d == 0 {
        let stats = MsTopKStats {
            k1: 0,
            k2: d,
            thres1: f32::INFINITY,
            thres2: 0.0,
            passes: 0,
        };
        return (SparseGrad::empty(d), stats);
    }
    if k == d {
        let stats = MsTopKStats {
            k1: d,
            k2: d,
            thres1: 0.0,
            thres2: 0.0,
            passes: 0,
        };
        let s = SparseGrad::new(x.to_vec(), (0..d as u32).collect(), d);
        return (s, stats);
    }

    // Lines 1–3: one pass computes both statistics.
    let a_mean = ops::mean_abs(x);
    let u = ops::max_abs(x);

    // Lines 4–6: search state. `thres1` starts "unset"; we represent the
    // unset state as +inf (select nothing) rather than the paper's 0
    // (select everything) so that degenerate inputs — e.g. all-equal
    // magnitudes, where no candidate threshold ever under-selects — still
    // yield a valid k-element result from the band.
    let (mut l, mut r) = (0.0f32, 1.0f32);
    let mut k1 = 0usize;
    let mut k2 = d;
    let mut thres1 = f32::INFINITY;
    let mut thres2 = 0.0f32;

    // Lines 7–24: N binary-search iterations, each a single streaming pass.
    for _ in 0..samplings {
        let ratio = l + (r - l) / 2.0;
        let thres = a_mean + ratio * (u - a_mean);
        let nnz = ops::count_ge(x, thres);
        if nnz <= k {
            r = ratio;
            if nnz >= k1 && thres < thres1 {
                k1 = nnz;
                thres1 = thres;
            }
        } else {
            l = ratio;
            if nnz <= k2 {
                k2 = nnz;
                thres2 = thres;
            }
        }
    }

    // Lines 25–26: materialise the two index sets.
    let i1 = if thres1.is_finite() {
        ops::indices_ge(x, thres1)
    } else {
        Vec::new()
    };
    let band_hi = if thres1.is_finite() { thres1 } else { f32::INFINITY };
    let i2 = ops::indices_in_band(x, thres2, band_hi);
    debug_assert_eq!(i1.len(), k1);

    // Lines 27–28: random contiguous run of k - k1 band elements. The run is
    // contiguous (not a random subset) precisely because that keeps the GPU
    // gather coalesced — the whole point of the operator.
    let need = k - k1;
    let mut indices = i1;
    if need > 0 {
        // The band always has at least `need` elements: every |x| >= thres2
        // not counted in k1 lies in [thres2, thres1).
        let slack = i2.len() - need;
        let start = if slack == 0 {
            0
        } else {
            rng.random_range(0..=slack)
        };
        indices.extend_from_slice(&i2[start..start + need]);
    }
    indices.sort_unstable();
    let values = ops::gather(x, &indices);

    let stats = MsTopKStats {
        k1,
        k2,
        thres1,
        thres2,
        passes: samplings,
    };
    (SparseGrad::new(values, indices, d), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::topk_sort;
    use cloudtrain_tensor::init;

    fn grad(seed: u64, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(seed);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    #[test]
    fn returns_exactly_k() {
        let x = grad(1, 50_000);
        let mut op = MsTopK::new(30, 2);
        for k in [1usize, 5, 50, 500, 5_000] {
            assert_eq!(op.compress(&x, k).len(), k);
        }
    }

    #[test]
    fn values_match_their_indices() {
        let x = grad(3, 10_000);
        let mut op = MsTopK::new(30, 4);
        let s = op.compress(&x, 100);
        for (v, &i) in s.values.iter().zip(&s.indices) {
            assert_eq!(*v, x[i as usize]);
        }
    }

    #[test]
    fn captures_most_of_the_exact_topk_mass() {
        let x = grad(5, 100_000);
        let k = 1_000;
        let exact = topk_sort(&x, k);
        let mut op = MsTopK::new(30, 6);
        let approx = op.compress(&x, k);
        // With 30 samplings the bracket is tight: approximate selection
        // should capture nearly all the exact top-k magnitude mass.
        assert!(
            approx.abs_mass() >= 0.95 * exact.abs_mass(),
            "mass {} vs exact {}",
            approx.abs_mass(),
            exact.abs_mass()
        );
    }

    #[test]
    fn selected_elements_dominate_the_band_floor() {
        let x = grad(7, 20_000);
        let mut op = MsTopK::new(30, 8);
        let (s, stats) = op.select_with_stats(&x, 200);
        for v in &s.values {
            assert!(
                v.abs() >= stats.thres2,
                "selected {} below thres2 {}",
                v,
                stats.thres2
            );
        }
    }

    #[test]
    fn more_samplings_tighten_the_bracket() {
        let x = grad(9, 100_000);
        let k = 1_000;
        let (_, loose) = MsTopK::new(5, 1).select_with_stats(&x, k);
        let (_, tight) = MsTopK::new(30, 1).select_with_stats(&x, k);
        assert!(tight.k2 - tight.k1 <= loose.k2 - loose.k1);
    }

    #[test]
    fn all_equal_magnitudes_still_yield_k_elements() {
        // Degenerate input: mean == max, every candidate threshold selects
        // everything, so thres1 is never set.
        let x = vec![2.0f32; 1_000];
        let mut op = MsTopK::new(30, 10);
        let s = op.compress(&x, 37);
        assert_eq!(s.len(), 37);
        assert!(s.values.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn constant_magnitude_signs_are_preserved() {
        let x: Vec<f32> = (0..100).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
        let s = MsTopK::new(10, 3).compress(&x, 10);
        for (v, &i) in s.values.iter().zip(&s.indices) {
            assert_eq!(*v, x[i as usize]);
        }
    }

    #[test]
    fn k_edge_cases() {
        let x = grad(11, 100);
        let mut op = MsTopK::new(30, 12);
        assert!(op.compress(&x, 0).is_empty());
        let full = op.compress(&x, 100);
        assert_eq!(full.len(), 100);
        assert_eq!(full.densify(), x);
        assert!(op.compress(&[], 5).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = grad(13, 10_000);
        let a = MsTopK::new(30, 99).compress(&x, 64);
        let b = MsTopK::new(30, 99).compress(&x, 64);
        assert_eq!(a, b);
    }
}
