//! MSTopK: the paper's approximate top-k operator (§3.1, Algorithm 1).
//!
//! The exact top-k selection is hostile to many-core hardware: it needs
//! data-dependent, irregular memory access (sorting or partitioning).
//! MSTopK replaces it with a binary search over candidate thresholds in
//! `[mean|x|, max|x|]`, where each step only needs to know how many elements
//! exceed the candidate (a coalesced scan).
//!
//! After the search, two bracketing thresholds remain:
//!
//! * `thres1` — the tightest threshold found with `count(|x| >= thres1) =
//!   k1 <= k` (an *under*-selection), and
//! * `thres2` — the tightest threshold found with `count(|x| >= thres2) =
//!   k2 > k` (an *over*-selection).
//!
//! The final selection takes all `k1` elements above `thres1` plus a random
//! contiguous run of `k - k1` elements from the band
//! `thres2 <= |x| < thres1` (Algorithm 1 lines 25–29), so the operator
//! returns **exactly `k` elements** — the property the fixed-size AllGather
//! of HiTopKComm depends on.
//!
//! # Single-pass histogram search
//!
//! The paper's formulation ([`MsTopKNaive`] here) executes `N` streaming
//! `count_ge` passes — `N + 2` full scans of the gradient. [`MsTopK`]
//! answers the same probes from a magnitude histogram built over one
//! compacted pass:
//!
//! * While every probe under-selects, the probed ratios descend `1/2,
//!   1/4, ...`; the first probe that *over*-selects pins the bracket's
//!   lower wall, and no later threshold drops below it. The first few
//!   probes are therefore answered by direct counting passes (exactly
//!   the naive loop's own passes), after which one branch-free pass
//!   compacts the magnitudes at or above the wall — typically a few
//!   multiples of `k` out of millions — into a dense buffer plus a
//!   membership bitmap; everything after touches only that buffer. (No
//!   probed threshold can drop below `mean|x|` either — `t = mean +
//!   ratio * (max - mean)` with `ratio >= 0` — so when no wall is pinned
//!   within the gallop budget the compaction falls back to the mean as
//!   its cutoff, still dropping ~70% of a gradient-like tensor.)
//! * The binary search only ever probes thresholds `t = mean + (j/2^i) *
//!   (max - mean)`. For `i <= 23` every probed ratio `j/2^i` is a dyadic
//!   rational that is exactly representable in `f32`, and the iterative
//!   midpoint `l + (r - l) / 2` computes it *exactly* — so each bucket
//!   boundary `t_j`, evaluated with the identical
//!   `mean + ratio * (max - mean)` expression, is **bitwise equal** to the
//!   threshold the naive search would probe. (The gallop depth plus the
//!   histogram depth stays well under 23.)
//! * Bucket `j` counts elements with `t_j <= |x| < t_{j+1}` (elements are
//!   placed by a guess-then-fix step against the exact boundary array, so
//!   float rounding in the guess cannot misplace them). Suffix sums then
//!   answer `count_ge(t_j)` exactly for every boundary.
//! * After the histogram's levels are spent the search interval *is* one
//!   bucket. Any remaining probes are answered by scanning just that
//!   bucket's elements gathered from the live buffer.
//!
//! The result — selection, statistics, and RNG consumption — is bitwise
//! identical to the naive search; `MsTopKNaive` is retained precisely so
//! tests can assert that equivalence.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cloudtrain_obs::{self as obs, Registry};
use cloudtrain_tensor::ops;

use crate::{Compressor, SparseGrad};

/// Histogram resolution cap: at most `2^12` buckets, keeping the boundary
/// and count tables L1-resident during placement. Any value with
/// `GALLOP_MAX + MAX_HIST_LEVELS <= 23` keeps the dyadic-ratio exactness
/// argument valid (24-bit `f32` mantissa).
const MAX_HIST_LEVELS: usize = 12;

/// Direct-counting probe caps before the histogram is built. While every
/// probe under-selects, the bracket's lower wall stays at ratio 0 and the
/// probed ratios descend `1/2, 1/4, ...`; the first *over*-selecting probe
/// pins the wall, and every later threshold sits at or above it. Answering
/// those first probes by counting lets the compaction cutoff sit at the
/// wall instead of the mean, shrinking the survivor buffer from ~30% of
/// the tensor to a few multiples of `k`. The first [`GALLOP_DIRECT`]
/// probes count the raw tensor (exactly the naive loop's passes); if no
/// wall is pinned by then, the tensor is compacted at the mean and up to
/// [`GALLOP_MAX`] total probes continue on the (4x smaller) survivor
/// buffer, bounding the worst case — a bracket that never over-selects —
/// at a few extra vectorizable scans.
const GALLOP_DIRECT: usize = 2;
const GALLOP_MAX: usize = 4;

/// Chunk width for the skip-scan in [`finish_selection`]: each chunk is
/// first screened with a vectorizable count, and index materialisation only
/// runs on chunks that contain at least one candidate.
const SCAN_CHUNK: usize = 4096;

/// Statistics of one MSTopK invocation, useful for ablations
/// (threshold-search convergence as a function of the sampling count `N`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MsTopKStats {
    /// Number of elements selected from above `thres1` (exact-bracket part).
    pub k1: usize,
    /// Element count at the tightest over-selecting threshold.
    pub k2: usize,
    /// Final under-selecting threshold.
    pub thres1: f32,
    /// Final over-selecting threshold.
    pub thres2: f32,
    /// Threshold-search iterations executed (equals the configured `N`).
    pub passes: usize,
}

/// The MSTopK approximate top-k operator (histogram-accelerated).
///
/// # Examples
/// ```
/// use cloudtrain_compress::{Compressor, MsTopK};
///
/// let x: Vec<f32> = (0..1000).map(|i| (i as f32 * 0.37).sin() * i as f32).collect();
/// let mut op = MsTopK::new(30, 42);
/// let s = op.compress(&x, 10);
/// assert_eq!(s.len(), 10);
/// ```
#[derive(Debug)]
pub struct MsTopK {
    /// Number of threshold-search iterations (`N` in Algorithm 1; the paper
    /// uses 30).
    pub samplings: usize,
    rng: StdRng,
}

impl MsTopK {
    /// Creates an operator with `samplings` search iterations and a seeded
    /// RNG for the band slice choice.
    pub fn new(samplings: usize, seed: u64) -> Self {
        Self {
            samplings,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs Algorithm 1, returning the selection and its search statistics.
    pub fn select_with_stats(&mut self, x: &[f32], k: usize) -> (SparseGrad, MsTopKStats) {
        mstopk_with_rng(x, k, self.samplings, &mut self.rng)
    }

    /// [`Self::select_with_stats`] with per-stage spans and counters
    /// recorded into `reg` (see [`mstopk_with_rng_traced`]). The selection,
    /// statistics, and RNG consumption are bitwise identical to the
    /// untraced call.
    pub fn select_with_stats_traced(
        &mut self,
        x: &[f32],
        k: usize,
        reg: &mut Registry,
    ) -> (SparseGrad, MsTopKStats) {
        mstopk_with_rng_traced(x, k, self.samplings, &mut self.rng, reg)
    }
}

impl Compressor for MsTopK {
    fn compress(&mut self, x: &[f32], k: usize) -> SparseGrad {
        self.select_with_stats(x, k).0
    }

    fn name(&self) -> &'static str {
        "MSTopK"
    }
}

/// The paper-literal `N`-pass MSTopK, kept as the differential-testing
/// reference for the histogram implementation. Identical semantics and RNG
/// consumption; `N + 2` streaming passes instead of ~3.
#[derive(Debug)]
pub struct MsTopKNaive {
    /// Number of threshold-search iterations.
    pub samplings: usize,
    rng: StdRng,
}

impl MsTopKNaive {
    /// Creates an operator with `samplings` search iterations and a seeded
    /// RNG for the band slice choice.
    pub fn new(samplings: usize, seed: u64) -> Self {
        Self {
            samplings,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Runs Algorithm 1 literally, returning the selection and statistics.
    pub fn select_with_stats(&mut self, x: &[f32], k: usize) -> (SparseGrad, MsTopKStats) {
        mstopk_naive_with_rng(x, k, self.samplings, &mut self.rng)
    }
}

impl Compressor for MsTopKNaive {
    fn compress(&mut self, x: &[f32], k: usize) -> SparseGrad {
        self.select_with_stats(x, k).0
    }

    fn name(&self) -> &'static str {
        "MSTopKNaive"
    }
}

/// Threshold-search state shared by both implementations (Algorithm 1 lines
/// 4–6 plus the bracketing bookkeeping of lines 11–23).
struct Bracket {
    l: f32,
    r: f32,
    k1: usize,
    k2: usize,
    thres1: f32,
    thres2: f32,
}

impl Bracket {
    /// Initial state. `thres1` starts "unset"; we represent the unset state
    /// as +inf (select nothing) rather than the paper's 0 (select
    /// everything) so that degenerate inputs — e.g. all-equal magnitudes,
    /// where no candidate threshold ever under-selects — still yield a valid
    /// k-element result from the band.
    fn new(d: usize) -> Self {
        Self {
            l: 0.0,
            r: 1.0,
            k1: 0,
            k2: d,
            thres1: f32::INFINITY,
            thres2: 0.0,
        }
    }

    /// The next midpoint ratio, exactly as the naive loop computes it.
    #[inline]
    fn midpoint(&self) -> f32 {
        self.l + (self.r - self.l) / 2.0
    }

    /// Folds one probe result into the bracket (lines 11–23).
    #[inline]
    fn observe(&mut self, nnz: usize, thres: f32, ratio: f32, k: usize) {
        if nnz <= k {
            self.r = ratio;
            if nnz >= self.k1 && thres < self.thres1 {
                self.k1 = nnz;
                self.thres1 = thres;
            }
        } else {
            self.l = ratio;
            if nnz <= self.k2 {
                self.k2 = nnz;
                self.thres2 = thres;
            }
        }
    }
}

/// Handles `k == 0`, `d == 0`, and `k == d`, where no search is needed.
fn trivial_selection(x: &[f32], d: usize, k: usize) -> Option<(SparseGrad, MsTopKStats)> {
    if k == 0 || d == 0 {
        let stats = MsTopKStats {
            k1: 0,
            k2: d,
            thres1: f32::INFINITY,
            thres2: 0.0,
            passes: 0,
        };
        return Some((SparseGrad::empty(d), stats));
    }
    if k == d {
        let stats = MsTopKStats {
            k1: d,
            k2: d,
            thres1: 0.0,
            thres2: 0.0,
            passes: 0,
        };
        let s = SparseGrad::new(x.to_vec(), (0..d as u32).collect(), d);
        return Some((s, stats));
    }
    None
}

/// Materialises the final selection from a converged bracket (lines 25–29).
/// Both implementations funnel through here, so RNG consumption — one
/// `random_range` draw iff the band is actually sliced — is identical.
///
/// `accel` is an optional [`Survivors`] set covering every magnitude
/// `>= thres2` (the histogram path's compaction buffer); when present the
/// index sets are read from it directly instead of rescanning the tensor.
fn finish_selection(
    x: &[f32],
    d: usize,
    k: usize,
    bracket: &Bracket,
    samplings: usize,
    rng: &mut StdRng,
    accel: Option<&Survivors>,
) -> (SparseGrad, MsTopKStats) {
    // Lines 25–26: materialise the two index sets — `i1` as
    // `ops::indices_ge(x, thres1)` would, `i2` as
    // `ops::indices_in_band(x, thres2, band_hi)` would, fused into one
    // scan. Survivor order matches input order, so both routes produce the
    // same vectors. Without survivors, each chunk is screened with a
    // vectorizable candidate count and the scalar index loop only runs on
    // chunks that contain a magnitude above `thres2` (a few per million at
    // trained sparsities).
    let take_top = bracket.thres1.is_finite();
    let band_hi = if take_top {
        bracket.thres1
    } else {
        f32::INFINITY
    };
    let mut i1: Vec<u32> = Vec::new();
    let mut i2: Vec<u32> = Vec::new();
    if let Some(s) = accel {
        // Candidates are the survivor ordinals with `m >= thres2` — a
        // superset of both index sets, a few per million at trained
        // sparsities. Each candidate's source index is recovered from the
        // membership bitmap by skipping whole words with popcounts; the
        // `p`-th survivor is the `(p - cum)`-th set bit of its word.
        let cand: Vec<u32> = s
            .mags
            .iter()
            .enumerate()
            .filter(|(_, &m)| m >= bracket.thres2)
            .map(|(p, _)| p as u32)
            .collect();
        let mut wi = 0usize;
        let mut cum = 0usize; // survivors in words before `wi`
        let mut pc = s.bitmap.first().map_or(0, |w| w.count_ones() as usize);
        for &p in &cand {
            let p = p as usize;
            while cum + pc <= p {
                cum += pc;
                wi += 1;
                pc = s.bitmap[wi].count_ones() as usize;
            }
            let mut w = s.bitmap[wi];
            for _ in 0..(p - cum) {
                w &= w - 1;
            }
            let idx = (wi * 64) as u32 + w.trailing_zeros();
            // `band_hi` is `thres1` (or +inf when unset), so within the
            // candidate set the original two-way split reduces to this:
            // an infinite magnitude (which `m < band_hi` would exclude)
            // forces `a_mean = +inf`, which disables the accel path.
            let m = s.mags[p];
            if take_top && m >= bracket.thres1 {
                i1.push(idx);
            } else {
                i2.push(idx);
            }
        }
    } else {
        for (c, chunk) in x.chunks(SCAN_CHUNK).enumerate() {
            if ops::count_ge(chunk, bracket.thres2) == 0 {
                continue;
            }
            let base = (c * SCAN_CHUNK) as u32;
            for (o, v) in chunk.iter().enumerate() {
                let m = v.abs();
                if take_top && m >= bracket.thres1 {
                    i1.push(base + o as u32);
                } else if m >= bracket.thres2 && m < band_hi {
                    i2.push(base + o as u32);
                }
            }
        }
    }
    debug_assert_eq!(i1.len(), bracket.k1);

    // Lines 27–28: random contiguous run of k - k1 band elements. The run is
    // contiguous (not a random subset) precisely because that keeps the GPU
    // gather coalesced — the whole point of the operator.
    //
    // On finite inputs the band always has at least `need` elements: every
    // |x| >= thres2 not counted in k1 lies in [thres2, thres1). NaN
    // magnitudes break that accounting (they fail every threshold compare,
    // so probes see fewer elements than exist) — `take` caps the run at
    // what the band actually holds, returning a short selection instead of
    // slicing out of bounds when a diverged tensor reaches the operator.
    let need = k - bracket.k1;
    let take = need.min(i2.len());
    let mut indices = i1;
    if take > 0 {
        let slack = i2.len() - take;
        let start = if slack == 0 {
            0
        } else {
            rng.random_range(0..=slack)
        };
        indices.extend_from_slice(&i2[start..start + take]);
    }
    indices.sort_unstable();
    let values = ops::gather(x, &indices);

    let stats = MsTopKStats {
        k1: bracket.k1,
        k2: bracket.k2,
        thres1: bracket.thres1,
        thres2: bracket.thres2,
        passes: samplings,
    };
    (SparseGrad::new(values, indices, d), stats)
}

/// The paper-literal search: one `count_ge` pass per iteration.
fn search_counting(
    x: &[f32],
    k: usize,
    samplings: usize,
    a_mean: f32,
    u: f32,
    bracket: &mut Bracket,
) {
    for _ in 0..samplings {
        let ratio = bracket.midpoint();
        let thres = a_mean + ratio * (u - a_mean);
        let nnz = ops::count_ge(x, thres);
        bracket.observe(nnz, thres, ratio, k);
    }
}

/// The survivors of one [`compact_magnitudes`] pass: the magnitudes
/// `>= cutoff` in original order plus a membership bitmap.
struct Survivors {
    /// Compacted magnitudes, in input order.
    mags: Vec<f32>,
    /// Bit `i` (word `i / 64`, bit `i % 64`) is set iff `|x[i]|` survived.
    /// Walking the set bits in order enumerates `mags` alongside each
    /// entry's source index.
    bitmap: Vec<u64>,
    /// The cutoff the buffer was compacted at: `mags` covers every
    /// magnitude `>= cutoff` and nothing below it.
    cutoff: f32,
}

/// One pass over `x`: compacts the magnitudes `>= cutoff` into a dense
/// buffer, preserving input order, and records membership in a bitmap.
///
/// Each 64-element chunk is processed in two branch-free phases: the
/// membership word is packed with a store-free compare loop (which the
/// compiler can vectorise), then only the survivors named by the word's
/// set bits are copied out — the per-word extraction loop runs once per
/// survivor, not once per element, and the word store amortises to one
/// per 64 elements. The magnitude buffer is created zero-filled (a
/// lazily-mapped allocation), so untouched capacity costs nothing — with
/// a wall cutoff only a few pages of it are ever written.
fn compact_magnitudes(x: &[f32], cutoff: f32) -> Survivors {
    let d = x.len();
    debug_assert!(d <= u32::MAX as usize, "indices are u32 repo-wide");
    let mut mags = vec![0.0f32; d];
    let mut bitmap = vec![0u64; d.div_ceil(64)];
    let mut n = 0usize;
    let mut words = x.chunks_exact(64);
    let mut wi = 0usize;
    for chunk in &mut words {
        // Constant-shift byte groups: the compiler turns each group of
        // eight compares into one SIMD compare + mask extraction, where a
        // variable-shift fold stays scalar (~3.5x slower measured).
        let mut w = 0u64;
        for (g, oct) in chunk.chunks_exact(8).enumerate() {
            let &[o0, o1, o2, o3, o4, o5, o6, o7] = oct else {
                unreachable!("chunks_exact(8) yields exactly 8 elements")
            };
            let byte = u8::from(o0.abs() >= cutoff)
                | u8::from(o1.abs() >= cutoff) << 1
                | u8::from(o2.abs() >= cutoff) << 2
                | u8::from(o3.abs() >= cutoff) << 3
                | u8::from(o4.abs() >= cutoff) << 4
                | u8::from(o5.abs() >= cutoff) << 5
                | u8::from(o6.abs() >= cutoff) << 6
                | u8::from(o7.abs() >= cutoff) << 7;
            w |= (byte as u64) << (8 * g);
        }
        bitmap[wi] = w;
        wi += 1;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            w &= w - 1;
            mags[n] = chunk[b].abs();
            n += 1;
        }
    }
    let tail = words.remainder();
    if !tail.is_empty() {
        let mut w = 0u64;
        for (b, v) in tail.iter().enumerate() {
            w |= u64::from(v.abs() >= cutoff) << b;
        }
        bitmap[wi] = w;
        while w != 0 {
            let b = w.trailing_zeros() as usize;
            w &= w - 1;
            mags[n] = tail[b].abs();
            n += 1;
        }
    }
    mags.truncate(n);
    Survivors {
        mags,
        bitmap,
        cutoff,
    }
}

/// Gathers the magnitudes `>= lo` from a survivor buffer, preserving order.
/// Each chunk is screened with a vectorizable membership count so the
/// scalar gather loop only runs on chunks that contain a hit.
fn gather_ge(mags: &[f32], lo: f32) -> Vec<f32> {
    let mut out: Vec<f32> = Vec::new();
    for chunk in mags.chunks(SCAN_CHUNK) {
        let hits: usize = chunk.iter().map(|&m| usize::from(m >= lo)).sum();
        if hits == 0 {
            continue;
        }
        out.reserve(hits);
        for &m in chunk {
            if m >= lo {
                out.push(m);
            }
        }
    }
    out
}

/// The histogram search: identical probe sequence to [`search_counting`],
/// answered in two phases. Requires `u > a_mean`. Returns the compacted
/// survivor buffer so the selection scan can reuse it.
///
/// * **Gallop** — the first probes are answered by direct counting until
///   one over-selects and pins the bracket's lower wall, or [`GALLOP_MAX`]
///   probes pass. The first [`GALLOP_DIRECT`] of them count the raw
///   tensor (exactly the naive passes); the tensor is then compacted at
///   the wall — or at the mean, with counting continuing on the survivor
///   buffer, if no wall is pinned yet.
/// * **Histogram** — every remaining probe ratio lies inside the bracket
///   `[l, r]`, so elements below `thres(l)` can never change a count
///   again. A histogram over just the elements at or above the wall
///   answers the next `levels` probes, and a gather of the final bucket
///   answers any probes beyond the histogram depth.
fn search_histogram(
    x: &[f32],
    k: usize,
    samplings: usize,
    a_mean: f32,
    u: f32,
    bracket: &mut Bracket,
) -> Survivors {
    // Phase 1a: while every probe under-selects, the probed ratios descend
    // 1/2, 1/4, ... — count them straight off the tensor, exactly as the
    // naive loop would.
    let mut consumed = 0usize;
    while consumed < samplings && consumed < GALLOP_DIRECT && bracket.l == 0.0 {
        let ratio = bracket.midpoint();
        let thres = a_mean + ratio * (u - a_mean);
        let nnz = ops::count_ge(x, thres);
        bracket.observe(nnz, thres, ratio, k);
        consumed += 1;
    }

    // Compact at the wall when one is pinned (every later threshold sits
    // at or above it), else at the mean (no probed threshold can go
    // below `a_mean + 0`). Either way the buffer covers every magnitude
    // any remaining probe or the selection scan can touch.
    let s = compact_magnitudes(x, a_mean + bracket.l * (u - a_mean));

    // Phase 1b: if the wall is still unset, keep galloping on the (much
    // smaller) survivor buffer. Dropped sub-mean elements can never reach
    // a probed threshold, so the counts stay exact.
    while consumed < samplings && consumed < GALLOP_MAX && bracket.l == 0.0 {
        let ratio = bracket.midpoint();
        let thres = a_mean + ratio * (u - a_mean);
        let nnz = ops::count_ge(&s.mags, thres);
        bracket.observe(nnz, thres, ratio, k);
        consumed += 1;
    }
    let left = samplings - consumed;
    if left == 0 {
        return s;
    }

    // Phase 2: histogram over the elements at or above the lower wall.
    // `rl` and `rr - rl` are dyadic rationals with denominator at most
    // `2^GALLOP_MAX`, so the sub-grid ratios below stay exact.
    let (rl, rr) = (bracket.l, bracket.r);
    let lo_val = a_mean + rl * (u - a_mean);
    let gathered;
    let survivors: &[f32] = if lo_val <= s.cutoff {
        &s.mags // buffer already compacted at the wall: all of it is live
    } else {
        gathered = gather_ge(&s.mags, lo_val);
        &gathered
    };

    // Depth: no deeper than the probe count, the exactness cap, or a bucket
    // count comparable to the live element count (finer buys nothing).
    let d_levels = usize::BITS as usize - survivors.len().leading_zeros() as usize;
    let levels = left.min(MAX_HIST_LEVELS).min(d_levels.max(1));
    let buckets = 1usize << levels;

    // Exact bucket boundaries: the same f32 expression the probe loop uses,
    // at every dyadic subdivision of the bracket. Every quantity involved
    // (`rl`, `rr - rl`, `j / buckets`, and their combination) is a dyadic
    // rational with well under 24 mantissa bits, so each arithmetic step is
    // exact and the closed form below reproduces the naive loop's iterative
    // midpoints bit for bit (the replay asserts pin this).
    let span = rr - rl;
    let ratio_of = |j: usize| rl + (j as f32 / buckets as f32) * span;
    let bounds: Vec<f32> = (0..=buckets)
        .map(|j| a_mean + ratio_of(j) * (u - a_mean))
        .collect();

    // Histogram of the live magnitudes over the boundary grid. A float
    // guess lands near the right bucket; the fix-up loops settle it against
    // the exact boundaries so rounding can never misplace an element.
    // Every live magnitude is `>= bounds[0]` (the wall threshold), so
    // `m - bounds[0]` is non-negative and the guess cast is direct.
    // Bucket `j` holds
    // `bounds[j] <= m < bounds[j+1]`; the last bucket also absorbs
    // `m >= bounds[buckets]` (rounding can leave that boundary slightly
    // below the true top). u32 counts suffice: the repo-wide index type
    // caps the element count at `u32::MAX`.
    // Two loops per chunk: the guess arithmetic (subtract, scale, cast,
    // clamp) vectorises when split from the data-dependent fix-up, which
    // stays scalar but only has the table work left to do. The `as i32`
    // cast truncates toward zero exactly like the scalar cast would; the
    // guesses are in `[0, buckets]` (plus rounding), so the clamp makes
    // them valid u16 bucket ids. (A degenerate grid — all boundaries
    // rounding to one value — makes the scale infinite and the guesses
    // NaN, which the cast maps to 0 and the fix-up walk resolves; the
    // counts stay exact.)
    // lint:allow(panic_free, reason = "bounds always has buckets+1 >= 2 boundary entries by construction of the histogram grid")
    let guess_scale = buckets as f32 / (bounds[buckets] - bounds[0]);
    let mut counts = vec![0u32; buckets];
    let mut keys = [0u16; SCAN_CHUNK];
    for chunk in survivors.chunks(SCAN_CHUNK) {
        for (kk, &m) in keys.iter_mut().zip(chunk) {
            // lint:allow(panic_free, reason = "bounds always has buckets+1 >= 2 boundary entries by construction of the histogram grid")
            *kk = (((m - bounds[0]) * guess_scale) as i32).min(buckets as i32 - 1) as u16;
        }
        for (&kk, &m) in keys.iter().zip(chunk) {
            let mut j = kk as usize;
            while m < bounds[j] {
                j -= 1;
            }
            while j + 1 < buckets && m >= bounds[j + 1] {
                j += 1;
            }
            counts[j] += 1;
        }
    }

    // suffix[j] = exact count_ge(x, bounds[j]) — every dropped element is
    // below `bounds[0]` and hence below every boundary, so the live
    // elements alone determine the counts.
    let mut suffix = vec![0usize; buckets + 1];
    for j in (0..buckets).rev() {
        suffix[j] = suffix[j + 1] + counts[j] as usize;
    }

    // Replay the next `levels` probes from the suffix sums. Integer bucket
    // indices shadow the float bracket; the debug asserts pin the bitwise
    // equivalence the module docs argue.
    let (mut lj, mut rj) = (0usize, buckets);
    for _ in 0..levels {
        let mj = (lj + rj) / 2;
        let ratio = bracket.midpoint();
        debug_assert_eq!(ratio, ratio_of(mj));
        let thres = a_mean + ratio * (u - a_mean);
        debug_assert_eq!(thres, bounds[mj]);
        let nnz = suffix[mj];
        let under = nnz <= k;
        bracket.observe(nnz, thres, ratio, k);
        if under {
            rj = mj;
        } else {
            lj = mj;
        }
    }

    // Any remaining probes land strictly inside one bucket (monotone f32
    // rounding keeps every later threshold within its boundary pair), so a
    // scan of just that bucket's magnitudes answers them exactly.
    if left > levels {
        debug_assert_eq!(lj + 1, rj);
        let cell = lj;
        let lo = bounds[cell];
        let (hi, tail) = if cell + 1 == buckets {
            (f32::INFINITY, 0)
        } else {
            (bounds[cell + 1], suffix[cell + 1])
        };
        // The cell holds a handful of magnitudes; screen each chunk with a
        // vectorizable membership count and only gather from chunks that
        // hit.
        let mut cell_m: Vec<f32> = Vec::with_capacity((counts[cell] as usize).min(survivors.len()));
        for chunk in survivors.chunks(SCAN_CHUNK) {
            let hits: usize = chunk.iter().map(|&m| usize::from(m >= lo && m < hi)).sum();
            if hits == 0 {
                continue;
            }
            for &m in chunk {
                if m >= lo && m < hi {
                    cell_m.push(m);
                }
            }
        }
        debug_assert_eq!(cell_m.len(), counts[cell] as usize);
        for _ in levels..left {
            let ratio = bracket.midpoint();
            let thres = a_mean + ratio * (u - a_mean);
            let nnz = tail + cell_m.iter().filter(|&&m| m >= thres).count();
            bracket.observe(nnz, thres, ratio, k);
        }
    }
    s
}

/// Algorithm 1 with an explicit RNG (deterministic given the RNG state),
/// histogram-accelerated: ~3 streaming passes regardless of `samplings`.
/// Bitwise identical to [`mstopk_naive_with_rng`] on every input.
pub fn mstopk_with_rng(
    x: &[f32],
    k: usize,
    samplings: usize,
    rng: &mut StdRng,
) -> (SparseGrad, MsTopKStats) {
    mstopk_impl(x, k, samplings, rng, None)
}

/// [`mstopk_with_rng`] with per-stage spans and counters recorded into
/// `reg`.
///
/// Spans are charged in logical work units (elements scanned):
/// `mstopk/mean-max passes` (2·d), `mstopk/histogram search` (the
/// compaction pass plus the survivor buffer it leaves behind), and
/// `mstopk/selection` (the final materialisation scan). Counters:
/// `mstopk/invocations`, `mstopk/passes`, `mstopk/selected`,
/// `mstopk/survivors`. Instrumentation reads only values the untraced path
/// already computes — the selection, statistics, and RNG consumption stay
/// bitwise identical.
pub fn mstopk_with_rng_traced(
    x: &[f32],
    k: usize,
    samplings: usize,
    rng: &mut StdRng,
    reg: &mut Registry,
) -> (SparseGrad, MsTopKStats) {
    mstopk_impl(x, k, samplings, rng, Some(reg))
}

fn mstopk_impl(
    x: &[f32],
    k: usize,
    samplings: usize,
    rng: &mut StdRng,
    mut reg: Option<&mut Registry>,
) -> (SparseGrad, MsTopKStats) {
    let d = x.len();
    let k = k.min(d);
    if let Some(reg) = reg.as_mut() {
        reg.counter_add("mstopk/invocations", 1);
        reg.counter_add("mstopk/passes", samplings as u64);
        reg.counter_add("mstopk/selected", k as u64);
    }
    if let Some(out) = trivial_selection(x, d, k) {
        return out;
    }

    // Line 1: the mean pass (block-ordered, matches the naive path).
    let span = obs::span_begin(&mut reg, "mstopk/mean-max passes");
    let a_mean = ops::mean_abs(x);

    let mut bracket = Bracket::new(d);
    let mut survivors = None;
    if samplings > 0 {
        // Lines 2–3: the max pass, exactly the statistic the naive path
        // computes.
        let u = ops::max_abs(x);
        obs::span_end(&mut reg, span, (2 * d) as f64);
        let span = obs::span_begin(&mut reg, "mstopk/histogram search");
        if u > a_mean {
            survivors = Some(search_histogram(x, k, samplings, a_mean, u, &mut bracket));
        } else if u == a_mean {
            // Degenerate grid: every probe threshold collapses to
            // `a_mean` (`ratio * 0.0 == 0.0`), so the naive loop
            // evaluates the same count every iteration and only the
            // first updates the bracket.
            let nnz = ops::count_ge(x, a_mean);
            bracket.observe(nnz, a_mean, bracket.midpoint(), k);
        } else {
            // `mean_abs` rounding pathologically exceeded `max_abs` (or
            // NaN poisoned a statistic): the histogram grid would be
            // inverted. Fall back to the literal search (still
            // identical, just not accelerated).
            search_counting(x, k, samplings, a_mean, u, &mut bracket);
        }
        let survivor_len = survivors.as_ref().map_or(0, |s| s.mags.len());
        if let Some(reg) = reg.as_mut() {
            reg.counter_add("mstopk/survivors", survivor_len as u64);
        }
        obs::span_end(&mut reg, span, (d + survivor_len) as f64);
    } else {
        obs::span_end(&mut reg, span, d as f64); // only the mean pass ran
    }

    // The survivor buffer can stand in for a selection rescan only if it
    // covers everything `>= thres2`. A set `thres2` is a probed threshold
    // at or above the compaction cutoff; unset it is 0.0, which qualifies
    // only in the all-magnitudes-survive case `cutoff == 0`.
    let accel = survivors.as_ref().filter(|s| bracket.thres2 >= s.cutoff);
    let span = obs::span_begin(&mut reg, "mstopk/selection");
    let scan_len = accel.map_or(d, |s| s.mags.len());
    let out = finish_selection(x, d, k, &bracket, samplings, rng, accel);
    obs::span_end(&mut reg, span, scan_len as f64);
    out
}

/// Algorithm 1 with an explicit RNG, exactly as printed in the paper: `N`
/// streaming `count_ge` passes. Kept as the reference implementation for
/// differential tests against [`mstopk_with_rng`].
pub fn mstopk_naive_with_rng(
    x: &[f32],
    k: usize,
    samplings: usize,
    rng: &mut StdRng,
) -> (SparseGrad, MsTopKStats) {
    let d = x.len();
    let k = k.min(d);
    if let Some(out) = trivial_selection(x, d, k) {
        return out;
    }

    let a_mean = ops::mean_abs(x);
    let u = ops::max_abs(x);

    let mut bracket = Bracket::new(d);
    search_counting(x, k, samplings, a_mean, u, &mut bracket);

    finish_selection(x, d, k, &bracket, samplings, rng, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::topk_sort;
    use cloudtrain_tensor::init;

    fn grad(seed: u64, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(seed);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    #[test]
    fn returns_exactly_k() {
        let x = grad(1, 50_000);
        let mut op = MsTopK::new(30, 2);
        for k in [1usize, 5, 50, 500, 5_000] {
            assert_eq!(op.compress(&x, k).len(), k);
        }
    }

    #[test]
    fn values_match_their_indices() {
        let x = grad(3, 10_000);
        let mut op = MsTopK::new(30, 4);
        let s = op.compress(&x, 100);
        for (v, &i) in s.values.iter().zip(&s.indices) {
            assert_eq!(*v, x[i as usize]);
        }
    }

    #[test]
    fn captures_most_of_the_exact_topk_mass() {
        let x = grad(5, 100_000);
        let k = 1_000;
        let exact = topk_sort(&x, k);
        let mut op = MsTopK::new(30, 6);
        let approx = op.compress(&x, k);
        // With 30 samplings the bracket is tight: approximate selection
        // should capture nearly all the exact top-k magnitude mass.
        assert!(
            approx.abs_mass() >= 0.95 * exact.abs_mass(),
            "mass {} vs exact {}",
            approx.abs_mass(),
            exact.abs_mass()
        );
    }

    #[test]
    fn selected_elements_dominate_the_band_floor() {
        let x = grad(7, 20_000);
        let mut op = MsTopK::new(30, 8);
        let (s, stats) = op.select_with_stats(&x, 200);
        for v in &s.values {
            assert!(
                v.abs() >= stats.thres2,
                "selected {} below thres2 {}",
                v,
                stats.thres2
            );
        }
    }

    #[test]
    fn more_samplings_tighten_the_bracket() {
        let x = grad(9, 100_000);
        let k = 1_000;
        let (_, loose) = MsTopK::new(5, 1).select_with_stats(&x, k);
        let (_, tight) = MsTopK::new(30, 1).select_with_stats(&x, k);
        assert!(tight.k2 - tight.k1 <= loose.k2 - loose.k1);
    }

    #[test]
    fn nan_contaminated_input_does_not_panic() {
        // A diverged tensor reaching the operator: NaN magnitudes fail
        // every threshold compare, so the band can hold fewer than
        // `k - k1` elements and the selection degrades to what exists
        // instead of slicing out of bounds. Both implementations must
        // survive any contamination level, up to an all-NaN tensor.
        for d in [16usize, 64, 1_000] {
            for nan_every in [1usize, 2, 5] {
                let x: Vec<f32> = (0..d)
                    .map(|i| {
                        if i % nan_every == 0 {
                            f32::NAN
                        } else {
                            (i as f32 * 0.37).sin()
                        }
                    })
                    .collect();
                for k in [1usize, d / 2, d] {
                    let s = MsTopK::new(30, 11).compress(&x, k);
                    assert!(s.len() <= k);
                    let s = MsTopKNaive::new(30, 11).compress(&x, k);
                    assert!(s.len() <= k);
                }
            }
        }
    }

    #[test]
    fn all_equal_magnitudes_still_yield_k_elements() {
        // Degenerate input: mean == max, every candidate threshold selects
        // everything, so thres1 is never set.
        let x = vec![2.0f32; 1_000];
        let mut op = MsTopK::new(30, 10);
        let s = op.compress(&x, 37);
        assert_eq!(s.len(), 37);
        assert!(s.values.iter().all(|&v| v == 2.0));
    }

    #[test]
    fn constant_magnitude_signs_are_preserved() {
        let x: Vec<f32> = (0..100)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let s = MsTopK::new(10, 3).compress(&x, 10);
        for (v, &i) in s.values.iter().zip(&s.indices) {
            assert_eq!(*v, x[i as usize]);
        }
    }

    #[test]
    fn k_edge_cases() {
        let x = grad(11, 100);
        let mut op = MsTopK::new(30, 12);
        assert!(op.compress(&x, 0).is_empty());
        let full = op.compress(&x, 100);
        assert_eq!(full.len(), 100);
        assert_eq!(full.densify(), x);
        assert!(op.compress(&[], 5).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let x = grad(13, 10_000);
        let a = MsTopK::new(30, 99).compress(&x, 64);
        let b = MsTopK::new(30, 99).compress(&x, 64);
        assert_eq!(a, b);
    }

    #[test]
    fn histogram_matches_naive_selection_and_stats() {
        for (seed, d) in [(21u64, 1_000usize), (22, 10_000), (23, 65_537)] {
            let x = grad(seed, d);
            for k in [1usize, 7, d / 100 + 1, d / 10, d - 1] {
                for samplings in [1usize, 5, 16, 17, 30, 39] {
                    let (sh, th) = MsTopK::new(samplings, 77).select_with_stats(&x, k);
                    let (sn, tn) = MsTopKNaive::new(samplings, 77).select_with_stats(&x, k);
                    assert_eq!(sh, sn, "selection diverged d={d} k={k} n={samplings}");
                    assert_eq!(th, tn, "stats diverged d={d} k={k} n={samplings}");
                }
            }
        }
    }

    #[test]
    fn traced_selection_is_bitwise_identical_and_records_stages() {
        let x = grad(31, 20_000);
        let k = 200;
        let plain = MsTopK::new(30, 7).select_with_stats(&x, k);
        let mut reg = Registry::new();
        let traced = MsTopK::new(30, 7).select_with_stats_traced(&x, k, &mut reg);
        assert_eq!(plain, traced, "tracing perturbed the selection");
        // Three stages per invocation, charged in elements scanned.
        assert_eq!(reg.spans().len(), 3);
        assert_eq!(
            reg.span_total("mstopk/mean-max passes"),
            (2 * x.len()) as f64
        );
        assert!(reg.span_total("mstopk/histogram search") >= x.len() as f64);
        assert!(reg.span_total("mstopk/selection") > 0.0);
        assert_eq!(reg.counter("mstopk/invocations"), 1);
        assert_eq!(reg.counter("mstopk/passes"), 30);
        assert_eq!(reg.counter("mstopk/selected"), k as u64);
        // The accelerated selection scans only the survivor buffer.
        assert_eq!(
            reg.span_total("mstopk/selection"),
            reg.counter("mstopk/survivors") as f64
        );
    }

    #[test]
    fn traced_matches_naive_across_shapes() {
        for (seed, d) in [(41u64, 1_000usize), (42, 65_537)] {
            let x = grad(seed, d);
            for k in [1usize, d / 10] {
                for samplings in [0usize, 1, 30] {
                    let mut reg = Registry::new();
                    let traced =
                        MsTopK::new(samplings, 77).select_with_stats_traced(&x, k, &mut reg);
                    let naive = MsTopKNaive::new(samplings, 77).select_with_stats(&x, k);
                    assert_eq!(traced, naive, "diverged d={d} k={k} n={samplings}");
                }
            }
        }
    }

    #[test]
    fn histogram_matches_naive_on_degenerate_magnitudes() {
        // mean == max: the constant-threshold replay path.
        let x = vec![-3.0f32; 513];
        for k in [1usize, 256, 512] {
            let (sh, th) = MsTopK::new(30, 5).select_with_stats(&x, k);
            let (sn, tn) = MsTopKNaive::new(30, 5).select_with_stats(&x, k);
            assert_eq!(sh, sn);
            assert_eq!(th, tn);
        }
    }
}
