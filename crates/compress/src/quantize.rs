//! Dense gradient quantizers — the other family of compression the paper's
//! related work (§6) surveys: QSGD (Alistarh et al., 2017), TernGrad-style
//! ternarisation, and scaled sign-SGD (Karimireddy et al., 2019).
//!
//! Unlike the top-k sparsifiers these keep every coordinate but shrink its
//! representation; they compose with the same error-feedback machinery and
//! the ablation benches compare both families' convergence at equal wire
//! budgets.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cloudtrain_tensor::ops;

#[cfg(feature = "simd")]
use lanes::simd as lane;

#[cfg(not(feature = "simd"))]
use lanes::scalar as lane;

/// Lane-tier kernels for the quantizer hot loops: code decode, decoded
/// accumulate, and deterministic sign encode. The stochastic encoders
/// (QSGD, TernGrad) draw one RNG value per element in sequence and are
/// inherently serial, so the lane tier covers the data-parallel passes.
///
/// Both tiers are always compiled — the differential tests and the
/// micro-benches compare them regardless of the feature set — and the
/// `simd` cargo feature selects which one the [`QuantizedGrad`] /
/// [`ScaledSign`] methods dispatch to. All kernels are purely
/// position-wise, so the tiers are bitwise identical for every input.
pub mod lanes {
    /// Lane width; shared with `cloudtrain_tensor::ops::LANES`.
    pub const LANES: usize = cloudtrain_tensor::ops::LANES;

    /// Per-element reference forms.
    pub mod scalar {
        /// Decodes signed level codes: `out[i] = codes[i] as f32 * inv`.
        pub fn decode(codes: &[i8], inv: f32) -> Vec<f32> {
            codes.iter().map(|&c| c as f32 * inv).collect()
        }

        /// `acc[i] += codes[i] as f32 * inv`.
        ///
        /// # Panics
        /// Panics on a length mismatch.
        pub fn add_decoded(acc: &mut [f32], codes: &[i8], inv: f32) {
            assert_eq!(acc.len(), codes.len(), "add_decoded: length mismatch");
            for (a, &c) in acc.iter_mut().zip(codes) {
                *a += c as f32 * inv;
            }
        }

        /// Sign codes: `+1` where `v >= 0.0` (IEEE comparison, so `-0.0`
        /// encodes `+1`), `-1` otherwise.
        pub fn sign_codes(x: &[f32]) -> Vec<i8> {
            x.iter().map(|&v| if v >= 0.0 { 1i8 } else { -1 }).collect()
        }
    }

    /// Fixed-width `[_; LANES]` lane-array forms; bitwise identical to
    /// [`scalar`] (the kernels are purely position-wise).
    pub mod simd {
        use super::LANES;

        /// Decodes signed level codes: `out[i] = codes[i] as f32 * inv`.
        pub fn decode(codes: &[i8], inv: f32) -> Vec<f32> {
            let mut out = vec![0.0f32; codes.len()];
            let mut oc = out.chunks_exact_mut(LANES);
            let mut cc = codes.chunks_exact(LANES);
            for (ol, cl) in (&mut oc).zip(&mut cc) {
                let vals: [f32; LANES] = std::array::from_fn(|j| cl[j] as f32 * inv);
                ol.copy_from_slice(&vals);
            }
            for (o, &c) in oc.into_remainder().iter_mut().zip(cc.remainder()) {
                *o = c as f32 * inv;
            }
            out
        }

        /// `acc[i] += codes[i] as f32 * inv`.
        ///
        /// # Panics
        /// Panics on a length mismatch.
        pub fn add_decoded(acc: &mut [f32], codes: &[i8], inv: f32) {
            assert_eq!(acc.len(), codes.len(), "add_decoded: length mismatch");
            let mut ac = acc.chunks_exact_mut(LANES);
            let mut cc = codes.chunks_exact(LANES);
            for (al, cl) in (&mut ac).zip(&mut cc) {
                let vals: [f32; LANES] = std::array::from_fn(|j| al[j] + cl[j] as f32 * inv);
                al.copy_from_slice(&vals);
            }
            for (a, &c) in ac.into_remainder().iter_mut().zip(cc.remainder()) {
                *a += c as f32 * inv;
            }
        }

        /// Sign codes matching [`super::scalar::sign_codes`] bit for bit.
        pub fn sign_codes(x: &[f32]) -> Vec<i8> {
            let mut out = vec![0i8; x.len()];
            let mut oc = out.chunks_exact_mut(LANES);
            let mut xc = x.chunks_exact(LANES);
            for (ol, xl) in (&mut oc).zip(&mut xc) {
                let codes: [i8; LANES] =
                    std::array::from_fn(|j| if xl[j] >= 0.0 { 1i8 } else { -1 });
                ol.copy_from_slice(&codes);
            }
            for (o, &v) in oc.into_remainder().iter_mut().zip(xc.remainder()) {
                *o = if v >= 0.0 { 1 } else { -1 };
            }
            out
        }
    }
}

/// A quantized gradient: per-tensor scale plus one small code per element.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedGrad {
    /// Per-tensor scale (the norm or max the codes are relative to).
    pub scale: f32,
    /// Signed level codes, one per element.
    pub codes: Vec<i8>,
    /// Quantization levels (`s`): codes lie in `[-s, s]`.
    pub levels: u8,
}

impl QuantizedGrad {
    /// Per-code multiplier (`scale / levels`), the dequantization constant.
    fn inv(&self) -> f32 {
        if self.levels == 0 {
            0.0
        } else {
            self.scale / self.levels as f32
        }
    }

    /// Decodes back to a dense vector.
    pub fn decode(&self) -> Vec<f32> {
        lane::decode(&self.codes, self.inv())
    }

    /// Adds the decoded values into an accumulator.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn add_into(&self, acc: &mut [f32]) {
        assert_eq!(acc.len(), self.codes.len(), "add_into: length mismatch");
        lane::add_decoded(acc, &self.codes, self.inv());
    }

    /// Wire size in bytes: the scale plus `ceil(log2(2s+1))` bits per
    /// element (packed).
    pub fn wire_bytes(&self) -> usize {
        let bits_per_elem = (2 * self.levels as u32 + 1)
            .next_power_of_two()
            .trailing_zeros();
        4 + (self.codes.len() * bits_per_elem as usize).div_ceil(8)
    }
}

/// A dense gradient quantizer.
pub trait Quantizer {
    /// Quantizes `x` (unbiasedly where the scheme allows).
    fn quantize(&mut self, x: &[f32]) -> QuantizedGrad;

    /// Scheme name for tables.
    fn name(&self) -> &'static str;
}

/// QSGD (Alistarh et al., 2017): stochastic quantization onto `s` uniform
/// levels of `‖x‖₂`, unbiased (`E[Q(x)] = x`).
#[derive(Debug)]
pub struct Qsgd {
    /// Number of positive levels `s` (e.g. 127 for 8-bit codes).
    pub levels: u8,
    rng: StdRng,
}

impl Qsgd {
    /// Creates QSGD with `levels` positive levels.
    ///
    /// # Panics
    /// Panics if `levels == 0`.
    pub fn new(levels: u8, seed: u64) -> Self {
        assert!(levels > 0, "Qsgd: need at least one level");
        Self {
            levels,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Quantizer for Qsgd {
    fn quantize(&mut self, x: &[f32]) -> QuantizedGrad {
        let norm = ops::l2_norm(x);
        let s = self.levels as f32;
        let codes = if norm == 0.0 {
            vec![0i8; x.len()]
        } else {
            x.iter()
                .map(|&v| {
                    let u = v.abs() / norm * s; // in [0, s]
                    let low = u.floor();
                    let p = u - low;
                    let level = if self.rng.random::<f32>() < p {
                        low + 1.0
                    } else {
                        low
                    };
                    (level.min(s) * v.signum()) as i8
                })
                .collect()
        };
        QuantizedGrad {
            scale: norm,
            codes,
            levels: self.levels,
        }
    }

    fn name(&self) -> &'static str {
        "QSGD"
    }
}

/// TernGrad-style ternarisation: codes in `{-1, 0, +1}` scaled by
/// `max|x|`, with stochastic rounding (unbiased).
#[derive(Debug)]
pub struct TernGrad {
    rng: StdRng,
}

impl TernGrad {
    /// Creates a ternary quantizer.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Quantizer for TernGrad {
    fn quantize(&mut self, x: &[f32]) -> QuantizedGrad {
        let scale = ops::max_abs(x);
        let codes = if scale == 0.0 {
            vec![0i8; x.len()]
        } else {
            x.iter()
                .map(|&v| {
                    let p = v.abs() / scale;
                    if self.rng.random::<f32>() < p {
                        v.signum() as i8
                    } else {
                        0
                    }
                })
                .collect()
        };
        QuantizedGrad {
            scale,
            codes,
            levels: 1,
        }
    }

    fn name(&self) -> &'static str {
        "TernGrad"
    }
}

/// Scaled sign compression (the EF-SignSGD operator): `sign(x) · mean|x|`.
/// Biased — must be used with error feedback.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScaledSign;

impl Quantizer for ScaledSign {
    fn quantize(&mut self, x: &[f32]) -> QuantizedGrad {
        let scale = ops::mean_abs(x);
        let codes = lane::sign_codes(x);
        QuantizedGrad {
            scale,
            codes,
            levels: 1,
        }
    }

    fn name(&self) -> &'static str {
        "ScaledSign"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_tensor::init;

    fn grad(seed: u64, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(seed);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    #[test]
    fn qsgd_is_unbiased() {
        // Average many quantizations of the same vector: the mean decoded
        // value converges to the input.
        let x = grad(1, 200);
        let mut q = Qsgd::new(4, 7);
        let trials = 3000;
        let mut mean = vec![0.0f64; x.len()];
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(q.quantize(&x).decode()) {
                *m += v as f64;
            }
        }
        let norm = ops::l2_norm(&x) as f64;
        for (m, &v) in mean.iter().zip(&x) {
            let avg = m / trials as f64;
            // Standard error of the per-coordinate estimate is
            // ~ (norm/s)/sqrt(trials).
            let tol = 5.0 * (norm / 4.0) / (trials as f64).sqrt() + 1e-3;
            assert!(
                (avg - v as f64).abs() < tol,
                "biased: avg {avg} vs {v} (tol {tol})"
            );
        }
    }

    #[test]
    fn terngrad_is_unbiased() {
        let x = grad(2, 100);
        let mut q = TernGrad::new(9);
        let trials = 4000;
        let mut mean = vec![0.0f64; x.len()];
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(q.quantize(&x).decode()) {
                *m += v as f64;
            }
        }
        let scale = ops::max_abs(&x) as f64;
        for (m, &v) in mean.iter().zip(&x) {
            let avg = m / trials as f64;
            let tol = 5.0 * scale / (trials as f64).sqrt() + 1e-3;
            assert!((avg - v as f64).abs() < tol, "biased: {avg} vs {v}");
        }
    }

    #[test]
    fn qsgd_codes_within_levels() {
        let x = grad(3, 1000);
        for levels in [1u8, 4, 127] {
            let g = Qsgd::new(levels, 1).quantize(&x);
            assert!(g.codes.iter().all(|&c| (c as i32).abs() <= levels as i32));
            assert_eq!(g.decode().len(), x.len());
        }
    }

    #[test]
    fn scaled_sign_preserves_signs_and_scale() {
        let x = [1.0f32, -2.0, 0.5, -0.5];
        let g = ScaledSign.quantize(&x);
        assert_eq!(g.scale, 1.0); // mean |x| = 1
        assert_eq!(g.decode(), vec![1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn wire_bytes_reflect_code_width() {
        let x = grad(4, 8000);
        // Ternary: 2 bits/elem -> ~2000 bytes; 8-bit QSGD: 8 bits/elem.
        let tern = TernGrad::new(1).quantize(&x);
        assert_eq!(tern.wire_bytes(), 4 + 8000 * 2 / 8);
        let q127 = Qsgd::new(127, 1).quantize(&x);
        assert_eq!(q127.wire_bytes(), 4 + 8000);
        assert!(tern.wire_bytes() < q127.wire_bytes());
        // Both crush FP32 (32 bits/elem).
        assert!(q127.wire_bytes() * 3 < 8000 * 4);
    }

    #[test]
    fn zero_vector_roundtrips() {
        let x = vec![0.0f32; 50];
        for q in [
            Qsgd::new(4, 1).quantize(&x),
            TernGrad::new(1).quantize(&x),
            ScaledSign.quantize(&x),
        ] {
            assert_eq!(q.decode(), x);
        }
    }

    #[test]
    fn add_into_matches_decode() {
        let x = grad(5, 64);
        let g = Qsgd::new(8, 3).quantize(&x);
        let mut acc = vec![1.0f32; 64];
        g.add_into(&mut acc);
        for (a, d) in acc.iter().zip(g.decode()) {
            assert!((a - 1.0 - d).abs() < 1e-6);
        }
    }

    /// Differential property tests: the simd lane tier of the quantizer
    /// kernels must be bitwise identical to the scalar reference, for
    /// arbitrary lengths (full lane chunks and ragged tails alike).
    mod lane_tier_properties {
        use super::super::lanes::{scalar, simd};
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            #[test]
            fn decode_and_accumulate_bitwise_identical(
                codes_raw in prop::collection::vec(0i32..256, 0..200),
                inv in -4.0f32..4.0,
            ) {
                let codes: Vec<i8> = codes_raw.iter().map(|&c| (c - 128) as i8).collect();
                let ds = scalar::decode(&codes, inv);
                let dv = simd::decode(&codes, inv);
                prop_assert_eq!(&ds, &dv);
                let mut accs: Vec<f32> =
                    (0..codes.len()).map(|i| (i as f32) * 0.125 - 4.0).collect();
                let mut accv = accs.clone();
                scalar::add_decoded(&mut accs, &codes, inv);
                simd::add_decoded(&mut accv, &codes, inv);
                prop_assert_eq!(&accs, &accv);
            }

            #[test]
            fn sign_codes_bitwise_identical(
                x in prop::collection::vec(-1e3f32..1e3, 0..200),
            ) {
                prop_assert_eq!(scalar::sign_codes(&x), simd::sign_codes(&x));
            }
        }

        #[test]
        fn sign_codes_agree_on_signed_zero() {
            let x = [0.0f32, -0.0, 1.0, -1.0];
            assert_eq!(scalar::sign_codes(&x), vec![1, 1, 1, -1]);
            assert_eq!(simd::sign_codes(&x), scalar::sign_codes(&x));
        }
    }
}
