//! Dense gradient quantizers — the other family of compression the paper's
//! related work (§6) surveys: QSGD (Alistarh et al., 2017), TernGrad-style
//! ternarisation, and scaled sign-SGD (Karimireddy et al., 2019).
//!
//! Unlike the top-k sparsifiers these keep every coordinate but shrink its
//! representation; they compose with the same error-feedback machinery and
//! the ablation benches compare both families' convergence at equal wire
//! budgets.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use cloudtrain_tensor::ops;

/// A quantized gradient: per-tensor scale plus one small code per element.
#[derive(Debug, Clone, PartialEq)]
pub struct QuantizedGrad {
    /// Per-tensor scale (the norm or max the codes are relative to).
    pub scale: f32,
    /// Signed level codes, one per element.
    pub codes: Vec<i8>,
    /// Quantization levels (`s`): codes lie in `[-s, s]`.
    pub levels: u8,
}

impl QuantizedGrad {
    /// Decodes back to a dense vector.
    pub fn decode(&self) -> Vec<f32> {
        let inv = if self.levels == 0 {
            0.0
        } else {
            self.scale / self.levels as f32
        };
        self.codes.iter().map(|&c| c as f32 * inv).collect()
    }

    /// Adds the decoded values into an accumulator.
    ///
    /// # Panics
    /// Panics on a length mismatch.
    pub fn add_into(&self, acc: &mut [f32]) {
        assert_eq!(acc.len(), self.codes.len(), "add_into: length mismatch");
        let inv = if self.levels == 0 {
            0.0
        } else {
            self.scale / self.levels as f32
        };
        for (a, &c) in acc.iter_mut().zip(&self.codes) {
            *a += c as f32 * inv;
        }
    }

    /// Wire size in bytes: the scale plus `ceil(log2(2s+1))` bits per
    /// element (packed).
    pub fn wire_bytes(&self) -> usize {
        let bits_per_elem = (2 * self.levels as u32 + 1)
            .next_power_of_two()
            .trailing_zeros();
        4 + (self.codes.len() * bits_per_elem as usize).div_ceil(8)
    }
}

/// A dense gradient quantizer.
pub trait Quantizer {
    /// Quantizes `x` (unbiasedly where the scheme allows).
    fn quantize(&mut self, x: &[f32]) -> QuantizedGrad;

    /// Scheme name for tables.
    fn name(&self) -> &'static str;
}

/// QSGD (Alistarh et al., 2017): stochastic quantization onto `s` uniform
/// levels of `‖x‖₂`, unbiased (`E[Q(x)] = x`).
#[derive(Debug)]
pub struct Qsgd {
    /// Number of positive levels `s` (e.g. 127 for 8-bit codes).
    pub levels: u8,
    rng: StdRng,
}

impl Qsgd {
    /// Creates QSGD with `levels` positive levels.
    ///
    /// # Panics
    /// Panics if `levels == 0`.
    pub fn new(levels: u8, seed: u64) -> Self {
        assert!(levels > 0, "Qsgd: need at least one level");
        Self {
            levels,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Quantizer for Qsgd {
    fn quantize(&mut self, x: &[f32]) -> QuantizedGrad {
        let norm = ops::l2_norm(x);
        let s = self.levels as f32;
        let codes = if norm == 0.0 {
            vec![0i8; x.len()]
        } else {
            x.iter()
                .map(|&v| {
                    let u = v.abs() / norm * s; // in [0, s]
                    let low = u.floor();
                    let p = u - low;
                    let level = if self.rng.random::<f32>() < p {
                        low + 1.0
                    } else {
                        low
                    };
                    (level.min(s) * v.signum()) as i8
                })
                .collect()
        };
        QuantizedGrad {
            scale: norm,
            codes,
            levels: self.levels,
        }
    }

    fn name(&self) -> &'static str {
        "QSGD"
    }
}

/// TernGrad-style ternarisation: codes in `{-1, 0, +1}` scaled by
/// `max|x|`, with stochastic rounding (unbiased).
#[derive(Debug)]
pub struct TernGrad {
    rng: StdRng,
}

impl TernGrad {
    /// Creates a ternary quantizer.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Quantizer for TernGrad {
    fn quantize(&mut self, x: &[f32]) -> QuantizedGrad {
        let scale = ops::max_abs(x);
        let codes = if scale == 0.0 {
            vec![0i8; x.len()]
        } else {
            x.iter()
                .map(|&v| {
                    let p = v.abs() / scale;
                    if self.rng.random::<f32>() < p {
                        v.signum() as i8
                    } else {
                        0
                    }
                })
                .collect()
        };
        QuantizedGrad {
            scale,
            codes,
            levels: 1,
        }
    }

    fn name(&self) -> &'static str {
        "TernGrad"
    }
}

/// Scaled sign compression (the EF-SignSGD operator): `sign(x) · mean|x|`.
/// Biased — must be used with error feedback.
#[derive(Debug, Clone, Copy, Default)]
pub struct ScaledSign;

impl Quantizer for ScaledSign {
    fn quantize(&mut self, x: &[f32]) -> QuantizedGrad {
        let scale = ops::mean_abs(x);
        let codes = x.iter().map(|&v| if v >= 0.0 { 1i8 } else { -1 }).collect();
        QuantizedGrad {
            scale,
            codes,
            levels: 1,
        }
    }

    fn name(&self) -> &'static str {
        "ScaledSign"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_tensor::init;

    fn grad(seed: u64, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(seed);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    #[test]
    fn qsgd_is_unbiased() {
        // Average many quantizations of the same vector: the mean decoded
        // value converges to the input.
        let x = grad(1, 200);
        let mut q = Qsgd::new(4, 7);
        let trials = 3000;
        let mut mean = vec![0.0f64; x.len()];
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(q.quantize(&x).decode()) {
                *m += v as f64;
            }
        }
        let norm = ops::l2_norm(&x) as f64;
        for (m, &v) in mean.iter().zip(&x) {
            let avg = m / trials as f64;
            // Standard error of the per-coordinate estimate is
            // ~ (norm/s)/sqrt(trials).
            let tol = 5.0 * (norm / 4.0) / (trials as f64).sqrt() + 1e-3;
            assert!(
                (avg - v as f64).abs() < tol,
                "biased: avg {avg} vs {v} (tol {tol})"
            );
        }
    }

    #[test]
    fn terngrad_is_unbiased() {
        let x = grad(2, 100);
        let mut q = TernGrad::new(9);
        let trials = 4000;
        let mut mean = vec![0.0f64; x.len()];
        for _ in 0..trials {
            for (m, v) in mean.iter_mut().zip(q.quantize(&x).decode()) {
                *m += v as f64;
            }
        }
        let scale = ops::max_abs(&x) as f64;
        for (m, &v) in mean.iter().zip(&x) {
            let avg = m / trials as f64;
            let tol = 5.0 * scale / (trials as f64).sqrt() + 1e-3;
            assert!((avg - v as f64).abs() < tol, "biased: {avg} vs {v}");
        }
    }

    #[test]
    fn qsgd_codes_within_levels() {
        let x = grad(3, 1000);
        for levels in [1u8, 4, 127] {
            let g = Qsgd::new(levels, 1).quantize(&x);
            assert!(g.codes.iter().all(|&c| (c as i32).abs() <= levels as i32));
            assert_eq!(g.decode().len(), x.len());
        }
    }

    #[test]
    fn scaled_sign_preserves_signs_and_scale() {
        let x = [1.0f32, -2.0, 0.5, -0.5];
        let g = ScaledSign.quantize(&x);
        assert_eq!(g.scale, 1.0); // mean |x| = 1
        assert_eq!(g.decode(), vec![1.0, -1.0, 1.0, -1.0]);
    }

    #[test]
    fn wire_bytes_reflect_code_width() {
        let x = grad(4, 8000);
        // Ternary: 2 bits/elem -> ~2000 bytes; 8-bit QSGD: 8 bits/elem.
        let tern = TernGrad::new(1).quantize(&x);
        assert_eq!(tern.wire_bytes(), 4 + 8000 * 2 / 8);
        let q127 = Qsgd::new(127, 1).quantize(&x);
        assert_eq!(q127.wire_bytes(), 4 + 8000);
        assert!(tern.wire_bytes() < q127.wire_bytes());
        // Both crush FP32 (32 bits/elem).
        assert!(q127.wire_bytes() * 3 < 8000 * 4);
    }

    #[test]
    fn zero_vector_roundtrips() {
        let x = vec![0.0f32; 50];
        for q in [
            Qsgd::new(4, 1).quantize(&x),
            TernGrad::new(1).quantize(&x),
            ScaledSign.quantize(&x),
        ] {
            assert_eq!(q.decode(), x);
        }
    }

    #[test]
    fn add_into_matches_decode() {
        let x = grad(5, 64);
        let g = Qsgd::new(8, 3).quantize(&x);
        let mut acc = vec![1.0f32; 64];
        g.add_into(&mut acc);
        for (a, d) in acc.iter().zip(g.decode()) {
            assert!((a - 1.0 - d).abs() < 1e-6);
        }
    }
}
