//! Exact top-k selection.
//!
//! Two implementations with identical results but different cost profiles:
//!
//! * [`SortTopK`] sorts the full magnitude array — the behaviour of the
//!   `tf.nn.top_k` baseline in Fig. 6 (a full sort / selection network on
//!   GPU), asymptotically `O(d log d)`.
//! * [`QuickTopK`] uses `select_nth_unstable` (introselect), expected
//!   `O(d)` — the best an exact CPU selection can do, and still slower in
//!   practice than MSTopK's branch-free passes on wide inputs because of
//!   its data-dependent access pattern.
//!
//! Both resolve magnitude ties deterministically in favour of lower indices
//! so that `compress` always returns exactly `k` elements.

use crate::{Compressor, SparseGrad};

/// Returns the `k` largest-magnitude elements of `x` via a full sort.
pub fn topk_sort(x: &[f32], k: usize) -> SparseGrad {
    let k = k.min(x.len());
    let mut order: Vec<u32> = (0..x.len() as u32).collect();
    // Sort by (descending magnitude, ascending index): the index tiebreak
    // makes the selection deterministic under ties.
    order.sort_by(|&a, &b| {
        let (ma, mb) = (x[a as usize].abs(), x[b as usize].abs());
        mb.partial_cmp(&ma)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order.truncate(k);
    order.sort_unstable();
    let values = order.iter().map(|&i| x[i as usize]).collect();
    SparseGrad::new(values, order, x.len())
}

/// Returns the `k` largest-magnitude elements of `x` via quickselect.
pub fn topk_quickselect(x: &[f32], k: usize) -> SparseGrad {
    let k = k.min(x.len());
    if k == 0 {
        return SparseGrad::empty(x.len());
    }
    if k == x.len() {
        return SparseGrad::new(x.to_vec(), (0..x.len() as u32).collect(), x.len());
    }
    let mut mags: Vec<f32> = x.iter().map(|v| v.abs()).collect();
    // Partition so the k-th largest magnitude sits at position k-1 when
    // ordered descending — i.e. position k-1 of a descending sort.
    let (_, kth, _) = mags.select_nth_unstable_by(k - 1, |a, b| {
        b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal)
    });
    let thres = *kth;

    // Take everything strictly above the threshold, then fill the remainder
    // with threshold-equal elements in index order (deterministic ties).
    let mut indices = Vec::with_capacity(k);
    for (i, v) in x.iter().enumerate() {
        if v.abs() > thres {
            indices.push(i as u32);
        }
    }
    debug_assert!(indices.len() <= k);
    if indices.len() < k {
        for (i, v) in x.iter().enumerate() {
            if v.abs() == thres {
                indices.push(i as u32);
                if indices.len() == k {
                    break;
                }
            }
        }
    }
    indices.sort_unstable();
    let values = indices.iter().map(|&i| x[i as usize]).collect();
    SparseGrad::new(values, indices, x.len())
}

/// Exact top-k by full sort (the `nn.topk` baseline).
#[derive(Debug, Clone, Copy, Default)]
pub struct SortTopK;

impl Compressor for SortTopK {
    fn compress(&mut self, x: &[f32], k: usize) -> SparseGrad {
        topk_sort(x, k)
    }

    fn name(&self) -> &'static str {
        "nn.topk(sort)"
    }
}

/// Exact top-k by quickselect.
#[derive(Debug, Clone, Copy, Default)]
pub struct QuickTopK;

impl Compressor for QuickTopK {
    fn compress(&mut self, x: &[f32], k: usize) -> SparseGrad {
        topk_quickselect(x, k)
    }

    fn name(&self) -> &'static str {
        "topk(quickselect)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_selects_largest_magnitudes() {
        let x = [0.1, -5.0, 3.0, -0.2, 4.0];
        let s = topk_sort(&x, 2);
        assert_eq!(s.indices, vec![1, 4]);
        assert_eq!(s.values, vec![-5.0, 4.0]);
    }

    #[test]
    fn quickselect_matches_sort() {
        let x = [0.1, -5.0, 3.0, -0.2, 4.0, 0.0, 2.9];
        for k in 0..=x.len() {
            let a = topk_sort(&x, k);
            let b = topk_quickselect(&x, k);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn ties_resolve_to_lower_indices() {
        let x = [2.0, -2.0, 2.0, 2.0];
        let s = topk_quickselect(&x, 2);
        assert_eq!(s.indices, vec![0, 1]);
        let s = topk_sort(&x, 2);
        assert_eq!(s.indices, vec![0, 1]);
    }

    #[test]
    fn k_zero_and_k_full() {
        let x = [1.0, 2.0];
        assert!(topk_quickselect(&x, 0).is_empty());
        assert_eq!(topk_quickselect(&x, 2).values, vec![1.0, 2.0]);
        assert_eq!(topk_quickselect(&x, 5).len(), 2);
    }

    #[test]
    fn empty_input() {
        assert!(topk_sort(&[], 3).is_empty());
        assert!(topk_quickselect(&[], 3).is_empty());
    }
}
