//! Selection-quality analysis: how good is an approximate top-k?
//!
//! The convergence behaviour of sparsified SGD is governed by how much of
//! the gradient's mass the selection captures (the contraction factor in
//! the error-feedback proofs), so the ablations measure approximate
//! operators against the exact top-k along three axes: magnitude-mass
//! capture, index overlap, and wire compression ratio.

use crate::exact::topk_sort;
use crate::SparseGrad;

/// Quality metrics of one selection relative to the same-`k` exact top-k.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SelectionQuality {
    /// `‖selection‖₁ / ‖exact top-k‖₁` — 1.0 means the full mass of the
    /// best possible k-subset was captured. Always in `[0, 1]` up to
    /// float noise.
    pub mass_capture: f32,
    /// `|selection ∩ exact| / k` — the index-level agreement.
    pub index_overlap: f32,
    /// Captured fraction of the *total* gradient mass
    /// (`‖selection‖₁ / ‖x‖₁`).
    pub total_mass_fraction: f32,
    /// Dense bytes divided by wire bytes.
    pub compression_ratio: f32,
}

/// Scores a selection against the exact top-k of the same input.
///
/// # Panics
/// Panics if the selection's `dim` does not match `x`.
pub fn score_selection(x: &[f32], selection: &SparseGrad) -> SelectionQuality {
    assert_eq!(
        selection.dim,
        x.len(),
        "score_selection: dimension mismatch"
    );
    let k = selection.len();
    let exact = topk_sort(x, k);
    let exact_mass = exact.abs_mass();
    let total_mass: f32 = x.iter().map(|v| v.abs()).sum();

    // Sorted membership probe instead of a HashSet: same O(k log k), no
    // hasher in sight, so the analysis is deterministic by construction.
    let mut exact_sorted = exact.indices.clone();
    exact_sorted.sort_unstable();
    let hits = selection
        .indices
        .iter()
        .filter(|i| exact_sorted.binary_search(i).is_ok())
        .count();

    SelectionQuality {
        mass_capture: if exact_mass > 0.0 {
            selection.abs_mass() / exact_mass
        } else {
            1.0
        },
        index_overlap: if k > 0 { hits as f32 / k as f32 } else { 1.0 },
        total_mass_fraction: if total_mass > 0.0 {
            selection.abs_mass() / total_mass
        } else {
            0.0
        },
        compression_ratio: if selection.wire_bytes() > 0 {
            (x.len() * 4) as f32 / selection.wire_bytes() as f32
        } else {
            f32::INFINITY
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::SortTopK;
    use crate::randomk::RandomK;
    use crate::{Compressor, MsTopK};
    use cloudtrain_tensor::init;

    fn grad(d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(31);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    #[test]
    fn exact_selection_scores_perfectly() {
        let x = grad(5000);
        let s = SortTopK.compress(&x, 50);
        let q = score_selection(&x, &s);
        assert_eq!(q.mass_capture, 1.0);
        assert_eq!(q.index_overlap, 1.0);
        // 50 of 5000 at 8 wire bytes each vs 20000 dense bytes = 50x.
        assert!((q.compression_ratio - 50.0).abs() < 1e-3);
    }

    #[test]
    fn mstopk_scores_near_one_random_scores_low() {
        let x = grad(20_000);
        let k = 200;
        let ms = MsTopK::new(30, 1).compress(&x, k);
        let rnd = RandomK::new(2).compress(&x, k);
        let qm = score_selection(&x, &ms);
        let qr = score_selection(&x, &rnd);
        assert!(qm.mass_capture > 0.97, "mstopk mass {}", qm.mass_capture);
        assert!(
            qm.index_overlap > 0.8,
            "mstopk overlap {}",
            qm.index_overlap
        );
        assert!(
            qr.mass_capture < 0.3,
            "random-k should capture little: {}",
            qr.mass_capture
        );
        assert!(qm.total_mass_fraction > qr.total_mass_fraction);
    }

    #[test]
    fn heavy_tail_concentrates_mass() {
        // 1% of coordinates hold a disproportionate share of the mass on
        // gradient-like inputs — the premise of top-k compression.
        let x = grad(50_000);
        let s = SortTopK.compress(&x, 500);
        let q = score_selection(&x, &s);
        assert!(
            q.total_mass_fraction > 0.05,
            "top-1% mass {} should far exceed 1%",
            q.total_mass_fraction
        );
    }

    #[test]
    fn degenerate_inputs() {
        let zeros = vec![0.0f32; 100];
        let s = SortTopK.compress(&zeros, 5);
        let q = score_selection(&zeros, &s);
        assert_eq!(q.mass_capture, 1.0);
        assert_eq!(q.total_mass_fraction, 0.0);
        let empty = SparseGrad::empty(100);
        let q = score_selection(&zeros, &empty);
        assert_eq!(q.index_overlap, 1.0);
        assert_eq!(q.compression_ratio, f32::INFINITY);
    }
}
