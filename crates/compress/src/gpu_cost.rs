//! Analytic GPU cost model for the top-k operators (Fig. 6 substitute).
//!
//! The paper benchmarks the operators on a Tesla V100, where the decisive
//! difference is the *memory access pattern*: exact selection needs
//! data-dependent, irregular access (very low effective bandwidth on GPUs —
//! Shanbhag et al., 2018; Mei & Chu, 2016), whereas MSTopK performs only
//! branch-free, fully coalesced streaming passes.
//!
//! On non-GPU hardware we reproduce the *shape* of Fig. 6 with a pass-count
//! model charging each operator for the passes it makes at the effective
//! rate of its access pattern. The rates are calibrated to public V100
//! numbers (≈900 GB/s peak HBM2 bandwidth; `tf.nn.top_k` throughput in the
//! tens of millions of elements per second) and are constants of this
//! module, not measurements — EXPERIMENTS.md records this substitution.
//!
//! Criterion benches (`topk_ops`) additionally measure the real CPU wall
//! time of the same implementations.

/// Effective V100 rates (elements per second) by access pattern.
#[derive(Debug, Clone, Copy)]
pub struct GpuRates {
    /// Coalesced streaming pass rate: ~85% of 900 GB/s over 4-byte elements.
    pub stream: f64,
    /// Exact top-k selection rate (irregular, data-dependent: the measured
    /// regime of `tf.nn.top_k` on V100).
    pub exact_select: f64,
    /// Stream-compaction rate (atomics + scattered writes).
    pub compact: f64,
    /// Kernel launch overhead per pass, seconds.
    pub launch: f64,
    /// Fixed dispatch overhead of one exact top-k call (the `tf.nn.top_k`
    /// op allocates temporaries and launches a multi-kernel selection even
    /// for small inputs, so its floor is far above a bare kernel launch).
    pub exact_overhead: f64,
}

impl Default for GpuRates {
    fn default() -> Self {
        Self {
            stream: 0.85 * 900e9 / 4.0, // ≈ 191 G elements/s
            // Calibrated so exact top-k over ResNet-50's 25M gradients
            // costs ~0.24 s, the overhead Fig. 1 reports for TopK-SGD.
            exact_select: 105e6,
            compact: 15e9,
            launch: 5e-6,
            exact_overhead: 150e-6,
        }
    }
}

/// Modelled time of one operator invocation, seconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpCost {
    /// Total modelled seconds.
    pub seconds: f64,
    /// Number of kernel passes charged.
    pub passes: usize,
}

/// Exact `nn.topk`-style selection over `d` elements.
pub fn exact_topk_cost(d: usize, rates: &GpuRates) -> OpCost {
    OpCost {
        seconds: rates.exact_overhead + d as f64 / rates.exact_select,
        passes: 1,
    }
}

/// DGC double-sampling selection over `d` elements with sampling ratio
/// `sample_ratio` and `k` selected elements.
///
/// Charged passes: exact top-k on the sample, a streaming threshold pass, a
/// compaction of the survivors, and an exact top-k trim over ~2k survivors.
pub fn dgc_cost(d: usize, k: usize, sample_ratio: f64, rates: &GpuRates) -> OpCost {
    let sample = ((d as f64 * sample_ratio) as usize).clamp((4 * k).min(d.max(1)), d.max(1));
    let t_sample_topk = exact_topk_cost(sample, rates).seconds;
    let t_threshold = rates.launch + d as f64 / rates.stream;
    let t_compact = rates.launch + d as f64 / rates.compact;
    let t_trim = exact_topk_cost(2 * k, rates).seconds;
    OpCost {
        seconds: t_sample_topk + t_threshold + t_compact + t_trim,
        passes: 4,
    }
}

/// MSTopK over `d` elements with `n_samplings` search iterations and `k`
/// selected elements.
///
/// Charged passes: one abs/mean/max pass, `n_samplings` counting passes, one
/// final index-materialisation pass — all coalesced — plus a small gather of
/// the `k` winners.
pub fn mstopk_cost(d: usize, k: usize, n_samplings: usize, rates: &GpuRates) -> OpCost {
    let passes = n_samplings + 2;
    let t_passes = passes as f64 * (rates.launch + d as f64 / rates.stream);
    let t_gather = rates.launch + k as f64 / rates.compact;
    OpCost {
        seconds: t_passes + t_gather,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SIZES: [usize; 4] = [256_000, 4_000_000, 32_000_000, 128_000_000];

    #[test]
    fn ordering_matches_fig6_at_every_size() {
        let r = GpuRates::default();
        for d in SIZES {
            let k = d / 1000;
            let exact = exact_topk_cost(d, &r).seconds;
            let dgc = dgc_cost(d, k, 0.01, &r).seconds;
            let ms = mstopk_cost(d, k, 30, &r).seconds;
            assert!(ms < dgc, "d={d}: mstopk {ms} !< dgc {dgc}");
            assert!(dgc < exact, "d={d}: dgc {dgc} !< exact {exact}");
        }
    }

    #[test]
    fn exact_topk_dominates_by_orders_of_magnitude_at_scale() {
        let r = GpuRates::default();
        let d = 128_000_000;
        let exact = exact_topk_cost(d, &r).seconds;
        let ms = mstopk_cost(d, d / 1000, 30, &r).seconds;
        assert!(exact / ms > 50.0, "ratio {}", exact / ms);
        // nn.topk at 128M is seconds (the paper's figure shows the same).
        assert!(exact > 1.0);
        // MSTopK stays tens of milliseconds — "negligible".
        assert!(ms < 0.1);
    }

    #[test]
    fn mstopk_cost_is_linear_in_passes() {
        let r = GpuRates::default();
        let a = mstopk_cost(1_000_000, 1_000, 10, &r);
        let b = mstopk_cost(1_000_000, 1_000, 20, &r);
        assert_eq!(a.passes, 12);
        assert_eq!(b.passes, 22);
        assert!(b.seconds > a.seconds);
    }

    #[test]
    fn dgc_cost_scales_with_sample_ratio() {
        let r = GpuRates::default();
        let lo = dgc_cost(100_000_000, 100_000, 0.001, &r).seconds;
        let hi = dgc_cost(100_000_000, 100_000, 0.1, &r).seconds;
        assert!(hi > lo);
    }
}
