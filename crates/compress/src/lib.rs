//! Gradient compression operators for communication-efficient distributed
//! training.
//!
//! This crate implements the sparsification layer of the paper:
//!
//! * [`mstopk`] — **MSTopK** (§3.1, Algorithm 1): the paper's approximate
//!   top-k operator. Instead of a data-dependent selection it runs `N`
//!   iterations of a binary threshold search over `[mean|x|, max|x|]`,
//!   counting (in a branch-free streaming pass) how many elements exceed the
//!   candidate threshold, and finally assembles *exactly* `k` elements from
//!   the two best bracketing thresholds.
//! * [`exact`] — exact top-k selection, both the naive full-sort variant
//!   (the `nn.topk` baseline of Fig. 6) and an expected-linear-time
//!   quickselect.
//! * [`dgc`] — the double-sampling top-k of Deep Gradient Compression
//!   (Lin et al., 2018), the paper's stronger baseline in Fig. 6.
//! * [`randomk`] — random-k sparsification, a common convergence baseline.
//! * [`error_feedback`] — residual accumulation (Stich et al., 2018), which
//!   both TopK-SGD and MSTopK-SGD require for convergence.
//! * [`quantize`] — the *other* compression family the paper's related
//!   work surveys: QSGD, TernGrad and scaled-sign quantizers.
//! * [`gpu_cost`] — an analytic V100 memory-pass cost model used to
//!   reproduce the *GPU* timing shape of Fig. 6 on non-GPU hardware.
//!
//! All operators implement the [`Compressor`] trait and produce a
//! [`SparseGrad`] of `(values, indices)` pairs — the wire format aggregated
//! by the hierarchical top-k communication in `cloudtrain-collectives`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod dgc;
pub mod error_feedback;
pub mod exact;
pub mod gpu_cost;
pub mod mstopk;
pub mod quantize;
pub mod randomk;
mod sparse;

pub use error_feedback::ErrorFeedback;
pub use mstopk::{MsTopK, MsTopKNaive};
pub use sparse::SparseGrad;

/// A top-k (or top-k-like) gradient compressor.
///
/// Implementations select `k` coordinates of the input and return them as a
/// [`SparseGrad`]. Exact operators return the `k` largest by magnitude;
/// approximate operators ([`MsTopK`], [`dgc::Dgc`]) trade exactness for
/// GPU-friendly access patterns, and [`randomk::RandomK`] ignores magnitudes
/// entirely.
pub trait Compressor {
    /// Selects `k` coordinates of `x`.
    ///
    /// Implementations must return exactly `min(k, x.len())` pairs with
    /// duplicate-free, in-bounds indices.
    fn compress(&mut self, x: &[f32], k: usize) -> SparseGrad;

    /// Short human-readable operator name (used in benchmark tables).
    fn name(&self) -> &'static str;
}

#[cfg(test)]
mod trait_tests {
    use super::*;
    use cloudtrain_tensor::init;

    #[test]
    fn all_compressors_return_exactly_k_unique_indices() {
        let mut rng = init::rng_from_seed(123);
        let x = init::gradient_like_tensor(10_000, &mut rng);
        let k = 100;
        let mut ops: Vec<Box<dyn Compressor>> = vec![
            Box::new(exact::SortTopK),
            Box::new(exact::QuickTopK),
            Box::new(MsTopK::new(30, 7)),
            Box::new(dgc::Dgc::new(0.01, 9)),
            Box::new(randomk::RandomK::new(5)),
        ];
        for op in &mut ops {
            let s = op.compress(x.as_slice(), k);
            assert_eq!(s.len(), k, "{} returned {} elements", op.name(), s.len());
            let mut idx = s.indices.clone();
            idx.sort_unstable();
            idx.dedup();
            assert_eq!(idx.len(), k, "{} returned duplicate indices", op.name());
            assert!(
                idx.iter().all(|&i| (i as usize) < x.len()),
                "{} returned out-of-bounds index",
                op.name()
            );
        }
    }

    #[test]
    fn compressors_clamp_k_to_input_length() {
        let x = [1.0f32, -2.0, 3.0];
        let mut ops: Vec<Box<dyn Compressor>> = vec![
            Box::new(exact::SortTopK),
            Box::new(exact::QuickTopK),
            Box::new(MsTopK::new(10, 7)),
            Box::new(dgc::Dgc::new(0.5, 9)),
            Box::new(randomk::RandomK::new(5)),
        ];
        for op in &mut ops {
            let s = op.compress(&x, 10);
            assert_eq!(s.len(), 3, "{}", op.name());
        }
    }
}
