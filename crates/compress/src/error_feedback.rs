//! Error-feedback (residual accumulation) for sparsified SGD.
//!
//! Top-k sparsification discards most gradient coordinates each step. The
//! standard fix — used by DGC (Lin et al., 2018) and analysed by Stich et
//! al. (2018) and Karimireddy et al. (2019) — is to keep the discarded part
//! as a local *residual* and add it back into the next step's gradient
//! before compressing. The paper inherits this mechanism from its TopK-SGD
//! baseline; without it sparsified training at ρ = 0.001 does not converge.
//!
//! Usage per iteration:
//! 1. [`ErrorFeedback::compensate`] — `g += residual` (in place),
//! 2. compress the compensated gradient,
//! 3. [`ErrorFeedback::absorb`] — store `g - transmitted` as the new
//!    residual.

use cloudtrain_tensor::ops;

use crate::SparseGrad;

/// Per-worker residual memory for error-compensated compression.
#[derive(Debug, Clone)]
pub struct ErrorFeedback {
    residual: Vec<f32>,
}

impl ErrorFeedback {
    /// Creates a zeroed residual for gradients of dimension `dim`.
    pub fn new(dim: usize) -> Self {
        Self {
            residual: vec![0.0; dim],
        }
    }

    /// Gradient dimension this memory was created for.
    pub fn dim(&self) -> usize {
        self.residual.len()
    }

    /// Adds the stored residual into `grad` (step 1 above).
    ///
    /// # Panics
    /// Panics if `grad.len() != self.dim()`.
    pub fn compensate(&self, grad: &mut [f32]) {
        assert_eq!(grad.len(), self.dim(), "compensate: dimension mismatch");
        ops::add_assign(grad, &self.residual);
    }

    /// Records the new residual: the compensated gradient minus what was
    /// actually transmitted (step 3 above).
    ///
    /// # Panics
    /// Panics if `grad.len() != self.dim()` or the selection's dimension
    /// differs.
    pub fn absorb(&mut self, grad: &[f32], transmitted: &SparseGrad) {
        assert_eq!(grad.len(), self.dim(), "absorb: dimension mismatch");
        assert_eq!(
            transmitted.dim,
            self.dim(),
            "absorb: selection dimension mismatch"
        );
        self.residual.copy_from_slice(grad);
        ops::zero_at(&mut self.residual, &transmitted.indices);
    }

    /// Records the residual for a **lossy** transmission:
    /// `grad - densify(transmitted)`.
    ///
    /// With an exact selection (`transmitted.values[j] == grad[indices[j]]`)
    /// this equals [`Self::absorb`]. When the transmitted values were
    /// quantized (or otherwise perturbed), the per-coordinate transmission
    /// error stays in the residual instead of being silently dropped — so
    /// the mass-conservation ledger (`Σ compensated = Σ aggregated +
    /// Σ residual`) holds exactly even for lossy wire formats.
    ///
    /// # Panics
    /// Panics if `grad.len() != self.dim()`, the selection's dimension
    /// differs, or a selection index is out of range.
    pub fn absorb_lossy(&mut self, grad: &[f32], transmitted: &SparseGrad) {
        assert_eq!(grad.len(), self.dim(), "absorb_lossy: dimension mismatch");
        assert_eq!(
            transmitted.dim,
            self.dim(),
            "absorb_lossy: selection dimension mismatch"
        );
        self.residual.copy_from_slice(grad);
        for (v, i) in transmitted.values.iter().zip(&transmitted.indices) {
            self.residual[*i as usize] -= v;
        }
    }

    /// Current residual L2 norm (a convergence diagnostic: bounded residual
    /// norm is the premise of the error-feedback convergence proofs).
    pub fn residual_norm(&self) -> f32 {
        ops::l2_norm(&self.residual)
    }

    /// Read-only view of the residual.
    pub fn residual(&self) -> &[f32] {
        &self.residual
    }

    /// Restores a previously captured residual (the inverse of
    /// [`Self::residual`]), so a worker resuming from a sharded checkpoint
    /// continues bitwise-identically instead of restarting error feedback
    /// from zeros.
    ///
    /// # Panics
    /// Panics if `residual.len() != self.dim()`.
    pub fn set_residual(&mut self, residual: &[f32]) {
        assert_eq!(
            residual.len(),
            self.dim(),
            "set_residual: dimension mismatch"
        );
        self.residual.copy_from_slice(residual);
    }

    /// Clears the residual (e.g. when switching to dense aggregation, as the
    /// DAWNBench schedule does after epoch 13).
    pub fn reset(&mut self) {
        ops::fill(&mut self.residual, 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::topk_sort;

    #[test]
    fn compensate_then_absorb_conserves_mass() {
        // transmitted + residual must equal the compensated gradient.
        let mut ef = ErrorFeedback::new(6);
        let mut g = vec![5.0, -0.1, 0.2, -4.0, 0.05, 3.0];
        ef.compensate(&mut g);
        let s = topk_sort(&g, 2);
        ef.absorb(&g, &s);
        let mut recon = s.densify();
        ops::add_assign(&mut recon, ef.residual());
        assert_eq!(recon, g);
    }

    #[test]
    fn residual_carries_into_next_step() {
        let mut ef = ErrorFeedback::new(4);
        // Step 1: only the large coordinate is sent; small ones accumulate.
        let mut g1 = vec![10.0, 1.0, 1.0, 1.0];
        ef.compensate(&mut g1);
        let s1 = topk_sort(&g1, 1);
        assert_eq!(s1.indices, vec![0]);
        ef.absorb(&g1, &s1);
        assert_eq!(ef.residual(), &[0.0, 1.0, 1.0, 1.0]);

        // Step 2: the same small gradient again — compensation doubles it.
        let mut g2 = vec![0.0, 1.0, 1.0, 1.0];
        ef.compensate(&mut g2);
        assert_eq!(g2, vec![0.0, 2.0, 2.0, 2.0]);
    }

    #[test]
    fn eventually_every_coordinate_is_transmitted() {
        // With constant gradients and error feedback, even coordinates
        // outside the top-k must eventually be sent (their residual grows).
        let mut ef = ErrorFeedback::new(3);
        let base = vec![3.0, 2.0, 1.0];
        let mut sent = [false; 3];
        for _ in 0..10 {
            let mut g = base.clone();
            ef.compensate(&mut g);
            let s = topk_sort(&g, 1);
            sent[s.indices[0] as usize] = true;
            ef.absorb(&g, &s);
        }
        assert_eq!(sent, [true, true, true]);
    }

    #[test]
    fn reset_clears_residual() {
        let mut ef = ErrorFeedback::new(2);
        let mut g = vec![1.0, 2.0];
        ef.compensate(&mut g);
        ef.absorb(&g, &topk_sort(&g, 1));
        assert!(ef.residual_norm() > 0.0);
        ef.reset();
        assert_eq!(ef.residual_norm(), 0.0);
    }

    #[test]
    fn set_residual_roundtrips_and_resumes_bitwise() {
        // Capture mid-stream residual, rebuild a fresh ErrorFeedback from
        // it, and check both instances stay bitwise-equal from then on —
        // the checkpoint-resume contract.
        let mut ef = ErrorFeedback::new(4);
        let mut g = vec![10.0, 1.0, -2.0, 1.0];
        ef.compensate(&mut g);
        ef.absorb(&g, &topk_sort(&g, 1));
        let captured: Vec<f32> = ef.residual().to_vec();

        let mut resumed = ErrorFeedback::new(4);
        resumed.set_residual(&captured);
        assert_eq!(resumed.residual(), ef.residual());

        let base = vec![0.5, -1.0, 2.0, 0.25];
        for e in [&mut ef, &mut resumed] {
            let mut g = base.clone();
            e.compensate(&mut g);
            let s = topk_sort(&g, 2);
            e.absorb(&g, &s);
        }
        assert_eq!(resumed.residual(), ef.residual());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn set_residual_dimension_mismatch_panics() {
        let mut ef = ErrorFeedback::new(3);
        ef.set_residual(&[0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dimension_mismatch_panics() {
        let ef = ErrorFeedback::new(3);
        let mut g = vec![0.0; 4];
        ef.compensate(&mut g);
    }

    /// The error-feedback cycle rides entirely on the tensor lane kernels
    /// (`add_assign`, `zero_at`); whatever tier combination is active, a
    /// multi-round compensate→compress→absorb cycle must be bitwise
    /// identical to a hand-rolled scalar-tier reference.
    #[test]
    fn cycle_matches_scalar_reference_bitwise() {
        use cloudtrain_tensor::ops::scalar;

        let d = 4 * cloudtrain_tensor::ops::LANES + 5;
        let mut ef = ErrorFeedback::new(d);
        let mut ref_residual = vec![0.0f32; d];
        for round in 0..4u32 {
            let base: Vec<f32> = (0..d)
                .map(|i| {
                    let h = (i as u32).wrapping_mul(2654435761).wrapping_add(round);
                    ((h % 2001) as f32 - 1000.0) * 1e-3
                })
                .collect();

            let mut g = base.clone();
            ef.compensate(&mut g);
            let s = topk_sort(&g, d / 3);
            ef.absorb(&g, &s);

            let mut g_ref = base;
            scalar::add_assign(&mut g_ref, &ref_residual);
            assert_eq!(g, g_ref, "compensated gradients diverged");
            ref_residual.copy_from_slice(&g_ref);
            scalar::zero_at(&mut ref_residual, &s.indices);
            assert_eq!(ef.residual(), &ref_residual[..], "residuals diverged");
        }
    }
}
