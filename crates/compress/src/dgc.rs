//! Double-sampling top-k from Deep Gradient Compression (Lin et al., 2018),
//! the paper's stronger baseline in Fig. 6.
//!
//! DGC avoids an exact top-k over the full vector by:
//!
//! 1. uniformly sampling a fraction of the input,
//! 2. running an exact top-k on the *sample* to estimate the magnitude
//!    threshold of the true top-k,
//! 3. selecting all elements above the estimated threshold, and
//! 4. running a second exact top-k over the (small) selected set to trim the
//!    result to exactly `k`.
//!
//! It is faster than a full-vector top-k but — unlike MSTopK — still needs
//! two exact selections with irregular access, which is why it sits between
//! `nn.topk` and MSTopK in Fig. 6.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::exact::topk_quickselect;
use crate::{Compressor, SparseGrad};

/// The DGC double-sampling top-k operator.
#[derive(Debug)]
pub struct Dgc {
    /// Fraction of the input sampled for threshold estimation (DGC uses
    /// 0.1%–1%).
    pub sample_ratio: f64,
    rng: StdRng,
}

impl Dgc {
    /// Creates an operator sampling `sample_ratio` of the input.
    ///
    /// # Panics
    /// Panics unless `0 < sample_ratio <= 1`.
    pub fn new(sample_ratio: f64, seed: u64) -> Self {
        assert!(
            sample_ratio > 0.0 && sample_ratio <= 1.0,
            "Dgc: sample_ratio must be in (0, 1]"
        );
        Self {
            sample_ratio,
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Compressor for Dgc {
    fn compress(&mut self, x: &[f32], k: usize) -> SparseGrad {
        let d = x.len();
        let k = k.min(d);
        if k == 0 || d == 0 {
            return SparseGrad::empty(d);
        }

        // Step 1: uniform sample (with replacement — cheap and unbiased for
        // threshold estimation). Sample at least 4k magnitudes so the
        // estimated quantile has usable resolution at small k.
        let sample_len = ((d as f64 * self.sample_ratio) as usize).clamp((4 * k).min(d), d);
        let mut sample: Vec<f32> = Vec::with_capacity(sample_len);
        for _ in 0..sample_len {
            let i = self.rng.random_range(0..d);
            sample.push(x[i].abs());
        }

        // Step 2: exact top-k on the sample estimates the threshold of the
        // true top-k: keep the same *proportion* of the sample as k is of d.
        let sample_k = ((k as f64 / d as f64) * sample_len as f64).ceil() as usize;
        let sample_k = sample_k.clamp(1, sample_len);
        let top_sample = topk_quickselect(&sample, sample_k);
        let mut thres = top_sample
            .values
            .iter()
            .fold(f32::INFINITY, |m, v| m.min(v.abs()));

        // Step 3: threshold selection over the full vector. If sampling
        // over-estimated the threshold and fewer than k elements survive,
        // relax it geometrically (DGC's hierarchical re-selection).
        let mut selected: Vec<u32> = Vec::new();
        for _ in 0..64 {
            selected = cloudtrain_tensor::ops::indices_ge(x, thres);
            if selected.len() >= k {
                break;
            }
            thres *= 0.5;
            if thres == 0.0 || !thres.is_finite() {
                selected = (0..d as u32).collect();
                break;
            }
        }
        if selected.len() < k {
            selected = (0..d as u32).collect();
        }

        // Step 4: exact top-k over the selected subset trims to exactly k.
        let sub_vals: Vec<f32> = selected.iter().map(|&i| x[i as usize]).collect();
        let trimmed = topk_quickselect(&sub_vals, k);
        let mut indices: Vec<u32> = trimmed
            .indices
            .iter()
            .map(|&j| selected[j as usize])
            .collect();
        indices.sort_unstable();
        let values = indices.iter().map(|&i| x[i as usize]).collect();
        SparseGrad::new(values, indices, d)
    }

    fn name(&self) -> &'static str {
        "DGC(double-sampling)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::topk_sort;
    use cloudtrain_tensor::init;

    fn grad(seed: u64, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(seed);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    #[test]
    fn returns_exactly_k() {
        let x = grad(21, 50_000);
        let mut op = Dgc::new(0.01, 1);
        for k in [1usize, 10, 100, 1_000] {
            assert_eq!(op.compress(&x, k).len(), k);
        }
    }

    #[test]
    fn captures_most_of_exact_mass() {
        let x = grad(22, 100_000);
        let k = 1_000;
        let exact = topk_sort(&x, k);
        let approx = Dgc::new(0.01, 2).compress(&x, k);
        assert!(approx.abs_mass() >= 0.9 * exact.abs_mass());
    }

    #[test]
    fn uniform_input_still_returns_k() {
        let x = vec![1.0f32; 10_000];
        let s = Dgc::new(0.01, 3).compress(&x, 50);
        assert_eq!(s.len(), 50);
    }

    #[test]
    fn values_match_indices() {
        let x = grad(23, 10_000);
        let s = Dgc::new(0.05, 4).compress(&x, 200);
        for (v, &i) in s.values.iter().zip(&s.indices) {
            assert_eq!(*v, x[i as usize]);
        }
    }

    #[test]
    #[should_panic(expected = "sample_ratio")]
    fn invalid_ratio_panics() {
        Dgc::new(0.0, 1);
    }
}
