//! Random-k sparsification: selects `k` coordinates uniformly at random,
//! ignoring magnitudes.
//!
//! Not used by the paper's system, but it is the standard convergence
//! control for sparsified SGD experiments — it isolates how much of top-k's
//! benefit comes from *magnitude-aware* selection versus mere traffic
//! reduction — and the ablation benches use it for exactly that.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

use crate::{Compressor, SparseGrad};

/// Uniform random-k selection with a seeded RNG.
#[derive(Debug)]
pub struct RandomK {
    rng: StdRng,
}

impl RandomK {
    /// Creates a random-k compressor with the given seed.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: StdRng::seed_from_u64(seed),
        }
    }
}

impl Compressor for RandomK {
    fn compress(&mut self, x: &[f32], k: usize) -> SparseGrad {
        let d = x.len();
        let k = k.min(d);
        if k == 0 {
            return SparseGrad::empty(d);
        }
        // Floyd's algorithm: k distinct indices in O(k) expected draws.
        let mut chosen = std::collections::HashSet::with_capacity(k);
        for j in (d - k)..d {
            let t = self.rng.random_range(0..=j);
            if !chosen.insert(t as u32) {
                chosen.insert(j as u32);
            }
        }
        // lint:allow(unordered_iter, reason = "hasher order is washed out by the sort_unstable on the next line before anything observes it")
        let mut indices: Vec<u32> = chosen.into_iter().collect();
        indices.sort_unstable();
        let values = indices.iter().map(|&i| x[i as usize]).collect();
        SparseGrad::new(values, indices, d)
    }

    fn name(&self) -> &'static str {
        "RandomK"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn returns_k_distinct_indices() {
        let x: Vec<f32> = (0..1000).map(|i| i as f32).collect();
        let mut op = RandomK::new(42);
        for k in [0usize, 1, 10, 500, 1000] {
            let s = op.compress(&x, k);
            assert_eq!(s.len(), k);
            let mut idx = s.indices.clone();
            idx.dedup();
            assert_eq!(idx.len(), k);
        }
    }

    #[test]
    fn selection_is_roughly_uniform() {
        let x = vec![1.0f32; 100];
        let mut op = RandomK::new(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..2000 {
            for &i in &op.compress(&x, 10).indices {
                counts[i as usize] += 1;
            }
        }
        // Expected 200 hits per coordinate; allow generous slack.
        assert!(counts.iter().all(|&c| c > 100 && c < 320), "{counts:?}");
    }

    #[test]
    fn k_ge_d_selects_everything() {
        let x = [5.0f32, 6.0, 7.0];
        let s = RandomK::new(1).compress(&x, 99);
        assert_eq!(s.indices, vec![0, 1, 2]);
        assert_eq!(s.values, vec![5.0, 6.0, 7.0]);
    }
}
