//! LARS: layer-wise adaptive rate scaling (You et al., 2018).
//!
//! Large-batch SGD destabilises when a single global learning rate meets
//! layers whose weight/gradient norm ratios differ by orders of magnitude.
//! LARS computes a per-layer trust ratio (Eq. 11 of the paper):
//!
//! ```text
//! λ^(l) = γ · η_t · ‖w^(l)‖ / (‖g^(l)‖ + ε‖w^(l)‖)
//! ```
//!
//! The rate computation ([`compute_rates`]) is deliberately separate from
//! the update ([`apply_with_rates`]): the paper's PTO (§4.2) distributes
//! exactly this computation — each GPU computes the rates of a slice of
//! layers and an AllGather shares the resulting scalars.

use cloudtrain_dnn::model::ParamRange;
use cloudtrain_tensor::ops;

use crate::Optimizer;

/// LARS hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LarsConfig {
    /// Trust coefficient `γ` (You et al. use 0.001–0.01; we default 0.01).
    pub trust_coef: f32,
    /// Weight decay `ε` in Eq. 11 (also applied to the update).
    pub weight_decay: f32,
    /// Momentum coefficient.
    pub momentum: f32,
}

impl Default for LarsConfig {
    fn default() -> Self {
        Self {
            trust_coef: 0.01,
            weight_decay: 1e-4,
            momentum: 0.9,
        }
    }
}

/// Computes the per-layer LARS local rates `λ^(l) / η_t` (i.e. Eq. 11
/// without the global learning rate, which [`apply_with_rates`] multiplies
/// back in). Layers with zero weight or gradient norm get rate 1 (fall back
/// to plain SGD — the standard guard for bias/BN tensors at init).
pub fn compute_rates(
    params: &[f32],
    grads: &[f32],
    ranges: &[ParamRange],
    cfg: &LarsConfig,
) -> Vec<f32> {
    ranges
        .iter()
        .map(|r| rate_for_layer(params, grads, r, cfg))
        .collect()
}

/// Rate of a single layer — the unit PTO distributes across GPUs.
pub fn rate_for_layer(params: &[f32], grads: &[f32], range: &ParamRange, cfg: &LarsConfig) -> f32 {
    let w = &params[range.offset..range.offset + range.len];
    let g = &grads[range.offset..range.offset + range.len];
    let wn = ops::l2_norm(w);
    let gn = ops::l2_norm(g);
    if wn == 0.0 || gn == 0.0 {
        return 1.0;
    }
    cfg.trust_coef * wn / (gn + cfg.weight_decay * wn)
}

/// Applies one LARS + momentum update given precomputed per-layer rates.
///
/// # Panics
/// Panics if lengths are inconsistent.
pub fn apply_with_rates(
    params: &mut [f32],
    grads: &[f32],
    velocity: &mut [f32],
    ranges: &[ParamRange],
    rates: &[f32],
    lr: f32,
    cfg: &LarsConfig,
) {
    assert_eq!(
        params.len(),
        grads.len(),
        "apply_with_rates: length mismatch"
    );
    assert_eq!(
        params.len(),
        velocity.len(),
        "apply_with_rates: velocity mismatch"
    );
    assert_eq!(
        ranges.len(),
        rates.len(),
        "apply_with_rates: rates mismatch"
    );
    for (range, &rate) in ranges.iter().zip(rates) {
        let local_lr = lr * rate;
        for i in range.offset..range.offset + range.len {
            let update = grads[i] + cfg.weight_decay * params[i];
            velocity[i] = cfg.momentum * velocity[i] + local_lr * update;
            params[i] -= velocity[i];
        }
    }
}

/// The LARS optimizer (rates + momentum update fused, single worker).
#[derive(Debug, Clone)]
pub struct Lars {
    velocity: Vec<f32>,
    ranges: Vec<ParamRange>,
    /// Hyperparameters.
    pub cfg: LarsConfig,
}

impl Lars {
    /// Creates LARS for a model with the given parameter layout.
    pub fn new(dim: usize, ranges: Vec<ParamRange>, cfg: LarsConfig) -> Self {
        assert_eq!(
            ranges.iter().map(|r| r.len).sum::<usize>(),
            dim,
            "Lars: ranges must tile the parameter vector"
        );
        Self {
            velocity: vec![0.0; dim],
            ranges,
            cfg,
        }
    }

    /// The layer layout this optimizer was built with.
    pub fn ranges(&self) -> &[ParamRange] {
        &self.ranges
    }
}

impl Optimizer for Lars {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        let rates = compute_rates(params, grads, &self.ranges, &self.cfg);
        apply_with_rates(
            params,
            grads,
            &mut self.velocity,
            &self.ranges,
            &rates,
            lr,
            &self.cfg,
        );
    }

    fn name(&self) -> &'static str {
        "lars"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges2() -> Vec<ParamRange> {
        vec![
            ParamRange { offset: 0, len: 2 },
            ParamRange { offset: 2, len: 2 },
        ]
    }

    #[test]
    fn rates_follow_eq11() {
        let params = [3.0, 4.0, 0.3, 0.4]; // norms 5 and 0.5
        let grads = [1.0, 0.0, 1.0, 0.0]; // norms 1 and 1
        let cfg = LarsConfig {
            trust_coef: 0.01,
            weight_decay: 0.0,
            momentum: 0.9,
        };
        let rates = compute_rates(&params, &grads, &ranges2(), &cfg);
        assert!((rates[0] - 0.05).abs() < 1e-6);
        assert!((rates[1] - 0.005).abs() < 1e-6);
    }

    #[test]
    fn zero_norm_layers_fall_back_to_unit_rate() {
        let params = [0.0, 0.0, 1.0, 0.0];
        let grads = [1.0, 1.0, 0.0, 0.0];
        let rates = compute_rates(&params, &grads, &ranges2(), &LarsConfig::default());
        assert_eq!(rates[0], 1.0); // zero weights
        assert_eq!(rates[1], 1.0); // zero grads
    }

    #[test]
    fn lars_equalises_update_magnitude_across_scales() {
        // Two layers whose weights differ by 100x but gradients are equal:
        // LARS scales the update proportionally to the weight norm.
        let mut params = vec![100.0, 0.0, 1.0, 0.0];
        let grads = vec![1.0, 0.0, 1.0, 0.0];
        let cfg = LarsConfig {
            trust_coef: 0.01,
            weight_decay: 0.0,
            momentum: 0.0,
        };
        let mut opt = Lars::new(4, ranges2(), cfg);
        let before = params.clone();
        opt.step(&mut params, &grads, 1.0);
        let d0 = (params[0] - before[0]).abs();
        let d1 = (params[2] - before[2]).abs();
        assert!((d0 / d1 - 100.0).abs() < 1.0, "d0/d1 = {}", d0 / d1);
    }

    #[test]
    fn fused_step_matches_split_rates_plus_apply() {
        let ranges = ranges2();
        let cfg = LarsConfig::default();
        let grads = vec![0.1, -0.2, 0.3, 0.05];
        let mut p1 = vec![1.0, 2.0, -0.5, 0.8];
        let mut p2 = p1.clone();

        let mut fused = Lars::new(4, ranges.clone(), cfg);
        fused.step(&mut p1, &grads, 0.1);

        let mut vel = vec![0.0; 4];
        let rates = compute_rates(&p2, &grads, &ranges, &cfg);
        apply_with_rates(&mut p2, &grads, &mut vel, &ranges, &rates, 0.1, &cfg);
        assert_eq!(p1, p2);
    }

    #[test]
    #[should_panic(expected = "tile")]
    fn bad_ranges_panic() {
        Lars::new(5, ranges2(), LarsConfig::default());
    }
}
