//! Plain SGD and SGD with momentum.

use crate::Optimizer;

/// Vanilla SGD with optional decoupled weight decay:
/// `w -= lr * (g + wd * w)`.
#[derive(Debug, Clone)]
pub struct Sgd {
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
}

impl Sgd {
    /// Creates plain SGD with the given weight decay.
    pub fn new(weight_decay: f32) -> Self {
        Self { weight_decay }
    }
}

impl Optimizer for Sgd {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "Sgd: length mismatch");
        for (w, g) in params.iter_mut().zip(grads) {
            *w -= lr * (g + self.weight_decay * *w);
        }
    }

    fn name(&self) -> &'static str {
        "sgd"
    }
}

/// SGD with (heavy-ball) momentum:
/// `v = m*v + g + wd*w; w -= lr * v`.
#[derive(Debug, Clone)]
pub struct Momentum {
    velocity: Vec<f32>,
    /// Momentum coefficient (e.g. 0.9).
    pub momentum: f32,
    /// L2 weight-decay coefficient.
    pub weight_decay: f32,
}

impl Momentum {
    /// Creates momentum SGD for a `dim`-parameter model.
    pub fn new(dim: usize, momentum: f32, weight_decay: f32) -> Self {
        Self {
            velocity: vec![0.0; dim],
            momentum,
            weight_decay,
        }
    }
}

impl Optimizer for Momentum {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "Momentum: length mismatch");
        assert_eq!(
            params.len(),
            self.velocity.len(),
            "Momentum: wrong model size"
        );
        for ((w, g), v) in params.iter_mut().zip(grads).zip(&mut self.velocity) {
            *v = self.momentum * *v + g + self.weight_decay * *w;
            *w -= lr * *v;
        }
    }

    fn name(&self) -> &'static str {
        "sgd-momentum"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sgd_moves_against_gradient() {
        let mut opt = Sgd::new(0.0);
        let mut w = vec![1.0, -1.0];
        opt.step(&mut w, &[0.5, -0.5], 0.1);
        assert_eq!(w, vec![0.95, -0.95]);
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut opt = Sgd::new(0.1);
        let mut w = vec![1.0];
        opt.step(&mut w, &[0.0], 0.5);
        assert!((w[0] - 0.95).abs() < 1e-6);
    }

    #[test]
    fn momentum_accumulates_velocity() {
        let mut opt = Momentum::new(1, 0.9, 0.0);
        let mut w = vec![0.0];
        opt.step(&mut w, &[1.0], 0.1);
        assert!((w[0] + 0.1).abs() < 1e-6); // v = 1
        opt.step(&mut w, &[1.0], 0.1);
        assert!((w[0] + 0.1 + 0.19).abs() < 1e-6); // v = 1.9
    }

    #[test]
    fn momentum_converges_on_quadratic() {
        // Minimise f(w) = (w - 3)^2 / 2; gradient = w - 3.
        let mut opt = Momentum::new(1, 0.9, 0.0);
        let mut w = vec![0.0f32];
        for _ in 0..200 {
            let g = w[0] - 3.0;
            opt.step(&mut w, &[g], 0.05);
        }
        assert!((w[0] - 3.0).abs() < 1e-2, "w = {}", w[0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn length_mismatch_panics() {
        Sgd::new(0.0).step(&mut [0.0], &[1.0, 2.0], 0.1);
    }
}
