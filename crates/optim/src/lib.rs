//! Optimizers and learning-rate schedules for large-batch training.
//!
//! The paper's training recipe is synchronous SGD with momentum plus
//! **LARS** (You et al., 2018) for large-batch stability — LARS's
//! layer-wise learning-rate computation (Eq. 11) is also the workload the
//! parallel tensor operator (§4.2) distributes. LAMB (You et al., 2020) is
//! included as the paper mentions handling it with PTO "would be similar".
//!
//! * [`sgd`] — plain SGD and SGD with momentum (+ weight decay),
//! * [`lars`] — LARS with the Eq. 11 rate computation factored out so PTO
//!   can partition it over workers,
//! * [`adam`] — plain Adam (the adaptive baseline LAMB extends),
//! * [`lamb`] — LAMB (Adam + layer-wise trust ratio),
//! * [`schedule`] — warmup + step/cosine decay and the DAWNBench-style
//!   piecewise schedule,
//! * [`clip`] — global-norm gradient clipping (used by the Transformer),
//! * [`mixed`] — mixed-precision support: dynamic loss scaling and the
//!   FP16 gradient wire format (§5.5.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adam;
pub mod clip;
pub mod lamb;
pub mod lars;
pub mod mixed;
pub mod schedule;
pub mod sgd;

pub use lars::{Lars, LarsConfig};
pub use schedule::LrSchedule;
pub use sgd::{Momentum, Sgd};

/// An optimizer stepping a flat parameter vector.
pub trait Optimizer: Send {
    /// Applies one update: `params` are modified in place from `grads`
    /// (already aggregated across workers) at learning rate `lr`.
    ///
    /// # Panics
    /// Implementations panic if `params` and `grads` lengths differ or do
    /// not match the state the optimizer was built for.
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32);

    /// Optimizer name for logs and tables.
    fn name(&self) -> &'static str;
}
