//! Mixed-precision training support (§5.5.2: "we enable the
//! mixed-precision training technique so that the tensor cores of V100
//! GPUs can be used").
//!
//! Two pieces matter to the *training dynamics* (the tensor-core speedup
//! itself lives in the compute profiles):
//!
//! * [`LossScaler`] — dynamic loss scaling: gradients are computed on a
//!   scaled loss so FP16 underflow is avoided, unscaled before the update,
//!   and the scale backs off on overflow and creeps back up after a
//!   streak of clean steps;
//! * [`fp16_wire`] — the FP16 gradient wire format: a bit-accurate
//!   round-trip through binary16, the precision actually transmitted by
//!   CommLib's dense path (Fig. 7).

use cloudtrain_tensor::half::roundtrip_f16;

/// Dynamic loss scaler with the standard grow/backoff policy.
#[derive(Debug, Clone)]
pub struct LossScaler {
    scale: f32,
    growth_factor: f32,
    backoff_factor: f32,
    growth_interval: u32,
    good_steps: u32,
}

impl Default for LossScaler {
    fn default() -> Self {
        Self::new(65536.0)
    }
}

impl LossScaler {
    /// Creates a scaler with the given initial scale (PyTorch-style
    /// defaults: grow 2× every 2000 clean steps, halve on overflow).
    pub fn new(initial_scale: f32) -> Self {
        Self {
            scale: initial_scale,
            growth_factor: 2.0,
            backoff_factor: 0.5,
            growth_interval: 2000,
            good_steps: 0,
        }
    }

    /// Current loss scale.
    pub fn scale(&self) -> f32 {
        self.scale
    }

    /// Scales a loss gradient in place (apply before backprop — or to the
    /// logits gradient, which is equivalent by linearity).
    pub fn scale_grad(&self, grad: &mut [f32]) {
        for g in grad.iter_mut() {
            *g *= self.scale;
        }
    }

    /// Checks the (scaled) gradients for overflow, unscales them in place,
    /// and updates the scale policy. Returns `true` if the step is usable;
    /// on `false` the gradients were non-finite and the step must be
    /// skipped (they are zeroed so a careless caller cannot apply them).
    pub fn unscale_and_update(&mut self, grads: &mut [f32]) -> bool {
        let overflow = grads.iter().any(|g| !g.is_finite());
        if overflow {
            grads.iter_mut().for_each(|g| *g = 0.0);
            self.scale *= self.backoff_factor;
            self.scale = self.scale.max(1.0);
            self.good_steps = 0;
            return false;
        }
        let inv = 1.0 / self.scale;
        grads.iter_mut().for_each(|g| *g *= inv);
        self.good_steps += 1;
        if self.good_steps >= self.growth_interval {
            self.scale *= self.growth_factor;
            self.good_steps = 0;
        }
        true
    }
}

/// Applies the FP16 wire format in place: exactly what the values lose on
/// CommLib's dense FP16 path.
pub fn fp16_wire(grads: &mut [f32]) {
    roundtrip_f16(grads);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_then_unscale_is_identity_without_overflow() {
        let mut s = LossScaler::new(1024.0);
        let mut g = vec![1e-5f32, -2e-3, 0.5];
        let orig = g.clone();
        s.scale_grad(&mut g);
        assert_eq!(g[0], 1e-5 * 1024.0);
        assert!(s.unscale_and_update(&mut g));
        for (a, b) in g.iter().zip(&orig) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn overflow_skips_step_and_backs_off() {
        let mut s = LossScaler::new(1024.0);
        let mut g = vec![1.0, f32::INFINITY];
        assert!(!s.unscale_and_update(&mut g));
        assert_eq!(g, vec![0.0, 0.0]);
        assert_eq!(s.scale(), 512.0);
        // NaN too.
        let mut g = vec![f32::NAN];
        assert!(!s.unscale_and_update(&mut g));
        assert_eq!(s.scale(), 256.0);
    }

    #[test]
    fn scale_grows_after_clean_streak() {
        let mut s = LossScaler::new(2.0);
        s.growth_interval = 3;
        for _ in 0..3 {
            let mut g = vec![0.1f32];
            assert!(s.unscale_and_update(&mut g));
        }
        assert_eq!(s.scale(), 4.0);
    }

    #[test]
    fn scale_never_drops_below_one() {
        let mut s = LossScaler::new(2.0);
        for _ in 0..10 {
            let mut g = vec![f32::INFINITY];
            s.unscale_and_update(&mut g);
        }
        assert_eq!(s.scale(), 1.0);
    }

    #[test]
    fn scaling_rescues_tiny_gradients_from_fp16_underflow() {
        // 1e-6 underflows FP16's subnormal floor (2^-24 ≈ 6e-8 is fine,
        // but quantization error is severe); scaled by 65536 it survives
        // the wire faithfully.
        let tiny = 1e-6f32;
        let mut unscaled = vec![tiny];
        fp16_wire(&mut unscaled);
        let raw_err = (unscaled[0] - tiny).abs() / tiny;

        let mut s = LossScaler::new(65536.0);
        let mut scaled = vec![tiny];
        s.scale_grad(&mut scaled);
        fp16_wire(&mut scaled);
        assert!(s.unscale_and_update(&mut scaled));
        let scaled_err = (scaled[0] - tiny).abs() / tiny;
        assert!(
            scaled_err < raw_err,
            "scaling should reduce wire error: {scaled_err} vs {raw_err}"
        );
        assert!(scaled_err < 1e-3);
    }
}
