//! Adam (Kingma & Ba) — the per-coordinate adaptive baseline LAMB builds
//! on; included so the optimizer ablations can separate "adaptive moments"
//! from "layer-wise trust ratio".

use crate::Optimizer;

/// Adam hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct AdamConfig {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay (AdamW-style).
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// The Adam optimizer over a flat parameter vector.
#[derive(Debug, Clone)]
pub struct Adam {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    /// Hyperparameters.
    pub cfg: AdamConfig,
}

impl Adam {
    /// Creates Adam state for a `dim`-parameter model.
    pub fn new(dim: usize, cfg: AdamConfig) -> Self {
        Self {
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
            cfg,
        }
    }
}

impl Optimizer for Adam {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "Adam: length mismatch");
        assert_eq!(params.len(), self.m.len(), "Adam: wrong model size");
        self.t += 1;
        let b1c = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.cfg.beta1 * self.m[i] + (1.0 - self.cfg.beta1) * grads[i];
            self.v[i] = self.cfg.beta2 * self.v[i] + (1.0 - self.cfg.beta2) * grads[i] * grads[i];
            let mh = self.m[i] / b1c;
            let vh = self.v[i] / b2c;
            params[i] -= lr * (mh / (vh.sqrt() + self.cfg.eps) + self.cfg.weight_decay * params[i]);
        }
    }

    fn name(&self) -> &'static str {
        "adam"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        let mut opt = Adam::new(1, AdamConfig::default());
        let mut w = vec![10.0f32];
        for _ in 0..800 {
            let g = w[0] - 3.0;
            opt.step(&mut w, &[g], 0.05);
        }
        assert!((w[0] - 3.0).abs() < 0.05, "w = {}", w[0]);
    }

    #[test]
    fn first_step_has_unit_scale() {
        // Bias correction makes the first update ≈ lr * sign(g).
        let mut opt = Adam::new(2, AdamConfig::default());
        let mut w = vec![0.0f32, 0.0];
        opt.step(&mut w, &[0.5, -2.0], 0.1);
        assert!((w[0] + 0.1).abs() < 1e-3, "w0 {}", w[0]);
        assert!((w[1] - 0.1).abs() < 1e-3, "w1 {}", w[1]);
    }

    #[test]
    fn adapts_per_coordinate() {
        // A coordinate with a consistently larger gradient does not get a
        // proportionally larger step — Adam normalises per coordinate.
        let mut opt = Adam::new(2, AdamConfig::default());
        let mut w = vec![0.0f32, 0.0];
        for _ in 0..50 {
            opt.step(&mut w, &[100.0, 1.0], 0.01);
        }
        let ratio = w[0] / w[1];
        assert!(
            ratio.abs() < 1.5,
            "steps should be comparable: ratio {ratio}"
        );
    }

    #[test]
    fn weight_decay_shrinks_without_gradient() {
        let cfg = AdamConfig {
            weight_decay: 0.1,
            ..AdamConfig::default()
        };
        let mut opt = Adam::new(1, cfg);
        let mut w = vec![1.0f32];
        opt.step(&mut w, &[0.0], 0.1);
        assert!(w[0] < 1.0);
    }
}
