//! Global-norm gradient clipping (standard for Transformer training).

use cloudtrain_tensor::ops;

/// Scales `grads` in place so its global L2 norm is at most `max_norm`.
/// Returns the pre-clip norm.
///
/// # Panics
/// Panics if `max_norm` is not positive.
pub fn clip_global_norm(grads: &mut [f32], max_norm: f32) -> f32 {
    assert!(
        max_norm > 0.0,
        "clip_global_norm: max_norm must be positive"
    );
    let norm = ops::l2_norm(grads);
    if norm > max_norm {
        ops::scale(grads, max_norm / norm);
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn large_gradients_are_scaled_to_the_bound() {
        let mut g = vec![3.0, 4.0]; // norm 5
        let pre = clip_global_norm(&mut g, 1.0);
        assert_eq!(pre, 5.0);
        assert!((ops::l2_norm(&g) - 1.0).abs() < 1e-6);
        // Direction preserved.
        assert!((g[0] / g[1] - 0.75).abs() < 1e-6);
    }

    #[test]
    fn small_gradients_are_untouched() {
        let mut g = vec![0.3, 0.4];
        clip_global_norm(&mut g, 1.0);
        assert_eq!(g, vec![0.3, 0.4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bound_panics() {
        clip_global_norm(&mut [1.0], 0.0);
    }
}
