//! Learning-rate schedules: warmup (essential for large-batch ImageNet
//! training — Goyal et al. 2017, cited by the paper) plus step and cosine
//! decay, and a piecewise schedule for the DAWNBench multi-resolution
//! recipe.

/// A learning-rate schedule over global steps.
pub trait LrSchedule: Send {
    /// Learning rate at (0-indexed) step `step`.
    fn lr(&self, step: u64) -> f32;
}

/// Linear warmup from `base/warmup` to `base`, then constant.
#[derive(Debug, Clone, Copy)]
pub struct Warmup {
    /// Peak learning rate.
    pub base: f32,
    /// Number of warmup steps.
    pub warmup_steps: u64,
}

impl LrSchedule for Warmup {
    fn lr(&self, step: u64) -> f32 {
        if step < self.warmup_steps {
            self.base * (step + 1) as f32 / self.warmup_steps as f32
        } else {
            self.base
        }
    }
}

/// Linear warmup then cosine decay to `final_lr` over `total_steps`.
///
/// # Examples
/// ```
/// use cloudtrain_optim::schedule::{LrSchedule, WarmupCosine};
///
/// let s = WarmupCosine { base: 1.0, warmup_steps: 10, total_steps: 100, final_lr: 0.0 };
/// assert!(s.lr(0) < s.lr(9));         // ramping up
/// assert_eq!(s.lr(10), 1.0);          // peak
/// assert!(s.lr(50) < 1.0);            // decaying
/// assert!(s.lr(100) < 1e-6);          // done
/// ```
#[derive(Debug, Clone, Copy)]
pub struct WarmupCosine {
    /// Peak learning rate.
    pub base: f32,
    /// Number of warmup steps.
    pub warmup_steps: u64,
    /// Total steps (decay finishes here).
    pub total_steps: u64,
    /// Final learning rate.
    pub final_lr: f32,
}

impl LrSchedule for WarmupCosine {
    fn lr(&self, step: u64) -> f32 {
        if step < self.warmup_steps {
            return self.base * (step + 1) as f32 / self.warmup_steps as f32;
        }
        let span = self.total_steps.saturating_sub(self.warmup_steps).max(1);
        let progress = ((step - self.warmup_steps) as f32 / span as f32).min(1.0);
        let cos = 0.5 * (1.0 + (std::f32::consts::PI * progress).cos());
        self.final_lr + (self.base - self.final_lr) * cos
    }
}

/// Warmup then multiply by `factor` at each milestone (the classic
/// ImageNet /10 at epochs 30/60/80).
#[derive(Debug, Clone)]
pub struct WarmupStep {
    /// Peak learning rate.
    pub base: f32,
    /// Number of warmup steps.
    pub warmup_steps: u64,
    /// Steps at which the rate is multiplied by `factor`.
    pub milestones: Vec<u64>,
    /// Decay factor per milestone.
    pub factor: f32,
}

impl LrSchedule for WarmupStep {
    fn lr(&self, step: u64) -> f32 {
        if step < self.warmup_steps {
            return self.base * (step + 1) as f32 / self.warmup_steps as f32;
        }
        let decays = self.milestones.iter().filter(|&&m| step >= m).count();
        self.base * self.factor.powi(decays as i32)
    }
}

/// Piecewise-constant schedule over step ranges (the DAWNBench recipe
/// changes the rate with the input resolution).
#[derive(Debug, Clone)]
pub struct Piecewise {
    /// `(first_step, lr)` pairs, sorted by step; the last entry extends to
    /// infinity.
    pub pieces: Vec<(u64, f32)>,
}

impl LrSchedule for Piecewise {
    fn lr(&self, step: u64) -> f32 {
        let mut lr = self.pieces.first().map(|p| p.1).unwrap_or(0.0);
        for &(start, rate) in &self.pieces {
            if step >= start {
                lr = rate;
            }
        }
        lr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warmup_ramps_linearly() {
        let s = Warmup {
            base: 1.0,
            warmup_steps: 10,
        };
        assert!((s.lr(0) - 0.1).abs() < 1e-6);
        assert!((s.lr(4) - 0.5).abs() < 1e-6);
        assert_eq!(s.lr(10), 1.0);
        assert_eq!(s.lr(1000), 1.0);
    }

    #[test]
    fn cosine_decays_to_final() {
        let s = WarmupCosine {
            base: 1.0,
            warmup_steps: 10,
            total_steps: 110,
            final_lr: 0.01,
        };
        assert!(s.lr(9) <= 1.0);
        assert!((s.lr(10) - 1.0).abs() < 1e-6);
        // Midpoint of decay ~ (base + final)/2.
        assert!((s.lr(60) - 0.505).abs() < 0.01);
        assert!((s.lr(110) - 0.01).abs() < 1e-6);
        assert!((s.lr(10_000) - 0.01).abs() < 1e-6);
    }

    #[test]
    fn step_decay_at_milestones() {
        let s = WarmupStep {
            base: 0.8,
            warmup_steps: 5,
            milestones: vec![100, 200],
            factor: 0.1,
        };
        assert_eq!(s.lr(50), 0.8);
        assert!((s.lr(150) - 0.08).abs() < 1e-6);
        assert!((s.lr(250) - 0.008).abs() < 1e-7);
    }

    #[test]
    fn piecewise_selects_latest_piece() {
        let s = Piecewise {
            pieces: vec![(0, 0.1), (100, 0.2), (200, 0.05)],
        };
        assert_eq!(s.lr(0), 0.1);
        assert_eq!(s.lr(99), 0.1);
        assert_eq!(s.lr(100), 0.2);
        assert_eq!(s.lr(500), 0.05);
    }

    #[test]
    fn monotone_warmup_never_overshoots() {
        let s = WarmupCosine {
            base: 2.0,
            warmup_steps: 100,
            total_steps: 1000,
            final_lr: 0.0,
        };
        let mut prev = 0.0;
        for step in 0..100 {
            let lr = s.lr(step);
            assert!(lr >= prev && lr <= 2.0);
            prev = lr;
        }
    }
}
