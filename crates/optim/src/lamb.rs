//! LAMB: layer-wise adaptive moments (You et al., 2020).
//!
//! Adam moments with a per-layer trust ratio — the large-batch optimizer
//! for attention models. Included because the paper notes PTO handles LAMB
//! the same way as LARS; the ablation benches compare both.

use cloudtrain_dnn::model::ParamRange;
use cloudtrain_tensor::ops;

use crate::Optimizer;

/// LAMB hyperparameters.
#[derive(Debug, Clone, Copy)]
pub struct LambConfig {
    /// First-moment decay (Adam β1).
    pub beta1: f32,
    /// Second-moment decay (Adam β2).
    pub beta2: f32,
    /// Numerical epsilon.
    pub eps: f32,
    /// Decoupled weight decay.
    pub weight_decay: f32,
}

impl Default for LambConfig {
    fn default() -> Self {
        Self {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-6,
            weight_decay: 0.01,
        }
    }
}

/// The LAMB optimizer.
#[derive(Debug, Clone)]
pub struct Lamb {
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
    ranges: Vec<ParamRange>,
    /// Hyperparameters.
    pub cfg: LambConfig,
}

impl Lamb {
    /// Creates LAMB for a model with the given parameter layout.
    pub fn new(dim: usize, ranges: Vec<ParamRange>, cfg: LambConfig) -> Self {
        assert_eq!(
            ranges.iter().map(|r| r.len).sum::<usize>(),
            dim,
            "Lamb: ranges must tile the parameter vector"
        );
        Self {
            m: vec![0.0; dim],
            v: vec![0.0; dim],
            t: 0,
            ranges,
            cfg,
        }
    }
}

impl Optimizer for Lamb {
    fn step(&mut self, params: &mut [f32], grads: &[f32], lr: f32) {
        assert_eq!(params.len(), grads.len(), "Lamb: length mismatch");
        assert_eq!(params.len(), self.m.len(), "Lamb: wrong model size");
        self.t += 1;
        let b1c = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2c = 1.0 - self.cfg.beta2.powi(self.t as i32);

        // Adam moments (elementwise).
        let (beta1, beta2) = (self.cfg.beta1, self.cfg.beta2);
        for ((m, v), &g) in self.m.iter_mut().zip(&mut self.v).zip(grads) {
            *m = beta1 * *m + (1.0 - beta1) * g;
            *v = beta2 * *v + (1.0 - beta2) * g * g;
        }

        // Per-layer trust ratio and update.
        for r in &self.ranges {
            let mut update = vec![0.0f32; r.len];
            for (j, i) in (r.offset..r.offset + r.len).enumerate() {
                let mh = self.m[i] / b1c;
                let vh = self.v[i] / b2c;
                update[j] = mh / (vh.sqrt() + self.cfg.eps) + self.cfg.weight_decay * params[i];
            }
            let w = &params[r.offset..r.offset + r.len];
            let wn = ops::l2_norm(w);
            let un = ops::l2_norm(&update);
            let trust = if wn > 0.0 && un > 0.0 { wn / un } else { 1.0 };
            for (j, i) in (r.offset..r.offset + r.len).enumerate() {
                params[i] -= lr * trust * update[j];
            }
        }
    }

    fn name(&self) -> &'static str {
        "lamb"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn one_range(dim: usize) -> Vec<ParamRange> {
        vec![ParamRange {
            offset: 0,
            len: dim,
        }]
    }

    #[test]
    fn lamb_converges_on_quadratic() {
        let cfg = LambConfig {
            weight_decay: 0.0,
            ..LambConfig::default()
        };
        let mut opt = Lamb::new(1, one_range(1), cfg);
        let mut w = vec![10.0f32];
        for _ in 0..500 {
            let g = w[0] - 3.0;
            opt.step(&mut w, &[g], 0.05);
        }
        assert!((w[0] - 3.0).abs() < 0.1, "w = {}", w[0]);
    }

    #[test]
    fn trust_ratio_bounds_step_by_weight_norm() {
        // Huge gradient, small weights: the step stays O(lr * ||w||).
        let cfg = LambConfig {
            weight_decay: 0.0,
            ..LambConfig::default()
        };
        let mut opt = Lamb::new(2, one_range(2), cfg);
        let mut w = vec![0.1, 0.1];
        let before = w.clone();
        opt.step(&mut w, &[1e6, 1e6], 0.1);
        let step: f32 = w
            .iter()
            .zip(&before)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            .sqrt();
        let wn = ops::l2_norm(&before);
        assert!(
            step <= 0.1 * wn * 1.01,
            "step {step} vs 0.1*||w|| {}",
            0.1 * wn
        );
    }

    #[test]
    fn bias_correction_makes_first_step_finite_and_sane() {
        let mut opt = Lamb::new(1, one_range(1), LambConfig::default());
        let mut w = vec![1.0];
        opt.step(&mut w, &[0.5], 0.01);
        assert!(w[0].is_finite());
        assert!(w[0] < 1.0 && w[0] > 0.9);
    }
}
