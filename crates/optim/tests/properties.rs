//! Property-based tests for the optimizers and schedules.

use cloudtrain_dnn::model::ParamRange;
use cloudtrain_optim::adam::{Adam, AdamConfig};
use cloudtrain_optim::clip::clip_global_norm;
use cloudtrain_optim::lamb::{Lamb, LambConfig};
use cloudtrain_optim::lars::{compute_rates, LarsConfig};
use cloudtrain_optim::schedule::{LrSchedule, WarmupCosine, WarmupStep};
use cloudtrain_optim::{Momentum, Optimizer, Sgd};
use cloudtrain_tensor::{init, ops};
use proptest::prelude::*;

fn one_range(d: usize) -> Vec<ParamRange> {
    vec![ParamRange { offset: 0, len: d }]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// LARS rates are invariant to a uniform rescaling of weights AND
    /// gradients by the same factor (γ‖cw‖/(‖cg‖ + ε‖cw‖) = rate(w, g)) —
    /// the scale-equivariance LARS is designed for.
    #[test]
    fn lars_rates_are_scale_invariant(
        d in 2usize..50,
        c in 0.1f32..10.0,
        seed in 0u64..1000,
    ) {
        let mut rng = init::rng_from_seed(seed);
        let w = init::gradient_like_tensor(d, &mut rng).into_vec();
        let g = init::gradient_like_tensor(d, &mut rng).into_vec();
        let cfg = LarsConfig::default();
        let ranges = one_range(d);
        let base = compute_rates(&w, &g, &ranges, &cfg)[0];
        let ws: Vec<f32> = w.iter().map(|v| v * c).collect();
        let gs: Vec<f32> = g.iter().map(|v| v * c).collect();
        let scaled = compute_rates(&ws, &gs, &ranges, &cfg)[0];
        prop_assert!(
            (base - scaled).abs() < 1e-2 * base.abs().max(1e-6),
            "{base} vs {scaled}"
        );
    }

    /// One step of every optimizer on gradient 0 with zero weight decay is
    /// a no-op (fixed points are preserved).
    #[test]
    fn zero_gradient_is_a_fixed_point(d in 1usize..20, seed in 0u64..100) {
        let mut rng = init::rng_from_seed(seed);
        let w0 = init::uniform_tensor(d, -2.0, 2.0, &mut rng).into_vec();
        let g = vec![0.0f32; d];
        let mut opts: Vec<Box<dyn Optimizer>> = vec![
            Box::new(Sgd::new(0.0)),
            Box::new(Momentum::new(d, 0.9, 0.0)),
            Box::new(Adam::new(d, AdamConfig { weight_decay: 0.0, ..AdamConfig::default() })),
            Box::new(Lamb::new(d, one_range(d), LambConfig { weight_decay: 0.0, ..LambConfig::default() })),
        ];
        for opt in &mut opts {
            let mut w = w0.clone();
            opt.step(&mut w, &g, 0.1);
            prop_assert!(
                ops::approx_eq(&w, &w0, 1e-6),
                "{} moved on zero gradient",
                opt.name()
            );
        }
    }

    /// Clipping: output norm never exceeds the bound and direction is
    /// preserved (cosine 1 with the input when it was nonzero).
    #[test]
    fn clip_invariants(d in 1usize..100, bound in 0.01f32..10.0, seed in 0u64..1000) {
        let mut rng = init::rng_from_seed(seed);
        let g0 = init::gradient_like_tensor(d, &mut rng).into_vec();
        let mut g = g0.clone();
        let pre = clip_global_norm(&mut g, bound);
        prop_assert!((pre - ops::l2_norm(&g0)).abs() < 1e-3 * pre.max(1.0));
        prop_assert!(ops::l2_norm(&g) <= bound * 1.001);
        if pre > 0.0 {
            let cos = ops::dot(&g, &g0) / (ops::l2_norm(&g) * pre);
            prop_assert!(cos > 0.999, "direction changed: cos {cos}");
        }
    }

    /// Schedules never produce negative rates and respect their peak.
    #[test]
    fn schedules_are_bounded(
        base in 0.001f32..10.0,
        warmup in 1u64..100,
        total in 100u64..1000,
        step in 0u64..2000,
    ) {
        let cos = WarmupCosine { base, warmup_steps: warmup, total_steps: total, final_lr: base * 0.01 };
        let stp = WarmupStep { base, warmup_steps: warmup, milestones: vec![total / 2, total], factor: 0.1 };
        for lr in [cos.lr(step), stp.lr(step)] {
            prop_assert!(lr >= 0.0);
            prop_assert!(lr <= base * 1.0001, "lr {lr} exceeds base {base}");
        }
    }

    /// Momentum SGD with bounded gradients cannot explode in one step:
    /// |Δw| <= lr * |v| with v a geometric sum of gradient bounds.
    #[test]
    fn momentum_step_is_bounded(
        d in 1usize..20,
        lr in 0.001f32..0.1,
        steps in 1usize..20,
        seed in 0u64..100,
    ) {
        let mut rng = init::rng_from_seed(seed);
        let mut opt = Momentum::new(d, 0.9, 0.0);
        let mut w = vec![0.0f32; d];
        for _ in 0..steps {
            let g = init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec();
            let before = w.clone();
            opt.step(&mut w, &g, lr);
            let delta = ops::linf_distance(&w, &before);
            // Velocity is bounded by the geometric series 1/(1-0.9) = 10.
            prop_assert!(delta <= lr * 10.0 + 1e-6, "delta {delta}");
        }
    }
}
