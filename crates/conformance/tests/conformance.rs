//! End-to-end tests over the shipped seed corpus: zero divergences, full
//! pairing coverage, and byte-stable rendering (the two-run `cmp`
//! discipline CI enforces is asserted here in-process first).

use cloudtrain_conformance::{corpus, expand_fuzz, run_corpus, shipped_corpus, ConformanceReport};

fn run_shipped() -> ConformanceReport {
    run_corpus(shipped_corpus()).expect("shipped corpus parses")
}

#[test]
fn shipped_corpus_has_zero_divergences() {
    let report = run_shipped();
    let bad: Vec<String> = report
        .results()
        .iter()
        .filter(|r| !r.passed())
        .map(|r| format!("{} {} {}: {:?}", r.id, r.target, r.params, r.failures))
        .collect();
    assert!(
        bad.is_empty(),
        "divergences on shipped corpus:\n{}",
        bad.join("\n")
    );
}

#[test]
fn shipped_corpus_covers_every_pairing() {
    let report = run_shipped();
    let missing: Vec<String> = report
        .coverage()
        .iter()
        .filter(|(_, _, covered)| !covered)
        .map(|(coll, comp, _)| format!("{coll}/{comp}"))
        .collect();
    assert!(
        missing.is_empty(),
        "uncovered pairings: {}",
        missing.join(", ")
    );
    assert_eq!(report.coverage_missing(), 0);
}

#[test]
fn two_runs_are_byte_identical() {
    let a = run_shipped();
    let b = run_shipped();
    assert_eq!(a.table(), b.table(), "human table is not byte-stable");
    assert_eq!(
        a.to_jsonl(),
        b.to_jsonl(),
        "JSONL report is not byte-stable"
    );
}

#[test]
fn fuzz_expansion_parses_and_roundtrips() {
    let cases = expand_fuzz(32, 42);
    assert_eq!(cases.len(), 32);
    for case in &cases {
        let line = corpus::format_case(case);
        let reparsed = corpus::parse_line(&line)
            .unwrap_or_else(|e| panic!("fuzz-generated case must be pinnable, got `{line}`: {e}"));
        assert_eq!(*case, reparsed, "canonical line round-trips: {line}");
    }
    // Same seed, same cases: fuzz expansion is itself deterministic.
    assert_eq!(expand_fuzz(32, 42), cases);
}

#[test]
fn fuzz_cases_pass_against_the_oracle() {
    // A small fuzz batch runs clean: the differential harness holds off-corpus
    // too, not just on hand-picked shapes.
    let cases = expand_fuzz(12, 7);
    let report = cloudtrain_conformance::run_cases(&cases);
    let bad: Vec<String> = report
        .results()
        .iter()
        .filter(|r| !r.passed())
        .map(|r| format!("{} {} {}: {:?}", r.id, r.target, r.params, r.failures))
        .collect();
    assert!(bad.is_empty(), "fuzz divergences:\n{}", bad.join("\n"));
}

#[test]
fn cost_brackets_hold_and_ceilings_are_honest() {
    // Every cost phase lands inside its closed-form bracket, and the
    // pinned looseness ceilings keep real margin over the corpus without
    // being fat enough to hide a halved simulation (< 2x observed max).
    use std::collections::BTreeMap;

    let cases = corpus::parse(shipped_corpus()).expect("parses");
    let mut observed_max: BTreeMap<(String, String), f64> = BTreeMap::new();
    for case in &cases {
        let corpus::Case::Cost(c) = case else {
            continue;
        };
        for (label, lower, sim, upper) in cloudtrain_conformance::costmodel::bracket_report(c) {
            assert!(
                sim >= lower * (1.0 - 1e-6) && sim <= upper * (1.0 + 1e-6),
                "{}/{} sim={sim} outside bracket [{lower}, {upper}]",
                c.collective,
                label
            );
            let loose = (upper - sim) / upper;
            let entry = observed_max
                .entry((c.collective.clone(), label))
                .or_insert(0.0);
            *entry = entry.max(loose);
        }
    }
    for ((coll, label), loose) in &observed_max {
        println!("observed looseness {coll}/{label}: {loose}");
    }
    for ((coll, label), loose) in &observed_max {
        let ceiling = cloudtrain_conformance::costmodel::TOLERANCES
            .iter()
            .find(|(c, p, _)| c == coll && p == label)
            .map(|(_, _, hi)| *hi)
            .unwrap_or_else(|| panic!("no pinned ceiling for {coll}/{label}"));
        assert!(
            *loose <= ceiling,
            "{coll}/{label}: observed looseness {loose} exceeds pinned ceiling {ceiling}"
        );
        // Exact phases pin ~equality; loose phases must not be pinned at
        // more than double what the grid exhibits (keeps the table honest).
        if ceiling > 1e-3 {
            assert!(
                ceiling <= (2.0 * *loose).max(0.05),
                "{coll}/{label}: ceiling {ceiling} is more than 2x the observed {loose}"
            );
        }
    }
}

#[test]
fn report_enumerates_every_oracle_case_in_corpus_order() {
    let report = run_shipped();
    let cases = corpus::parse(shipped_corpus()).expect("parses");
    assert_eq!(report.results().len(), cases.len());
    for (i, r) in report.results().iter().enumerate() {
        assert_eq!(r.id, format!("case-{i:03}"));
        assert!(r.checks > 0, "{} ran no checks", r.id);
    }
}
