//! Seed-corpus parsing: one case per line, `key=value` tokens.
//!
//! Three line kinds (leading `#` and blank lines are comments):
//!
//! ```text
//! oracle <collective> m=2 n=4 d=128 rho=0.05 comp=mstopk seed=7 [drops=0.1] [degrade=0.2]
//! cost   <collective> nodes=4 gpus=8 d=250000 rho=0.01 gbps=25
//! meta   <property>   comp=dgc d=4096 k=64 seed=9
//! ```
//!
//! Parsing is *checked*: unknown collectives/properties/compressors, missing
//! keys, malformed numbers, and shape constraints the collectives would
//! panic on (RHD and gTop-k need power-of-two worlds, torus needs
//! `size == m·n` by construction) are reported as `Err` with the line
//! number, never as a panic inside the harness.

/// One parsed corpus case.
#[derive(Debug, Clone, PartialEq)]
pub enum Case {
    /// Differential run of a collective against the reference oracle.
    Oracle(OracleCase),
    /// Cost-model validation of a simnet collective against Eqs. 7–10.
    Cost(CostCase),
    /// Metamorphic property check of one compressor.
    Meta(MetaCase),
}

/// Parameters of one oracle differential case.
#[derive(Debug, Clone, PartialEq)]
pub struct OracleCase {
    /// Collective under test (see [`ORACLE_COLLECTIVES`]).
    pub collective: String,
    /// Nodes in the grid.
    pub m: usize,
    /// GPUs per node; the world is `m · n`.
    pub n: usize,
    /// Gradient dimension.
    pub d: usize,
    /// Density for sparse collectives (ignored by dense ones).
    pub rho: f64,
    /// Compressor name, `-` for dense/quantized paths.
    pub comp: String,
    /// Case seed: gradients and compressor RNG streams derive from it.
    pub seed: u64,
    /// Per-hop drop probability for resilient variants.
    pub drops: f64,
    /// Per-member degradation probability for resilient sparse variants.
    pub degrade: f64,
}

/// Parameters of one cost-model case.
#[derive(Debug, Clone, PartialEq)]
pub struct CostCase {
    /// Simulated collective (see [`COST_COLLECTIVES`]).
    pub collective: String,
    /// Cluster nodes.
    pub nodes: usize,
    /// GPUs per node.
    pub gpus: usize,
    /// Gradient dimension (FP32 elements).
    pub d: usize,
    /// Density for sparse collectives (ignored by dense ones).
    pub rho: f64,
    /// Inter-node Ethernet line rate, Gbps.
    pub gbps: f64,
}

/// Parameters of one metamorphic property case.
#[derive(Debug, Clone, PartialEq)]
pub struct MetaCase {
    /// Property name (see [`META_PROPERTIES`]).
    pub property: String,
    /// Compressor under test.
    pub comp: String,
    /// Input dimension.
    pub d: usize,
    /// Selection size.
    pub k: usize,
    /// Case seed.
    pub seed: u64,
}

/// Collectives the oracle engine knows how to drive. The `*_fused`
/// variants route through the fused compress–reduce hop and are held to
/// *bitwise* equality with their unfused twins; the `*_bucketed` variants
/// launch the dense collective once per fusion span.
pub const ORACLE_COLLECTIVES: &[&str] = &[
    "ring",
    "tree",
    "torus",
    "rhd",
    "tree_bucketed",
    "torus_bucketed",
    "ring_res",
    "torus_res",
    "ring_reordered",
    "torus_reordered",
    "ring_deadline",
    "hitopk",
    "hitopk_fused",
    "hitopk_ef",
    "hitopk_ef_fused",
    "hitopk_ef_res",
    "hitopk_ef_fused_res",
    "hitopk_ef_reordered",
    "hitopk_ef_deadline",
    "gtopk",
    "gtopk_ef_res",
    "naiveag",
    "oksparse",
    "oksparse_ef",
    "oksparse_ef_res",
    "qsgd",
    "terngrad",
    "scaledsign",
];

/// Collectives the cost-model engine has closed forms for. `treear` is
/// deliberately absent: its chunk-pipelined double trees have no closed
/// form in the paper (DESIGN.md §10 records the exclusion).
pub const COST_COLLECTIVES: &[&str] = &[
    "hitopk",
    "torus",
    "gtopk",
    "naiveag",
    "oksparse",
    "qsgd",
    "torus_reordered",
    "hitopk_deadline",
];

/// Metamorphic properties the harness checks.
pub const META_PROPERTIES: &[&str] = &["exactk", "determinism", "perm", "scale", "kmono"];

/// Compressor names the harness can instantiate.
pub const COMPRESSORS: &[&str] = &["sorttopk", "quicktopk", "mstopk", "dgc", "randomk"];

/// Largest oracle dimension the corpus accepts: differential runs are
/// O(d · world) per case and the corpus must stay interactive in CI.
pub const MAX_ORACLE_D: usize = 2048;

/// Parses a whole corpus text.
///
/// # Errors
/// Returns `"line N: <reason>"` for the first malformed or invalid line.
pub fn parse(text: &str) -> Result<Vec<Case>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let case = parse_line(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        out.push(case);
    }
    Ok(out)
}

/// Parses one non-comment corpus line.
///
/// # Errors
/// Returns the reason the line is malformed or fails validation.
pub fn parse_line(line: &str) -> Result<Case, String> {
    let mut tokens = line.split_whitespace();
    let kind = tokens.next().ok_or("empty case line")?;
    let name = tokens
        .next()
        .ok_or_else(|| format!("`{kind}` line is missing its target name"))?;
    let mut kv = Kv::default();
    for tok in tokens {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("token `{tok}` is not key=value"))?;
        kv.pairs.push((k.to_string(), v.to_string()));
    }
    match kind {
        "oracle" => parse_oracle(name, &kv).map(Case::Oracle),
        "cost" => parse_cost(name, &kv).map(Case::Cost),
        "meta" => parse_meta(name, &kv).map(Case::Meta),
        other => Err(format!(
            "unknown case kind `{other}` (expected oracle, cost, or meta)"
        )),
    }
}

/// Formats a case back into its canonical corpus line (the shape `parse`
/// accepts), used to pin fuzz-found divergences into the seed corpus.
pub fn format_case(case: &Case) -> String {
    match case {
        Case::Oracle(c) => {
            let mut s = format!(
                "oracle {} m={} n={} d={} rho={} comp={} seed={}",
                c.collective, c.m, c.n, c.d, c.rho, c.comp, c.seed
            );
            if c.drops > 0.0 {
                s.push_str(&format!(" drops={}", c.drops));
            }
            if c.degrade > 0.0 {
                s.push_str(&format!(" degrade={}", c.degrade));
            }
            s
        }
        Case::Cost(c) => format!(
            "cost {} nodes={} gpus={} d={} rho={} gbps={}",
            c.collective, c.nodes, c.gpus, c.d, c.rho, c.gbps
        ),
        Case::Meta(c) => format!(
            "meta {} comp={} d={} k={} seed={}",
            c.property, c.comp, c.d, c.k, c.seed
        ),
    }
}

#[derive(Default)]
struct Kv {
    pairs: Vec<(String, String)>,
}

impl Kv {
    fn get(&self, key: &str) -> Option<&str> {
        // Last occurrence wins, matching the CLI arg parser's discipline.
        self.pairs
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn usize(&self, key: &str) -> Result<usize, String> {
        let v = self.get(key).ok_or_else(|| format!("missing `{key}=`"))?;
        v.parse()
            .map_err(|_| format!("`{key}={v}` is not an unsigned integer"))
    }

    fn usize_or(&self, key: &str, default: usize) -> Result<usize, String> {
        match self.get(key) {
            None => Ok(default),
            Some(_) => self.usize(key),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, String> {
        let v = self.get(key).ok_or_else(|| format!("missing `{key}=`"))?;
        v.parse()
            .map_err(|_| format!("`{key}={v}` is not an unsigned integer"))
    }

    fn f64_or(&self, key: &str, default: f64) -> Result<f64, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => {
                let x: f64 = v
                    .parse()
                    .map_err(|_| format!("`{key}={v}` is not a number"))?;
                if x.is_finite() {
                    Ok(x)
                } else {
                    Err(format!("`{key}={v}` must be finite"))
                }
            }
        }
    }
}

fn parse_oracle(name: &str, kv: &Kv) -> Result<OracleCase, String> {
    if !ORACLE_COLLECTIVES.contains(&name) {
        return Err(format!("unknown oracle collective `{name}`"));
    }
    let c = OracleCase {
        collective: name.to_string(),
        m: kv.usize("m")?,
        n: kv.usize("n")?,
        d: kv.usize("d")?,
        rho: kv.f64_or("rho", 0.05)?,
        comp: kv.get("comp").unwrap_or("-").to_string(),
        seed: kv.u64("seed")?,
        drops: kv.f64_or("drops", 0.0)?,
        degrade: kv.f64_or("degrade", 0.0)?,
    };
    if c.m == 0 || c.n == 0 {
        return Err("m and n must be positive".into());
    }
    if c.d == 0 {
        return Err("d must be positive".into());
    }
    if c.d > MAX_ORACLE_D {
        return Err(format!("d={} exceeds the corpus cap {MAX_ORACLE_D}", c.d));
    }
    if c.rho <= 0.0 || c.rho > 1.0 {
        return Err(format!("rho={} must be in (0, 1]", c.rho));
    }
    for (key, v) in [("drops", c.drops), ("degrade", c.degrade)] {
        if !(0.0..=1.0).contains(&v) {
            return Err(format!("{key}={v} must be in [0, 1]"));
        }
    }
    let p = c.m * c.n;
    let needs_pow2 = matches!(c.collective.as_str(), "rhd" | "gtopk" | "gtopk_ef_res");
    if needs_pow2 && !p.is_power_of_two() {
        return Err(format!(
            "{} needs a power-of-two world, got {p}",
            c.collective
        ));
    }
    let sparse = matches!(
        c.collective.as_str(),
        "hitopk"
            | "hitopk_fused"
            | "hitopk_ef"
            | "hitopk_ef_fused"
            | "hitopk_ef_res"
            | "hitopk_ef_fused_res"
            | "hitopk_ef_reordered"
            | "hitopk_ef_deadline"
            | "gtopk"
            | "gtopk_ef_res"
            | "naiveag"
            | "oksparse"
            | "oksparse_ef"
            | "oksparse_ef_res"
    );
    if sparse {
        if !COMPRESSORS.contains(&c.comp.as_str()) {
            return Err(format!(
                "sparse collective `{}` needs comp= from {COMPRESSORS:?}, got `{}`",
                c.collective, c.comp
            ));
        }
    } else if c.comp != "-" {
        return Err(format!(
            "`{}` takes no compressor; drop comp= or use comp=-",
            c.collective
        ));
    }
    let resilient = c.collective.ends_with("_res");
    let deadline = c.collective.ends_with("_deadline");
    if deadline && c.drops > 0.0 {
        return Err(format!(
            "`{}` takes degrade= (lateness jitter), not drops= — a deadline \
             never retransmits",
            c.collective
        ));
    }
    if !resilient && !deadline && (c.drops > 0.0 || c.degrade > 0.0) {
        return Err(format!(
            "`{}` is not a resilient variant; drops=/degrade= only apply to *_res and *_deadline",
            c.collective
        ));
    }
    Ok(c)
}

fn parse_cost(name: &str, kv: &Kv) -> Result<CostCase, String> {
    if !COST_COLLECTIVES.contains(&name) {
        return Err(format!(
            "unknown cost collective `{name}` (treear has no closed form and is excluded; see DESIGN.md §10)"
        ));
    }
    let c = CostCase {
        collective: name.to_string(),
        nodes: kv.usize("nodes")?,
        gpus: kv.usize_or("gpus", 8)?,
        d: kv.usize("d")?,
        rho: kv.f64_or("rho", 0.01)?,
        gbps: kv.f64_or("gbps", 25.0)?,
    };
    if c.nodes == 0 || c.gpus == 0 {
        return Err("nodes and gpus must be positive".into());
    }
    if c.d == 0 {
        return Err("d must be positive".into());
    }
    if c.rho <= 0.0 || c.rho > 1.0 {
        return Err(format!("rho={} must be in (0, 1]", c.rho));
    }
    if c.gbps <= 0.0 {
        return Err(format!("gbps={} must be positive", c.gbps));
    }
    match c.collective.as_str() {
        // The analytic per-round forms assume every recursive-doubling
        // round is either fully intra-node or fully inter-node, which
        // needs both grid axes to be powers of two.
        "gtopk" if !c.nodes.is_power_of_two() || !c.gpus.is_power_of_two() => {
            Err("gtopk cost cases need power-of-two nodes and gpus".into())
        }
        // The closed forms for the inter-node phases are per-NIC
        // serialization bounds; they need at least two nodes to exercise
        // the Ethernet tier the paper's equations model.
        "naiveag" | "torus" | "torus_reordered" | "hitopk" | "hitopk_deadline" | "oksparse"
        | "qsgd"
            if c.nodes < 2 =>
        {
            Err(format!("{} cost cases need nodes >= 2", c.collective))
        }
        _ => Ok(c),
    }
}

fn parse_meta(name: &str, kv: &Kv) -> Result<MetaCase, String> {
    if !META_PROPERTIES.contains(&name) {
        return Err(format!("unknown metamorphic property `{name}`"));
    }
    let c = MetaCase {
        property: name.to_string(),
        comp: kv.get("comp").ok_or("missing `comp=`")?.to_string(),
        d: kv.usize("d")?,
        k: kv.usize("k")?,
        seed: kv.u64("seed")?,
    };
    if !COMPRESSORS.contains(&c.comp.as_str()) {
        return Err(format!("unknown compressor `{}`", c.comp));
    }
    if c.d == 0 || c.k == 0 {
        return Err("d and k must be positive".into());
    }
    if c.k > c.d {
        return Err(format!("k={} must not exceed d={}", c.k, c.d));
    }
    Ok(c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_all_three_kinds() {
        let text = "\
# comment
oracle hitopk m=2 n=4 d=128 rho=0.05 comp=mstopk seed=7

cost torus nodes=4 gpus=8 d=250000 gbps=25
meta perm comp=dgc d=4096 k=64 seed=9
";
        let cases = parse(text).expect("parses");
        assert_eq!(cases.len(), 3);
        assert!(matches!(cases[0], Case::Oracle(_)));
        assert!(matches!(cases[1], Case::Cost(_)));
        assert!(matches!(cases[2], Case::Meta(_)));
    }

    #[test]
    fn format_roundtrips() {
        for line in [
            "oracle hitopk m=2 n=4 d=128 rho=0.05 comp=mstopk seed=7",
            "oracle hitopk_ef_fused_res m=2 n=2 d=64 rho=0.1 comp=dgc seed=5 drops=0.1 degrade=0.2",
            "oracle tree_bucketed m=2 n=3 d=96 rho=0.05 comp=- seed=4",
            "oracle ring_res m=2 n=3 d=64 rho=0.05 comp=- seed=3 drops=0.2",
            "oracle ring_deadline m=2 n=3 d=64 rho=0.05 comp=- seed=3 degrade=0.3",
            "oracle hitopk_ef_deadline m=2 n=2 d=64 rho=0.1 comp=dgc seed=5 degrade=0.4",
            "oracle torus_reordered m=2 n=3 d=96 rho=0.05 comp=- seed=6",
            "oracle oksparse m=3 n=2 d=300 rho=0.1 comp=mstopk seed=8",
            "oracle oksparse_ef m=2 n=4 d=512 rho=0.05 comp=dgc seed=9",
            "oracle oksparse_ef_res m=2 n=2 d=128 rho=0.1 comp=randomk seed=10 drops=0.2 degrade=0.3",
            "cost hitopk_deadline nodes=4 gpus=8 d=250000 rho=0.01 gbps=25",
            "cost gtopk nodes=4 gpus=4 d=200000 rho=0.01 gbps=25",
            "cost oksparse nodes=8 gpus=4 d=500000 rho=0.01 gbps=25",
            "meta kmono comp=randomk d=512 k=32 seed=11",
        ] {
            let case = parse_line(line).expect(line);
            let reparsed = parse_line(&format_case(&case)).expect("canonical line parses");
            assert_eq!(case, reparsed, "{line}");
        }
    }

    #[test]
    fn rejects_bad_lines() {
        for (line, why) in [
            ("oracle rhd m=3 n=1 d=16 seed=1", "non-pow2 rhd"),
            (
                "oracle hitopk m=2 n=2 d=16 seed=1 comp=-",
                "sparse without comp",
            ),
            (
                "oracle hitopk_fused m=2 n=2 d=16 seed=1 comp=-",
                "fused sparse without comp",
            ),
            (
                "oracle ring m=2 n=2 d=16 seed=1 comp=mstopk",
                "dense with comp",
            ),
            (
                "oracle torus_bucketed m=2 n=2 d=16 seed=1 comp=mstopk",
                "bucketed dense with comp",
            ),
            (
                "oracle hitopk_fused m=2 n=2 d=16 rho=0.1 comp=dgc seed=1 drops=0.5",
                "drops on non-resilient fused",
            ),
            (
                "oracle ring m=2 n=2 d=16 seed=1 drops=0.5",
                "drops on non-resilient",
            ),
            (
                "oracle ring_deadline m=2 n=2 d=16 seed=1 drops=0.5",
                "drops on deadline variant",
            ),
            (
                "oracle ring_reordered m=2 n=2 d=16 seed=1 degrade=0.5",
                "degrade on reordered variant",
            ),
            (
                "cost torus_reordered nodes=1 gpus=8 d=1000",
                "single-node torus_reordered",
            ),
            (
                "cost hitopk_deadline nodes=1 gpus=8 d=1000",
                "single-node hitopk_deadline",
            ),
            ("oracle ring m=0 n=2 d=16 seed=1", "zero m"),
            ("oracle ring m=2 n=2 d=999999 seed=1", "d over cap"),
            (
                "oracle hitopk m=2 n=2 d=16 rho=1.5 comp=dgc seed=1",
                "rho > 1",
            ),
            (
                "oracle oksparse m=2 n=2 d=16 seed=1 comp=-",
                "oksparse without comp",
            ),
            (
                "oracle oksparse_ef m=2 n=2 d=16 rho=0.1 comp=dgc seed=1 drops=0.5",
                "drops on non-resilient oksparse",
            ),
            (
                "cost oksparse nodes=1 gpus=8 d=1000",
                "single-node oksparse",
            ),
            ("cost treear nodes=4 d=1000", "treear excluded"),
            ("cost gtopk nodes=3 gpus=4 d=1000", "non-pow2 gtopk nodes"),
            ("cost hitopk nodes=1 gpus=8 d=1000", "single-node hitopk"),
            (
                "meta perm comp=nosuch d=64 k=8 seed=1",
                "unknown compressor",
            ),
            ("meta perm comp=dgc d=64 k=128 seed=1", "k > d"),
            ("meta nosuch comp=dgc d=64 k=8 seed=1", "unknown property"),
            ("frob x y=1", "unknown kind"),
            (
                "oracle hitopk m=2 n=2 d=abc rho=0.1 comp=dgc seed=1",
                "bad number",
            ),
        ] {
            assert!(parse_line(line).is_err(), "should reject: {why}: {line}");
        }
    }

    #[test]
    fn last_duplicate_key_wins() {
        let case = parse_line("oracle ring m=2 n=2 d=16 seed=1 seed=9").expect("parses");
        match case {
            Case::Oracle(c) => assert_eq!(c.seed, 9),
            _ => panic!("expected oracle case"),
        }
    }
}
