//! Cost-model validation: executable closed forms for the paper's
//! communication-cost equations (Eqs. 7–10), cross-checked against
//! `cloudtrain-simnet` timeline makespans.
//!
//! Every phase is validated against a **bracket**:
//!
//! * the **upper** form is the paper's serial α–β expression — e.g.
//!   `(p-1)(α + ⌈B/p⌉β)` for a ring phase — which no schedule can exceed;
//! * the **lower** form pipelines the per-round latency: a NIC frees at
//!   the byte-completion instant, so an R-round phase costs at least
//!   `α + R·b·β`. The simulator's makespan must land inside
//!   `[lower, upper]` within [`BRACKET_SLACK`] relative FP slack.
//!
//! Intra-node ring phases are **exact** under the simulator's round
//! semantics (every GPU both sends and receives each round, so rounds
//! cannot overlap): there `lower == upper` and the bracket pins equality.
//!
//! On top of the bracket, each phase has a pinned **looseness** ceiling:
//! `(upper - sim) / upper` must stay below the [`TOLERANCES`] entry. This
//! is what catches a simulator regression that silently *drops* traffic —
//! the bracket alone would still admit it if the lower bound shrank too.
//! Ceilings are calibrated against the shipped corpus (observed maxima
//! plus margin; the table is documented in DESIGN.md §10).
//!
//! `treear` is excluded: its chunk-pipelined double binary trees have no
//! closed form in the paper, so there is nothing to validate against.

use cloudtrain_obs::fmt_f64;
use cloudtrain_simnet::clouds::{ETH_ALPHA, ETH_EFFICIENCY, NVLINK_ALPHA, NVLINK_BW};
use cloudtrain_simnet::collectives::{
    sim_gtopk_all_reduce, sim_hitopk, sim_naive_sparse_all_gather, sim_ok_sparse,
    sim_quantized_all_reduce, sim_torus_all_reduce, sim_torus_all_reduce_reordered,
    CollectiveTiming,
};
use cloudtrain_simnet::NetSim;
use cloudtrain_simnet::{ClusterSpec, FaultPlan, LinkSpec, SimResilience};

use crate::corpus::CostCase;
use crate::oracle::global_k;
use crate::report::{CaseResult, Checks};

/// Modeled per-GPU top-k compression time (step 2 of Algorithm 2) charged
/// to every GPU; a fixed value so the phase check validates clock
/// alignment, not the GPU cost model (which `gpu_cost` owns).
pub const TOPK_SECONDS: f64 = 1e-4;

/// Bits per element for the QSGD wire format (8-bit codes).
pub const QSGD_BITS: usize = 8;

/// Host staging factor of the naive sparse path (mirrors the simulator's
/// `NAIVE_STAGING_FACTOR`).
pub const NAIVE_STAGING: f64 = 2.5;

/// Deadline budget multiplier for the `hitopk_deadline` cost twin. Over a
/// clean fault plan the budget covers every hop (`mult ≥ 1`), so the
/// deadline-bounded timeline must reproduce plain `hitopk`'s — which is
/// why the twin shares Eq. 9/10's closed forms.
pub const COST_DEADLINE_MULT: f64 = 1.5;

/// Selection-overlap fraction assumed by the `oksparse` cost twin: the
/// expected share of selected coordinates common to all nodes, which sets
/// the merged-sublist size `(k̃/m)·(1 + (1−ω)·(m−1))`. Matches the
/// engine autotuner's default overlap so the two models agree.
pub const COST_OK_OVERLAP: f64 = 0.75;

/// Relative FP slack on the bracket bounds: the simulated makespan must
/// satisfy `lower·(1-slack) <= sim <= upper·(1+slack)`.
pub const BRACKET_SLACK: f64 = 1e-6;

/// Pinned looseness ceiling per (collective, phase): the relative gap
/// `(upper - sim) / upper` the shipped grid is allowed to exhibit.
/// Intra-node phases are exact (ceiling ~0); inter-node phases inherit the
/// α-pipelining gap, whose observed maxima (plus margin) are recorded in
/// DESIGN.md §10.
pub const TOLERANCES: &[(&str, &str, f64)] = &[
    ("hitopk", "intra reduce-scatter", 1e-6),
    ("hitopk", "top-k compression", 1e-6),
    ("hitopk", "inter all-gather", 0.27),
    ("hitopk", "intra all-gather", 1e-6),
    ("hitopk", "total", 0.18),
    ("torus", "intra reduce-scatter", 1e-6),
    ("torus", "inter all-reduce", 0.50),
    ("torus", "intra all-gather", 1e-6),
    ("torus", "total", 0.48),
    ("gtopk", "total", 0.12),
    ("qsgd", "total", 0.32),
    ("torus_reordered", "intra reduce-scatter", 1e-6),
    ("torus_reordered", "inter all-reduce", 0.50),
    ("torus_reordered", "intra all-gather", 1e-6),
    ("torus_reordered", "total", 0.48),
    ("hitopk_deadline", "intra reduce-scatter", 1e-6),
    ("hitopk_deadline", "top-k compression", 1e-6),
    ("hitopk_deadline", "inter all-gather", 0.18),
    ("hitopk_deadline", "intra all-gather", 1e-6),
    ("hitopk_deadline", "total", 0.12),
    ("oksparse", "intra reduce-scatter", 1e-6),
    ("oksparse", "top-k compression", 1e-6),
    ("oksparse", "inter split", 0.06),
    ("oksparse", "inter gather-merged", 0.10),
    ("oksparse", "intra all-gather", 1e-6),
    ("oksparse", "total", 0.06),
    ("naiveag", "all-gather values", 0.80),
    ("naiveag", "all-gather indices", 0.70),
    ("naiveag", "total", 0.75),
];

/// Builds the cluster for a cost case: NVLink-class intra links and
/// VPC-Ethernet inter links at the requested line rate (same construction
/// as the cloud presets, parameterised on bandwidth).
pub fn cluster(nodes: usize, gpus: usize, gbps: f64) -> ClusterSpec {
    ClusterSpec {
        nodes,
        gpus_per_node: gpus,
        intra: LinkSpec::from_bandwidth(NVLINK_ALPHA, NVLINK_BW),
        inter: LinkSpec::from_bandwidth(ETH_ALPHA, gbps * 1e9 / 8.0 * ETH_EFFICIENCY),
    }
}

fn chunk(total: usize, parts: usize) -> usize {
    total.div_ceil(parts.max(1))
}

/// One analytic phase: a label matching the simulator's phase label, and
/// the `[lower, upper]` closed-form bracket in seconds.
#[derive(Debug, Clone, Copy)]
pub struct AnalyticPhase {
    /// Phase label (must match the simulator's `PhaseTiming` label).
    pub label: &'static str,
    /// Latency-pipelined lower bound: `α + R·b·β` (equals `upper` for
    /// exact intra-node phases).
    pub lower: f64,
    /// The paper's serial closed form: `R·(α + b·β)`.
    pub upper: f64,
}

impl AnalyticPhase {
    fn exact(label: &'static str, seconds: f64) -> Self {
        Self {
            label,
            lower: seconds,
            upper: seconds,
        }
    }
}

/// Exact intra-node ring ReduceScatter over `p` peers of `total` bytes:
/// `(p-1)·(α + ⌈B/p⌉·β)` — Eq. 7's per-phase term. Exact because every
/// GPU both sends and receives each round, so rounds cannot overlap.
pub fn ring_reduce_scatter_seconds(p: usize, total: usize, link: LinkSpec) -> f64 {
    if p < 2 {
        return 0.0;
    }
    (p - 1) as f64 * (link.alpha + chunk(total, p) as f64 * link.beta)
}

/// Exact intra-node ring AllGather of a `block`-byte contribution over `p`
/// peers.
pub fn ring_all_gather_seconds(p: usize, block: usize, link: LinkSpec) -> f64 {
    if p < 2 {
        return 0.0;
    }
    (p - 1) as f64 * (link.alpha + block as f64 * link.beta)
}

/// Bracket for an `rounds`-round phase moving `bytes_per_round` per NIC
/// over `link`: `[α + R·b·β, R·(α + b·β)]`.
pub fn round_bracket(rounds: usize, bytes_per_round: usize, link: LinkSpec) -> (f64, f64) {
    if rounds == 0 {
        return (0.0, 0.0);
    }
    let serialized = rounds as f64 * bytes_per_round as f64 * link.beta;
    (
        link.alpha + serialized,
        rounds as f64 * link.alpha + serialized,
    )
}

/// Bracket for the inter-node grouped AllGather of Eqs. 8–10: `n`
/// concurrent streams share each node's NIC, so every one of the `m-1`
/// rounds serializes `n·block` bytes per NIC.
pub fn inter_group_all_gather_bracket(
    m: usize,
    n: usize,
    block: usize,
    link: LinkSpec,
) -> (f64, f64) {
    if m < 2 {
        return (0.0, 0.0);
    }
    round_bracket(m - 1, n * block, link)
}

/// Closed-form brackets for one cost case: per-phase entries (only the
/// synthetic `total` row when the simulator reports no phases).
pub fn analytic(case: &CostCase, spec: &ClusterSpec) -> Vec<AnalyticPhase> {
    let (m, n, d) = (case.nodes, case.gpus, case.d);
    match case.collective.as_str() {
        // The deadline twin over a clean plan pays exactly Eq. 9/10: the
        // budget covers every clean hop, so nothing is abandoned.
        "hitopk" | "hitopk_deadline" => {
            // Eq. 9/10: intra RS, top-k, two sequential inter AllGathers of
            // the k̃-entry shard selections, intra AllGather of the sparse
            // (or dense, whichever is smaller) aggregated shard.
            let k = (((d as f64 * case.rho) / n as f64).round() as usize).max(1);
            let t1 = ring_reduce_scatter_seconds(n, d * 4, spec.intra);
            // Values then indices: 2(m-1) inter rounds in one pipelined
            // phase (the second gather's latency hides behind the first's
            // byte stream, so the phase pays α once at the floor).
            let (g_lo, g_hi) = if m < 2 {
                (0.0, 0.0)
            } else {
                round_bracket(2 * (m - 1), n * k * 4, spec.inter)
            };
            let shard_bytes = (m * k * 8).min(chunk(d, n) * 4);
            let t4 = ring_all_gather_seconds(n, shard_bytes, spec.intra);
            let phases = vec![
                AnalyticPhase::exact("intra reduce-scatter", t1),
                AnalyticPhase::exact("top-k compression", TOPK_SECONDS),
                AnalyticPhase {
                    label: "inter all-gather",
                    lower: g_lo,
                    upper: g_hi,
                },
                AnalyticPhase::exact("intra all-gather", t4),
            ];
            with_total(phases)
        }
        // O(k) sparse allreduce: hitopk's intra phases around a
        // split–merge–gather inter exchange. The split is ReduceScatter-
        // shaped over the k̃·8-byte selection (m−1 rounds of ⌈k̃·8/m⌉ per
        // stream); the gather moves each member's merged sublist, sized by
        // the modeled selection overlap [`COST_OK_OVERLAP`].
        "oksparse" => {
            let k = (((d as f64 * case.rho) / n as f64).round() as usize).max(1);
            let t1 = ring_reduce_scatter_seconds(n, d * 4, spec.intra);
            let (s_lo, s_hi) = if m < 2 {
                (0.0, 0.0)
            } else {
                round_bracket(m - 1, n * chunk(k * 8, m), spec.inter)
            };
            let merged =
                (((k as f64 / m as f64) * (1.0 + (1.0 - COST_OK_OVERLAP) * (m - 1) as f64)).round()
                    as usize)
                    .max(1);
            let (g_lo, g_hi) = if m < 2 {
                (0.0, 0.0)
            } else {
                round_bracket(m - 1, n * merged * 8, spec.inter)
            };
            let shard_bytes = (m * k * 8).min(chunk(d, n) * 4);
            let t5 = ring_all_gather_seconds(n, shard_bytes, spec.intra);
            let phases = vec![
                AnalyticPhase::exact("intra reduce-scatter", t1),
                AnalyticPhase::exact("top-k compression", TOPK_SECONDS),
                AnalyticPhase {
                    label: "inter split",
                    lower: s_lo,
                    upper: s_hi,
                },
                AnalyticPhase {
                    label: "inter gather-merged",
                    lower: g_lo,
                    upper: g_hi,
                },
                AnalyticPhase::exact("intra all-gather", t5),
            ];
            with_total(phases)
        }
        // Reordering only permutes which node follows which on the inter
        // rings; on the homogeneous modeled fabric every permutation pays
        // the same Eq. 8 bracket.
        "torus" | "torus_reordered" => {
            // Eq. 8: intra RS, n concurrent inter ring AllReduces of the
            // shards (2(m-1) rounds of ⌈⌈B/n⌉/m⌉ bytes per stream), intra
            // AllGather of the shard.
            let total = d * 4;
            let shard = chunk(total, n);
            let t1 = ring_reduce_scatter_seconds(n, total, spec.intra);
            let (lo, hi) = if m < 2 {
                (0.0, 0.0)
            } else {
                round_bracket(2 * (m - 1), n * chunk(shard, m), spec.inter)
            };
            let t3 = ring_all_gather_seconds(n, shard, spec.intra);
            let phases = vec![
                AnalyticPhase::exact("intra reduce-scatter", t1),
                AnalyticPhase {
                    label: "inter all-reduce",
                    lower: lo,
                    upper: hi,
                },
                AnalyticPhase::exact("intra all-gather", t3),
            ];
            with_total(phases)
        }
        "gtopk" => {
            // log₂P recursive-doubling rounds of the k-entry sparse set:
            // intra-node link for rounds pairing GPUs of one node
            // (mask < n), per-NIC serialized Ethernet otherwise. Lower
            // bound: all bytes serialized plus one worst-round latency.
            let p = m * n;
            let k = global_k(d, case.rho);
            let block = k * 8;
            let mut upper = 0.0;
            let mut bytes_time = 0.0;
            let mut max_alpha: f64 = 0.0;
            let mut mask = 1usize;
            while mask < p {
                let (alpha, t) = if mask < n {
                    (spec.intra.alpha, block as f64 * spec.intra.beta)
                } else {
                    (spec.inter.alpha, (n * block) as f64 * spec.inter.beta)
                };
                upper += alpha + t;
                bytes_time += t;
                max_alpha = max_alpha.max(alpha);
                mask <<= 1;
            }
            vec![AnalyticPhase {
                label: "total",
                lower: max_alpha + bytes_time,
                upper,
            }]
        }
        "qsgd" => {
            // Flat ring AllGather of every rank's packed codes: P-1 rounds
            // whose critical hop each round is an inter-node boundary edge.
            let p = m * n;
            let block = (d * QSGD_BITS).div_ceil(8) + 4;
            let (lo, hi) = if p < 2 {
                (0.0, 0.0)
            } else {
                round_bracket(p - 1, block, spec.inter)
            };
            vec![AnalyticPhase {
                label: "total",
                lower: lo,
                upper: hi,
            }]
        }
        _ => {
            // naiveag (Eq. 3's flat path): two sequential flat ring
            // AllGathers — FP32 values then int64 indices — inflated by
            // the host staging factor.
            let p = m * n;
            let k = global_k(d, case.rho);
            let value_bytes = (k as f64 * 4.0 * NAIVE_STAGING) as usize;
            let index_bytes = (k as f64 * 8.0 * NAIVE_STAGING) as usize;
            let (rounds, _) = if p < 2 { (0, 0) } else { (p - 1, 0) };
            let (v_lo, v_hi) = round_bracket(rounds, value_bytes, spec.inter);
            let (i_lo, i_hi) = round_bracket(rounds, index_bytes, spec.inter);
            let phases = vec![
                AnalyticPhase {
                    label: "all-gather values",
                    lower: v_lo,
                    upper: v_hi,
                },
                AnalyticPhase {
                    label: "all-gather indices",
                    lower: i_lo,
                    upper: i_hi,
                },
            ];
            with_total(phases)
        }
    }
}

/// Appends the synthetic `total` row (sum of both bracket edges).
fn with_total(mut phases: Vec<AnalyticPhase>) -> Vec<AnalyticPhase> {
    let lower = phases.iter().map(|p| p.lower).sum();
    let upper = phases.iter().map(|p| p.upper).sum();
    phases.push(AnalyticPhase {
        label: "total",
        lower,
        upper,
    });
    phases
}

fn simulate(case: &CostCase, spec: &ClusterSpec) -> CollectiveTiming {
    let mut sim = NetSim::new(*spec);
    match case.collective.as_str() {
        "hitopk" => sim_hitopk(&mut sim, spec, case.d, 4, case.rho, TOPK_SECONDS),
        "hitopk_deadline" => {
            sim.inject_faults(
                FaultPlan::new(0),
                SimResilience::deadline_bounded(
                    COST_DEADLINE_MULT,
                    spec.inter.alpha,
                    spec.inter.beta,
                ),
            );
            sim_hitopk(&mut sim, spec, case.d, 4, case.rho, TOPK_SECONDS)
        }
        "oksparse" => sim_ok_sparse(
            &mut sim,
            spec,
            case.d,
            4,
            case.rho,
            TOPK_SECONDS,
            COST_OK_OVERLAP,
        ),
        "torus" => sim_torus_all_reduce(&mut sim, spec, case.d * 4),
        "torus_reordered" => {
            // A non-identity order (node 0 first, the rest reversed) so the
            // reordered scheduler itself is what the bracket validates.
            let order: Vec<usize> = std::iter::once(0).chain((1..spec.nodes).rev()).collect();
            sim_torus_all_reduce_reordered(&mut sim, spec, case.d * 4, &order)
        }
        "gtopk" => sim_gtopk_all_reduce(&mut sim, spec, global_k(case.d, case.rho), 4),
        "qsgd" => sim_quantized_all_reduce(&mut sim, spec, case.d, QSGD_BITS),
        _ => sim_naive_sparse_all_gather(&mut sim, spec, global_k(case.d, case.rho)),
    }
}

fn looseness_ceiling(collective: &str, phase: &str) -> Option<f64> {
    TOLERANCES
        .iter()
        .find(|(c, p, _)| *c == collective && *p == phase)
        .map(|(_, _, hi)| *hi)
}

/// Runs one cost-model case.
pub fn run(index: usize, case: &CostCase) -> CaseResult {
    let mut ck = Checks::new();
    let spec = cluster(case.nodes, case.gpus, case.gbps);
    let timing = simulate(case, &spec);
    let forms = analytic(case, &spec);

    // Pair simulated phase timings with their closed-form brackets by
    // label; the synthetic "total" row compares against the makespan.
    for form in &forms {
        let sim_seconds = if form.label == "total" {
            timing.total
        } else {
            match timing.phases.iter().find(|p| p.label == form.label) {
                Some(p) => p.seconds,
                None => {
                    ck.fail(
                        form.label,
                        format!("simulator reported no phase `{}`", form.label),
                    );
                    continue;
                }
            }
        };
        let Some(ceiling) = looseness_ceiling(&case.collective, form.label) else {
            ck.fail(
                form.label,
                format!("no tolerance entry for {}/{}", case.collective, form.label),
            );
            continue;
        };
        if form.upper == 0.0 {
            ck.check(form.label, sim_seconds == 0.0, || {
                format!("analytic bracket is 0 but sim={}", fmt_f64(sim_seconds))
            });
            continue;
        }
        let in_bracket = sim_seconds >= form.lower * (1.0 - BRACKET_SLACK)
            && sim_seconds <= form.upper * (1.0 + BRACKET_SLACK);
        let looseness = (form.upper - sim_seconds) / form.upper;
        ck.check(form.label, in_bracket && looseness <= ceiling, || {
            format!(
                "sim={} bracket=[{}, {}] looseness={} ceiling={}",
                fmt_f64(sim_seconds),
                fmt_f64(form.lower),
                fmt_f64(form.upper),
                fmt_f64(looseness),
                fmt_f64(ceiling)
            )
        });
    }

    // Any simulated phase without a closed form would mean the encoding
    // drifted from the simulator's schedule — surface it.
    for p in &timing.phases {
        if !forms.iter().any(|f| f.label == p.label) {
            ck.fail(
                "phase-coverage",
                format!("simulator phase `{}` has no analytic form", p.label),
            );
        }
    }

    let params = format!(
        "nodes={} gpus={} d={} rho={} gbps={}",
        case.nodes, case.gpus, case.d, case.rho, case.gbps
    );
    ck.into_result(index, "cost", &case.collective, "-", params)
}

/// Observed bracket placement for a case: `(label, lower, sim, upper)` per
/// phase — used by the calibration test to keep the pinned [`TOLERANCES`]
/// ceilings honest against what the corpus actually exhibits.
pub fn bracket_report(case: &CostCase) -> Vec<(String, f64, f64, f64)> {
    let spec = cluster(case.nodes, case.gpus, case.gbps);
    let timing = simulate(case, &spec);
    analytic(case, &spec)
        .iter()
        .filter(|f| f.upper > 0.0)
        .map(|f| {
            let sim_seconds = if f.label == "total" {
                timing.total
            } else {
                timing
                    .phases
                    .iter()
                    .find(|p| p.label == f.label)
                    .map(|p| p.seconds)
                    .unwrap_or(0.0)
            };
            (f.label.to_string(), f.lower, sim_seconds, f.upper)
        })
        .collect()
}
