//! Cross-plane conformance harness: oracle differential fuzzing,
//! cost-model validation, and metamorphic compressor properties.
//!
//! The repo's two planes — the *correctness plane* (`cloudtrain-collectives`
//! moving real bytes between threads) and the *performance plane*
//! (`cloudtrain-simnet` charging α–β time for the same schedules) — evolved
//! in parallel. This crate is the harness that ties them together, driven by
//! a persisted seed corpus so every divergence ever found becomes a
//! permanent regression test. Three engines:
//!
//! * [`oracle`] — every collective is run against a single-process dense
//!   reference over the corpus's tensor shapes, topologies, compressor
//!   choices and fault parameters: bitwise cross-replica equality and
//!   determinism for all paths, sequential-sum equivalence for dense paths,
//!   and error-feedback *mass-conservation ledgers* (within documented
//!   tolerances) for sparse paths.
//! * [`costmodel`] — an executable encoding of the paper's cost model
//!   (Eqs. 7–10) cross-checked against `simnet` timeline makespans over the
//!   corpus's (nodes, GPUs, density, bandwidth) grid, failing on relative
//!   divergence outside a pinned per-phase tolerance table.
//! * [`metamorphic`] — permutation equivariance, scaling homogeneity and
//!   k-monotonicity for every compressor in `cloudtrain-compress`, with
//!   per-operator property strength documented in DESIGN.md §10.
//!
//! The harness is fully deterministic: no wall clocks, no unseeded RNG, and
//! all report containers are ordered, so two runs over the same corpus emit
//! byte-identical JSONL and table output (CI runs it twice and `cmp`s).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod corpus;
pub mod costmodel;
pub mod metamorphic;
pub mod oracle;
pub mod report;

pub use corpus::Case;
pub use report::{CaseResult, ConformanceReport};

/// The persisted seed corpus shipped with the crate.
///
/// Every line is a pinned regression case; divergences found by fuzzing are
/// appended here (with a comment naming the failure) so they re-run forever.
pub fn shipped_corpus() -> &'static str {
    include_str!("../corpus/seed.corpus")
}

/// Parses and runs a corpus, returning the assembled report.
///
/// # Errors
/// Returns a message naming the offending line when the corpus text does
/// not parse or a case fails validation (unknown collective, non-power-of-
/// two world for RHD/gTop-k, and so on). Check *failures* are not errors:
/// they are recorded per case in the report as divergences.
pub fn run_corpus(text: &str) -> Result<ConformanceReport, String> {
    let cases = corpus::parse(text)?;
    Ok(run_cases(&cases))
}

/// Runs an already-parsed case list in order.
pub fn run_cases(cases: &[Case]) -> ConformanceReport {
    let mut report = ConformanceReport::new();
    for (i, case) in cases.iter().enumerate() {
        let result = match case {
            Case::Oracle(c) => oracle::run(i, c),
            Case::Cost(c) => costmodel::run(i, c),
            Case::Meta(c) => metamorphic::run(i, c),
        };
        report.push(result);
    }
    report
}

/// Deterministically expands `count` extra oracle fuzz cases from `seed`.
///
/// Shapes, densities and compressors are drawn from a seeded RNG, so a
/// `(count, seed)` pair always names the same case list: a divergence found
/// under fuzzing is reproduced by re-running with the same pair, then
/// pinned by appending the printed corpus line to the seed corpus.
pub fn expand_fuzz(count: usize, seed: u64) -> Vec<Case> {
    use cloudtrain_tensor::init;
    let mut rng = init::rng_from_seed(seed ^ FUZZ_SALT);
    let mut out = Vec::with_capacity(count);
    let collectives = [
        "ring",
        "tree",
        "torus",
        "rhd",
        "hitopk",
        "hitopk_ef",
        "gtopk",
        "naiveag",
        "oksparse",
        "oksparse_ef",
    ];
    let comps = ["sorttopk", "quicktopk", "mstopk", "dgc", "randomk"];
    for i in 0..count {
        let name = collectives[pick(&mut rng, collectives.len())];
        // RHD and gTop-k need a power-of-two world; others take any grid.
        let (m, n) = match name {
            "rhd" | "gtopk" => {
                let m = 1usize << pick(&mut rng, 3);
                let n = 1usize << pick(&mut rng, 3);
                (m, n)
            }
            _ => (1 + pick(&mut rng, 4), 1 + pick(&mut rng, 4)),
        };
        let d = 8 + pick(&mut rng, 400);
        let rho = [0.02, 0.05, 0.1, 0.25][pick(&mut rng, 4)];
        let comp = comps[pick(&mut rng, comps.len())];
        let case_seed = seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(i as u64);
        out.push(Case::Oracle(corpus::OracleCase {
            collective: name.to_string(),
            m,
            n,
            d,
            rho,
            comp: if matches!(name, "ring" | "tree" | "torus" | "rhd") {
                "-".to_string()
            } else {
                comp.to_string()
            },
            seed: case_seed,
            drops: 0.0,
            degrade: 0.0,
        }));
    }
    out
}

/// Uniform draw in `0..n` from a seeded RNG (no ambient randomness).
fn pick(rng: &mut rand::rngs::StdRng, n: usize) -> usize {
    use rand::RngExt;
    let f: f32 = rng.random();
    ((f * n as f32) as usize).min(n.saturating_sub(1))
}

/// Domain-separation salt for the fuzz RNG stream.
const FUZZ_SALT: u64 = 0xF0CC_A5E5_0000_0001;
