//! Byte-stable conformance report: per-case results, the coverage matrix,
//! and JSONL / human-table rendering through the `cloudtrain-obs` registry.
//!
//! Determinism contract: rows appear in corpus order with zero-padded ids,
//! the coverage matrix is a fixed enumeration (so omissions are visible as
//! `MISSING`, never silently absent), all floats are rendered with
//! [`cloudtrain_obs::fmt_f64`], and no wall-clock or environment state is
//! consulted — two runs over the same corpus are byte-identical.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use cloudtrain_obs::Registry;

/// Outcome of one corpus case.
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Stable row id, `case-NNN` in corpus order.
    pub id: String,
    /// Engine that produced the row: `oracle`, `cost`, or `meta`.
    pub kind: &'static str,
    /// Collective or property under test.
    pub target: String,
    /// Compressor name, `-` when the case takes none.
    pub compressor: String,
    /// Canonical parameter string (the corpus line tail).
    pub params: String,
    /// Number of individual checks the case ran.
    pub checks: usize,
    /// Failed checks, in execution order; empty means the case passed.
    pub failures: Vec<String>,
}

impl CaseResult {
    /// Whether every check passed.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Accumulates one check sequence for a case; engines use this to record
/// pass/fail without panicking, so one divergence never hides the next.
#[derive(Debug, Default)]
pub struct Checks {
    count: usize,
    failures: Vec<String>,
}

impl Checks {
    /// New empty check sequence.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one named check; `detail` is only rendered on failure.
    pub fn check(&mut self, name: &str, pass: bool, detail: impl FnOnce() -> String) {
        self.count += 1;
        if !pass {
            self.failures.push(format!("{name}: {}", detail()));
        }
    }

    /// Records an unconditional failure (e.g. a malformed intermediate).
    pub fn fail(&mut self, name: &str, detail: String) {
        self.count += 1;
        self.failures.push(format!("{name}: {detail}"));
    }

    /// Finalises into a [`CaseResult`].
    pub fn into_result(
        self,
        index: usize,
        kind: &'static str,
        target: &str,
        compressor: &str,
        params: String,
    ) -> CaseResult {
        CaseResult {
            id: format!("case-{index:03}"),
            kind,
            target: target.to_string(),
            compressor: compressor.to_string(),
            params,
            checks: self.count,
            failures: self.failures,
        }
    }
}

/// The full collective × compressor pairing matrix the harness must cover
/// (acceptance criterion: every pairing enumerated so omissions are
/// visible). Dense and quantized paths pair with `-`.
pub fn expected_pairings() -> Vec<(&'static str, &'static str)> {
    let mut out = Vec::new();
    for coll in [
        "ring",
        "tree",
        "torus",
        "rhd",
        "tree_bucketed",
        "torus_bucketed",
        "ring_res",
        "torus_res",
        "ring_reordered",
        "torus_reordered",
        "ring_deadline",
        "qsgd",
        "terngrad",
        "scaledsign",
    ] {
        out.push((coll, "-"));
    }
    for coll in [
        "hitopk",
        "hitopk_fused",
        "hitopk_ef",
        "hitopk_ef_fused",
        "hitopk_ef_res",
        "hitopk_ef_fused_res",
        "hitopk_ef_reordered",
        "hitopk_ef_deadline",
        "gtopk",
        "gtopk_ef_res",
        "naiveag",
        "oksparse",
        "oksparse_ef",
        "oksparse_ef_res",
    ] {
        for comp in crate::corpus::COMPRESSORS {
            out.push((coll, *comp));
        }
    }
    out
}

/// Assembled report over a whole corpus run.
#[derive(Debug, Default)]
pub struct ConformanceReport {
    results: Vec<CaseResult>,
}

impl ConformanceReport {
    /// New empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one case result.
    pub fn push(&mut self, result: CaseResult) {
        self.results.push(result);
    }

    /// All case rows in corpus order.
    pub fn results(&self) -> &[CaseResult] {
        &self.results
    }

    /// Number of cases whose checks all passed.
    pub fn passed(&self) -> usize {
        self.results.iter().filter(|r| r.passed()).count()
    }

    /// Number of diverging cases.
    pub fn divergences(&self) -> usize {
        self.results.len() - self.passed()
    }

    /// Total individual checks run.
    pub fn total_checks(&self) -> usize {
        self.results.iter().map(|r| r.checks).sum()
    }

    /// Coverage matrix: every expected pairing with its covered flag, in
    /// fixed enumeration order.
    pub fn coverage(&self) -> Vec<(&'static str, &'static str, bool)> {
        let mut seen: BTreeMap<(String, String), bool> = BTreeMap::new();
        for r in &self.results {
            if r.kind == "oracle" {
                seen.insert((r.target.clone(), r.compressor.clone()), true);
            }
        }
        expected_pairings()
            .into_iter()
            .map(|(coll, comp)| {
                let covered = seen.contains_key(&(coll.to_string(), comp.to_string()));
                (coll, comp, covered)
            })
            .collect()
    }

    /// Number of expected pairings not exercised by any oracle case.
    pub fn coverage_missing(&self) -> usize {
        self.coverage().iter().filter(|(_, _, c)| !c).count()
    }

    /// Summary counters published through the obs registry (the JSONL
    /// summary section is the registry's own byte-stable rendering).
    pub fn registry(&self) -> Registry {
        let mut reg = Registry::new();
        reg.counter_add("conformance/cases", self.results.len() as u64);
        reg.counter_add("conformance/cases_pass", self.passed() as u64);
        reg.counter_add("conformance/divergences", self.divergences() as u64);
        reg.counter_add("conformance/checks", self.total_checks() as u64);
        let cov = self.coverage();
        reg.counter_add("conformance/coverage_expected", cov.len() as u64);
        reg.counter_add(
            "conformance/coverage_covered",
            cov.iter().filter(|(_, _, c)| *c).count() as u64,
        );
        reg.counter_add(
            "conformance/coverage_missing",
            self.coverage_missing() as u64,
        );
        for (kind, key) in [
            ("oracle", "conformance/cases_oracle"),
            ("cost", "conformance/cases_cost"),
            ("meta", "conformance/cases_meta"),
        ] {
            reg.counter_add(
                key,
                self.results.iter().filter(|r| r.kind == kind).count() as u64,
            );
        }
        reg
    }

    /// Human-readable table: case rows, the coverage matrix, and a summary
    /// line. Byte-stable across runs.
    pub fn table(&self) -> String {
        let mut out = String::new();
        out.push_str("cloudtrain conformance report\n");
        out.push_str("=============================\n\n");
        let _ = writeln!(
            out,
            "{:<9} {:<7} {:<14} {:<10} {:>6}  {:<8} detail",
            "id", "kind", "target", "comp", "checks", "status"
        );
        let _ = writeln!(out, "{}", "-".repeat(72));
        for r in &self.results {
            let status = if r.passed() { "pass" } else { "DIVERGE" };
            let detail = r.failures.first().map(String::as_str).unwrap_or("");
            let _ = writeln!(
                out,
                "{:<9} {:<7} {:<14} {:<10} {:>6}  {:<8} {}",
                r.id, r.kind, r.target, r.compressor, r.checks, status, detail
            );
            for extra in r.failures.iter().skip(1) {
                let _ = writeln!(out, "{:>60}  {}", "", extra);
            }
        }
        out.push_str("\ncoverage (collective x compressor)\n");
        let _ = writeln!(out, "{}", "-".repeat(40));
        for (coll, comp, covered) in self.coverage() {
            let _ = writeln!(
                out,
                "{:<14} {:<10} {}",
                coll,
                comp,
                if covered { "covered" } else { "MISSING" }
            );
        }
        let _ = writeln!(
            out,
            "\nsummary: cases={} pass={} diverge={} checks={} coverage={}/{}",
            self.results.len(),
            self.passed(),
            self.divergences(),
            self.total_checks(),
            self.coverage().iter().filter(|(_, _, c)| *c).count(),
            self.coverage().len(),
        );
        out
    }

    /// JSONL export: one object per case, one per coverage cell, then the
    /// obs-registry summary lines. Byte-stable across runs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.results {
            let _ = write!(
                out,
                "{{\"case\":\"{}\",\"kind\":\"{}\",\"target\":\"{}\",\"comp\":\"{}\",\"params\":\"{}\",\"checks\":{},\"status\":\"{}\",\"failures\":[",
                json_escape(&r.id),
                json_escape(r.kind),
                json_escape(&r.target),
                json_escape(&r.compressor),
                json_escape(&r.params),
                r.checks,
                if r.passed() { "pass" } else { "diverge" },
            );
            for (i, f) in r.failures.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{}\"", json_escape(f));
            }
            out.push_str("]}\n");
        }
        for (coll, comp, covered) in self.coverage() {
            let _ = writeln!(
                out,
                "{{\"coverage\":\"{coll}/{comp}\",\"covered\":{covered}}}"
            );
        }
        out.push_str(&self.registry().to_jsonl());
        out
    }
}

/// Minimal JSON string escaping for report fields (quotes, backslashes and
/// control characters; everything the harness emits is ASCII).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ConformanceReport {
        let mut rep = ConformanceReport::new();
        let mut ok = Checks::new();
        ok.check("identity", true, || unreachable!());
        rep.push(ok.into_result(0, "oracle", "ring", "-", "m=2 n=2 d=16 seed=1".into()));
        let mut bad = Checks::new();
        bad.check("identity", false, || "rank 1 differs".to_string());
        rep.push(bad.into_result(1, "meta", "perm", "dgc", "d=64 k=8 seed=2".into()));
        rep
    }

    #[test]
    fn counts_and_status() {
        let rep = sample();
        assert_eq!(rep.passed(), 1);
        assert_eq!(rep.divergences(), 1);
        assert_eq!(rep.total_checks(), 2);
        let reg = rep.registry();
        assert_eq!(reg.counter("conformance/divergences"), 1);
    }

    #[test]
    fn rendering_is_deterministic_and_flags_divergence() {
        let rep = sample();
        assert_eq!(rep.table(), rep.table());
        assert_eq!(rep.to_jsonl(), rep.to_jsonl());
        assert!(rep.table().contains("DIVERGE"));
        assert!(rep.to_jsonl().contains("\"status\":\"diverge\""));
        // The coverage matrix enumerates missing pairings.
        assert!(rep.table().contains("MISSING"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
