//! Metamorphic compressor properties: relations that must hold between a
//! compressor's outputs on related inputs, with per-operator strength.
//!
//! | property     | sorttopk/quicktopk | mstopk | dgc | randomk |
//! |--------------|--------------------|--------|-----|---------|
//! | exactk       | structural (exactly `min(k,d)` unique in-bounds pairs) — all operators |
//! | determinism  | bitwise (fresh identically-seeded replicas agree) — all operators |
//! | perm         | strict equivariance | mass within [`MSTOPK_MASS_EPS`] | mass within [`DGC_MASS_EPS`] | index stream is value-independent |
//! | scale        | bitwise homogeneity with power-of-two factors — all operators |
//! | kmono        | subset + mass monotone | mass within [`MSTOPK_MASS_EPS`] | mass within [`DGC_MASS_EPS`] | cardinality only |
//!
//! Strict permutation equivariance cannot hold pointwise for threshold- or
//! sampling-based operators (MSTopK's bracket fill and DGC's positional
//! sampling are order-dependent by design), so those check captured-mass
//! stability instead; RandomK ignores values entirely, so its guarantee is
//! that the selected *index stream* does not depend on them. Scaling by a
//! power of two is exact in FP32 arithmetic (thresholds, means and maxima
//! all scale without rounding), so `scale` is bitwise for every operator.

use cloudtrain_tensor::init;

use crate::corpus::MetaCase;
use crate::oracle::make_compressor;
use crate::report::{CaseResult, Checks};

/// Relative captured-mass tolerance for MSTopK under permutation and
/// k-monotonicity (the bracket fill may swap boundary elements).
pub const MSTOPK_MASS_EPS: f32 = 0.05;

/// Relative captured-mass tolerance for DGC: its threshold comes from a
/// positional sample, so permuting values resamples the distribution.
pub const DGC_MASS_EPS: f32 = 0.35;

/// Power-of-two scale factors (exact in FP32).
pub const SCALE_FACTORS: &[f32] = &[0.5, 2.0];

const PERM_SALT: u64 = 0x5EED_0F0F_5EED_0F0F;
const SIGN_SALT: u64 = 0xA5A5_A5A5_0000_0003;

/// Deterministic gradient-shaped input for a meta case.
fn base_input(seed: u64, d: usize) -> Vec<f32> {
    let mut rng = init::rng_from_seed(seed);
    init::gradient_like_tensor(d, &mut rng).into_vec()
}

/// Input with pairwise-distinct magnitudes (`±(i+1)` in permuted order):
/// strict top-k equivariance is only well-defined without magnitude ties.
fn distinct_input(seed: u64, d: usize) -> Vec<f32> {
    let order = permutation(seed ^ SIGN_SALT, d);
    let mut rng = init::rng_from_seed(seed ^ PERM_SALT ^ SIGN_SALT);
    let mut signs = vec![0.0f32; d];
    init::fill_uniform(&mut signs, -1.0, 1.0, &mut rng);
    (0..d)
        .map(|i| {
            let mag = (order[i] + 1) as f32;
            if signs[i] < 0.0 {
                -mag
            } else {
                mag
            }
        })
        .collect()
}

/// Seeded permutation of `0..d` (argsort of random keys, ties by index).
fn permutation(seed: u64, d: usize) -> Vec<usize> {
    let mut rng = init::rng_from_seed(seed);
    let mut keys = vec![0.0f32; d];
    init::fill_uniform(&mut keys, 0.0, 1.0, &mut rng);
    let mut order: Vec<usize> = (0..d).collect();
    order.sort_by(|&a, &b| {
        keys[a]
            .partial_cmp(&keys[b])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    order
}

fn captured_mass(values: &[f32]) -> f32 {
    values.iter().map(|v| v.abs()).sum()
}

/// Runs one metamorphic case.
pub fn run(index: usize, case: &MetaCase) -> CaseResult {
    let mut ck = Checks::new();
    match case.property.as_str() {
        "exactk" => check_exactk(case, &mut ck),
        "determinism" => check_determinism(case, &mut ck),
        "perm" => check_perm(case, &mut ck),
        "scale" => check_scale(case, &mut ck),
        _ => check_kmono(case, &mut ck),
    }
    let params = format!("d={} k={} seed={}", case.d, case.k, case.seed);
    ck.into_result(index, "meta", &case.property, &case.comp, params)
}

fn check_exactk(c: &MetaCase, ck: &mut Checks) {
    let x = base_input(c.seed, c.d);
    let s = make_compressor(&c.comp, c.seed).compress(&x, c.k);
    let want = c.k.min(c.d);
    ck.check("cardinality", s.len() == want, || {
        format!("got {} pairs, expected {want}", s.len())
    });
    let mut idx = s.indices.clone();
    idx.sort_unstable();
    let unique = idx.windows(2).all(|w| w[0] != w[1]);
    ck.check("unique-indices", unique, || "duplicate indices".to_string());
    let in_bounds = idx.last().is_none_or(|&i| (i as usize) < c.d);
    ck.check("in-bounds", in_bounds, || {
        format!("max index {:?} for d={}", idx.last(), c.d)
    });
    ck.check("dim", s.dim == c.d, || format!("dim={} d={}", s.dim, c.d));
}

fn check_determinism(c: &MetaCase, ck: &mut Checks) {
    let x = base_input(c.seed, c.d);
    let a = make_compressor(&c.comp, c.seed).compress(&x, c.k);
    let b = make_compressor(&c.comp, c.seed).compress(&x, c.k);
    ck.check(
        "replica-bitwise",
        a.indices == b.indices
            && a.values
                .iter()
                .zip(&b.values)
                .all(|(p, q)| p.to_bits() == q.to_bits()),
        || "identically-seeded replicas disagree".to_string(),
    );
}

fn check_perm(c: &MetaCase, ck: &mut Checks) {
    let sigma = permutation(c.seed ^ PERM_SALT, c.d);
    match c.comp.as_str() {
        "sorttopk" | "quicktopk" => {
            // Strict: compressing the permuted input selects exactly the
            // permuted selection (distinct magnitudes, so no ties).
            let x = distinct_input(c.seed, c.d);
            let mut y = vec![0.0f32; c.d];
            for i in 0..c.d {
                y[sigma[i]] = x[i];
            }
            let sx = make_compressor(&c.comp, c.seed).compress(&x, c.k);
            let sy = make_compressor(&c.comp, c.seed).compress(&y, c.k);
            let dense_x = sx.densify();
            let dense_y = sy.densify();
            let equivariant = (0..c.d).all(|i| dense_y[sigma[i]].to_bits() == dense_x[i].to_bits());
            ck.check("equivariance", equivariant, || {
                "permuted selection differs from selection of permuted input".to_string()
            });
        }
        "randomk" => {
            // Value independence: the index stream only depends on the
            // seed, so any value permutation leaves it unchanged.
            let x = base_input(c.seed, c.d);
            let mut y = vec![0.0f32; c.d];
            for i in 0..c.d {
                y[sigma[i]] = x[i];
            }
            let sx = make_compressor(&c.comp, c.seed).compress(&x, c.k);
            let sy = make_compressor(&c.comp, c.seed).compress(&y, c.k);
            ck.check("value-independence", sx.indices == sy.indices, || {
                "index stream changed when values were permuted".to_string()
            });
        }
        _ => {
            // mstopk / dgc: captured mass is permutation-stable within the
            // operator's tolerance.
            let eps = if c.comp == "mstopk" {
                MSTOPK_MASS_EPS
            } else {
                DGC_MASS_EPS
            };
            let x = base_input(c.seed, c.d);
            let mut y = vec![0.0f32; c.d];
            for i in 0..c.d {
                y[sigma[i]] = x[i];
            }
            let mx = captured_mass(&make_compressor(&c.comp, c.seed).compress(&x, c.k).values);
            let my = captured_mass(&make_compressor(&c.comp, c.seed).compress(&y, c.k).values);
            let rel = (mx - my).abs() / mx.max(f32::MIN_POSITIVE);
            ck.check("mass-stability", rel <= eps, || {
                format!("mass {mx} vs {my}, rel={rel} eps={eps}")
            });
        }
    }
}

fn check_scale(c: &MetaCase, ck: &mut Checks) {
    let x = base_input(c.seed, c.d);
    let sx = make_compressor(&c.comp, c.seed).compress(&x, c.k);
    for &factor in SCALE_FACTORS {
        let scaled: Vec<f32> = x.iter().map(|v| v * factor).collect();
        let sy = make_compressor(&c.comp, c.seed).compress(&scaled, c.k);
        let indices_ok = sx.indices == sy.indices;
        let values_ok = sx
            .values
            .iter()
            .zip(&sy.values)
            .all(|(v, w)| (v * factor).to_bits() == w.to_bits());
        ck.check("homogeneity", indices_ok && values_ok, || {
            format!("selection not homogeneous under factor {factor}")
        });
    }
}

fn check_kmono(c: &MetaCase, ck: &mut Checks) {
    let x = base_input(c.seed, c.d);
    let k1 = (c.k / 2).max(1);
    let k2 = c.k;
    let s1 = make_compressor(&c.comp, c.seed).compress(&x, k1);
    let s2 = make_compressor(&c.comp, c.seed).compress(&x, k2);
    match c.comp.as_str() {
        "sorttopk" | "quicktopk" => {
            let support2: std::collections::BTreeSet<u32> = s2.indices.iter().copied().collect();
            let subset = s1.indices.iter().all(|i| support2.contains(i));
            ck.check("support-subset", subset, || {
                format!("top-{k1} support is not contained in top-{k2} support")
            });
            let (m1, m2) = (captured_mass(&s1.values), captured_mass(&s2.values));
            ck.check("mass-monotone", m2 >= m1, || {
                format!("mass({k2})={m2} < mass({k1})={m1}")
            });
        }
        "randomk" => {
            ck.check(
                "cardinality-monotone",
                s2.len() == k2.min(c.d) && s1.len() == k1.min(c.d),
                || format!("lens {} / {}", s1.len(), s2.len()),
            );
        }
        _ => {
            let eps = if c.comp == "mstopk" {
                MSTOPK_MASS_EPS
            } else {
                DGC_MASS_EPS
            };
            let (m1, m2) = (captured_mass(&s1.values), captured_mass(&s2.values));
            ck.check("mass-monotone", m2 >= m1 * (1.0 - eps), || {
                format!("mass({k2})={m2} < (1-{eps})*mass({k1})={m1}")
            });
        }
    }
}
