//! Oracle differential engine: every collective in `cloudtrain-collectives`
//! run against a single-process dense reference.
//!
//! Check families (see DESIGN.md §10 for the tolerance table):
//!
//! * **determinism** — the whole collective run twice is bitwise identical;
//! * **replica-identity** — all ranks hold bitwise-identical results;
//! * **dense-sum** — dense paths match the sequential left-fold sum within
//!   [`DENSE_TOL`] (the two sides add in different orders, so equality is
//!   up to FP32 re-association, never structural);
//! * **retry-exactness** — resilient variants under drop faults (no
//!   degradation) are *bitwise* equal to their clean counterparts: the
//!   retry ladder must deliver identical bytes;
//! * **oracle-equivalence** — sparse paths match a reference that replays
//!   the algorithm's data flow sequentially with identically-seeded
//!   compressor replicas, within [`SPARSE_TOL`];
//! * **mass-ledger** — error-feedback paths conserve gradient mass: the
//!   telescoped identity `Σ_t Σ_i compensated_{i}(t) = Σ_t aggregated(t) +
//!   Σ_i residual_i(T)` holds elementwise within [`LEDGER_TOL`], including
//!   for degraded members (whose whole compensated shard must survive in
//!   their residual).

use std::collections::BTreeSet;

use cloudtrain_collectives::deadline::{
    hitopk_all_reduce_ef_deadline, ring_all_reduce_deadline, DeadlineFaults, DeadlinePolicy,
};
use cloudtrain_collectives::fusion::{
    hitopk_all_reduce_ef_fused, hitopk_all_reduce_ef_fused_resilient, hitopk_all_reduce_fused,
};
use cloudtrain_collectives::group::run_on_group;
use cloudtrain_collectives::gtopk::gtopk_all_reduce;
use cloudtrain_collectives::hierarchical::{
    hitopk_all_reduce, hitopk_all_reduce_ef, shard_k, sparse_all_reduce_naive,
};
use cloudtrain_collectives::quantized::quantized_all_reduce;
use cloudtrain_collectives::reorder::{
    hitopk_all_reduce_ef_reordered, ring_all_reduce_reordered, torus_all_reduce_reordered,
};
use cloudtrain_collectives::resilience::{
    gtopk_all_reduce_ef_resilient, hitopk_all_reduce_ef_resilient, ring_all_reduce_resilient,
    torus_all_reduce_resilient,
};
use cloudtrain_collectives::rhd::rhd_all_reduce;
use cloudtrain_collectives::ring::ring_all_reduce;
use cloudtrain_collectives::sparse_allreduce::{
    ok_sparse_all_reduce, ok_sparse_all_reduce_ef, ok_sparse_all_reduce_ef_resilient,
};
use cloudtrain_collectives::torus::torus_all_reduce;
use cloudtrain_collectives::tree::tree_all_reduce;
use cloudtrain_collectives::{CommFaults, CommScratch, ResiliencePolicy, ResilientPeer};
use cloudtrain_compress::dgc::Dgc;
use cloudtrain_compress::exact::{QuickTopK, SortTopK};
use cloudtrain_compress::quantize::{Qsgd, Quantizer, ScaledSign, TernGrad};
use cloudtrain_compress::randomk::RandomK;
use cloudtrain_compress::{Compressor, ErrorFeedback, MsTopK};
use cloudtrain_tensor::partition::shards;
use cloudtrain_tensor::{init, ops};

use crate::corpus::OracleCase;
use crate::report::{CaseResult, Checks};

/// Absolute L∞ tolerance for dense sequential-sum equivalence (FP32
/// re-association over at most 16 ranks and 2048 elements).
pub const DENSE_TOL: f32 = 1e-4;

/// Absolute L∞ tolerance for sparse oracle equivalence: the oracle sums
/// node contributions in left-fold order while ring ReduceScatter adds in
/// rotation order, so selected values differ by FP32 re-association.
pub const SPARSE_TOL: f32 = 1e-3;

/// Absolute L∞ tolerance for error-feedback mass-conservation ledgers
/// (telescoped over [`EF_ITERS`] iterations).
pub const LEDGER_TOL: f32 = 1e-3;

/// Iterations for error-feedback cases: two, so the second iteration
/// exercises a non-zero residual compensation path.
pub const EF_ITERS: usize = 2;

/// QSGD positive levels used by the harness (8-bit codes).
pub const QSGD_LEVELS: u8 = 127;

/// Probed clean inter-node α the deadline runners size budgets from (a
/// tencent-like fabric: 50 µs per-message latency).
pub const DEADLINE_ALPHA: f64 = 5e-5;

/// Probed clean inter-node per-byte transfer time (~25 Gbps effective).
pub const DEADLINE_BETA: f64 = 4e-10;

/// Deadline budget multiplier: 5% headroom above the probed clean hop, so
/// corpus lateness jitter (the `degrade` knob) reliably produces misses
/// while a clean plan never can (`mult ≥ 1` covers the clean time).
pub const DEADLINE_MULT: f64 = 1.05;

/// Seconds of lateness jitter per unit of the corpus `degrade` knob.
const DEADLINE_JITTER_SCALE: f64 = 1e-3;

/// MSTopK threshold-search iterations (the paper's N = 30).
const MSTOPK_SAMPLINGS: usize = 30;
/// DGC sample ratio: corpus dimensions are small, so sample densely.
const DGC_SAMPLE_RATIO: f64 = 0.25;

const GRAD_SALT: u64 = 0x9E37_79B9_7F4A_7C15;
const COMP_SALT: u64 = 0xC0DE_D00D_5EED_0001;
const ITER_SALT: u64 = 0x1717_1717_1717_1717;

/// Deterministic per-rank gradient for a case seed.
pub fn grad_for(seed: u64, rank: usize, d: usize) -> Vec<f32> {
    let mut rng = init::rng_from_seed(seed ^ (rank as u64).wrapping_mul(GRAD_SALT));
    init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec()
}

fn grad_iter(seed: u64, iter: usize, rank: usize, d: usize) -> Vec<f32> {
    grad_for(seed ^ (iter as u64 + 1).wrapping_mul(ITER_SALT), rank, d)
}

/// Seed for the compressor replica owned by `rank` (the oracle constructs
/// an identically-seeded replica to replay the selection).
pub fn comp_seed(seed: u64, rank: usize) -> u64 {
    seed ^ COMP_SALT ^ (rank as u64).wrapping_mul(GRAD_SALT)
}

/// Instantiates a compressor by corpus name. Names are validated at parse
/// time; an unknown name falls back to the exact operator.
pub fn make_compressor(name: &str, seed: u64) -> Box<dyn Compressor> {
    match name {
        "quicktopk" => Box::new(QuickTopK),
        "mstopk" => Box::new(MsTopK::new(MSTOPK_SAMPLINGS, seed)),
        "dgc" => Box::new(Dgc::new(DGC_SAMPLE_RATIO, seed)),
        "randomk" => Box::new(RandomK::new(seed)),
        _ => Box::new(SortTopK),
    }
}

/// Global selection size for flat sparse collectives: `max(1, round(d·ρ))`.
pub fn global_k(d: usize, rho: f64) -> usize {
    (((d as f64) * rho).round() as usize).clamp(1, d)
}

fn bits_eq(a: &[f32], b: &[f32]) -> bool {
    a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.to_bits() == y.to_bits())
}

fn all_ranks_eq(rows: &[Vec<f32>]) -> bool {
    rows.iter().all(|r| bits_eq(r, &rows[0]))
}

fn dense_sum(seed: u64, p: usize, d: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; d];
    for r in 0..p {
        ops::add_assign(&mut acc, &grad_for(seed, r, d));
    }
    acc
}

/// Per-node dense left-fold shard sums: `sums[i]` is node `i`'s full-vector
/// sum over its `n` GPUs.
fn node_sums(seed: u64, m: usize, n: usize, d: usize) -> Vec<Vec<f32>> {
    (0..m)
        .map(|i| {
            let mut acc = vec![0.0f32; d];
            for j in 0..n {
                ops::add_assign(&mut acc, &grad_for(seed, i * n + j, d));
            }
            acc
        })
        .collect()
}

/// Runs one oracle case.
pub fn run(index: usize, case: &OracleCase) -> CaseResult {
    let mut ck = Checks::new();
    match case.collective.as_str() {
        "ring" | "tree" | "torus" | "rhd" => run_dense(case, &mut ck),
        "tree_bucketed" | "torus_bucketed" => run_dense_bucketed(case, &mut ck),
        "ring_res" | "torus_res" => run_dense_resilient(case, &mut ck),
        "ring_reordered" | "torus_reordered" => run_dense_reordered(case, &mut ck),
        "ring_deadline" => run_ring_deadline(case, &mut ck),
        "hitopk" => run_hitopk(case, &mut ck),
        "hitopk_fused" => run_hitopk_fused(case, &mut ck),
        "hitopk_ef" => run_hitopk_ef(case, &mut ck),
        "hitopk_ef_reordered" => run_hitopk_ef_reordered(case, &mut ck),
        "hitopk_ef_deadline" => run_hitopk_ef_deadline(case, &mut ck),
        "hitopk_ef_fused" => run_hitopk_ef_fused(case, &mut ck),
        "hitopk_ef_res" => run_hitopk_ef_res(case, &mut ck),
        "hitopk_ef_fused_res" => run_hitopk_ef_fused_res(case, &mut ck),
        "gtopk" => run_gtopk(case, &mut ck),
        "gtopk_ef_res" => run_gtopk_ef_res(case, &mut ck),
        "naiveag" => run_naiveag(case, &mut ck),
        "oksparse" => run_oksparse(case, &mut ck),
        "oksparse_ef" => run_oksparse_ef(case, &mut ck),
        "oksparse_ef_res" => run_oksparse_ef_res(case, &mut ck),
        "qsgd" | "terngrad" | "scaledsign" => run_quantized(case, &mut ck),
        other => ck.fail("dispatch", format!("unhandled collective `{other}`")),
    }
    let params = params_of(case);
    ck.into_result(index, "oracle", &case.collective, &case.comp, params)
}

fn params_of(c: &OracleCase) -> String {
    let mut s = format!(
        "m={} n={} d={} rho={} seed={}",
        c.m, c.n, c.d, c.rho, c.seed
    );
    if c.drops > 0.0 {
        s.push_str(&format!(" drops={}", c.drops));
    }
    if c.degrade > 0.0 {
        s.push_str(&format!(" degrade={}", c.degrade));
    }
    s
}

fn linf(a: &[f32], b: &[f32]) -> f32 {
    ops::linf_distance(a, b)
}

fn run_dense(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, seed) = (c.m, c.n, c.d, c.seed);
    let name = c.collective.clone();
    let run = || {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let members: Vec<usize> = (0..p).collect();
            match name.as_str() {
                "ring" => ring_all_reduce(peer, &mut x, &members),
                "tree" => tree_all_reduce(peer, &mut x, &members),
                "torus" => torus_all_reduce(peer, &mut x, m, n),
                _ => rhd_all_reduce(peer, &mut x),
            }
            x
        })
    };
    let a = run();
    let b = run();
    ck.check("determinism", a == b, || {
        "second run differs from the first".to_string()
    });
    ck.check("replica-identity", all_ranks_eq(&a), || {
        "ranks hold different results".to_string()
    });
    let reference = dense_sum(seed, p, d);
    ck.check(
        "dense-sum",
        ops::approx_eq(&a[0], &reference, DENSE_TOL),
        || format!("linf={} tol={DENSE_TOL}", linf(&a[0], &reference)),
    );
}

/// Fusion spans per bucketed dense case: three uneven spans (via
/// [`shards`]) so bucket boundaries land mid-vector without aligning to
/// the collective's own internal partitioning.
const DENSE_BUCKETS: usize = 3;

fn run_dense_bucketed(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, seed) = (c.m, c.n, c.d, c.seed);
    let name = c.collective.clone();
    let spans = shards(d, DENSE_BUCKETS.min(d));
    let bucketed = || {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let members: Vec<usize> = (0..p).collect();
            for sh in &spans {
                if sh.is_empty() {
                    continue;
                }
                let buf = sh.slice_mut(&mut x);
                if name == "tree_bucketed" {
                    tree_all_reduce(peer, buf, &members);
                } else {
                    torus_all_reduce(peer, buf, m, n);
                }
            }
            x
        })
    };
    let a = bucketed();
    let b = bucketed();
    ck.check("determinism", a == b, || {
        "second bucketed run differs from the first".to_string()
    });
    ck.check("replica-identity", all_ranks_eq(&a), || {
        "ranks hold different results".to_string()
    });
    let reference = dense_sum(seed, p, d);
    ck.check(
        "dense-sum",
        ops::approx_eq(&a[0], &reference, DENSE_TOL),
        || format!("linf={} tol={DENSE_TOL}", linf(&a[0], &reference)),
    );
    // Launching per fusion span must not change the result beyond the
    // collective's own reduction-order freedom. The tree reduces each
    // element along the same member tree regardless of the span extent, so
    // the bucketed launch is *bitwise* equal to the whole-tensor launch;
    // the torus re-partitions each span across ranks, which reorders the
    // FP32 accumulation, so equality there is within [`DENSE_TOL`].
    let whole = run_on_group(p, |peer| {
        let mut x = grad_for(seed, peer.rank(), d);
        let members: Vec<usize> = (0..p).collect();
        if name == "tree_bucketed" {
            tree_all_reduce(peer, &mut x, &members);
        } else {
            torus_all_reduce(peer, &mut x, m, n);
        }
        x
    });
    if name == "tree_bucketed" {
        ck.check("bucketed-whole-bitwise", bits_eq(&a[0], &whole[0]), || {
            format!(
                "bucketed tree differs from whole-tensor tree bitwise, linf={}",
                linf(&a[0], &whole[0])
            )
        });
    } else {
        ck.check(
            "bucketed-whole-close",
            ops::approx_eq(&a[0], &whole[0], DENSE_TOL),
            || format!("linf={} tol={DENSE_TOL}", linf(&a[0], &whole[0])),
        );
    }
}

fn run_dense_resilient(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, seed, drops) = (c.m, c.n, c.d, c.seed, c.drops);
    let name = c.collective.clone();
    let faulted = || {
        run_on_group(p, |peer| {
            let faults = CommFaults::new(seed).with_drops(drops);
            let mut rp = ResilientPeer::new(peer, faults, ResiliencePolicy::default());
            let mut scratch = CommScratch::new();
            let mut x = grad_for(seed, peer.rank(), d);
            let members: Vec<usize> = (0..p).collect();
            match name.as_str() {
                "ring_res" => ring_all_reduce_resilient(&mut rp, &mut x, &members, &mut scratch),
                _ => torus_all_reduce_resilient(&mut rp, &mut x, m, n, &mut scratch),
            }
            x
        })
    };
    let a = faulted();
    let b = faulted();
    ck.check("determinism", a == b, || {
        "second faulted run differs".to_string()
    });
    ck.check("replica-identity", all_ranks_eq(&a), || {
        "ranks hold different results".to_string()
    });
    // Dense traffic never degrades: the retry ladder must deliver the exact
    // bytes of the clean collective.
    let clean = run_on_group(p, |peer| {
        let mut x = grad_for(seed, peer.rank(), d);
        let members: Vec<usize> = (0..p).collect();
        if name == "ring_res" {
            ring_all_reduce(peer, &mut x, &members);
        } else {
            torus_all_reduce(peer, &mut x, m, n);
        }
        x
    });
    ck.check("retry-exactness", bits_eq(&a[0], &clean[0]), || {
        format!(
            "faulted result differs from clean bitwise, linf={}",
            linf(&a[0], &clean[0])
        )
    });
}

/// The non-identity node order every reordered runner exercises: node 0
/// first (the optimizer's canonical form), remaining nodes reversed.
fn reversed_order(m: usize) -> Vec<usize> {
    std::iter::once(0).chain((1..m).rev()).collect()
}

fn run_dense_reordered(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, seed) = (c.m, c.n, c.d, c.seed);
    let name = c.collective.clone();
    // `ring_reordered` permutes member positions of the flat p-ring;
    // `torus_reordered` permutes the m-node inter ring.
    let order = reversed_order(if name == "ring_reordered" { p } else { m });
    let run = |ord: &[usize]| {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let members: Vec<usize> = (0..p).collect();
            if name == "ring_reordered" {
                ring_all_reduce_reordered(peer, &mut x, &members, ord);
            } else {
                torus_all_reduce_reordered(peer, &mut x, m, n, ord);
            }
            x
        })
    };
    let a = run(&order);
    let b = run(&order);
    ck.check("determinism", a == b, || {
        "second reordered run differs from the first".to_string()
    });
    ck.check("replica-identity", all_ranks_eq(&a), || {
        "ranks hold different results".to_string()
    });
    let reference = dense_sum(seed, p, d);
    ck.check(
        "dense-sum",
        ops::approx_eq(&a[0], &reference, DENSE_TOL),
        || format!("linf={} tol={DENSE_TOL}", linf(&a[0], &reference)),
    );
    // Under the identity order the reordered twin must reproduce the
    // natural collective bitwise — the contract that makes reordering safe
    // to route behind a config flag.
    let identity: Vec<usize> = (0..order.len()).collect();
    let id = run(&identity);
    let plain = run_on_group(p, |peer| {
        let mut x = grad_for(seed, peer.rank(), d);
        let members: Vec<usize> = (0..p).collect();
        if name == "ring_reordered" {
            ring_all_reduce(peer, &mut x, &members);
        } else {
            torus_all_reduce(peer, &mut x, m, n);
        }
        x
    });
    ck.check(
        "identity-order-bitwise",
        id.iter().zip(&plain).all(|(x, y)| bits_eq(x, y)),
        || "identity-order reordered run differs from the natural twin bitwise".to_string(),
    );
}

fn run_ring_deadline(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (d, seed, degrade) = (c.d, c.seed, c.degrade);
    let jitter = degrade * DEADLINE_JITTER_SCALE;
    // Budget sized for the largest ReduceScatter chunk (f32 bytes), the
    // same sizing rule the trainer and tail gauntlet use.
    let policy = DeadlinePolicy::from_link(
        DEADLINE_ALPHA,
        DEADLINE_BETA,
        d.div_ceil(p) * 4,
        DEADLINE_MULT,
    );
    let run = || {
        run_on_group(p, |peer| {
            let faults = DeadlineFaults::new(seed).with_jitter(jitter);
            let mut scratch = CommScratch::new();
            let mut x = grad_for(seed, peer.rank(), d);
            let members: Vec<usize> = (0..p).collect();
            let rep =
                ring_all_reduce_deadline(peer, &mut x, &members, 0, &faults, &policy, &mut scratch);
            (x, rep)
        })
    };
    let a = run();
    let b = run();
    ck.check("determinism", a == b, || {
        "second deadline run differs from the first".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    // Misses only happen in the ReduceScatter phase and the AllGather is
    // reliable, so even a partial aggregate is replica-identical.
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    ck.check(
        "hop-accounting",
        a.iter().all(|(_, rep)| rep.hops == (p - 1) as u64),
        || format!("some rank checked a hop count != {}", p - 1),
    );
    let missed: u64 = a.iter().map(|(_, rep)| rep.missed).sum();
    let clean = run_on_group(p, |peer| {
        let mut x = grad_for(seed, peer.rank(), d);
        let members: Vec<usize> = (0..p).collect();
        ring_all_reduce(peer, &mut x, &members);
        x
    });
    if degrade == 0.0 {
        // A clean plan never misses and must be bitwise identical to the
        // plain ring — the anchor the CI tail gate pins.
        ck.check(
            "clean-bitwise",
            missed == 0 && xs.iter().zip(&clean).all(|(x, y)| bits_eq(x, y)),
            || format!("clean deadline run missed {missed} hop(s) or diverged from plain ring"),
        );
    } else {
        // Lateness jitter against the 5% headroom: hops must actually miss
        // and the discarded contributions must change the aggregate.
        ck.check("deadline-misses", missed > 0, || {
            format!("jitter={jitter} produced no misses against the {DEADLINE_MULT}x budget")
        });
        ck.check("partial-sum", !bits_eq(&xs[0], &clean[0]), || {
            "missed hops did not change the aggregate".to_string()
        });
    }
}

/// Sequential reference for HiTopKComm (Algorithm 2): per shard `j`, each
/// node's dense shard sum is compressed by an identically-seeded replica of
/// the owning rank's compressor (`rank = i·n + j`) and scatter-added in
/// node order — the same accumulation order the collective uses.
fn hitopk_oracle(c: &OracleCase) -> Vec<f32> {
    let sums = node_sums(c.seed, c.m, c.n, c.d);
    let k_full = shard_k(c.d, c.n, c.rho);
    let mut out = vec![0.0f32; c.d];
    for (j, sh) in shards(c.d, c.n).iter().enumerate() {
        if sh.is_empty() {
            continue;
        }
        let k = k_full.min(sh.len());
        let buf = sh.slice_mut(&mut out);
        for (i, sum) in sums.iter().enumerate() {
            let mut comp = make_compressor(&c.comp, comp_seed(c.seed, i * c.n + j));
            let sel = comp.compress(sh.slice(sum), k);
            ops::scatter_add(buf, &sel.indices, &sel.values);
        }
    }
    out
}

fn run_hitopk(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let comp_name = c.comp.clone();
    let run = || {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let rep = hitopk_all_reduce(peer, &mut x, m, n, rho, comp.as_mut());
            (x, rep)
        })
    };
    let a = run();
    let b = run();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second run differs from the first".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    let reference = hitopk_oracle(c);
    ck.check(
        "oracle-equivalence",
        ops::approx_eq(&xs[0], &reference, SPARSE_TOL),
        || format!("linf={} tol={SPARSE_TOL}", linf(&xs[0], &reference)),
    );
    let k_full = shard_k(d, n, rho);
    for (r, (_, rep)) in a.iter().enumerate() {
        let ok = rep.k_per_shard >= 1
            && rep.k_per_shard <= k_full
            && rep.shard_nonzeros <= m * rep.k_per_shard
            && rep.inter_bytes_sent <= 8 * rep.k_per_shard * m.saturating_sub(1);
        if !ok {
            ck.fail(
                "report-bounds",
                format!(
                    "rank {r}: k_per_shard={} shard_nonzeros={} inter_bytes={} (k_full={k_full}, m={m})",
                    rep.k_per_shard, rep.shard_nonzeros, rep.inter_bytes_sent
                ),
            );
            return;
        }
    }
    ck.check("report-bounds", true, || unreachable!());
}

/// The fused compress–reduce hop's contract is *bitwise* identity with the
/// staged pipeline it replaces — same compressor replicas, same residual
/// start, identical bytes out. Every `*_fused` runner therefore carries the
/// unfused twin's whole check family plus a `fused-unfused-bitwise` check
/// against the staged collective under identical seeds (and, for the
/// resilient variant, an identical fault schedule).
fn run_hitopk_fused(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let comp_name = c.comp.clone();
    let run = |fused: bool| {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let rep = if fused {
                hitopk_all_reduce_fused(peer, &mut x, m, n, rho, comp.as_mut())
            } else {
                hitopk_all_reduce(peer, &mut x, m, n, rho, comp.as_mut())
            };
            (x, rep)
        })
    };
    let a = run(true);
    let b = run(true);
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second fused run differs from the first".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    let reference = hitopk_oracle(c);
    ck.check(
        "oracle-equivalence",
        ops::approx_eq(&xs[0], &reference, SPARSE_TOL),
        || format!("linf={} tol={SPARSE_TOL}", linf(&xs[0], &reference)),
    );
    let unfused = run(false);
    ck.check(
        "fused-unfused-bitwise",
        a.iter()
            .zip(&unfused)
            .all(|((x, rep), (ux, urep))| bits_eq(x, ux) && rep == urep),
        || "fused hop differs from the staged pipeline bitwise".to_string(),
    );
}

/// Telescoped mass-conservation ledger shared by the EF variants: over all
/// iterations, per shard `j`, `Σ_t Σ_i compensated_{i,j}(t)` must equal
/// `Σ_t aggregated_j(t) + Σ_i residual_{i,j}(T)` elementwise. Compensated
/// mass telescopes to the raw node shard sums because each iteration's
/// compensation re-injects the previous residual.
#[allow(clippy::too_many_arguments)] // ledger identity is over exactly these inputs
fn check_ledger(
    ck: &mut Checks,
    seed: u64,
    m: usize,
    n: usize,
    d: usize,
    iters: usize,
    aggregated: &[f32],
    residuals: &[Vec<f32>],
) {
    let mut worst = 0.0f32;
    for (j, sh) in shards(d, n).iter().enumerate() {
        if sh.is_empty() {
            continue;
        }
        // Σ_t Σ_i node shard sums (mass in).
        let mut mass_in = vec![0.0f32; sh.len()];
        for t in 0..iters {
            let it_seed = if iters == 1 {
                seed
            } else {
                seed ^ (t as u64 + 1).wrapping_mul(ITER_SALT)
            };
            for sums in node_sums(it_seed, m, n, d) {
                ops::add_assign(&mut mass_in, sh.slice(&sums));
            }
        }
        // Aggregated output on this shard plus every owner's residual.
        let mut mass_out = sh.slice(aggregated).to_vec();
        for i in 0..m {
            ops::add_assign(&mut mass_out, &residuals[i * n + j]);
        }
        worst = worst.max(ops::linf_distance(&mass_in, &mass_out));
    }
    ck.check("mass-ledger", worst <= LEDGER_TOL, || {
        format!("linf={worst} tol={LEDGER_TOL}")
    });
}

fn run_hitopk_ef(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let comp_name = c.comp.clone();
    let run = || {
        run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let mut acc = vec![0.0f32; d];
            for t in 0..EF_ITERS {
                let mut x = grad_iter(seed, t, peer.rank(), d);
                hitopk_all_reduce_ef(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
                ops::add_assign(&mut acc, &x);
            }
            (acc, ef.residual().to_vec())
        })
    };
    let a = run();
    let b = run();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second run differs from the first".to_string()
    });
    let accs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&accs), || {
        "ranks hold different accumulated results".to_string()
    });
    let residuals: Vec<Vec<f32>> = a.iter().map(|(_, r)| r.clone()).collect();
    // The per-iteration gradients use the iteration-salted seed, so pass the
    // base seed and let the ledger re-derive each iteration.
    check_ledger(ck, seed, m, n, d, EF_ITERS, &accs[0], &residuals);
}

fn run_hitopk_ef_reordered(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let comp_name = c.comp.clone();
    let order = reversed_order(m);
    let run = |ord: &[usize]| {
        run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let mut scratch = CommScratch::new();
            let mut acc = vec![0.0f32; d];
            for t in 0..EF_ITERS {
                let mut x = grad_iter(seed, t, peer.rank(), d);
                hitopk_all_reduce_ef_reordered(
                    peer,
                    &mut x,
                    m,
                    n,
                    rho,
                    comp.as_mut(),
                    &mut ef,
                    ord,
                    &mut scratch,
                );
                ops::add_assign(&mut acc, &x);
            }
            (acc, ef.residual().to_vec())
        })
    };
    let a = run(&order);
    let b = run(&order);
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second reordered run differs from the first".to_string()
    });
    let accs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&accs), || {
        "ranks hold different accumulated results".to_string()
    });
    // Reordering only permutes the sparse AllGather's visit order, so the
    // mass-conservation ledger must hold exactly as for the natural twin.
    let residuals: Vec<Vec<f32>> = a.iter().map(|(_, r)| r.clone()).collect();
    check_ledger(ck, seed, m, n, d, EF_ITERS, &accs[0], &residuals);
    // Identity order must reproduce the natural EF pipeline bitwise —
    // accumulated output and final residuals both.
    let identity: Vec<usize> = (0..m).collect();
    let id = run(&identity);
    let plain = run_on_group(p, |peer| {
        let shard_len = shards(d, n)[peer.rank() % n].len();
        let mut ef = ErrorFeedback::new(shard_len);
        let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
        let mut acc = vec![0.0f32; d];
        for t in 0..EF_ITERS {
            let mut x = grad_iter(seed, t, peer.rank(), d);
            hitopk_all_reduce_ef(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
            ops::add_assign(&mut acc, &x);
        }
        (acc, ef.residual().to_vec())
    });
    ck.check(
        "identity-order-bitwise",
        id.iter()
            .zip(&plain)
            .all(|((acc, r), (uacc, ur))| bits_eq(acc, uacc) && bits_eq(r, ur)),
        || "identity-order reordered EF run differs from the natural twin bitwise".to_string(),
    );
}

fn run_hitopk_ef_deadline(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let degrade = c.degrade;
    let comp_name = c.comp.clone();
    let jitter = degrade * DEADLINE_JITTER_SCALE;
    // Budget sized for one compressed block: k values + k indices.
    let policy = DeadlinePolicy::from_link(
        DEADLINE_ALPHA,
        DEADLINE_BETA,
        8 * shard_k(d, n, rho),
        DEADLINE_MULT,
    );
    let run = |bounded: bool| {
        run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let mut scratch = CommScratch::new();
            let faults = DeadlineFaults::new(seed).with_jitter(jitter);
            let mut acc = vec![0.0f32; d];
            let mut missed = 0u64;
            for t in 0..EF_ITERS {
                let mut x = grad_iter(seed, t, peer.rank(), d);
                if bounded {
                    let (_, rep) = hitopk_all_reduce_ef_deadline(
                        peer,
                        &mut x,
                        m,
                        n,
                        rho,
                        comp.as_mut(),
                        &mut ef,
                        t as u64,
                        &faults,
                        &policy,
                        &mut scratch,
                    );
                    missed += rep.missed;
                } else {
                    hitopk_all_reduce_ef(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
                }
                ops::add_assign(&mut acc, &x);
            }
            (acc, ef.residual().to_vec(), missed)
        })
    };
    let a = run(true);
    let b = run(true);
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second deadline run differs from the first".to_string()
    });
    let accs: Vec<Vec<f32>> = a.iter().map(|(x, _, _)| x.clone()).collect();
    // The miss decision is per (instance, member), never per hop, so all
    // ranks observe the same contributed blocks.
    ck.check("replica-identity", all_ranks_eq(&accs), || {
        "ranks hold different accumulated results".to_string()
    });
    // The ledger holds even with misses: a late member's compensated shard
    // survives whole in its residual — nothing is lost, only delayed.
    let residuals: Vec<Vec<f32>> = a.iter().map(|(_, r, _)| r.clone()).collect();
    check_ledger(ck, seed, m, n, d, EF_ITERS, &accs[0], &residuals);
    let missed: u64 = a.iter().map(|(_, _, mi)| *mi).sum();
    if degrade == 0.0 {
        // A clean plan never misses and must match the plain EF twin
        // bitwise — output and residuals both.
        let clean = run(false);
        ck.check(
            "clean-bitwise",
            missed == 0
                && a.iter()
                    .zip(&clean)
                    .all(|((acc, r, _), (uacc, ur, _))| bits_eq(acc, uacc) && bits_eq(r, ur)),
            || {
                format!(
                    "clean deadline run missed {missed} contribution(s) or diverged from plain EF"
                )
            },
        );
    } else {
        ck.check("deadline-misses", missed > 0, || {
            format!("jitter={jitter} produced no misses against the {DEADLINE_MULT}x budget")
        });
    }
}

fn run_hitopk_ef_fused(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let comp_name = c.comp.clone();
    let run = |fused: bool| {
        run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let mut acc = vec![0.0f32; d];
            for t in 0..EF_ITERS {
                let mut x = grad_iter(seed, t, peer.rank(), d);
                if fused {
                    hitopk_all_reduce_ef_fused(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
                } else {
                    hitopk_all_reduce_ef(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
                }
                ops::add_assign(&mut acc, &x);
            }
            (acc, ef.residual().to_vec())
        })
    };
    let a = run(true);
    let b = run(true);
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second fused run differs from the first".to_string()
    });
    let accs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&accs), || {
        "ranks hold different accumulated results".to_string()
    });
    let residuals: Vec<Vec<f32>> = a.iter().map(|(_, r)| r.clone()).collect();
    check_ledger(ck, seed, m, n, d, EF_ITERS, &accs[0], &residuals);
    // Residual carry-over is part of the contract: both accumulated output
    // and final residuals must match the staged pipeline bitwise.
    let unfused = run(false);
    ck.check(
        "fused-unfused-bitwise",
        a.iter()
            .zip(&unfused)
            .all(|((acc, r), (uacc, ur))| bits_eq(acc, uacc) && bits_eq(r, ur)),
        || "fused EF hop differs from the staged pipeline bitwise".to_string(),
    );
}

fn run_hitopk_ef_res(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let (drops, degrade) = (c.drops, c.degrade);
    let comp_name = c.comp.clone();
    let faulted = || {
        run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let faults = CommFaults::new(seed)
                .with_drops(drops)
                .with_degrade(degrade);
            let mut rp = ResilientPeer::new(peer, faults, ResiliencePolicy::default());
            let mut scratch = CommScratch::new();
            let mut x = grad_for(seed, peer.rank(), d);
            hitopk_all_reduce_ef_resilient(
                &mut rp,
                &mut x,
                m,
                n,
                rho,
                comp.as_mut(),
                &mut ef,
                &mut scratch,
            );
            (x, ef.residual().to_vec())
        })
    };
    let a = faulted();
    let b = faulted();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second faulted run differs".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    let residuals: Vec<Vec<f32>> = a.iter().map(|(_, r)| r.clone()).collect();
    check_ledger(ck, seed, m, n, d, 1, &xs[0], &residuals);
    if degrade == 0.0 {
        // Pure drop faults: retries must reproduce the clean collective
        // bitwise (same compressor replicas, same residual start).
        let clean = run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let mut x = grad_for(seed, peer.rank(), d);
            hitopk_all_reduce_ef(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
            (x, ef.residual().to_vec())
        });
        ck.check(
            "retry-exactness",
            bits_eq(&xs[0], &clean[0].0)
                && residuals
                    .iter()
                    .zip(&clean)
                    .all(|(r, (_, cr))| bits_eq(r, cr)),
            || "faulted EF run differs from clean bitwise".to_string(),
        );
    }
}

fn run_hitopk_ef_fused_res(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let (drops, degrade) = (c.drops, c.degrade);
    let comp_name = c.comp.clone();
    let faulted = |fused: bool| {
        run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let faults = CommFaults::new(seed)
                .with_drops(drops)
                .with_degrade(degrade);
            let mut rp = ResilientPeer::new(peer, faults, ResiliencePolicy::default());
            let mut scratch = CommScratch::new();
            let mut x = grad_for(seed, peer.rank(), d);
            if fused {
                hitopk_all_reduce_ef_fused_resilient(
                    &mut rp,
                    &mut x,
                    m,
                    n,
                    rho,
                    comp.as_mut(),
                    &mut ef,
                    &mut scratch,
                );
            } else {
                hitopk_all_reduce_ef_resilient(
                    &mut rp,
                    &mut x,
                    m,
                    n,
                    rho,
                    comp.as_mut(),
                    &mut ef,
                    &mut scratch,
                );
            }
            (x, ef.residual().to_vec())
        })
    };
    let a = faulted(true);
    let b = faulted(true);
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second faulted fused run differs".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    let residuals: Vec<Vec<f32>> = a.iter().map(|(_, r)| r.clone()).collect();
    check_ledger(ck, seed, m, n, d, 1, &xs[0], &residuals);
    // The staged resilient collective consumes the identical fault
    // schedule (faults key on the instance and hop, not on call order), so
    // even under drops and degradation the fused hop must reproduce it
    // bitwise — output and residuals both.
    let unfused = faulted(false);
    ck.check(
        "fused-unfused-bitwise",
        a.iter()
            .zip(&unfused)
            .all(|((x, r), (ux, ur))| bits_eq(x, ux) && bits_eq(r, ur)),
        || "fused resilient hop differs from the staged pipeline bitwise".to_string(),
    );
    if degrade == 0.0 {
        // Pure drop faults: retries must reproduce the clean fused
        // collective bitwise (same compressor replicas, same residuals).
        let clean = run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let mut x = grad_for(seed, peer.rank(), d);
            hitopk_all_reduce_ef_fused(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
            (x, ef.residual().to_vec())
        });
        ck.check(
            "retry-exactness",
            bits_eq(&xs[0], &clean[0].0)
                && residuals
                    .iter()
                    .zip(&clean)
                    .all(|(r, (_, cr))| bits_eq(r, cr)),
            || "faulted fused EF run differs from clean bitwise".to_string(),
        );
    }
}

fn run_gtopk(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (d, seed) = (c.d, c.seed);
    let k = global_k(d, c.rho);
    let comp_name = c.comp.clone();
    let run = || {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let sent = gtopk_all_reduce(peer, &mut x, k, comp.as_mut());
            (x, sent)
        })
    };
    let a = run();
    let b = run();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second run differs from the first".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    let nnz = xs[0].iter().filter(|v| **v != 0.0).count();
    ck.check("k-bound", nnz <= k, || format!("nnz={nnz} k={k}"));
    // Every surviving coordinate must come from some rank's selection:
    // replay each rank's compressor replica and union the supports.
    let mut union: BTreeSet<u32> = BTreeSet::new();
    for r in 0..p {
        let g = grad_for(seed, r, d);
        let mut comp = make_compressor(&comp_name, comp_seed(seed, r));
        union.extend(comp.compress(&g, k.min(d)).indices.iter().copied());
    }
    let stray = xs[0]
        .iter()
        .enumerate()
        .filter(|(i, v)| **v != 0.0 && !union.contains(&(*i as u32)))
        .count();
    ck.check("support-subset", stray == 0, || {
        format!("{stray} nonzero coordinates outside the union of rank selections")
    });
    let wire_cap = (usize::BITS - p.leading_zeros() - 1) as usize * 8 * k;
    for (r, (_, sent)) in a.iter().enumerate() {
        if *sent > wire_cap {
            ck.fail(
                "wire-bound",
                format!("rank {r} sent {sent} bytes > cap {wire_cap}"),
            );
            return;
        }
    }
    ck.check("wire-bound", true, || unreachable!());
}

fn run_gtopk_ef_res(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (d, seed) = (c.d, c.seed);
    let k = global_k(d, c.rho);
    let (drops, degrade) = (c.drops, c.degrade);
    let comp_name = c.comp.clone();
    let faulted = || {
        run_on_group(p, |peer| {
            let g0 = grad_for(seed, peer.rank(), d);
            let mut x = g0.clone();
            let mut ef = ErrorFeedback::new(d);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let faults = CommFaults::new(seed)
                .with_drops(drops)
                .with_degrade(degrade);
            let mut rp = ResilientPeer::new(peer, faults, ResiliencePolicy::default());
            let mut scratch = CommScratch::new();
            gtopk_all_reduce_ef_resilient(&mut rp, &mut x, k, comp.as_mut(), &mut ef, &mut scratch);
            (x, ef.residual().to_vec(), g0)
        })
    };
    let a = faulted();
    let b = faulted();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second faulted run differs".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    let nnz = xs[0].iter().filter(|v| **v != 0.0).count();
    ck.check("k-bound", nnz <= k, || format!("nnz={nnz} k={k}"));
    // Per-rank absorb ledger: the compensated gradient is g0 (zero initial
    // residual), so residual must equal g0 exactly except on the selected
    // support, where it must be exactly zero — and a zero-sized support is
    // only legal for a degraded member.
    for (r, (_, residual, g0)) in a.iter().enumerate() {
        let mut selected = 0usize;
        let mut broken = 0usize;
        for i in 0..d {
            if residual[i].to_bits() == g0[i].to_bits() {
                continue;
            }
            selected += 1;
            if residual[i] != 0.0 {
                broken += 1;
            }
        }
        let count_ok = selected == k.min(d) || (degrade > 0.0 && selected == 0);
        if broken > 0 || !count_ok {
            ck.fail(
                "absorb-ledger",
                format!(
                    "rank {r}: selected={selected} expected={} broken={broken} (degrade={degrade})",
                    k.min(d)
                ),
            );
            return;
        }
    }
    ck.check("absorb-ledger", true, || unreachable!());
}

fn run_naiveag(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (d, seed) = (c.d, c.seed);
    let k = global_k(d, c.rho);
    let comp_name = c.comp.clone();
    let run = || {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let sent = sparse_all_reduce_naive(peer, &mut x, k, comp.as_mut());
            (x, sent)
        })
    };
    let a = run();
    let b = run();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second run differs from the first".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    // The collective zero-fills and scatter-adds rank blocks in rank order;
    // the oracle replays the identical operation sequence, so equality is
    // bitwise, not approximate.
    let mut reference = vec![0.0f32; d];
    for r in 0..p {
        let g = grad_for(seed, r, d);
        let mut comp = make_compressor(&comp_name, comp_seed(seed, r));
        let sel = comp.compress(&g, k);
        ops::scatter_add(&mut reference, &sel.indices, &sel.values);
    }
    ck.check("oracle-equivalence", bits_eq(&xs[0], &reference), || {
        format!("linf={}", linf(&xs[0], &reference))
    });
    let expect_sent = 8 * k.min(d) * (p - 1);
    for (r, (_, sent)) in a.iter().enumerate() {
        if *sent != expect_sent {
            ck.fail(
                "wire-bytes",
                format!("rank {r} sent {sent}, expected {expect_sent}"),
            );
            return;
        }
    }
    ck.check("wire-bytes", true, || unreachable!());
}

/// The O(k) sparse allreduce's contract is *bitwise* identity with the
/// HiTopKComm twin under identical compressor replicas: both accumulate
/// member contributions in inter-member order, only the wire pattern
/// (split + merged gather vs full-selection gather) differs. Every
/// `oksparse*` runner therefore carries the hitopk check family plus a
/// `hitopk-bitwise` differential against the staged twin, and bounds the
/// wire bytes by the worst-case closed form `8·(k̃ + m·k̃·(m−1))` — split
/// entries never exceed k̃, and a merged range holds at most every
/// member's whole selection (`m·k̃`; the *expected* size under selection
/// overlap is what makes the scheme O(k̃), the bound is the disjoint
/// worst case).
fn ok_wire_cap(m: usize, k: usize) -> usize {
    8 * (k + m * k * m.saturating_sub(1))
}

fn run_oksparse(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let comp_name = c.comp.clone();
    let run = || {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let rep = ok_sparse_all_reduce(peer, &mut x, m, n, rho, comp.as_mut());
            (x, rep)
        })
    };
    let a = run();
    let b = run();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second run differs from the first".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    let reference = hitopk_oracle(c);
    ck.check(
        "oracle-equivalence",
        ops::approx_eq(&xs[0], &reference, SPARSE_TOL),
        || format!("linf={} tol={SPARSE_TOL}", linf(&xs[0], &reference)),
    );
    let twin = run_on_group(p, |peer| {
        let mut x = grad_for(seed, peer.rank(), d);
        let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
        let rep = hitopk_all_reduce(peer, &mut x, m, n, rho, comp.as_mut());
        (x, rep)
    });
    ck.check(
        "hitopk-bitwise",
        a.iter().zip(&twin).all(|((x, rep), (hx, hrep))| {
            bits_eq(x, hx)
                && rep.k_per_shard == hrep.k_per_shard
                && rep.shard_nonzeros == hrep.shard_nonzeros
        }),
        || "O(k) aggregate differs from the HiTopKComm twin bitwise".to_string(),
    );
    let k_full = shard_k(d, n, rho);
    for (r, (_, rep)) in a.iter().enumerate() {
        let ok = rep.k_per_shard >= 1
            && rep.k_per_shard <= k_full
            && rep.merged_len <= m * rep.k_per_shard
            && rep.inter_bytes_sent <= ok_wire_cap(m, rep.k_per_shard);
        if !ok {
            ck.fail(
                "wire-bound",
                format!(
                    "rank {r}: k_per_shard={} merged_len={} inter_bytes={} (k_full={k_full}, m={m})",
                    rep.k_per_shard, rep.merged_len, rep.inter_bytes_sent
                ),
            );
            return;
        }
    }
    ck.check("wire-bound", true, || unreachable!());
}

fn run_oksparse_ef(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let comp_name = c.comp.clone();
    let run = |ok_path: bool| {
        run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let mut acc = vec![0.0f32; d];
            for t in 0..EF_ITERS {
                let mut x = grad_iter(seed, t, peer.rank(), d);
                if ok_path {
                    ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
                } else {
                    hitopk_all_reduce_ef(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
                }
                ops::add_assign(&mut acc, &x);
            }
            (acc, ef.residual().to_vec())
        })
    };
    let a = run(true);
    let b = run(true);
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second run differs from the first".to_string()
    });
    let accs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&accs), || {
        "ranks hold different accumulated results".to_string()
    });
    let residuals: Vec<Vec<f32>> = a.iter().map(|(_, r)| r.clone()).collect();
    check_ledger(ck, seed, m, n, d, EF_ITERS, &accs[0], &residuals);
    // Residual carry-over included: the O(k) EF pipeline must reproduce the
    // hitopk EF twin bitwise — accumulated output and final residuals both.
    let twin = run(false);
    ck.check(
        "hitopk-bitwise",
        a.iter()
            .zip(&twin)
            .all(|((acc, r), (hacc, hr))| bits_eq(acc, hacc) && bits_eq(r, hr)),
        || "O(k) EF pipeline differs from the HiTopKComm twin bitwise".to_string(),
    );
}

fn run_oksparse_ef_res(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (m, n, d, rho, seed) = (c.m, c.n, c.d, c.rho, c.seed);
    let (drops, degrade) = (c.drops, c.degrade);
    let comp_name = c.comp.clone();
    let faulted = || {
        run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let faults = CommFaults::new(seed)
                .with_drops(drops)
                .with_degrade(degrade);
            let mut rp = ResilientPeer::new(peer, faults, ResiliencePolicy::default());
            let mut scratch = CommScratch::new();
            let mut x = grad_for(seed, peer.rank(), d);
            ok_sparse_all_reduce_ef_resilient(
                &mut rp,
                &mut x,
                m,
                n,
                rho,
                comp.as_mut(),
                &mut ef,
                &mut scratch,
            );
            (x, ef.residual().to_vec())
        })
    };
    let a = faulted();
    let b = faulted();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second faulted run differs".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    let residuals: Vec<Vec<f32>> = a.iter().map(|(_, r)| r.clone()).collect();
    check_ledger(ck, seed, m, n, d, 1, &xs[0], &residuals);
    if degrade == 0.0 {
        // Pure drop faults: retries must reproduce the clean O(k)
        // collective bitwise (same compressor replicas, same residuals).
        let clean = run_on_group(p, |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut comp = make_compressor(&comp_name, comp_seed(seed, peer.rank()));
            let mut x = grad_for(seed, peer.rank(), d);
            ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, comp.as_mut(), &mut ef);
            (x, ef.residual().to_vec())
        });
        ck.check(
            "retry-exactness",
            bits_eq(&xs[0], &clean[0].0)
                && residuals
                    .iter()
                    .zip(&clean)
                    .all(|(r, (_, cr))| bits_eq(r, cr)),
            || "faulted O(k) EF run differs from clean bitwise".to_string(),
        );
    }
}

fn quantizer_bound(name: &str, g: &[f32]) -> f32 {
    match name {
        // QSGD rounds within adjacent levels of ‖x‖₂/s.
        "qsgd" => ops::l2_norm(g) / QSGD_LEVELS as f32,
        // TernGrad decodes to {0, ±max|x|}.
        "terngrad" => ops::max_abs(g),
        // ScaledSign decodes to ±mean|x|.
        _ => ops::max_abs(g) + ops::mean_abs(g),
    }
}

fn run_quantized(c: &OracleCase, ck: &mut Checks) {
    let p = c.m * c.n;
    let (d, seed) = (c.d, c.seed);
    let name = c.collective.clone();
    let run = || {
        run_on_group(p, |peer| {
            let mut x = grad_for(seed, peer.rank(), d);
            let mut q: Box<dyn Quantizer> = match name.as_str() {
                "qsgd" => Box::new(Qsgd::new(QSGD_LEVELS, comp_seed(seed, peer.rank()))),
                "terngrad" => Box::new(TernGrad::new(comp_seed(seed, peer.rank()))),
                _ => Box::new(ScaledSign),
            };
            let sent = quantized_all_reduce(peer, &mut x, q.as_mut());
            (x, sent)
        })
    };
    let a = run();
    let b = run();
    ck.check("determinism", a.iter().zip(&b).all(|(x, y)| x == y), || {
        "second run differs from the first".to_string()
    });
    let xs: Vec<Vec<f32>> = a.iter().map(|(x, _)| x.clone()).collect();
    ck.check("replica-identity", all_ranks_eq(&xs), || {
        "ranks hold different results".to_string()
    });
    // Elementwise quantization-error bound: the aggregate may deviate from
    // the dense sum by at most the sum of each rank's per-scheme bound.
    let reference = dense_sum(seed, p, d);
    let budget: f32 = (0..p)
        .map(|r| quantizer_bound(&c.collective, &grad_for(seed, r, d)))
        .sum();
    let err = linf(&xs[0], &reference);
    ck.check("quantization-bound", err <= budget + 1e-4, || {
        format!("linf={err} budget={budget}")
    });
}
