//! Property-based tests for the parallel tensor operator: the
//! partition → compute → AllGather pipeline must reproduce the serial
//! LARS rate computation (Eq. 11) **bitwise** for arbitrary worker counts
//! and ragged layer tilings — PTO removes redundancy, never precision.
//!
//! Bitwise equality holds because each layer's rate is computed whole by
//! exactly one rank with the same scalar code path the serial reference
//! uses; the AllGather only moves finished values. Any reassociation bug
//! (e.g. splitting a layer across ranks) would break `to_bits` equality
//! immediately.

use cloudtrain_collectives::group::run_on_group;
use cloudtrain_dnn::model::ParamRange;
use cloudtrain_optim::lars::{compute_rates, LarsConfig};
use cloudtrain_pto::{lars_rates, pto_scalar_map, pto_shard_map};
use cloudtrain_tensor::init;
use proptest::prelude::*;

/// Deterministic ragged layer tiling of a `total`-element vector: layer
/// lengths cycle through a seeded pattern, and the final layer absorbs the
/// remainder (possibly much shorter than the rest — the ragged shard).
fn ragged_ranges(total: usize, layers: usize, seed: u64) -> Vec<ParamRange> {
    let mut rng = init::rng_from_seed(seed);
    let mut lens = vec![0.0f32; layers];
    init::fill_uniform(&mut lens, 0.2, 1.8, &mut rng);
    let base = (total / layers).max(1);
    let mut ranges = Vec::with_capacity(layers);
    let mut off = 0;
    for (l, scale) in lens.iter().enumerate() {
        let remaining = total - off;
        let left = layers - l;
        let len = if left == 1 {
            remaining
        } else {
            ((base as f32 * scale) as usize)
                .max(1)
                .min(remaining.saturating_sub(left - 1))
                .max(1)
        };
        ranges.push(ParamRange { offset: off, len });
        off += len;
    }
    assert_eq!(off, total, "ranges must tile the vector exactly");
    ranges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Eq. 11 via PTO == serial LARS, bitwise, for arbitrary P and ragged
    /// layer tilings (including P > layers, where trailing ranks hold
    /// empty slices).
    #[test]
    fn pto_lars_is_bitwise_serial_lars(
        p in 1usize..9,
        layers in 1usize..24,
        total in 64usize..4000,
        seed in 0u64..1000,
    ) {
        let mut rng = init::rng_from_seed(seed ^ 0xBEEF);
        let params = init::gradient_like_tensor(total, &mut rng).into_vec();
        let grads = init::gradient_like_tensor(total, &mut rng).into_vec();
        let ranges = ragged_ranges(total, layers, seed);
        let cfg = LarsConfig { trust_coef: 0.01, weight_decay: 1e-4, momentum: 0.9 };
        let expect = compute_rates(&params, &grads, &ranges, &cfg);
        let results = {
            let (params, grads, ranges, cfg) =
                (params.clone(), grads.clone(), ranges.clone(), cfg);
            run_on_group(p, move |peer| lars_rates(peer, &params, &grads, &ranges, &cfg))
        };
        for (rank, r) in results.iter().enumerate() {
            prop_assert_eq!(r.len(), expect.len());
            for (l, (got, want)) in r.iter().zip(&expect).enumerate() {
                prop_assert_eq!(
                    got.to_bits(), want.to_bits(),
                    "p={} rank={} layer {} rate {} != serial {}", p, rank, l, got, want
                );
            }
        }
    }

    /// The generic scalar map is bitwise-identical to the sequential map
    /// on every rank, for any worker/item ratio (incl. P > items).
    #[test]
    fn scalar_map_is_bitwise_sequential(
        p in 1usize..9,
        items in 1usize..40,
        seed in 0u64..1000,
    ) {
        let salt = seed as f32;
        let expect: Vec<f32> =
            (0..items).map(|i| (i as f32 * 0.7 + salt).sin()).collect();
        let results = run_on_group(p, move |peer| {
            pto_scalar_map(peer, items, |i| (i as f32 * 0.7 + salt).sin())
        });
        for r in &results {
            prop_assert_eq!(r.len(), expect.len());
            for (got, want) in r.iter().zip(&expect) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }

    /// Elementwise shard maps reassemble the full vector bitwise even when
    /// the last shard is ragged (d not divisible by P).
    #[test]
    fn shard_map_reassembles_ragged_tails_bitwise(
        p in 1usize..9,
        d in 1usize..300,
        seed in 0u64..1000,
    ) {
        let mut rng = init::rng_from_seed(seed);
        let x = init::uniform_tensor(d, -2.0, 2.0, &mut rng).into_vec();
        let expect: Vec<f32> = x.iter().map(|v| v.mul_add(*v, 1.0)).collect();
        let results = {
            let x = x.clone();
            run_on_group(p, move |peer| {
                pto_shard_map(peer, &x, |shard| {
                    shard.iter().map(|v| v.mul_add(*v, 1.0)).collect()
                })
            })
        };
        for r in &results {
            prop_assert_eq!(r.len(), expect.len());
            for (got, want) in r.iter().zip(&expect) {
                prop_assert_eq!(got.to_bits(), want.to_bits());
            }
        }
    }
}

/// The paper's worked example, pinned: 161 ResNet-50 layers over 128
/// GPUs — rank 0 computes layers 1–2, rank 1 layers 3–4, and so on — and
/// the gathered rates equal the serial ones bitwise.
#[test]
fn paper_example_161_layers_128_gpus() {
    let layers = 161usize;
    let total = 161 * 37;
    let mut rng = init::rng_from_seed(0x161);
    let params = init::gradient_like_tensor(total, &mut rng).into_vec();
    let grads = init::gradient_like_tensor(total, &mut rng).into_vec();
    let ranges: Vec<ParamRange> = (0..layers)
        .map(|l| ParamRange {
            offset: l * 37,
            len: 37,
        })
        .collect();
    let cfg = LarsConfig::default();
    let expect = compute_rates(&params, &grads, &ranges, &cfg);
    let results = {
        let (params, grads, ranges, cfg) = (params.clone(), grads.clone(), ranges.clone(), cfg);
        run_on_group(128, move |peer| {
            lars_rates(peer, &params, &grads, &ranges, &cfg)
        })
    };
    for r in &results {
        assert_eq!(r.len(), expect.len());
        for (got, want) in r.iter().zip(&expect) {
            assert_eq!(got.to_bits(), want.to_bits());
        }
    }
}
