//! Analytic win/lose model for PTO (§4.2: "if the time cost of the
//! All-Gather operation is smaller than the time reduction of computing,
//! PTO can accelerate the computation").

/// Inputs to the PTO cost comparison.
#[derive(Debug, Clone, Copy)]
pub struct PtoCost {
    /// Time for one worker to run the full operation alone, seconds.
    pub full_compute: f64,
    /// Number of workers the operation is partitioned over.
    pub workers: usize,
    /// AllGather time for the result exchange, seconds.
    pub all_gather: f64,
}

impl PtoCost {
    /// Time with PTO: a 1/P slice of the compute plus the AllGather.
    pub fn with_pto(&self) -> f64 {
        self.full_compute / self.workers as f64 + self.all_gather
    }

    /// Time without PTO (every worker redundantly computes everything).
    pub fn without_pto(&self) -> f64 {
        self.full_compute
    }

    /// Whether PTO wins.
    pub fn pto_wins(&self) -> bool {
        self.with_pto() < self.without_pto()
    }

    /// Speedup factor (>1 means PTO is faster).
    pub fn speedup(&self) -> f64 {
        self.without_pto() / self.with_pto()
    }

    /// The break-even AllGather budget: PTO wins iff the AllGather costs
    /// less than `(1 - 1/P) * full_compute`.
    pub fn break_even_all_gather(&self) -> f64 {
        self.full_compute * (1.0 - 1.0 / self.workers as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_numbers_resnet_lars() {
        // §5.4: ResNet-50 LARS takes 11 ms alone, 7 ms with PTO on 128
        // GPUs -> the model must show a win of roughly that shape (the
        // AllGather of 161 scalars over 25GbE costs ~4-5 ms with latency).
        let c = PtoCost {
            full_compute: 11e-3,
            workers: 128,
            all_gather: 6.5e-3,
        };
        assert!(c.pto_wins());
        assert!((c.with_pto() - 6.6e-3).abs() < 1e-3);
        assert!(c.speedup() > 1.5);
    }

    #[test]
    fn pto_loses_when_all_gather_dominates() {
        let c = PtoCost {
            full_compute: 1e-3,
            workers: 4,
            all_gather: 5e-3,
        };
        assert!(!c.pto_wins());
        assert!(c.speedup() < 1.0);
    }

    #[test]
    fn break_even_formula() {
        let c = PtoCost {
            full_compute: 8.0,
            workers: 4,
            all_gather: 0.0,
        };
        assert!((c.break_even_all_gather() - 6.0).abs() < 1e-12);
        // At exactly break-even the two sides tie.
        let tie = PtoCost {
            all_gather: 6.0,
            ..c
        };
        assert!((tie.with_pto() - tie.without_pto()).abs() < 1e-12);
    }
}
