//! PTO: the parallel tensor operator (§4.2, Eqs. 12–14).
//!
//! After gradient aggregation every GPU holds identical tensors, yet the
//! traditional update path makes all of them redundantly compute the same
//! post-processing (e.g. the LARS layer-wise learning rates of Eq. 11).
//! PTO partitions any replicated-input / replicated-output operation over
//! the `P` workers — each computes one slice — and an AllGather shares the
//! results, trading `P×` less compute for one (tiny) collective.
//!
//! * [`pto_scalar_map`] — the generic operator over an indexed item set
//!   (items = model layers for LARS);
//! * [`pto_shard_map`] — the generic operator over a contiguous tensor
//!   partition (Eq. 13's `r^[p] = OP(g^[p])`);
//! * [`lars_rates`] — PTO applied to the LARS rate computation, the
//!   paper's flagship use;
//! * [`cost`] — the analytic win/lose model (PTO helps iff the AllGather
//!   costs less than the saved compute).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;

use cloudtrain_collectives::ring::all_gather_f32;
use cloudtrain_collectives::Peer;
use cloudtrain_dnn::model::ParamRange;
use cloudtrain_optim::lars::{rate_for_layer, LarsConfig};
use cloudtrain_tensor::partition::{item_range_for, shard_for};

/// Applies `f` to each item index, with the items partitioned over all
/// ranks of the peer's group; returns the full result vector (identical on
/// every rank, in item order).
///
/// Requirement inherited from Eq. (12): `f` must be a pure function of the
/// item index and *replicated* state, so every rank would compute the same
/// value — PTO just avoids the redundancy.
pub fn pto_scalar_map<F>(peer: &Peer, item_count: usize, f: F) -> Vec<f32>
where
    F: Fn(usize) -> f32,
{
    let members: Vec<usize> = (0..peer.size()).collect();
    let mine: Vec<f32> = item_range_for(item_count, peer.size(), peer.rank())
        .map(f)
        .collect();
    let blocks = all_gather_f32(peer, &mine, &members);
    let mut out = Vec::with_capacity(item_count);
    for b in blocks {
        out.extend(b);
    }
    debug_assert_eq!(out.len(), item_count);
    out
}

/// Applies `f` to this rank's contiguous shard of `x` and AllGathers the
/// per-shard outputs; `f` must map a shard to an equally-sized output
/// (elementwise-class operations).
pub fn pto_shard_map<F>(peer: &Peer, x: &[f32], f: F) -> Vec<f32>
where
    F: Fn(&[f32]) -> Vec<f32>,
{
    let members: Vec<usize> = (0..peer.size()).collect();
    let shard = shard_for(x.len(), peer.size(), peer.rank());
    let mine = f(shard.slice(x));
    assert_eq!(
        mine.len(),
        shard.len(),
        "pto_shard_map: op must preserve shard length"
    );
    let blocks = all_gather_f32(peer, &mine, &members);
    let mut out = Vec::with_capacity(x.len());
    for b in blocks {
        out.extend(b);
    }
    out
}

/// Global L2 norm computed with PTO: each rank reduces its contiguous
/// shard to a partial sum of squares, one tiny AllGather shares the `P`
/// partials, and every rank finishes with the identical norm — the
/// distributed form of the gradient-clipping prologue (`optim::clip`).
pub fn pto_global_norm(peer: &Peer, x: &[f32]) -> f32 {
    let members: Vec<usize> = (0..peer.size()).collect();
    let shard = shard_for(x.len(), peer.size(), peer.rank());
    let partial: f32 = shard.slice(x).iter().map(|v| v * v).sum();
    let blocks = all_gather_f32(peer, &[partial], &members);
    blocks.iter().map(|b| b[0]).sum::<f32>().sqrt()
}

/// LARS layer-rate computation distributed with PTO: each rank computes
/// the rates of its slice of layers (exactly the paper's example: with 161
/// ResNet-50 layers on 128 GPUs, "the first GPU calculates 1 to 2 layers'
/// learning rates, the second one calculates layer 3 to 4, and so on").
pub fn lars_rates(
    peer: &Peer,
    params: &[f32],
    grads: &[f32],
    ranges: &[ParamRange],
    cfg: &LarsConfig,
) -> Vec<f32> {
    pto_scalar_map(peer, ranges.len(), |l| {
        rate_for_layer(params, grads, &ranges[l], cfg)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_collectives::group::run_on_group;
    use cloudtrain_optim::lars::compute_rates;
    use cloudtrain_tensor::init;

    #[test]
    fn scalar_map_matches_sequential() {
        let expect: Vec<f32> = (0..37).map(|i| (i as f32).sin()).collect();
        for p in [1usize, 3, 8] {
            let results = run_on_group(p, |peer| pto_scalar_map(peer, 37, |i| (i as f32).sin()));
            for r in &results {
                assert_eq!(r, &expect, "p={p}");
            }
        }
    }

    #[test]
    fn shard_map_matches_sequential_elementwise() {
        let mut rng = init::rng_from_seed(1);
        let x = init::uniform_tensor(100, -2.0, 2.0, &mut rng).into_vec();
        let expect: Vec<f32> = x.iter().map(|v| v * v + 1.0).collect();
        let results = run_on_group(4, |peer| {
            pto_shard_map(peer, &x, |shard| {
                shard.iter().map(|v| v * v + 1.0).collect()
            })
        });
        for r in &results {
            assert_eq!(r, &expect);
        }
    }

    #[test]
    fn pto_lars_matches_single_worker_lars() {
        // The paper's setup: ResNet-ish layer count spread over 8 workers.
        let mut rng = init::rng_from_seed(2);
        let params = init::gradient_like_tensor(10_000, &mut rng).into_vec();
        let grads = init::gradient_like_tensor(10_000, &mut rng).into_vec();
        // 20 uneven layer ranges tiling the vector.
        let mut ranges = Vec::new();
        let mut off = 0;
        for l in 0..20 {
            let len = if l == 19 { 10_000 - off } else { 100 + 35 * l };
            ranges.push(ParamRange { offset: off, len });
            off += len;
        }
        let cfg = LarsConfig::default();
        let expect = compute_rates(&params, &grads, &ranges, &cfg);
        let results = run_on_group(8, |peer| lars_rates(peer, &params, &grads, &ranges, &cfg));
        for r in &results {
            assert_eq!(r, &expect);
        }
    }

    #[test]
    fn global_norm_matches_sequential() {
        let mut rng = init::rng_from_seed(3);
        let x = init::gradient_like_tensor(5000, &mut rng).into_vec();
        let expect = cloudtrain_tensor::ops::l2_norm(&x);
        for p in [1usize, 3, 8] {
            let results = run_on_group(p, |peer| pto_global_norm(peer, &x));
            for r in &results {
                assert!(
                    (r - expect).abs() < 1e-2 * expect.max(1.0),
                    "p={p}: {r} vs {expect}"
                );
                assert_eq!(*r, results[0], "ranks must agree bitwise");
            }
        }
    }

    #[test]
    fn more_workers_than_items_still_works() {
        let results = run_on_group(8, |peer| pto_scalar_map(peer, 3, |i| i as f32));
        for r in &results {
            assert_eq!(r, &[0.0, 1.0, 2.0]);
        }
    }
}
