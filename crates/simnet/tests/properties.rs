//! Property-based tests for the network simulator: physical sanity must
//! hold for arbitrary cluster shapes and message sizes.

use cloudtrain_simnet::collectives::{
    sim_hitopk, sim_ring_all_reduce, sim_torus_all_reduce, sim_tree_all_reduce_hier,
};
use cloudtrain_simnet::{clouds, ClusterSpec, LinkSpec, NetSim};
use proptest::prelude::*;

fn cluster(m: usize, n: usize) -> ClusterSpec {
    ClusterSpec {
        nodes: m,
        gpus_per_node: n,
        ..clouds::tencent(m)
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Simulated time is monotone in message size for every collective.
    #[test]
    fn collective_time_is_monotone_in_size(
        m in 1usize..8,
        n in 1usize..8,
        bytes in 1024usize..(1 << 22),
    ) {
        let spec = cluster(m, n);
        let bigger = bytes * 2;
        let time = |b: usize, which: u8| {
            let mut sim = NetSim::new(spec);
            match which {
                0 => sim_tree_all_reduce_hier(&mut sim, &spec, b).total,
                1 => sim_torus_all_reduce(&mut sim, &spec, b).total,
                _ => {
                    let members: Vec<usize> = (0..spec.world()).collect();
                    sim_ring_all_reduce(&mut sim, &members, b);
                    sim.makespan()
                }
            }
        };
        for which in 0..3u8 {
            let t1 = time(bytes, which);
            let t2 = time(bigger, which);
            prop_assert!(t2 >= t1, "which={which}: {t2} < {t1}");
            prop_assert!(t1 >= 0.0);
        }
    }

    /// A transfer can never beat the line rate: makespan of any dense
    /// AllReduce is at least the time to push the algorithm's minimum
    /// bytes (V * (P-1)/P per port) through the slowest link.
    #[test]
    fn allreduce_respects_bandwidth_lower_bound(
        m in 2usize..8,
        n in 1usize..8,
        kib in 64usize..4096,
    ) {
        let spec = cluster(m, n);
        let bytes = kib << 10;
        let members: Vec<usize> = (0..spec.world()).collect();
        let mut sim = NetSim::new(spec);
        sim_ring_all_reduce(&mut sim, &members, bytes);
        let t = sim.makespan();
        // Each node's NIC must at least carry its shard contributions once
        // in and once out: >= bytes/P * (cross-boundary rounds ~ 2(P-1)/P).
        let p = spec.world();
        let min_bytes = (bytes as f64) * ((p - 1) as f64) / (p as f64);
        let bound = min_bytes * spec.inter.beta;
        prop_assert!(
            t >= bound * 0.99,
            "makespan {t} below physical bound {bound} (m={m}, n={n})"
        );
    }

    /// HiTopKComm phases are non-negative and sum to the total; the inter
    /// phase is monotone in density.
    #[test]
    fn hitopk_phase_accounting(
        m in 2usize..8,
        n in 1usize..8,
        d in 10_000usize..2_000_000,
        rho in 0.001f64..0.2,
    ) {
        let spec = cluster(m, n);
        let mut sim = NetSim::new(spec);
        let t = sim_hitopk(&mut sim, &spec, d, 4, rho, 1e-4);
        prop_assert_eq!(t.phases.len(), 4);
        let sum: f64 = t.phases.iter().map(|p| p.seconds).sum();
        prop_assert!((t.total - sum).abs() < 1e-9);
        for ph in &t.phases {
            prop_assert!(ph.seconds >= 0.0, "{} negative", ph.label);
        }
        sim.reset();
        let t2 = sim_hitopk(&mut sim, &spec, d, 4, (rho * 2.0).min(1.0), 1e-4);
        let inter = |t: &cloudtrain_simnet::collectives::CollectiveTiming| {
            t.phases.iter().find(|p| p.label == "inter all-gather").unwrap().seconds
        };
        prop_assert!(inter(&t2) >= inter(&t) * 0.99);
    }

    /// NIC serialisation: k concurrent cross-node transfers from one node
    /// take at least k times the bytes over the line rate.
    #[test]
    fn nic_serialises_proportionally(
        k in 1usize..8,
        kib in 16usize..1024,
    ) {
        let spec = cluster(2, 8);
        let mut sim = NetSim::new(spec);
        let bytes = kib << 10;
        let transfers: Vec<(usize, usize, usize)> =
            (0..k).map(|j| (j, 8 + j, bytes)).collect();
        let end = sim.round(&transfers);
        let expect = k as f64 * bytes as f64 * spec.inter.beta + spec.inter.alpha;
        prop_assert!((end - expect).abs() < 1e-9, "end {end} expect {expect}");
    }

    /// LinkSpec algebra: transfer time is affine in bytes.
    #[test]
    fn link_transfer_time_is_affine(
        alpha in 0.0f64..1e-3,
        bw in 1e6f64..1e12,
        a in 0usize..(1 << 20),
        b in 0usize..(1 << 20),
    ) {
        let l = LinkSpec::from_bandwidth(alpha, bw);
        let ta = l.transfer_time(a);
        let tb = l.transfer_time(b);
        let tab = l.transfer_time(a + b);
        prop_assert!((tab - (ta + tb - alpha)).abs() < 1e-9);
    }
}
