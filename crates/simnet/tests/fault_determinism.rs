//! Golden-trace determinism of the fault-injection layer.
//!
//! The CI fault gauntlet relies on one property: the same [`FaultPlan`]
//! seed replayed against the same schedule yields a **byte-identical**
//! timeline event log. These tests pin that down across every collective
//! schedule the simulator offers.

use cloudtrain_simnet::collectives::{
    sim_gtopk_all_reduce, sim_hitopk, sim_torus_all_reduce, sim_tree_all_reduce_hier,
};
use cloudtrain_simnet::timeline::event_log;
use cloudtrain_simnet::{clouds, FaultPlan, NetSim, SimResilience};

fn hostile(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_drops(0.05)
        .with_spikes(0.05, 2e-3)
        .degrade_link(0, 2.0, 0.0, 0.05)
        .straggle(1, 1.5)
}

/// Runs every fault-relevant schedule under one plan and returns the full
/// concatenated event log.
fn run_gauntlet_schedules(seed: u64, policy: SimResilience) -> String {
    let spec = clouds::tencent(4);
    let mut sim = NetSim::new(spec);
    sim.enable_trace();
    sim.inject_faults(hostile(seed), policy);
    let mut log = String::new();
    sim_torus_all_reduce(&mut sim, &spec, 1 << 20);
    log.push_str(&event_log(sim.trace(), sim.fault_events()));
    sim.reset();
    sim_tree_all_reduce_hier(&mut sim, &spec, 1 << 20);
    log.push_str(&event_log(sim.trace(), sim.fault_events()));
    sim.reset();
    sim_hitopk(&mut sim, &spec, 1 << 18, 4, 0.01, 1e-4);
    log.push_str(&event_log(sim.trace(), sim.fault_events()));
    sim.reset();
    sim_gtopk_all_reduce(&mut sim, &spec, 1 << 12, 4);
    log.push_str(&event_log(sim.trace(), sim.fault_events()));
    log
}

#[test]
fn same_seed_yields_byte_identical_event_logs() {
    for seed in [1u64, 7, 42, 0xDEAD] {
        let a = run_gauntlet_schedules(seed, SimResilience::default());
        let b = run_gauntlet_schedules(seed, SimResilience::default());
        assert!(!a.is_empty());
        assert_eq!(a, b, "seed {seed}: replay must be byte-identical");
        let c = run_gauntlet_schedules(seed, SimResilience::degrading());
        let d = run_gauntlet_schedules(seed, SimResilience::degrading());
        assert_eq!(c, d, "seed {seed}: degrade-mode replay must match too");
    }
}

#[test]
fn different_seeds_yield_different_logs() {
    let a = run_gauntlet_schedules(1, SimResilience::default());
    let b = run_gauntlet_schedules(2, SimResilience::default());
    assert_ne!(a, b, "independent seeds should produce different faults");
}

#[test]
fn faults_never_speed_up_a_schedule() {
    let spec = clouds::tencent(4);
    for seed in 0..8u64 {
        let mut clean = NetSim::new(spec);
        sim_torus_all_reduce(&mut clean, &spec, 1 << 20);
        let mut faulty = NetSim::new(spec);
        faulty.inject_faults(hostile(seed), SimResilience::default());
        sim_torus_all_reduce(&mut faulty, &spec, 1 << 20);
        assert!(
            faulty.makespan() >= clean.makespan() - 1e-12,
            "seed {seed}: faulted makespan shrank"
        );
    }
}

#[test]
fn degrade_mode_never_exceeds_retry_mode_delay() {
    // The BSP-penalty-vs-resilience core claim: abandoning a hop after one
    // timeout caps the tail that the retry ladder would otherwise pay.
    let spec = clouds::tencent(4);
    for seed in 0..8u64 {
        let plan = FaultPlan::new(seed).with_drops(0.1);
        let mut retry = NetSim::new(spec);
        retry.inject_faults(plan.clone(), SimResilience::default());
        sim_torus_all_reduce(&mut retry, &spec, 1 << 20);
        let mut degrade = NetSim::new(spec);
        degrade.inject_faults(plan, SimResilience::degrading());
        sim_torus_all_reduce(&mut degrade, &spec, 1 << 20);
        let r = retry.fault_counters();
        let d = degrade.fault_counters();
        assert!(
            d.fault_delay <= r.fault_delay + 1e-12,
            "seed {seed}: degrade delay {} > retry delay {}",
            d.fault_delay,
            r.fault_delay
        );
    }
}
