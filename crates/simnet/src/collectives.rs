//! Simulated timing of the paper's aggregation schemes (Figs. 7 and 8).
//!
//! Each function plays a collective's transfer schedule on a [`NetSim`] and
//! returns how long it took, optionally broken into phases. The schedules
//! mirror the real implementations in `cloudtrain-collectives`:
//!
//! * **ring** ReduceScatter / AllGather — `P-1` dependent rounds;
//! * **TreeAR** — NCCL-style hierarchical tree AllReduce: a pipelined
//!   intra-node chain reduce to each node leader, a chunk-pipelined double
//!   binomial tree across the leaders, and a chain broadcast back. NCCL's
//!   tree protocol is known to reach only a fraction of line rate on
//!   TCP/Ethernet transports (it is tuned for InfiniBand and auto-switches
//!   to ring above a size threshold; the paper forces Tree), modelled by
//!   [`TREE_PROTO_EFFICIENCY`];
//! * **NaiveAG** — two flat ring AllGathers over all `P` ranks (values,
//!   then indices), the aggregation of TopK-SGD (Eq. 3);
//! * **2DTAR** — intra-node ReduceScatter, `n` concurrent inter-node ring
//!   AllReduces sharing each NIC, intra-node AllGather;
//! * **HiTopKComm** — the four steps of Algorithm 2 (Eqs. 7–10).

use crate::netsim::NetSim;
use crate::topology::ClusterSpec;

/// Fraction of Ethernet line rate NCCL's tree protocol sustains on
/// TCP transports (vs. ~full rate for rings). Calibrated constant — see
/// the module docs and EXPERIMENTS.md.
pub const TREE_PROTO_EFFICIENCY: f64 = 0.35;

/// Payload inflation of the naive sparse AllGather path: TensorFlow
/// `IndexedSlices` gathered through Horovod are staged through host memory
/// (no GPUDirect on cloud VMs) with extra copies and per-tensor
/// synchronisation — the very inefficiency §1 and §3.2 call out and
/// CommLib's packed GPU-buffer wire format removes. Calibrated constant;
/// see EXPERIMENTS.md.
pub const NAIVE_STAGING_FACTOR: f64 = 2.5;

/// Returns the pipelining granularity (bytes) for chunked tree/chain
/// schedules. NCCL-like: ~32 chunks in flight, clamped to [64 KiB, 1 MiB].
pub fn pipeline_chunk(total_bytes: usize) -> usize {
    (total_bytes / 32).clamp(64 * 1024, 1024 * 1024)
}

/// One labelled phase of a composite collective.
#[derive(Debug, Clone, PartialEq)]
pub struct PhaseTiming {
    /// Phase name (e.g. `"intra reduce-scatter"`).
    pub label: &'static str,
    /// Phase duration in seconds (makespan over participants).
    pub seconds: f64,
}

/// Timing result of one simulated collective.
#[derive(Debug, Clone, PartialEq)]
pub struct CollectiveTiming {
    /// Total makespan in seconds.
    pub total: f64,
    /// Per-phase breakdown (empty for single-phase collectives).
    pub phases: Vec<PhaseTiming>,
}

/// Runs `f` between two makespan measurements and returns the elapsed time.
fn measure<F: FnOnce(&mut NetSim)>(sim: &mut NetSim, f: F) -> f64 {
    let start = sim.makespan();
    f(sim);
    sim.makespan() - start
}

/// [`measure`] with a scoped span on the simulator's attached observability
/// registry (a no-op when none is attached): the span covers exactly the
/// phase's virtual-time window, so the exported trace reproduces the same
/// per-phase decomposition the returned [`PhaseTiming`]s report.
fn measure_span<F: FnOnce(&mut NetSim)>(sim: &mut NetSim, name: &str, f: F) -> f64 {
    let id = sim.span_open(name);
    let elapsed = measure(sim, f);
    sim.span_close(id);
    elapsed
}

fn chunk_bytes(total_bytes: usize, parts: usize) -> usize {
    total_bytes.div_ceil(parts)
}

/// Ring ReduceScatter over `members` of a `total_bytes` vector:
/// `P-1` rounds of `total_bytes / P` each.
pub fn sim_ring_reduce_scatter(sim: &mut NetSim, members: &[usize], total_bytes: usize) {
    let p = members.len();
    if p <= 1 {
        return;
    }
    let chunk = chunk_bytes(total_bytes, p);
    for _ in 0..p - 1 {
        let transfers: Vec<(usize, usize, usize)> = (0..p)
            .map(|i| (members[i], members[(i + 1) % p], chunk))
            .collect();
        sim.round(&transfers);
    }
}

/// Ring AllGather over `members` where each member contributes
/// `block_bytes`: `P-1` rounds of `block_bytes` each.
pub fn sim_ring_all_gather(sim: &mut NetSim, members: &[usize], block_bytes: usize) {
    let p = members.len();
    if p <= 1 {
        return;
    }
    for _ in 0..p - 1 {
        let transfers: Vec<(usize, usize, usize)> = (0..p)
            .map(|i| (members[i], members[(i + 1) % p], block_bytes))
            .collect();
        sim.round(&transfers);
    }
}

/// Ring AllReduce = ReduceScatter + AllGather of the shards.
pub fn sim_ring_all_reduce(sim: &mut NetSim, members: &[usize], total_bytes: usize) {
    sim_ring_reduce_scatter(sim, members, total_bytes);
    sim_ring_all_gather(sim, members, chunk_bytes(total_bytes, members.len()));
}

/// Ring ReduceScatter running concurrently in several member groups, with
/// the rounds of all groups interleaved so that groups sharing a resource
/// (e.g. the `n` inter-node streams sharing each node's NIC) contend round
/// by round instead of being falsely serialised.
pub fn sim_ring_reduce_scatter_groups(sim: &mut NetSim, groups: &[Vec<usize>], total_bytes: usize) {
    let rounds = groups
        .iter()
        .map(|g| g.len().saturating_sub(1))
        .max()
        .unwrap_or(0);
    for r in 0..rounds {
        let mut transfers = Vec::new();
        for g in groups {
            let p = g.len();
            if p > 1 && r < p - 1 {
                let chunk = chunk_bytes(total_bytes, p);
                for i in 0..p {
                    transfers.push((g[i], g[(i + 1) % p], chunk));
                }
            }
        }
        if !transfers.is_empty() {
            sim.round(&transfers);
        }
    }
}

/// Ring AllGather running concurrently in several member groups
/// (see [`sim_ring_reduce_scatter_groups`]); each member of group `g`
/// contributes `block_bytes`.
pub fn sim_ring_all_gather_groups(sim: &mut NetSim, groups: &[Vec<usize>], block_bytes: usize) {
    let rounds = groups
        .iter()
        .map(|g| g.len().saturating_sub(1))
        .max()
        .unwrap_or(0);
    for r in 0..rounds {
        let mut transfers = Vec::new();
        for g in groups {
            let p = g.len();
            if p > 1 && r < p - 1 {
                for i in 0..p {
                    transfers.push((g[i], g[(i + 1) % p], block_bytes));
                }
            }
        }
        if !transfers.is_empty() {
            sim.round(&transfers);
        }
    }
}

/// Ring AllReduce running concurrently in several member groups of equal
/// size, reducing `total_bytes` within each group.
pub fn sim_ring_all_reduce_groups(sim: &mut NetSim, groups: &[Vec<usize>], total_bytes: usize) {
    sim_ring_reduce_scatter_groups(sim, groups, total_bytes);
    let parts = groups.first().map(|g| g.len()).unwrap_or(1).max(1);
    sim_ring_all_gather_groups(sim, groups, chunk_bytes(total_bytes, parts));
}

/// Plays a chunk-pipelined schedule: `levels[l]` is the set of edges at
/// pipeline stage `l`; the payload is split into `ceil(total/chunk)` chunks
/// and chunk `c` traverses stage `l` in round `l + c` (systolic), so
/// contention (several edges of different stages sharing a NIC in the same
/// round) is charged naturally.
fn sim_pipelined_levels(
    sim: &mut NetSim,
    levels: &[Vec<(usize, usize)>],
    total_bytes: usize,
    chunk: usize,
) {
    if levels.is_empty() || total_bytes == 0 {
        return;
    }
    let chunks = total_bytes.div_ceil(chunk);
    let last = chunk_bytes(total_bytes, 1) - (chunks - 1) * chunk; // remainder
    let rounds = levels.len() + chunks - 1;
    for r in 0..rounds {
        let mut transfers = Vec::new();
        for (l, edges) in levels.iter().enumerate() {
            if r < l {
                continue;
            }
            let c = r - l;
            if c >= chunks {
                continue;
            }
            let bytes = if c + 1 == chunks { last } else { chunk };
            for &(src, dst) in edges {
                transfers.push((src, dst, bytes));
            }
        }
        if !transfers.is_empty() {
            sim.round(&transfers);
        }
    }
}

/// Levels of a pipelined chain `g_{k-1} -> ... -> g_0` (reduce direction).
fn chain_levels(members: &[usize], towards_head: bool) -> Vec<Vec<(usize, usize)>> {
    let p = members.len();
    let mut levels = Vec::new();
    if towards_head {
        for j in (1..p).rev() {
            levels.push(vec![(members[j], members[j - 1])]);
        }
    } else {
        for j in 0..p - 1 {
            levels.push(vec![(members[j], members[j + 1])]);
        }
    }
    levels
}

/// Parent of 1-indexed node `k` in the Sanders/NCCL double-binary-tree
/// structure (the Fenwick-tree shape): a node with `h` trailing zero bits
/// sits at height `h`; its parent flips bit `h` according to bit `h+1`, so
/// all odd `k` are leaves. Returns `None` for the root.
fn fenwick_parent(k: usize, p: usize) -> Option<usize> {
    debug_assert!(k >= 1 && k <= p);
    let h = k.trailing_zeros();
    let up = k + (1 << h); // sibling direction candidates
    let down = k - (1 << h);
    let parent = if (k >> (h + 1)) & 1 == 1 { down } else { up };
    // Clamp for non-power-of-two sizes: fall back to the in-range candidate.
    let parent = if parent == 0 || parent > p {
        if down >= 1 && down != k {
            down
        } else {
            up
        }
    } else {
        parent
    };
    if parent == 0 || parent > p || parent == k {
        None
    } else {
        Some(parent)
    }
}

/// Pipeline stages of one Sanders binary tree over `order`: reduce-up
/// levels (leaves first) followed by broadcast-down levels (root first), so
/// a chunk flows bottom-up then top-down in one systolic pass. Binary
/// fan-in keeps the per-round port load at 2 chunks — the reason NCCL trees
/// are binary, not binomial — and the all-odd-leaves shape is what lets the
/// second (shifted) tree make every interior node of the first a leaf.
fn binary_tree_levels(order: &[usize]) -> Vec<Vec<(usize, usize)>> {
    let p = order.len();
    if p <= 1 {
        return Vec::new();
    }
    // Depth of each node = hops to the root.
    let mut depth = vec![0usize; p + 1];
    let mut max_depth = 0;
    for (k, slot) in depth.iter_mut().enumerate().skip(1) {
        let mut d = 0;
        let mut cur = k;
        while let Some(par) = fenwick_parent(cur, p) {
            d += 1;
            cur = par;
            debug_assert!(d <= 2 * 64, "fenwick parent loop");
        }
        *slot = d;
        max_depth = max_depth.max(d);
    }
    let mut up = vec![Vec::new(); max_depth];
    let mut down = vec![Vec::new(); max_depth];
    for k in 1..=p {
        if let Some(par) = fenwick_parent(k, p) {
            let d = depth[k];
            up[max_depth - d].push((order[k - 1], order[par - 1]));
            down[d - 1].push((order[par - 1], order[k - 1]));
        }
    }
    up.extend(down);
    up
}

/// Merges two level stacks stage-wise (edges of both trees run in the same
/// pipeline stage, as NCCL's double tree does).
fn merge_levels(
    a: Vec<Vec<(usize, usize)>>,
    b: Vec<Vec<(usize, usize)>>,
) -> Vec<Vec<(usize, usize)>> {
    let len = a.len().max(b.len());
    let mut out = vec![Vec::new(); len];
    for (l, edges) in a.into_iter().enumerate() {
        out[l].extend(edges);
    }
    for (l, edges) in b.into_iter().enumerate() {
        out[l].extend(edges);
    }
    out
}

/// NCCL-style hierarchical tree AllReduce ("TreeAR").
///
/// Phase 1: pipelined intra-node chain reduce onto each node's leader GPU.
/// Phase 2: chunk-pipelined double binomial tree across the leaders (half
/// the vector per tree, the second tree over reversed node order), reduce
/// up then broadcast down, with the tree-protocol efficiency penalty on the
/// payload. Phase 3: pipelined intra-node chain broadcast.
pub fn sim_tree_all_reduce_hier(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    total_bytes: usize,
) -> CollectiveTiming {
    let m = spec.nodes;
    let n = spec.gpus_per_node;
    let leaders: Vec<usize> = (0..m).map(|i| i * n).collect();

    // Phase 1: chain reduce to leaders (all nodes in parallel).
    let t1 = measure_span(sim, "treear/intra chain reduce", |sim| {
        for i in 0..m {
            let members = spec.node_members(i);
            sim_pipelined_levels(
                sim,
                &chain_levels(&members, true),
                total_bytes,
                pipeline_chunk(total_bytes),
            );
        }
    });
    sim.barrier();

    // Phase 2: double binomial tree over the leaders, half the bytes per
    // tree, reduce then broadcast, chunk-pipelined. The protocol penalty
    // inflates the wire bytes.
    let t2 = measure_span(sim, "treear/inter double tree", |sim| {
        if m > 1 {
            let eff_bytes = (total_bytes as f64 / 2.0 / TREE_PROTO_EFFICIENCY) as usize;
            // The second tree runs over a rotated leader order so that
            // interior/leaf roles differ between the trees (double tree).
            let rotated: Vec<usize> = leaders
                .iter()
                .skip(1)
                .chain(leaders.iter().take(1))
                .copied()
                .collect();
            let levels = merge_levels(binary_tree_levels(&leaders), binary_tree_levels(&rotated));
            sim_pipelined_levels(sim, &levels, eff_bytes, pipeline_chunk(eff_bytes));
        }
    });
    sim.barrier();

    // Phase 3: chain broadcast from leaders.
    let t3 = measure_span(sim, "treear/intra chain broadcast", |sim| {
        for i in 0..m {
            let members = spec.node_members(i);
            sim_pipelined_levels(
                sim,
                &chain_levels(&members, false),
                total_bytes,
                pipeline_chunk(total_bytes),
            );
        }
    });

    CollectiveTiming {
        total: t1 + t2 + t3,
        phases: vec![
            PhaseTiming {
                label: "intra chain reduce",
                seconds: t1,
            },
            PhaseTiming {
                label: "inter double tree",
                seconds: t2,
            },
            PhaseTiming {
                label: "intra chain broadcast",
                seconds: t3,
            },
        ],
    }
}

/// Flat sparse AllGather ("NaiveAG", Eq. 3): every rank contributes its
/// top-k as two payloads gathered by two sequential rings over all
/// `P = m·n` GPUs. This models the TensorFlow/Horovod sparse path the
/// paper baselines against: `IndexedSlices` carry FP32 values and **int64
/// indices** (8 bytes), unlike CommLib's packed FP16/int32 wire format —
/// one of the reasons the naive path is so expensive. Most hops cross the
/// slow inter-node links and the `P-1` dependent rounds pay the cloud
/// latency twice.
pub fn sim_naive_sparse_all_gather(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    k: usize,
) -> CollectiveTiming {
    let members: Vec<usize> = (0..spec.world()).collect();
    let value_bytes = (k as f64 * 4.0 * NAIVE_STAGING_FACTOR) as usize;
    let index_bytes = (k as f64 * 8.0 * NAIVE_STAGING_FACTOR) as usize;
    let t_values = measure_span(sim, "naiveag/all-gather values", |sim| {
        sim_ring_all_gather(sim, &members, value_bytes);
    });
    sim.barrier();
    let t_indices = measure_span(sim, "naiveag/all-gather indices", |sim| {
        sim_ring_all_gather(sim, &members, index_bytes);
    });
    CollectiveTiming {
        total: t_values + t_indices,
        phases: vec![
            PhaseTiming {
                label: "all-gather values",
                seconds: t_values,
            },
            PhaseTiming {
                label: "all-gather indices",
                seconds: t_indices,
            },
        ],
    }
}

/// gTop-k sparse AllReduce: `log2(P)` recursive-doubling rounds in which
/// every GPU exchanges its current `k`-entry sparse set (values + int32
/// indices) with its partner. Rounds with `mask >= n` pair GPUs on
/// different nodes, pushing `2 * n` sparse sets through every NIC per
/// round.
pub fn sim_gtopk_all_reduce(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    k: usize,
    elem_bytes: usize,
) -> CollectiveTiming {
    let p = spec.world();
    let block = k * (elem_bytes + 4);
    let elapsed = measure_span(sim, "gtopk/recursive doubling", |sim| {
        let mut mask = 1;
        while mask < p {
            // On non-power-of-two worlds the unpaired ranks sit a round
            // out (the standard virtual-rank folding); only in-range
            // pairs transfer.
            let transfers: Vec<(usize, usize, usize)> = (0..p)
                .filter(|r| r ^ mask < p)
                .map(|r| (r, r ^ mask, block))
                .collect();
            if !transfers.is_empty() {
                sim.round(&transfers);
            }
            mask <<= 1;
        }
    });
    CollectiveTiming {
        total: elapsed,
        phases: Vec::new(),
    }
}

/// Quantized AllReduce: a flat ring AllGather of every rank's packed codes
/// (`bits_per_elem` bits each) plus its scale, then local decode-and-sum.
pub fn sim_quantized_all_reduce(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    d_elems: usize,
    bits_per_elem: usize,
) -> CollectiveTiming {
    let members: Vec<usize> = (0..spec.world()).collect();
    let block = (d_elems * bits_per_elem).div_ceil(8) + 4;
    let elapsed = measure_span(sim, "qsgd/all-gather codes", |sim| {
        sim_ring_all_gather(sim, &members, block);
    });
    CollectiveTiming {
        total: elapsed,
        phases: Vec::new(),
    }
}

/// 2D-Torus AllReduce ("2DTAR"): intra-node ReduceScatter, `n` concurrent
/// inter-node ring AllReduces of the shards (sharing each node's NIC),
/// intra-node AllGather.
pub fn sim_torus_all_reduce(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    total_bytes: usize,
) -> CollectiveTiming {
    let n = spec.gpus_per_node;
    let shard = chunk_bytes(total_bytes, n);

    let nodes: Vec<Vec<usize>> = (0..spec.nodes).map(|i| spec.node_members(i)).collect();
    let streams: Vec<Vec<usize>> = (0..n).map(|j| spec.stream_members(j)).collect();
    let t1 = measure_span(sim, "2dtar/intra reduce-scatter", |sim| {
        sim_ring_reduce_scatter_groups(sim, &nodes, total_bytes);
    });
    sim.barrier();
    let t2 = measure_span(sim, "2dtar/inter all-reduce", |sim| {
        sim_ring_all_reduce_groups(sim, &streams, shard);
    });
    sim.barrier();
    let t3 = measure_span(sim, "2dtar/intra all-gather", |sim| {
        sim_ring_all_gather_groups(sim, &nodes, shard);
    });
    CollectiveTiming {
        total: t1 + t2 + t3,
        phases: vec![
            PhaseTiming {
                label: "intra reduce-scatter",
                seconds: t1,
            },
            PhaseTiming {
                label: "inter all-reduce",
                seconds: t2,
            },
            PhaseTiming {
                label: "intra all-gather",
                seconds: t3,
            },
        ],
    }
}

/// The `j`-th GPUs of all nodes visited in `node_order` — the inter-node
/// communication stream of a rank-reordered hierarchical schedule.
///
/// # Panics
/// Panics if `node_order` is not a permutation of `0..spec.nodes`.
pub fn reordered_stream_members(spec: &ClusterSpec, node_order: &[usize], j: usize) -> Vec<usize> {
    assert_valid_order(node_order, spec.nodes);
    let n = spec.gpus_per_node;
    node_order.iter().map(|&i| i * n + j).collect()
}

fn assert_valid_order(node_order: &[usize], nodes: usize) {
    assert_eq!(node_order.len(), nodes, "node order has wrong length");
    let mut seen = vec![false; nodes];
    for &i in node_order {
        assert!(i < nodes && !seen[i], "node order is not a permutation");
        seen[i] = true;
    }
}

/// [`sim_torus_all_reduce`] with the inter-node rings visiting nodes in
/// `node_order` (the topology-probed reordering): only the traversal order
/// of phase 2's rings changes, phases 1 and 3 are untouched. With the
/// identity order this is byte-for-byte the natural schedule.
pub fn sim_torus_all_reduce_reordered(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    total_bytes: usize,
    node_order: &[usize],
) -> CollectiveTiming {
    assert_valid_order(node_order, spec.nodes);
    let n = spec.gpus_per_node;
    let shard = chunk_bytes(total_bytes, n);

    let nodes: Vec<Vec<usize>> = (0..spec.nodes).map(|i| spec.node_members(i)).collect();
    let streams: Vec<Vec<usize>> = (0..n)
        .map(|j| reordered_stream_members(spec, node_order, j))
        .collect();
    let t1 = measure_span(sim, "2dtar/intra reduce-scatter", |sim| {
        sim_ring_reduce_scatter_groups(sim, &nodes, total_bytes);
    });
    sim.barrier();
    let t2 = measure_span(sim, "2dtar/inter all-reduce", |sim| {
        sim_ring_all_reduce_groups(sim, &streams, shard);
    });
    sim.barrier();
    let t3 = measure_span(sim, "2dtar/intra all-gather", |sim| {
        sim_ring_all_gather_groups(sim, &nodes, shard);
    });
    CollectiveTiming {
        total: t1 + t2 + t3,
        phases: vec![
            PhaseTiming {
                label: "intra reduce-scatter",
                seconds: t1,
            },
            PhaseTiming {
                label: "inter all-reduce",
                seconds: t2,
            },
            PhaseTiming {
                label: "intra all-gather",
                seconds: t3,
            },
        ],
    }
}

/// [`sim_hitopk`] with the inter-node AllGather streams visiting nodes in
/// `node_order` (see [`sim_torus_all_reduce_reordered`]).
pub fn sim_hitopk_reordered(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    d_elems: usize,
    elem_bytes: usize,
    rho: f64,
    topk_seconds: f64,
    node_order: &[usize],
) -> CollectiveTiming {
    assert_valid_order(node_order, spec.nodes);
    let m = spec.nodes;
    let n = spec.gpus_per_node;
    let k_shard = (((d_elems as f64 * rho) / n as f64).round() as usize).max(1);

    let nodes: Vec<Vec<usize>> = (0..m).map(|i| spec.node_members(i)).collect();
    let streams: Vec<Vec<usize>> = (0..n)
        .map(|j| reordered_stream_members(spec, node_order, j))
        .collect();

    let t1 = measure_span(sim, "hitopk/intra reduce-scatter", |sim| {
        sim_ring_reduce_scatter_groups(sim, &nodes, d_elems * elem_bytes);
    });
    sim.barrier();

    let t2 = measure_span(sim, "hitopk/top-k compression", |sim| {
        for g in 0..spec.world() {
            sim.compute(g, topk_seconds);
        }
    });
    sim.barrier();

    let t3 = measure_span(sim, "hitopk/inter all-gather", |sim| {
        sim_ring_all_gather_groups(sim, &streams, k_shard * elem_bytes);
        sim_ring_all_gather_groups(sim, &streams, k_shard * 4);
    });
    sim.barrier();

    let dense_shard = chunk_bytes(d_elems, n) * elem_bytes;
    let sparse_shard = m * k_shard * (elem_bytes + 4);
    let t4 = measure_span(sim, "hitopk/intra all-gather", |sim| {
        sim_ring_all_gather_groups(sim, &nodes, sparse_shard.min(dense_shard));
    });

    CollectiveTiming {
        total: t1 + t2 + t3 + t4,
        phases: vec![
            PhaseTiming {
                label: "intra reduce-scatter",
                seconds: t1,
            },
            PhaseTiming {
                label: "top-k compression",
                seconds: t2,
            },
            PhaseTiming {
                label: "inter all-gather",
                seconds: t3,
            },
            PhaseTiming {
                label: "intra all-gather",
                seconds: t4,
            },
        ],
    }
}

/// HiTopKComm (Algorithm 2): the four steps of §3.2 with density `rho`.
///
/// * `d_elems` — gradient dimension; `elem_bytes` — wire size per value
///   (4 for FP32, 2 for FP16); indices are always 4 bytes.
/// * `topk_seconds` — per-GPU compression time (step 2), typically from
///   `cloudtrain_compress::gpu_cost::mstopk_cost`.
///
/// The final intra-node AllGather moves the aggregated shard in sparse form
/// (`ρ·d·m/n` value+index pairs, Eq. 10) when that is smaller than the
/// dense shard, else dense.
pub fn sim_hitopk(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    d_elems: usize,
    elem_bytes: usize,
    rho: f64,
    topk_seconds: f64,
) -> CollectiveTiming {
    let m = spec.nodes;
    let n = spec.gpus_per_node;
    let k_shard = (((d_elems as f64 * rho) / n as f64).round() as usize).max(1);

    let nodes: Vec<Vec<usize>> = (0..m).map(|i| spec.node_members(i)).collect();
    let streams: Vec<Vec<usize>> = (0..n).map(|j| spec.stream_members(j)).collect();

    // Step 1: intra-node dense ReduceScatter.
    let t1 = measure_span(sim, "hitopk/intra reduce-scatter", |sim| {
        sim_ring_reduce_scatter_groups(sim, &nodes, d_elems * elem_bytes);
    });
    sim.barrier();

    // Step 2: MSTopK on every GPU, in parallel.
    let t2 = measure_span(sim, "hitopk/top-k compression", |sim| {
        for g in 0..spec.world() {
            sim.compute(g, topk_seconds);
        }
    });
    sim.barrier();

    // Step 3: n concurrent inter-node AllGathers of values then indices
    // (stream `j` = the j-th GPUs of all nodes).
    let t3 = measure_span(sim, "hitopk/inter all-gather", |sim| {
        sim_ring_all_gather_groups(sim, &streams, k_shard * elem_bytes);
        sim_ring_all_gather_groups(sim, &streams, k_shard * 4);
    });
    sim.barrier();

    // Step 4: intra-node AllGather of the aggregated shard.
    let dense_shard = chunk_bytes(d_elems, n) * elem_bytes;
    let sparse_shard = m * k_shard * (elem_bytes + 4);
    let t4 = measure_span(sim, "hitopk/intra all-gather", |sim| {
        sim_ring_all_gather_groups(sim, &nodes, sparse_shard.min(dense_shard));
    });

    CollectiveTiming {
        total: t1 + t2 + t3 + t4,
        phases: vec![
            PhaseTiming {
                label: "intra reduce-scatter",
                seconds: t1,
            },
            PhaseTiming {
                label: "top-k compression",
                seconds: t2,
            },
            PhaseTiming {
                label: "inter all-gather",
                seconds: t3,
            },
            PhaseTiming {
                label: "intra all-gather",
                seconds: t4,
            },
        ],
    }
}

/// O(k) sparse allreduce (Li & Hoefler): HiTopKComm's intra phases around
/// a *split–merge–gather* inter exchange instead of the full-selection
/// AllGather.
///
/// * **inter split** — each stream's k̃-entry selection (8 bytes per
///   value+index pair) is range-partitioned across the `m` members, a
///   ReduceScatter-shaped exchange moving `k̃·(1−1/m)` pairs per member;
/// * **inter gather-merged** — each member's merged sublist is gathered by
///   all members. `overlap` is the expected fraction of selected
///   coordinates shared across nodes: merged size per member is
///   `(k̃/m)·(1 + (1−overlap)·(m−1))` pairs, so at `overlap = 1` the
///   exchange moves `O(k̃)` total instead of hitopk's `O(k̃·m)`.
///
/// Other parameters as in [`sim_hitopk`].
pub fn sim_ok_sparse(
    sim: &mut NetSim,
    spec: &ClusterSpec,
    d_elems: usize,
    elem_bytes: usize,
    rho: f64,
    topk_seconds: f64,
    overlap: f64,
) -> CollectiveTiming {
    let m = spec.nodes;
    let n = spec.gpus_per_node;
    let k_shard = (((d_elems as f64 * rho) / n as f64).round() as usize).max(1);

    let nodes: Vec<Vec<usize>> = (0..m).map(|i| spec.node_members(i)).collect();
    let streams: Vec<Vec<usize>> = (0..n).map(|j| spec.stream_members(j)).collect();

    // Step 1: intra-node dense ReduceScatter.
    let t1 = measure_span(sim, "oksparse/intra reduce-scatter", |sim| {
        sim_ring_reduce_scatter_groups(sim, &nodes, d_elems * elem_bytes);
    });
    sim.barrier();

    // Step 2: top-k on every GPU, in parallel.
    let t2 = measure_span(sim, "oksparse/top-k compression", |sim| {
        for g in 0..spec.world() {
            sim.compute(g, topk_seconds);
        }
    });
    sim.barrier();

    // Step 3a: range-split of the k̃ selected pairs across the m members.
    let t3 = measure_span(sim, "oksparse/inter split", |sim| {
        sim_ring_reduce_scatter_groups(sim, &streams, k_shard * (elem_bytes + 4));
    });
    sim.barrier();

    // Step 3b: AllGather of each member's merged sublist.
    let merged = (((k_shard as f64 / m as f64) * (1.0 + (1.0 - overlap) * (m - 1) as f64)).round()
        as usize)
        .max(1);
    let t4 = measure_span(sim, "oksparse/inter gather-merged", |sim| {
        sim_ring_all_gather_groups(sim, &streams, merged * (elem_bytes + 4));
    });
    sim.barrier();

    // Step 4: intra-node AllGather of the aggregated shard.
    let dense_shard = chunk_bytes(d_elems, n) * elem_bytes;
    let sparse_shard = m * k_shard * (elem_bytes + 4);
    let t5 = measure_span(sim, "oksparse/intra all-gather", |sim| {
        sim_ring_all_gather_groups(sim, &nodes, sparse_shard.min(dense_shard));
    });

    CollectiveTiming {
        total: t1 + t2 + t3 + t4 + t5,
        phases: vec![
            PhaseTiming {
                label: "intra reduce-scatter",
                seconds: t1,
            },
            PhaseTiming {
                label: "top-k compression",
                seconds: t2,
            },
            PhaseTiming {
                label: "inter split",
                seconds: t3,
            },
            PhaseTiming {
                label: "inter gather-merged",
                seconds: t4,
            },
            PhaseTiming {
                label: "intra all-gather",
                seconds: t5,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clouds;

    #[test]
    fn single_node_ring_all_reduce_matches_alpha_beta_formula() {
        let spec = clouds::tencent(1);
        let mut sim = NetSim::new(spec);
        let members: Vec<usize> = (0..8).collect();
        let bytes = 8 << 20; // 8 MiB
        sim_ring_all_reduce(&mut sim, &members, bytes);
        let total = sim.makespan();
        // 2(P-1) rounds of alpha + (V/P) * beta.
        let round = spec.intra.transfer_time(bytes / 8);
        let expect = 14.0 * round;
        assert!(
            (total - expect).abs() / expect < 0.05,
            "total {total} expect {expect}"
        );
    }

    #[test]
    fn flat_all_gather_is_bounded_by_nic_bytes_and_path_latency() {
        let spec = clouds::tencent(2);
        let mut sim = NetSim::new(spec);
        let k = 100_000;
        let t = sim_naive_sparse_all_gather(&mut sim, &spec, k);
        // Lower bound: each NIC forwards all 15 foreign blocks of each
        // gather (values 4B + indices 8B per element, times the host
        // staging factor).
        let nic_bytes = 15.0 * (k * 12) as f64 * NAIVE_STAGING_FACTOR * spec.inter.beta;
        // Upper bound: add the dependency path's per-round latency.
        let upper = nic_bytes + 2.0 * 16.0 * spec.inter.alpha + 1e-4;
        assert!(
            t.total >= nic_bytes,
            "total {} < bw bound {nic_bytes}",
            t.total
        );
        assert!(t.total <= upper, "total {} > upper {upper}", t.total);
        assert_eq!(t.phases.len(), 2);
    }

    #[test]
    fn torus_beats_flat_ring_all_reduce_across_nodes() {
        let spec = clouds::tencent(16);
        let bytes = 100 << 20; // 100 MiB (25M FP32 gradients)
        let mut sim = NetSim::new(spec);
        let torus = sim_torus_all_reduce(&mut sim, &spec, bytes);
        sim.reset();
        let all: Vec<usize> = (0..spec.world()).collect();
        let flat = measure(&mut sim, |sim| sim_ring_all_reduce(sim, &all, bytes));
        assert!(
            torus.total < flat,
            "torus {} !< flat ring {}",
            torus.total,
            flat
        );
    }

    #[test]
    fn fig7_ordering_hitopk_then_torus_then_tree_then_naiveag() {
        // FP16 elements, rho = 0.01, 16 nodes x 8 GPUs — the Fig. 7 setup.
        let spec = clouds::tencent(16);
        let elem = 2usize;
        // The paper's regime: gradients of real models (8M-110M params).
        // Below ~2M elements the latency-bound regime lets TreeAR beat the
        // ring-based schemes (which is exactly why NCCL picks Tree for
        // small messages); the paper's figure starts above that.
        for d in [8usize << 20, 25_000_000, 110_000_000] {
            let rho = 0.01;
            let mut sim = NetSim::new(spec);
            let hitopk = sim_hitopk(&mut sim, &spec, d, elem, rho, 1e-3);
            sim.reset();
            let torus = sim_torus_all_reduce(&mut sim, &spec, d * elem);
            sim.reset();
            let tree = sim_tree_all_reduce_hier(&mut sim, &spec, d * elem);
            sim.reset();
            let k = (d as f64 * rho) as usize;
            let naive = sim_naive_sparse_all_gather(&mut sim, &spec, k);
            assert!(
                hitopk.total < torus.total,
                "d={d}: hitopk {} !< 2dtar {}",
                hitopk.total,
                torus.total
            );
            assert!(
                torus.total < tree.total,
                "d={d}: 2dtar {} !< treear {}",
                torus.total,
                tree.total
            );
            assert!(
                tree.total < naive.total,
                "d={d}: treear {} !< naiveag {}",
                tree.total,
                naive.total
            );
        }
    }

    #[test]
    fn hitopk_breakdown_dominated_by_inter_all_gather() {
        // Fig. 8: inter-node AllGather dominates; compression is negligible.
        let spec = clouds::tencent(16);
        let mut sim = NetSim::new(spec);
        let t = sim_hitopk(&mut sim, &spec, 25_000_000, 4, 0.01, 2e-3);
        // BTreeMap so a failing assertion walks the phases in a stable
        // order run over run.
        let by_label: std::collections::BTreeMap<_, _> =
            t.phases.iter().map(|p| (p.label, p.seconds)).collect();
        let inter = by_label["inter all-gather"];
        for (label, secs) in &by_label {
            if *label != "inter all-gather" {
                assert!(
                    *secs < inter,
                    "{label} ({secs}) should be below inter AG ({inter})"
                );
            }
        }
        assert!((t.total - t.phases.iter().map(|p| p.seconds).sum::<f64>()).abs() < 1e-12);
    }

    #[test]
    fn hitopk_density_scales_inter_phase() {
        let spec = clouds::tencent(16);
        let mut sim = NetSim::new(spec);
        let lo = sim_hitopk(&mut sim, &spec, 25_000_000, 4, 0.001, 0.0);
        sim.reset();
        let hi = sim_hitopk(&mut sim, &spec, 25_000_000, 4, 0.05, 0.0);
        let inter_of = |t: &CollectiveTiming| {
            t.phases
                .iter()
                .find(|p| p.label == "inter all-gather")
                .unwrap()
                .seconds
        };
        // 50x the density costs well over 3x despite the shared latency
        // floor of the 15 dependent ring rounds.
        assert!(
            inter_of(&hi) > 3.0 * inter_of(&lo),
            "hi {} lo {}",
            inter_of(&hi),
            inter_of(&lo)
        );
    }

    #[test]
    fn tree_single_node_has_no_inter_phase_cost() {
        let spec = clouds::tencent(1);
        let mut sim = NetSim::new(spec);
        let t = sim_tree_all_reduce_hier(&mut sim, &spec, 1 << 20);
        assert_eq!(t.phases[1].seconds, 0.0);
        assert!(t.phases[0].seconds > 0.0);
        assert!(t.phases[2].seconds > 0.0);
    }

    #[test]
    fn pipelining_beats_store_and_forward_chain() {
        // A pipelined 8-GPU chain of V bytes should take ~V*beta, not
        // ~7*V*beta.
        let spec = clouds::tencent(1);
        let mut sim = NetSim::new(spec);
        let members: Vec<usize> = (0..8).collect();
        let v = 64 << 20;
        sim_pipelined_levels(
            &mut sim,
            &chain_levels(&members, true),
            v,
            pipeline_chunk(v),
        );
        let t = sim.makespan();
        let ideal = spec.intra.beta * v as f64;
        assert!(t < 1.6 * ideal, "t {t} vs ideal {ideal}");
        assert!(t > ideal);
    }

    #[test]
    fn reordered_twins_with_identity_order_match_natural_bitwise() {
        let spec = clouds::tencent(4);
        let identity: Vec<usize> = (0..4).collect();
        let mut a = NetSim::new(spec);
        let t1 = sim_torus_all_reduce(&mut a, &spec, 1 << 20);
        let mut b = NetSim::new(spec);
        let t2 = sim_torus_all_reduce_reordered(&mut b, &spec, 1 << 20, &identity);
        assert_eq!(t1.total.to_bits(), t2.total.to_bits());
        assert_eq!(a.makespan().to_bits(), b.makespan().to_bits());
        let mut c = NetSim::new(spec);
        let h1 = sim_hitopk(&mut c, &spec, 1 << 18, 4, 0.01, 1e-4);
        let mut d = NetSim::new(spec);
        let h2 = sim_hitopk_reordered(&mut d, &spec, 1 << 18, 4, 0.01, 1e-4, &identity);
        assert_eq!(h1.total.to_bits(), h2.total.to_bits());
    }

    #[test]
    fn reordered_twins_are_deterministic_under_a_permutation() {
        let spec = clouds::tencent(4);
        let order = vec![2usize, 0, 3, 1];
        let run = |order: &[usize]| {
            let mut sim = NetSim::new(spec);
            sim_torus_all_reduce_reordered(&mut sim, &spec, 1 << 20, order).total
        };
        assert_eq!(run(&order).to_bits(), run(&order).to_bits());
        assert_eq!(
            reordered_stream_members(&spec, &order, 3),
            vec![19, 3, 27, 11]
        );
    }

    #[test]
    #[should_panic(expected = "permutation")]
    fn reordered_twin_rejects_non_permutations() {
        let spec = clouds::tencent(4);
        let mut sim = NetSim::new(spec);
        sim_torus_all_reduce_reordered(&mut sim, &spec, 1 << 20, &[0, 0, 1, 2]);
    }

    #[test]
    fn hitopk_inter_phase_matches_eq9_scaling() {
        // Eq. 9: t3 grows linearly with (m-1) * rho * d / n.
        let spec = clouds::tencent(16);
        let mut sim = NetSim::new(spec);
        let a = sim_hitopk(&mut sim, &spec, 200_000_000, 4, 0.01, 0.0);
        sim.reset();
        let b = sim_hitopk(&mut sim, &spec, 400_000_000, 4, 0.01, 0.0);
        let inter_of = |t: &CollectiveTiming| {
            t.phases
                .iter()
                .find(|p| p.label == "inter all-gather")
                .unwrap()
                .seconds
        };
        // Doubling d doubles the bandwidth term of Eq. 9; the alpha term
        // (15 dependent rounds) is shared, so the ratio sits just under 2.
        let ratio = inter_of(&b) / inter_of(&a);
        assert!(ratio > 1.6 && ratio < 2.05, "ratio {ratio}");
    }
}
