use crate::topology::ClusterSpec;

/// One recorded transfer (produced when tracing is enabled via
/// [`NetSim::enable_trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEvent {
    /// Sender GPU id.
    pub src: usize,
    /// Receiver GPU id.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: usize,
    /// When the payload started occupying its port, seconds.
    pub start: f64,
    /// When the receiver had the payload, seconds (includes link latency).
    pub end: f64,
    /// Whether the transfer crossed the inter-node fabric.
    pub inter_node: bool,
}

/// Discrete-event simulator state for one cluster.
///
/// Tracks a local clock per GPU and the busy-until time of every
/// contended resource:
///
/// * per-GPU NVLink tx/rx ports (intra-node transfers),
/// * per-node NIC tx/rx (inter-node transfers — **shared by all GPUs of
///   the node**, which is the contention that penalises flat collectives
///   on cloud clusters).
///
/// A transfer `src → dst` starts when the sender's clock and all required
/// resources are free, takes `α + bytes·β` of the link class it crosses,
/// and advances the receiver's clock and the resources to its completion
/// time. The sender's clock also advances (ring steps are rendezvous
/// send/recv pairs, matching the α–β analyses in the paper).
#[derive(Debug, Clone)]
pub struct NetSim {
    spec: ClusterSpec,
    gpu_clock: Vec<f64>,
    gpu_tx_free: Vec<f64>,
    gpu_rx_free: Vec<f64>,
    nic_tx_free: Vec<f64>,
    nic_rx_free: Vec<f64>,
    nic_tx_bytes: Vec<usize>,
    nic_rx_bytes: Vec<usize>,
    trace: Option<Vec<TransferEvent>>,
}

impl NetSim {
    /// Creates an idle simulator for the cluster.
    pub fn new(spec: ClusterSpec) -> Self {
        let world = spec.world();
        Self {
            spec,
            gpu_clock: vec![0.0; world],
            gpu_tx_free: vec![0.0; world],
            gpu_rx_free: vec![0.0; world],
            nic_tx_free: vec![0.0; spec.nodes],
            nic_rx_free: vec![0.0; spec.nodes],
            nic_tx_bytes: vec![0; spec.nodes],
            nic_rx_bytes: vec![0; spec.nodes],
            trace: None,
        }
    }

    /// Turns on transfer recording; every subsequent transfer is appended
    /// to the trace (readable via [`NetSim::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded transfers, empty if tracing was never enabled.
    pub fn trace(&self) -> &[TransferEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// The cluster this simulator models.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Current local clock of a GPU.
    pub fn time_of(&self, gpu: usize) -> f64 {
        self.gpu_clock[gpu]
    }

    /// Latest clock over all GPUs — the makespan of everything simulated so
    /// far.
    pub fn makespan(&self) -> f64 {
        self.gpu_clock.iter().copied().fold(0.0, f64::max)
    }

    /// Resets all clocks and resources to zero.
    pub fn reset(&mut self) {
        self.gpu_clock.iter_mut().for_each(|t| *t = 0.0);
        self.gpu_tx_free.iter_mut().for_each(|t| *t = 0.0);
        self.gpu_rx_free.iter_mut().for_each(|t| *t = 0.0);
        self.nic_tx_free.iter_mut().for_each(|t| *t = 0.0);
        self.nic_rx_free.iter_mut().for_each(|t| *t = 0.0);
        self.nic_tx_bytes.iter_mut().for_each(|b| *b = 0);
        self.nic_rx_bytes.iter_mut().for_each(|b| *b = 0);
        if let Some(t) = self.trace.as_mut() {
            t.clear();
        }
    }

    /// Total bytes each node's NIC has transmitted so far (traffic
    /// accounting for inter-node links).
    pub fn nic_tx_bytes(&self) -> &[usize] {
        &self.nic_tx_bytes
    }

    /// Total bytes each node's NIC has received so far.
    pub fn nic_rx_bytes(&self) -> &[usize] {
        &self.nic_rx_bytes
    }

    /// Advances a GPU's clock by `seconds` of local compute.
    pub fn compute(&mut self, gpu: usize, seconds: f64) {
        self.gpu_clock[gpu] += seconds;
    }

    /// Aligns all GPUs' clocks to the current makespan (a barrier).
    pub fn barrier(&mut self) {
        let t = self.makespan();
        self.gpu_clock.iter_mut().for_each(|c| *c = t);
    }

    /// Simulates one point-to-point transfer of `bytes` from GPU `src` to
    /// GPU `dst`, returning its completion time.
    ///
    /// # Panics
    /// Panics if `src == dst` — a self-transfer is a schedule bug.
    pub fn transfer(&mut self, src: usize, dst: usize, bytes: usize) -> f64 {
        self.round(&[(src, dst, bytes)])
    }

    /// Simulates one *round* of concurrent transfers `(src, dst, bytes)`.
    ///
    /// All transfers of a round start from a snapshot of the GPU clocks —
    /// a rank that both sends and receives in the same round (every rank of
    /// a ring step does) sends without waiting for its incoming data.
    /// Contended resources (NICs, NVLink ports) still serialise within the
    /// round, in the order given. Returns the latest completion time of the
    /// round.
    ///
    /// # Panics
    /// Panics if any transfer has `src == dst`.
    pub fn round(&mut self, transfers: &[(usize, usize, usize)]) -> f64 {
        let snapshot = self.gpu_clock.clone();
        // (src, src_done, dst, dst_done): the sender is released when its
        // port finishes pushing the bytes; the receiver additionally waits
        // out the link latency α. α does not occupy the port — messages
        // from different streams overlap their latencies (pipelining),
        // they only serialise on port bandwidth.
        let mut completions: Vec<(usize, f64, usize, f64)> = Vec::with_capacity(transfers.len());
        let mut latest = 0.0f64;
        for &(src, dst, bytes) in transfers {
            assert_ne!(src, dst, "transfer: src == dst ({src})");
            let src_node = self.spec.node_of(src);
            let dst_node = self.spec.node_of(dst);
            let inter_node = src_node != dst_node;
            let (sent, end) = if src_node == dst_node {
                let link = self.spec.intra;
                let start = snapshot[src]
                    .max(self.gpu_tx_free[src])
                    .max(self.gpu_rx_free[dst]);
                let sent = start + bytes as f64 * link.beta;
                self.gpu_tx_free[src] = sent;
                self.gpu_rx_free[dst] = sent;
                (sent, sent + link.alpha)
            } else {
                let link = self.spec.inter;
                let start = snapshot[src]
                    .max(self.nic_tx_free[src_node])
                    .max(self.nic_rx_free[dst_node]);
                let sent = start + bytes as f64 * link.beta;
                self.nic_tx_free[src_node] = sent;
                self.nic_rx_free[dst_node] = sent;
                self.nic_tx_bytes[src_node] += bytes;
                self.nic_rx_bytes[dst_node] += bytes;
                (sent, sent + link.alpha)
            };
            if let Some(trace) = self.trace.as_mut() {
                let beta = if inter_node {
                    self.spec.inter.beta
                } else {
                    self.spec.intra.beta
                };
                trace.push(TransferEvent {
                    src,
                    dst,
                    bytes,
                    start: sent - bytes as f64 * beta,
                    end,
                    inter_node,
                });
            }
            completions.push((src, sent, dst, end));
            latest = latest.max(end);
        }
        for (src, sent, dst, end) in completions {
            self.gpu_clock[dst] = self.gpu_clock[dst].max(end);
            self.gpu_clock[src] = self.gpu_clock[src].max(sent);
        }
        latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clouds;

    fn sim() -> NetSim {
        NetSim::new(clouds::tencent(2))
    }

    #[test]
    fn intra_transfer_charges_intra_link() {
        let mut s = sim();
        let spec = *s.spec();
        let end = s.transfer(0, 1, 1_000_000);
        let expect = spec.intra.transfer_time(1_000_000);
        assert!((end - expect).abs() < 1e-12);
        assert_eq!(s.time_of(1), end);
    }

    #[test]
    fn inter_transfer_charges_inter_link() {
        let mut s = sim();
        let spec = *s.spec();
        let end = s.transfer(0, 8, 1_000_000);
        let expect = spec.inter.transfer_time(1_000_000);
        assert!((end - expect).abs() < 1e-12);
        // Inter is much slower than intra for the same size.
        assert!(end > spec.intra.transfer_time(1_000_000) * 10.0);
    }

    #[test]
    fn nic_serialises_concurrent_cross_node_transfers() {
        // 8 GPUs of node 0 each send 1 MB to node 1 "at once": the single
        // NIC serialises them, so the last completion is ~8x one transfer.
        let mut s = sim();
        let spec = *s.spec();
        let mut last = 0.0f64;
        for j in 0..8 {
            last = s.transfer(j, 8 + j, 1 << 20);
        }
        // Bandwidth serialises (8x the bytes); latency is paid once, in
        // parallel across the in-flight messages.
        let expect = 8.0 * (1 << 20) as f64 * spec.inter.beta + spec.inter.alpha;
        assert!((last - expect).abs() < 1e-9, "last={last} expect={expect}");
    }

    #[test]
    fn intra_links_are_per_gpu_and_parallel() {
        // Disjoint GPU pairs inside one node transfer concurrently.
        let mut s = sim();
        let one = s.spec().intra.transfer_time(1 << 20);
        let e1 = s.transfer(0, 1, 1 << 20);
        let e2 = s.transfer(2, 3, 1 << 20);
        assert!((e1 - one).abs() < 1e-12);
        assert!((e2 - one).abs() < 1e-12);
    }

    #[test]
    fn full_duplex_nic() {
        // Node 0 sending and receiving at once do not serialise.
        let mut s = sim();
        let one = s.spec().inter.transfer_time(1 << 20);
        let e1 = s.transfer(0, 8, 1 << 20);
        let e2 = s.transfer(9, 1, 1 << 20);
        assert!((e1 - one).abs() < 1e-12);
        assert!((e2 - one).abs() < 1e-12);
    }

    #[test]
    fn compute_and_barrier_advance_clocks() {
        let mut s = sim();
        s.compute(3, 0.5);
        assert_eq!(s.time_of(3), 0.5);
        assert_eq!(s.time_of(0), 0.0);
        s.barrier();
        assert_eq!(s.time_of(0), 0.5);
        assert_eq!(s.makespan(), 0.5);
        s.reset();
        assert_eq!(s.makespan(), 0.0);
    }

    #[test]
    fn sender_clock_gates_transfer_start() {
        let mut s = sim();
        s.compute(0, 1.0);
        let end = s.transfer(0, 1, 1000);
        assert!(end > 1.0);
    }

    #[test]
    #[should_panic(expected = "src == dst")]
    fn self_transfer_panics() {
        sim().transfer(2, 2, 10);
    }

    #[test]
    fn trace_records_transfers_when_enabled() {
        let mut s = sim();
        assert!(s.trace().is_empty());
        s.enable_trace();
        s.transfer(0, 1, 1000);
        s.transfer(0, 8, 2000);
        let t = s.trace();
        assert_eq!(t.len(), 2);
        assert!(!t[0].inter_node);
        assert!(t[1].inter_node);
        assert_eq!(t[1].bytes, 2000);
        assert!(t[0].start >= 0.0 && t[0].end > t[0].start);
        // Latency is included in end but not in port occupancy.
        let spec = *s.spec();
        assert!((t[1].end - t[1].start - spec.inter.transfer_time(2000)).abs() < 1e-12);
        s.reset();
        assert!(s.trace().is_empty());
    }
}
