use crate::faults::{
    DeadlineMode, FaultCounters, FaultEvent, FaultEventKind, FaultPlan, SimResilience,
};
use crate::topology::ClusterSpec;
use cloudtrain_obs::{Registry, SpanId};

/// One recorded transfer (produced when tracing is enabled via
/// [`NetSim::enable_trace`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferEvent {
    /// Sender GPU id.
    pub src: usize,
    /// Receiver GPU id.
    pub dst: usize,
    /// Payload bytes.
    pub bytes: usize,
    /// When the payload started occupying its port, seconds.
    pub start: f64,
    /// When the receiver had the payload, seconds (includes link latency).
    pub end: f64,
    /// Whether the transfer crossed the inter-node fabric.
    pub inter_node: bool,
}

/// Discrete-event simulator state for one cluster.
///
/// Tracks a local clock per GPU and the busy-until time of every
/// contended resource:
///
/// * per-GPU NVLink tx/rx ports (intra-node transfers),
/// * per-node NIC tx/rx (inter-node transfers — **shared by all GPUs of
///   the node**, which is the contention that penalises flat collectives
///   on cloud clusters).
///
/// A transfer `src → dst` starts when the sender's clock and all required
/// resources are free, takes `α + bytes·β` of the link class it crosses,
/// and advances the receiver's clock and the resources to its completion
/// time. The sender's clock also advances (ring steps are rendezvous
/// send/recv pairs, matching the α–β analyses in the paper).
#[derive(Debug, Clone)]
pub struct NetSim {
    spec: ClusterSpec,
    gpu_clock: Vec<f64>,
    gpu_tx_free: Vec<f64>,
    gpu_rx_free: Vec<f64>,
    nic_tx_free: Vec<f64>,
    nic_rx_free: Vec<f64>,
    nic_tx_bytes: Vec<usize>,
    nic_rx_bytes: Vec<usize>,
    trace: Option<Vec<TransferEvent>>,
    faults: Option<FaultState>,
    obs: Option<Registry>,
}

/// Live fault-injection state (plan + policy + accounting).
#[derive(Debug, Clone)]
struct FaultState {
    plan: FaultPlan,
    policy: SimResilience,
    /// Monotone inter-node transfer counter — the identifier every fault
    /// decision is hashed on.
    seq: u64,
    counters: FaultCounters,
    events: Vec<FaultEvent>,
}

impl NetSim {
    /// Creates an idle simulator for the cluster.
    pub fn new(spec: ClusterSpec) -> Self {
        let world = spec.world();
        Self {
            spec,
            gpu_clock: vec![0.0; world],
            gpu_tx_free: vec![0.0; world],
            gpu_rx_free: vec![0.0; world],
            nic_tx_free: vec![0.0; spec.nodes],
            nic_rx_free: vec![0.0; spec.nodes],
            nic_tx_bytes: vec![0; spec.nodes],
            nic_rx_bytes: vec![0; spec.nodes],
            trace: None,
            faults: None,
            obs: None,
        }
    }

    /// Attaches a fresh [`Registry`]: subsequent [`NetSim::span_open`] /
    /// [`NetSim::span_close`] calls (the simulated collectives make them
    /// around every phase) record spans charged from **virtual time**
    /// (the makespan), so the resulting trace is byte-stable. The registry
    /// survives [`NetSim::reset`] — it is an append-only journal; detach
    /// with [`NetSim::take_obs`] for a fresh one.
    pub fn attach_obs(&mut self) {
        self.obs = Some(Registry::new());
    }

    /// The attached registry, if any.
    pub fn obs(&self) -> Option<&Registry> {
        self.obs.as_ref()
    }

    /// Mutable access to the attached registry (for publishing counters
    /// alongside the spans the simulator records itself).
    pub fn obs_mut(&mut self) -> Option<&mut Registry> {
        self.obs.as_mut()
    }

    /// Detaches and returns the registry (e.g. to merge it into a
    /// run-level one).
    pub fn take_obs(&mut self) -> Option<Registry> {
        self.obs.take()
    }

    /// Opens a span at the current makespan on the attached registry
    /// (no-op returning `None` when no registry is attached).
    pub fn span_open(&mut self, name: &str) -> Option<SpanId> {
        let t = self.makespan();
        self.obs.as_mut().map(|reg| {
            reg.sync_clock(t);
            reg.span_open(name, t)
        })
    }

    /// Closes a span at the current makespan (no-op for `None`).
    pub fn span_close(&mut self, id: Option<SpanId>) {
        let t = self.makespan();
        if let (Some(reg), Some(id)) = (self.obs.as_mut(), id) {
            reg.sync_clock(t);
            reg.span_close(id, t);
        }
    }

    /// Publishes the current fault counters and per-node NIC byte totals
    /// into the attached registry (no-op when none is attached).
    pub fn publish_obs(&mut self) {
        let counters = self.fault_counters();
        let tx: usize = self.nic_tx_bytes.iter().sum();
        let rx: usize = self.nic_rx_bytes.iter().sum();
        if let Some(reg) = self.obs.as_mut() {
            counters.publish(reg);
            reg.counter_add("sim/nic_tx_bytes", tx as u64);
            reg.counter_add("sim/nic_rx_bytes", rx as u64);
        }
    }

    /// Installs a seeded fault plan and the resilience policy applied to
    /// faulted transfers. Subsequent inter-node transfers and
    /// [`NetSim::compute`] calls consult the plan; accounting is readable
    /// via [`NetSim::fault_counters`] / [`NetSim::fault_events`].
    pub fn inject_faults(&mut self, plan: FaultPlan, policy: SimResilience) {
        self.faults = Some(FaultState {
            plan,
            policy,
            seq: 0,
            counters: FaultCounters::default(),
            events: Vec::new(),
        });
    }

    /// Removes any installed fault plan (subsequent traffic is clean).
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Aggregate fault accounting so far (zeros when no plan is installed).
    pub fn fault_counters(&self) -> FaultCounters {
        self.faults.as_ref().map(|f| f.counters).unwrap_or_default()
    }

    /// The injected faults in schedule order (empty when no plan).
    pub fn fault_events(&self) -> &[FaultEvent] {
        self.faults
            .as_ref()
            .map(|f| f.events.as_slice())
            .unwrap_or(&[])
    }

    /// Turns on transfer recording; every subsequent transfer is appended
    /// to the trace (readable via [`NetSim::trace`]).
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// The recorded transfers, empty if tracing was never enabled.
    pub fn trace(&self) -> &[TransferEvent] {
        self.trace.as_deref().unwrap_or(&[])
    }

    /// The cluster this simulator models.
    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    /// Current local clock of a GPU.
    pub fn time_of(&self, gpu: usize) -> f64 {
        self.gpu_clock[gpu]
    }

    /// Latest clock over all GPUs — the makespan of everything simulated so
    /// far.
    pub fn makespan(&self) -> f64 {
        self.gpu_clock.iter().copied().fold(0.0, f64::max)
    }

    /// Resets all clocks and resources to zero.
    pub fn reset(&mut self) {
        self.gpu_clock.iter_mut().for_each(|t| *t = 0.0);
        self.gpu_tx_free.iter_mut().for_each(|t| *t = 0.0);
        self.gpu_rx_free.iter_mut().for_each(|t| *t = 0.0);
        self.nic_tx_free.iter_mut().for_each(|t| *t = 0.0);
        self.nic_rx_free.iter_mut().for_each(|t| *t = 0.0);
        self.nic_tx_bytes.iter_mut().for_each(|b| *b = 0);
        self.nic_rx_bytes.iter_mut().for_each(|b| *b = 0);
        if let Some(t) = self.trace.as_mut() {
            t.clear();
        }
        if let Some(f) = self.faults.as_mut() {
            f.seq = 0;
            f.counters = FaultCounters::default();
            f.events.clear();
        }
    }

    /// Total bytes each node's NIC has transmitted so far (traffic
    /// accounting for inter-node links).
    pub fn nic_tx_bytes(&self) -> &[usize] {
        &self.nic_tx_bytes
    }

    /// Total bytes each node's NIC has received so far.
    pub fn nic_rx_bytes(&self) -> &[usize] {
        &self.nic_rx_bytes
    }

    /// Advances a GPU's clock by `seconds` of local compute. A straggler
    /// node in an installed [`FaultPlan`] runs at `1/factor` speed; the
    /// extra time is attributed in the counters.
    pub fn compute(&mut self, gpu: usize, seconds: f64) {
        let mut t = seconds;
        if let Some(f) = self.faults.as_mut() {
            let factor = f.plan.compute_factor(self.spec.node_of(gpu));
            if factor > 1.0 {
                t = seconds * factor;
                f.counters.straggler_seconds += t - seconds;
            }
        }
        self.gpu_clock[gpu] += t;
    }

    /// Aligns all GPUs' clocks to the current makespan (a barrier).
    pub fn barrier(&mut self) {
        let t = self.makespan();
        self.gpu_clock.iter_mut().for_each(|c| *c = t);
    }

    /// Simulates one point-to-point transfer of `bytes` from GPU `src` to
    /// GPU `dst`, returning its completion time.
    ///
    /// # Panics
    /// Panics if `src == dst` — a self-transfer is a schedule bug.
    pub fn transfer(&mut self, src: usize, dst: usize, bytes: usize) -> f64 {
        self.round(&[(src, dst, bytes)])
    }

    /// Simulates one *round* of concurrent transfers `(src, dst, bytes)`.
    ///
    /// All transfers of a round start from a snapshot of the GPU clocks —
    /// a rank that both sends and receives in the same round (every rank of
    /// a ring step does) sends without waiting for its incoming data.
    /// Contended resources (NICs, NVLink ports) still serialise within the
    /// round, in the order given. Returns the latest completion time of the
    /// round.
    ///
    /// # Panics
    /// Panics if any transfer has `src == dst`.
    pub fn round(&mut self, transfers: &[(usize, usize, usize)]) -> f64 {
        let snapshot = self.gpu_clock.clone();
        // (src, src_done, dst, dst_done): the sender is released when its
        // port finishes pushing the bytes; the receiver additionally waits
        // out the link latency α. α does not occupy the port — messages
        // from different streams overlap their latencies (pipelining),
        // they only serialise on port bandwidth.
        let mut completions: Vec<(usize, f64, usize, f64)> = Vec::with_capacity(transfers.len());
        let mut latest = 0.0f64;
        for &(src, dst, bytes) in transfers {
            assert_ne!(src, dst, "transfer: src == dst ({src})");
            let src_node = self.spec.node_of(src);
            let dst_node = self.spec.node_of(dst);
            let inter_node = src_node != dst_node;
            let (record_start, sent, end) = if src_node == dst_node {
                // Intra-node (NVLink): an in-box interconnect, modelled as
                // reliable — fault plans do not touch it.
                let link = self.spec.intra;
                let start = snapshot[src]
                    .max(self.gpu_tx_free[src])
                    .max(self.gpu_rx_free[dst]);
                let sent = start + bytes as f64 * link.beta;
                self.gpu_tx_free[src] = sent;
                self.gpu_rx_free[dst] = sent;
                (start, sent, sent + link.alpha)
            } else {
                let link = self.spec.inter;
                let start = snapshot[src]
                    .max(self.nic_tx_free[src_node])
                    .max(self.nic_rx_free[dst_node]);
                let mut alpha = link.alpha;
                let mut beta = link.beta;
                // Consult the fault plan: degradation scales β, a spike
                // adds to α, drops charge a timeout/backoff ladder, and the
                // deadline mode decides whether the payload lands at all.
                let mut wasted = 0.0;
                let mut delivered = true;
                if let Some(fs) = self.faults.as_mut() {
                    let seq = fs.seq;
                    fs.seq += 1;
                    fs.counters.transfers += 1;
                    let slow = fs
                        .plan
                        .beta_factor(src_node, start)
                        .max(fs.plan.beta_factor(dst_node, start));
                    if slow > 1.0 {
                        beta *= slow;
                        fs.counters.slowed += 1;
                        fs.events.push(FaultEvent {
                            seq,
                            src,
                            dst,
                            kind: FaultEventKind::Slowed,
                        });
                    }
                    if fs.plan.spiked(seq) {
                        alpha += fs.plan.spike_seconds;
                        fs.counters.spikes += 1;
                        fs.events.push(FaultEvent {
                            seq,
                            src,
                            dst,
                            kind: FaultEventKind::Spike,
                        });
                    }
                    let mut attempt = 0u32;
                    loop {
                        if !fs.plan.dropped(seq, attempt) {
                            break;
                        }
                        fs.counters.drops += 1;
                        fs.events.push(FaultEvent {
                            seq,
                            src,
                            dst,
                            kind: FaultEventKind::Drop { attempt },
                        });
                        wasted += fs.policy.hop_timeout + fs.policy.backoff * attempt as f64;
                        match fs.policy.mode {
                            DeadlineMode::Degrade => {
                                delivered = false;
                                fs.counters.degraded += 1;
                                fs.events.push(FaultEvent {
                                    seq,
                                    src,
                                    dst,
                                    kind: FaultEventKind::Degraded,
                                });
                                break;
                            }
                            DeadlineMode::Retry => {
                                if attempt == fs.policy.max_retries {
                                    // Budget exhausted: force-deliver (the
                                    // reliable-transport tail) after the
                                    // full penalty.
                                    fs.counters.escalations += 1;
                                    fs.events.push(FaultEvent {
                                        seq,
                                        src,
                                        dst,
                                        kind: FaultEventKind::Escalated,
                                    });
                                    break;
                                }
                                fs.counters.retries += 1;
                                attempt += 1;
                            }
                        }
                    }
                    // Deadline budget (OptiReduce-style): if riding the hop
                    // out — ladder waits plus the effective transfer time —
                    // would exceed the budget derived from the probed clean
                    // α/β, the sender abandons at exactly the budget
                    // boundary and the receiver proceeds without the
                    // payload. This bounds straggler-inflated β windows and
                    // drop ladders alike.
                    if delivered {
                        if let Some(budget) = fs.policy.hop_budget(bytes) {
                            if wasted + alpha + bytes as f64 * beta > budget {
                                delivered = false;
                                wasted = budget;
                                fs.counters.deadline_missed += 1;
                                fs.events.push(FaultEvent {
                                    seq,
                                    src,
                                    dst,
                                    kind: FaultEventKind::DeadlineMiss,
                                });
                            }
                        }
                    }
                    fs.counters.fault_delay += wasted;
                }
                let (record_start, sent, end) = if delivered {
                    let sent = start + wasted + bytes as f64 * beta;
                    self.nic_tx_bytes[src_node] += bytes;
                    self.nic_rx_bytes[dst_node] += bytes;
                    (start + wasted, sent, sent + alpha)
                } else {
                    // Abandoned hop: the ports were tied up until the
                    // deadline expired, but no payload arrived (the
                    // receiver proceeds without it — end == sent).
                    let sent = start + wasted;
                    (start, sent, sent)
                };
                self.nic_tx_free[src_node] = sent;
                self.nic_rx_free[dst_node] = sent;
                (record_start, sent, end)
            };
            if let Some(trace) = self.trace.as_mut() {
                trace.push(TransferEvent {
                    src,
                    dst,
                    bytes,
                    start: record_start,
                    end,
                    inter_node,
                });
            }
            completions.push((src, sent, dst, end));
            latest = latest.max(end);
        }
        for (src, sent, dst, end) in completions {
            self.gpu_clock[dst] = self.gpu_clock[dst].max(end);
            self.gpu_clock[src] = self.gpu_clock[src].max(sent);
        }
        latest
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clouds;

    fn sim() -> NetSim {
        NetSim::new(clouds::tencent(2))
    }

    #[test]
    fn intra_transfer_charges_intra_link() {
        let mut s = sim();
        let spec = *s.spec();
        let end = s.transfer(0, 1, 1_000_000);
        let expect = spec.intra.transfer_time(1_000_000);
        assert!((end - expect).abs() < 1e-12);
        assert_eq!(s.time_of(1), end);
    }

    #[test]
    fn inter_transfer_charges_inter_link() {
        let mut s = sim();
        let spec = *s.spec();
        let end = s.transfer(0, 8, 1_000_000);
        let expect = spec.inter.transfer_time(1_000_000);
        assert!((end - expect).abs() < 1e-12);
        // Inter is much slower than intra for the same size.
        assert!(end > spec.intra.transfer_time(1_000_000) * 10.0);
    }

    #[test]
    fn nic_serialises_concurrent_cross_node_transfers() {
        // 8 GPUs of node 0 each send 1 MB to node 1 "at once": the single
        // NIC serialises them, so the last completion is ~8x one transfer.
        let mut s = sim();
        let spec = *s.spec();
        let mut last = 0.0f64;
        for j in 0..8 {
            last = s.transfer(j, 8 + j, 1 << 20);
        }
        // Bandwidth serialises (8x the bytes); latency is paid once, in
        // parallel across the in-flight messages.
        let expect = 8.0 * (1 << 20) as f64 * spec.inter.beta + spec.inter.alpha;
        assert!((last - expect).abs() < 1e-9, "last={last} expect={expect}");
    }

    #[test]
    fn intra_links_are_per_gpu_and_parallel() {
        // Disjoint GPU pairs inside one node transfer concurrently.
        let mut s = sim();
        let one = s.spec().intra.transfer_time(1 << 20);
        let e1 = s.transfer(0, 1, 1 << 20);
        let e2 = s.transfer(2, 3, 1 << 20);
        assert!((e1 - one).abs() < 1e-12);
        assert!((e2 - one).abs() < 1e-12);
    }

    #[test]
    fn full_duplex_nic() {
        // Node 0 sending and receiving at once do not serialise.
        let mut s = sim();
        let one = s.spec().inter.transfer_time(1 << 20);
        let e1 = s.transfer(0, 8, 1 << 20);
        let e2 = s.transfer(9, 1, 1 << 20);
        assert!((e1 - one).abs() < 1e-12);
        assert!((e2 - one).abs() < 1e-12);
    }

    #[test]
    fn compute_and_barrier_advance_clocks() {
        let mut s = sim();
        s.compute(3, 0.5);
        assert_eq!(s.time_of(3), 0.5);
        assert_eq!(s.time_of(0), 0.0);
        s.barrier();
        assert_eq!(s.time_of(0), 0.5);
        assert_eq!(s.makespan(), 0.5);
        s.reset();
        assert_eq!(s.makespan(), 0.0);
    }

    #[test]
    fn sender_clock_gates_transfer_start() {
        let mut s = sim();
        s.compute(0, 1.0);
        let end = s.transfer(0, 1, 1000);
        assert!(end > 1.0);
    }

    #[test]
    #[should_panic(expected = "src == dst")]
    fn self_transfer_panics() {
        sim().transfer(2, 2, 10);
    }

    #[test]
    fn clean_fault_plan_changes_nothing_but_counts() {
        let mut clean = sim();
        let mut faulty = sim();
        faulty.inject_faults(FaultPlan::new(7), SimResilience::default());
        let mut schedule = Vec::new();
        for j in 0..4 {
            schedule.push((j, 8 + j, 1 << 18));
        }
        let a = clean.round(&schedule);
        let b = faulty.round(&schedule);
        assert_eq!(a.to_bits(), b.to_bits());
        let c = faulty.fault_counters();
        assert_eq!(c.transfers, 4);
        assert_eq!(c.drops + c.spikes + c.slowed, 0);
        assert!(faulty.fault_events().is_empty());
    }

    #[test]
    fn retry_mode_always_delivers_and_charges_delay() {
        let mut s = sim();
        let plan = FaultPlan::new(11).with_drops(0.5);
        s.inject_faults(plan, SimResilience::default());
        let mut bytes_expected = 0usize;
        for i in 0..64 {
            s.transfer(i % 8, 8 + (i % 8), 4096);
            bytes_expected += 4096;
        }
        let c = s.fault_counters();
        assert!(c.drops > 0, "p=0.5 over 64 transfers must drop some");
        assert!(c.fault_delay > 0.0);
        assert_eq!(c.degraded, 0);
        // Retry mode delivers every payload: byte accounting is untouched.
        assert_eq!(s.nic_tx_bytes()[0], bytes_expected);
        assert_eq!(s.nic_rx_bytes()[1], bytes_expected);
        // Retries + escalations reconcile with drops: every drop is either
        // retried or ends an escalation ladder.
        assert_eq!(c.drops, c.retries + c.escalations);
    }

    #[test]
    fn degrade_mode_abandons_dropped_payloads() {
        let mut s = sim();
        let plan = FaultPlan::new(11).with_drops(0.5);
        s.inject_faults(plan, SimResilience::degrading());
        for i in 0..64 {
            s.transfer(i % 8, 8 + (i % 8), 4096);
        }
        let c = s.fault_counters();
        assert!(c.degraded > 0);
        assert_eq!(c.retries, 0);
        assert_eq!(c.escalations, 0);
        // Abandoned payloads never hit the byte counters.
        let delivered = c.transfers - c.degraded;
        assert_eq!(s.nic_tx_bytes()[0], delivered as usize * 4096);
    }

    #[test]
    fn spikes_extend_latency_not_bandwidth() {
        let mut s = sim();
        let spec = *s.spec();
        // spike_prob = 1: every inter-node transfer pays the spike.
        let plan = FaultPlan::new(3).with_spikes(1.0, 0.25);
        s.inject_faults(plan, SimResilience::default());
        let end = s.transfer(0, 8, 1 << 20);
        let expect = spec.inter.transfer_time(1 << 20) + 0.25;
        assert!((end - expect).abs() < 1e-9, "end={end} expect={expect}");
        assert_eq!(s.fault_counters().spikes, 1);
    }

    #[test]
    fn degradation_window_scales_beta() {
        let mut s = sim();
        let spec = *s.spec();
        let plan = FaultPlan::new(5).degrade_link(1, 3.0, 0.0, 1.0);
        s.inject_faults(plan, SimResilience::default());
        // dst node 1 is degraded at t=0: β is tripled, α unchanged.
        let end = s.transfer(0, 8, 1 << 20);
        let expect = 3.0 * (1 << 20) as f64 * spec.inter.beta + spec.inter.alpha;
        assert!((end - expect).abs() < 1e-9, "end={end} expect={expect}");
        assert_eq!(s.fault_counters().slowed, 1);
    }

    #[test]
    fn straggler_scales_compute_and_is_attributed() {
        let mut s = sim();
        let plan = FaultPlan::new(5).straggle(1, 2.0);
        s.inject_faults(plan, SimResilience::default());
        s.compute(0, 1.0); // node 0: clean
        s.compute(8, 1.0); // node 1: 2x straggler
        assert!((s.time_of(0) - 1.0).abs() < 1e-12);
        assert!((s.time_of(8) - 2.0).abs() < 1e-12);
        assert!((s.fault_counters().straggler_seconds - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deadline_policy_is_a_bitwise_noop_when_nothing_fires() {
        // Clean plan, deadline enabled: the budget always covers the clean
        // transfer time (mult >= 1), so timing is bitwise the no-fault run.
        let spec = clouds::tencent(2);
        let policy = SimResilience::deadline_bounded(1.5, spec.inter.alpha, spec.inter.beta);
        let mut clean = sim();
        let mut bounded = sim();
        bounded.inject_faults(FaultPlan::new(9), policy);
        let schedule: Vec<(usize, usize, usize)> = (0..4).map(|j| (j, 8 + j, 1 << 18)).collect();
        let a = clean.round(&schedule);
        let b = bounded.round(&schedule);
        assert_eq!(a.to_bits(), b.to_bits());
        assert_eq!(bounded.fault_counters().deadline_missed, 0);
    }

    #[test]
    fn deadline_caps_a_spiked_transfer_at_the_budget() {
        let mut s = sim();
        let spec = *s.spec();
        let policy = SimResilience::deadline_bounded(1.5, spec.inter.alpha, spec.inter.beta);
        // Every transfer takes a 250 ms spike — far beyond any budget.
        s.inject_faults(FaultPlan::new(3).with_spikes(1.0, 0.25), policy);
        let end = s.transfer(0, 8, 1 << 20);
        let budget = 1.5 * spec.inter.transfer_time(1 << 20);
        assert!((end - budget).abs() < 1e-12, "end={end} budget={budget}");
        let c = s.fault_counters();
        assert_eq!(c.deadline_missed, 1);
        // The payload never arrived.
        assert_eq!(s.nic_rx_bytes()[1], 0);
        // The miss is recorded in the event stream with a stable code.
        assert!(s
            .fault_events()
            .iter()
            .any(|e| e.kind == FaultEventKind::DeadlineMiss));
        assert_eq!(FaultEventKind::DeadlineMiss.code(), "deadline");
    }

    #[test]
    fn deadline_bounds_the_retry_ladder_tail() {
        // Same drops, with and without the deadline: the bounded policy's
        // makespan can never exceed the pure retry ladder's.
        let spec = clouds::tencent(2);
        let run = |policy: SimResilience| {
            let mut s = sim();
            s.inject_faults(FaultPlan::new(11).with_drops(0.5), policy);
            for i in 0..64 {
                s.transfer(i % 8, 8 + (i % 8), 4096);
            }
            (s.makespan(), s.fault_counters())
        };
        let (retry_span, retry_c) = run(SimResilience::default());
        let (bounded_span, bounded_c) = run(SimResilience::deadline_bounded(
            1.5,
            spec.inter.alpha,
            spec.inter.beta,
        ));
        assert!(retry_c.drops > 0);
        assert!(bounded_c.deadline_missed > 0, "p=0.5 must trip the budget");
        assert!(
            bounded_span <= retry_span + 1e-12,
            "bounded {bounded_span} > retry {retry_span}"
        );
    }

    #[test]
    fn fault_injection_is_deterministic_across_runs() {
        let run = || {
            let mut s = sim();
            s.enable_trace();
            let plan = FaultPlan::new(42)
                .with_drops(0.1)
                .with_spikes(0.05, 0.01)
                .degrade_link(0, 2.0, 0.0, 0.5)
                .straggle(1, 1.5);
            s.inject_faults(plan, SimResilience::default());
            for i in 0..32 {
                s.compute(i % 16, 1e-3);
                s.transfer(i % 8, 8 + ((i + 3) % 8), 10_000);
            }
            (s.makespan(), s.fault_counters(), s.trace().to_vec())
        };
        let (m1, c1, t1) = run();
        let (m2, c2, t2) = run();
        assert_eq!(m1.to_bits(), m2.to_bits());
        assert_eq!(c1.drops, c2.drops);
        assert_eq!(c1.fault_delay.to_bits(), c2.fault_delay.to_bits());
        assert_eq!(t1, t2);
    }

    #[test]
    fn reset_clears_fault_accounting() {
        let mut s = sim();
        s.inject_faults(FaultPlan::new(1).with_drops(0.9), SimResilience::default());
        for _ in 0..8 {
            s.transfer(0, 8, 1000);
        }
        assert!(s.fault_counters().drops > 0);
        s.reset();
        assert_eq!(s.fault_counters().drops, 0);
        assert!(s.fault_events().is_empty());
        s.clear_faults();
        assert_eq!(s.fault_counters(), FaultCounters::default());
    }

    #[test]
    fn attached_obs_records_virtual_time_spans_and_fault_counters() {
        let mut s = sim();
        assert!(s.obs().is_none());
        assert!(s.span_open("noop").is_none()); // no registry: no-op
        s.attach_obs();
        s.inject_faults(FaultPlan::new(11).with_drops(0.5), SimResilience::default());
        let id = s.span_open("round");
        for i in 0..16 {
            s.transfer(i % 8, 8 + (i % 8), 4096);
        }
        s.span_close(id);
        s.publish_obs();
        let reg = s.take_obs().unwrap();
        assert!(s.obs().is_none());
        let span = &reg.spans()[0];
        assert_eq!(span.name, "round");
        assert_eq!(span.start, 0.0);
        // The span closed at the makespan, in virtual seconds.
        assert!(span.end > 0.0);
        assert_eq!(reg.counter("faults/transfers"), 16);
        assert!(reg.counter("sim/nic_tx_bytes") > 0);
        assert!(reg.gauge("faults/fault_delay_seconds").unwrap() > 0.0);
    }

    #[test]
    fn trace_records_transfers_when_enabled() {
        let mut s = sim();
        assert!(s.trace().is_empty());
        s.enable_trace();
        s.transfer(0, 1, 1000);
        s.transfer(0, 8, 2000);
        let t = s.trace();
        assert_eq!(t.len(), 2);
        assert!(!t[0].inter_node);
        assert!(t[1].inter_node);
        assert_eq!(t[1].bytes, 2000);
        assert!(t[0].start >= 0.0 && t[0].end > t[0].start);
        // Latency is included in end but not in port occupancy.
        let spec = *s.spec();
        assert!((t[1].end - t[1].start - spec.inter.transfer_time(2000)).abs() < 1e-12);
        s.reset();
        assert!(s.trace().is_empty());
    }
}
