//! Seeded fault injection for the network simulator.
//!
//! Public-cloud fabrics are not the happy path the α–β model assumes:
//! shared NICs take latency spikes from noisy neighbours, links degrade
//! transiently, TCP segments are dropped and retransmitted after a timeout,
//! and whole VMs straggle. A [`FaultPlan`] describes such a hostile episode
//! as a *pure function of a seed*: every fault decision is derived by
//! hashing `(seed, transfer-sequence-number, attempt)` — no global RNG, no
//! wall clock — so the same plan replayed against the same schedule yields
//! a byte-identical timeline. That determinism is what makes the CI fault
//! gauntlet trustworthy: a failure reproduces exactly, on any machine.
//!
//! The fault taxonomy (inter-node transfers only — NVLink is an in-box
//! interconnect and modelled as reliable):
//!
//! * **message drops** — a transfer attempt is lost; the sender waits out a
//!   timeout, backs off, and retries ([`SimResilience`] bounds the ladder);
//! * **latency spikes** — a transfer pays extra one-off latency on top of α;
//! * **transient link degradation** — a node's NIC runs at a fraction of
//!   line rate during a time window (β is multiplied);
//! * **node-level stragglers** — a node's GPUs compute at `1/factor` speed
//!   ([`crate::NetSim::compute`] charges the extra time).
//!
//! How a hop that exhausts its retry budget ends depends on
//! [`DeadlineMode`]: dense collectives must deliver every byte
//! (`Retry` escalates: the final attempt always lands, after paying the
//! full penalty), while sparse collectives may *degrade* (`Degrade`
//! abandons the hop after one timeout — the receiving rank proceeds with an
//! empty sparse block and error feedback re-queues the mass next step).

use serde::{Deserialize, Serialize};

/// A transient degradation window of one node's NIC.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkDegrade {
    /// Node whose NIC is degraded.
    pub node: usize,
    /// Bandwidth divisor while active (2.0 = half line rate). Must be ≥ 1.
    pub factor: f64,
    /// Window start, seconds of simulated time.
    pub from: f64,
    /// Window end, seconds of simulated time (`f64::INFINITY` = forever).
    pub until: f64,
}

/// A persistently slow node (degraded VM / noisy neighbour).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    /// Node index.
    pub node: usize,
    /// Compute slowdown factor (1.5 = 50% slower). Must be ≥ 1.
    pub factor: f64,
}

/// A seeded, replayable description of one hostile-network episode.
///
/// All probability draws are pure functions of `(seed, identifiers)`, so a
/// plan injected into [`crate::NetSim`] produces the same faults on every
/// replay of the same schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Master seed for all fault decisions.
    pub seed: u64,
    /// Per-attempt probability that an inter-node transfer is dropped.
    pub drop_prob: f64,
    /// Per-transfer probability of a latency spike.
    pub spike_prob: f64,
    /// Extra latency a spiked transfer pays, seconds.
    pub spike_seconds: f64,
    /// Transient NIC degradation windows.
    pub degradations: Vec<LinkDegrade>,
    /// Persistently slow nodes.
    pub stragglers: Vec<Straggler>,
}

impl FaultPlan {
    /// A fault-free plan under `seed` (builder entry point).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            spike_prob: 0.0,
            spike_seconds: 0.0,
            degradations: Vec::new(),
            stragglers: Vec::new(),
        }
    }

    /// Sets the per-attempt message-drop probability.
    #[must_use]
    pub fn with_drops(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "drop_prob out of [0,1]");
        self.drop_prob = prob;
        self
    }

    /// Sets the latency-spike probability and magnitude.
    #[must_use]
    pub fn with_spikes(mut self, prob: f64, seconds: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "spike_prob out of [0,1]");
        self.spike_prob = prob;
        self.spike_seconds = seconds;
        self
    }

    /// Adds a transient degradation window on `node`'s NIC.
    #[must_use]
    pub fn degrade_link(mut self, node: usize, factor: f64, from: f64, until: f64) -> Self {
        assert!(factor >= 1.0, "degradation factor must be >= 1");
        self.degradations.push(LinkDegrade {
            node,
            factor,
            from,
            until,
        });
        self
    }

    /// Marks `node` as a persistent compute straggler.
    #[must_use]
    pub fn straggle(mut self, node: usize, factor: f64) -> Self {
        assert!(factor >= 1.0, "straggler factor must be >= 1");
        self.stragglers.push(Straggler { node, factor });
        self
    }

    /// Whether the plan injects nothing at all.
    pub fn is_clean(&self) -> bool {
        self.drop_prob == 0.0
            && self.spike_prob == 0.0
            && self.degradations.is_empty()
            && self.stragglers.is_empty()
    }

    /// Whether attempt `attempt` of inter-node transfer number `seq` is
    /// dropped. Pure in `(seed, seq, attempt)`.
    pub fn dropped(&self, seq: u64, attempt: u32) -> bool {
        self.drop_prob > 0.0
            && unit(hash3(self.seed ^ DROP_SALT, seq, attempt as u64)) < self.drop_prob
    }

    /// Whether inter-node transfer number `seq` takes a latency spike.
    pub fn spiked(&self, seq: u64) -> bool {
        self.spike_prob > 0.0 && unit(hash3(self.seed ^ SPIKE_SALT, seq, 1)) < self.spike_prob
    }

    /// Bandwidth divisor of the link touching `node` at simulated time
    /// `at` (product of all active windows; 1.0 when none).
    pub fn beta_factor(&self, node: usize, at: f64) -> f64 {
        self.degradations
            .iter()
            .filter(|d| d.node == node && at >= d.from && at < d.until)
            .map(|d| d.factor)
            .product()
    }

    /// Compute slowdown of `node` (max of matching stragglers; 1.0 when
    /// none).
    pub fn compute_factor(&self, node: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|s| s.node == node)
            .map(|s| s.factor)
            .fold(1.0, f64::max)
    }

    /// Worst compute slowdown over all nodes — what a BSP step pays.
    pub fn max_compute_factor(&self) -> f64 {
        self.stragglers.iter().map(|s| s.factor).fold(1.0, f64::max)
    }
}

/// What happens when a hop exhausts its retry budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DeadlineMode {
    /// Escalate: the final attempt always delivers (reliable transport —
    /// dense collectives need every byte). The full retry penalty is still
    /// charged.
    Retry,
    /// Abandon after the *first* timeout: the payload never arrives and the
    /// receiver proceeds without it (sparse collectives substitute an empty
    /// block; error feedback preserves the mass).
    Degrade,
}

/// Timeout/retry policy the simulator applies to faulted transfers.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimResilience {
    /// Seconds a sender waits before declaring an attempt lost.
    pub hop_timeout: f64,
    /// Re-transmissions allowed after the first attempt (`Retry` mode).
    pub max_retries: u32,
    /// Extra wait added per attempt number (linear backoff), seconds.
    pub backoff: f64,
    /// Deadline semantics (see [`DeadlineMode`]).
    pub mode: DeadlineMode,
    /// Per-hop deadline budget multiplier (OptiReduce-style tail bounding):
    /// when positive, an inter-node hop whose total cost (ladder waits plus
    /// effective `α + bytes·β`) would exceed
    /// `hop_deadline_mult × (deadline_alpha + bytes·deadline_beta)` is
    /// abandoned exactly at the budget boundary — the payload never arrives
    /// and the receiver proceeds without it (safe for sparse collectives
    /// under error feedback; partial aggregates for dense ones). `0.0`
    /// disables the deadline entirely.
    #[serde(default)]
    pub hop_deadline_mult: f64,
    /// Probed clean-link α the deadline budget is derived from
    /// (see [`crate::probe::probe_pairwise`]).
    #[serde(default)]
    pub deadline_alpha: f64,
    /// Probed clean-link β the deadline budget is derived from.
    #[serde(default)]
    pub deadline_beta: f64,
}

impl Default for SimResilience {
    fn default() -> Self {
        Self {
            hop_timeout: 1e-3,
            max_retries: 3,
            backoff: 5e-4,
            mode: DeadlineMode::Retry,
            hop_deadline_mult: 0.0,
            deadline_alpha: 0.0,
            deadline_beta: 0.0,
        }
    }
}

impl SimResilience {
    /// The degradation policy sparse collectives run under.
    pub fn degrading() -> Self {
        Self {
            mode: DeadlineMode::Degrade,
            ..Self::default()
        }
    }

    /// A deadline-bounded policy: hops are abandoned once they exceed
    /// `mult` times the probed clean transfer time `alpha + bytes·beta`.
    ///
    /// # Panics
    /// Panics if `mult < 1` (a budget below the clean transfer time would
    /// abandon fault-free traffic).
    pub fn deadline_bounded(mult: f64, alpha: f64, beta: f64) -> Self {
        assert!(mult >= 1.0, "deadline multiplier must be >= 1");
        Self {
            hop_deadline_mult: mult,
            deadline_alpha: alpha,
            deadline_beta: beta,
            ..Self::default()
        }
    }

    /// The deadline budget for a hop of `bytes`, `None` when the deadline
    /// is disabled.
    pub fn hop_budget(&self, bytes: usize) -> Option<f64> {
        (self.hop_deadline_mult > 0.0).then_some(
            self.hop_deadline_mult * (self.deadline_alpha + bytes as f64 * self.deadline_beta),
        )
    }
}

/// Aggregate fault accounting of one simulation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Inter-node transfers examined.
    pub transfers: u64,
    /// Dropped attempts.
    pub drops: u64,
    /// Re-transmissions performed (`Retry` mode).
    pub retries: u64,
    /// Transfers that exhausted the budget and were force-delivered.
    pub escalations: u64,
    /// Transfers abandoned after a timeout (`Degrade` mode).
    pub degraded: u64,
    /// Transfers abandoned at the per-hop deadline budget.
    pub deadline_missed: u64,
    /// Latency spikes taken.
    pub spikes: u64,
    /// Transfers that crossed a degraded link window.
    pub slowed: u64,
    /// Total virtual seconds of timeout + backoff charged.
    pub fault_delay: f64,
    /// Extra compute seconds attributable to straggler nodes.
    pub straggler_seconds: f64,
}

impl FaultCounters {
    /// Folds the counters into an observability registry under the
    /// `faults/` prefix (counts as counters, the two virtual-second sums
    /// as gauges) — the single export surface replacing ad-hoc printing.
    pub fn publish(&self, reg: &mut cloudtrain_obs::Registry) {
        reg.counter_add("faults/transfers", self.transfers);
        reg.counter_add("faults/drops", self.drops);
        reg.counter_add("faults/retries", self.retries);
        reg.counter_add("faults/escalations", self.escalations);
        reg.counter_add("faults/degraded", self.degraded);
        reg.counter_add("faults/deadline_missed", self.deadline_missed);
        reg.counter_add("faults/spikes", self.spikes);
        reg.counter_add("faults/slowed", self.slowed);
        reg.gauge_set("faults/fault_delay_seconds", self.fault_delay);
        reg.gauge_set("faults/straggler_seconds", self.straggler_seconds);
    }
}

/// Which fault hit a transfer (for the timeline event log).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultEventKind {
    /// Attempt `attempt` of the transfer was dropped.
    Drop {
        /// 0-based attempt number.
        attempt: u32,
    },
    /// The transfer took a latency spike.
    Spike,
    /// The transfer crossed a degraded link window.
    Slowed,
    /// The retry budget was exhausted; the payload was force-delivered.
    Escalated,
    /// The transfer was abandoned; the payload never arrived.
    Degraded,
    /// The transfer exceeded its per-hop deadline budget and was abandoned
    /// at the budget boundary; the payload never arrived.
    DeadlineMiss,
}

impl FaultEventKind {
    /// Stable short code for log serialization.
    pub fn code(&self) -> String {
        match self {
            FaultEventKind::Drop { attempt } => format!("drop[{attempt}]"),
            FaultEventKind::Spike => "spike".to_string(),
            FaultEventKind::Slowed => "slowed".to_string(),
            FaultEventKind::Escalated => "escalated".to_string(),
            FaultEventKind::Degraded => "degraded".to_string(),
            FaultEventKind::DeadlineMiss => "deadline".to_string(),
        }
    }
}

/// One injected fault, recorded in schedule order.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Inter-node transfer sequence number the fault hit.
    pub seq: u64,
    /// Sender GPU.
    pub src: usize,
    /// Receiver GPU.
    pub dst: usize,
    /// What happened.
    pub kind: FaultEventKind,
}

/// Domain-separation salts keeping the drop and spike decision streams
/// independent under one seed.
const DROP_SALT: u64 = 0xD20F_D20F_D20F_D20F;
const SPIKE_SALT: u64 = 0x5B1C_5B1C_5B1C_5B1C;

/// SplitMix64-style hash over three words (same construction as the
/// jitter model's sampler — deterministic, no global RNG).
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(41));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_in_the_seed() {
        let p = FaultPlan::new(7).with_drops(0.3).with_spikes(0.2, 1e-3);
        for seq in 0..50 {
            assert_eq!(p.dropped(seq, 0), p.clone().dropped(seq, 0));
            assert_eq!(p.spiked(seq), p.clone().spiked(seq));
        }
        // A different seed flips at least one decision over a window.
        let q = FaultPlan::new(8).with_drops(0.3);
        assert!((0..200).any(|s| p.dropped(s, 0) != q.dropped(s, 0)));
    }

    #[test]
    fn drop_rate_tracks_probability() {
        let p = FaultPlan::new(42).with_drops(0.25);
        let hits = (0..10_000u64).filter(|&s| p.dropped(s, 0)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.25).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn clean_plan_injects_nothing() {
        let p = FaultPlan::new(3);
        assert!(p.is_clean());
        assert!(!p.dropped(0, 0) && !p.spiked(0));
        assert_eq!(p.beta_factor(0, 1.0), 1.0);
        assert_eq!(p.compute_factor(0), 1.0);
        assert_eq!(p.max_compute_factor(), 1.0);
    }

    #[test]
    fn degradation_windows_gate_on_time_and_node() {
        let p = FaultPlan::new(1).degrade_link(2, 4.0, 1.0, 2.0);
        assert_eq!(p.beta_factor(2, 1.5), 4.0);
        assert_eq!(p.beta_factor(2, 0.5), 1.0);
        assert_eq!(p.beta_factor(2, 2.0), 1.0); // half-open window
        assert_eq!(p.beta_factor(1, 1.5), 1.0);
        // Overlapping windows compound.
        let q = p.degrade_link(2, 2.0, 0.0, 10.0);
        assert_eq!(q.beta_factor(2, 1.5), 8.0);
    }

    #[test]
    fn stragglers_report_per_node_and_max() {
        let p = FaultPlan::new(1).straggle(0, 1.5).straggle(3, 2.0);
        assert_eq!(p.compute_factor(0), 1.5);
        assert_eq!(p.compute_factor(3), 2.0);
        assert_eq!(p.compute_factor(1), 1.0);
        assert_eq!(p.max_compute_factor(), 2.0);
    }

    #[test]
    fn attempts_redraw_independently() {
        // With p = 0.5 some sequence must drop attempt 0 but deliver
        // attempt 1 — retries genuinely re-roll.
        let p = FaultPlan::new(11).with_drops(0.5);
        assert!((0..100).any(|s| p.dropped(s, 0) && !p.dropped(s, 1)));
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_probability_panics() {
        let _ = FaultPlan::new(0).with_drops(1.5);
    }
}
