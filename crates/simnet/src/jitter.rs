//! Compute jitter and straggler modelling.
//!
//! Synchronous SGD is a BSP computation: every iteration waits for the
//! slowest of `P` workers. On multi-tenant clouds per-GPU iteration times
//! jitter (noisy neighbours, clock throttling, host interference), so the
//! expected makespan is the expected *maximum* of `P` draws — a penalty
//! that grows with scale and quietly eats into every scheme's scaling
//! efficiency. The `ablation_stragglers` bench quantifies it.
//!
//! Sampling is deterministic in `(seed, gpu, iteration)` — no global RNG —
//! using a SplitMix64 hash feeding a Box–Muller transform.

/// Log-normal-style jitter around a base compute time, with an optional
/// persistently slow node (a degraded VM).
#[derive(Debug, Clone, Copy)]
pub struct JitterModel {
    /// Mean per-iteration compute seconds.
    pub base_seconds: f64,
    /// Coefficient of variation of the jitter (0.02–0.1 is typical for
    /// shared cloud instances).
    pub cv: f64,
    /// Optionally, one node whose GPUs run at `1/factor` speed.
    pub slow_node: Option<SlowNode>,
}

/// A persistently degraded node.
#[derive(Debug, Clone, Copy)]
pub struct SlowNode {
    /// Node index.
    pub node: usize,
    /// Slowdown factor (1.2 = 20% slower).
    pub factor: f64,
}

impl JitterModel {
    /// A jitter-free model (every draw equals the base).
    pub fn none(base_seconds: f64) -> Self {
        Self {
            base_seconds,
            cv: 0.0,
            slow_node: None,
        }
    }

    /// Samples the compute time of `gpu` (with `gpus_per_node` per node)
    /// at `iteration` under `seed`. Always positive.
    pub fn sample(&self, gpu: usize, gpus_per_node: usize, iteration: u64, seed: u64) -> f64 {
        let z = std_normal(hash3(seed, gpu as u64, iteration));
        // Log-normal keeps draws positive and right-skewed like real
        // interference.
        let sigma = self.cv.max(0.0);
        let mut t = self.base_seconds * (sigma * z).exp();
        if let Some(slow) = self.slow_node {
            if gpu / gpus_per_node.max(1) == slow.node {
                t *= slow.factor;
            }
        }
        t
    }
}

/// Aggregate BSP statistics over simulated iterations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BspStats {
    /// Mean per-iteration makespan (the time BSP actually pays).
    pub mean_makespan: f64,
    /// Mean per-worker compute time (what a jitter-free system would pay).
    pub mean_compute: f64,
    /// `mean_makespan / mean_compute - 1`: the straggler penalty.
    pub straggler_penalty: f64,
}

/// Simulates `iterations` BSP rounds over `world` GPUs and reports the
/// straggler penalty.
///
/// # Panics
/// Panics if `world` or `iterations` is zero.
pub fn bsp_straggler_stats(
    world: usize,
    gpus_per_node: usize,
    jitter: &JitterModel,
    iterations: u64,
    seed: u64,
) -> BspStats {
    assert!(
        world > 0 && iterations > 0,
        "bsp_straggler_stats: empty input"
    );
    let mut sum_makespan = 0.0;
    let mut sum_compute = 0.0;
    for it in 0..iterations {
        let mut max_t: f64 = 0.0;
        let mut sum_t = 0.0;
        for gpu in 0..world {
            let t = jitter.sample(gpu, gpus_per_node, it, seed);
            max_t = max_t.max(t);
            sum_t += t;
        }
        sum_makespan += max_t;
        sum_compute += sum_t / world as f64;
    }
    let mean_makespan = sum_makespan / iterations as f64;
    let mean_compute = sum_compute / iterations as f64;
    BspStats {
        mean_makespan,
        mean_compute,
        straggler_penalty: mean_makespan / mean_compute - 1.0,
    }
}

/// SplitMix64 over three words.
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(41));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One standard-normal draw from a hash value (Box–Muller on the two
/// 32-bit halves).
fn std_normal(h: u64) -> f64 {
    let u1 = ((h >> 32) as f64 + 1.0) / (u32::MAX as f64 + 2.0); // (0, 1)
    let u2 = ((h & 0xFFFF_FFFF) as f64 + 1.0) / (u32::MAX as f64 + 2.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_positive() {
        let j = JitterModel {
            base_seconds: 0.1,
            cv: 0.05,
            slow_node: None,
        };
        let a = j.sample(3, 8, 7, 42);
        let b = j.sample(3, 8, 7, 42);
        assert_eq!(a, b);
        assert!(a > 0.0);
        assert_ne!(a, j.sample(3, 8, 8, 42));
        assert_ne!(a, j.sample(4, 8, 7, 42));
    }

    #[test]
    fn zero_cv_has_zero_penalty() {
        let j = JitterModel::none(0.2);
        let s = bsp_straggler_stats(64, 8, &j, 50, 1);
        assert!(s.straggler_penalty.abs() < 1e-12);
        assert!((s.mean_makespan - 0.2).abs() < 1e-12);
    }

    #[test]
    fn penalty_grows_with_world_size() {
        let j = JitterModel {
            base_seconds: 0.1,
            cv: 0.05,
            slow_node: None,
        };
        let p8 = bsp_straggler_stats(8, 8, &j, 200, 7).straggler_penalty;
        let p128 = bsp_straggler_stats(128, 8, &j, 200, 7).straggler_penalty;
        assert!(
            p128 > p8,
            "E[max of 128] should exceed E[max of 8]: {p128} vs {p8}"
        );
        // ~3 sigma for 128 draws of cv=5%: penalty in the 10-25% band.
        assert!(p128 > 0.08 && p128 < 0.35, "p128 = {p128}");
    }

    #[test]
    fn slow_node_dominates_the_makespan() {
        let j = JitterModel {
            base_seconds: 0.1,
            cv: 0.02,
            slow_node: Some(SlowNode {
                node: 2,
                factor: 1.5,
            }),
        };
        let s = bsp_straggler_stats(32, 8, &j, 100, 3);
        // Makespan is pinned to the 1.5x node.
        assert!(
            s.mean_makespan > 0.145,
            "slow node should gate BSP: {}",
            s.mean_makespan
        );
        assert!(s.straggler_penalty > 0.3);
    }

    #[test]
    fn normal_draws_have_sane_moments() {
        let n = 100_000;
        let mut sum = 0.0;
        let mut sq = 0.0;
        for i in 0..n {
            let z = std_normal(hash3(9, i, 0));
            sum += z;
            sq += z * z;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }
}
