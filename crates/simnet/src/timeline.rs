//! ASCII timeline rendering of recorded transfers — a quick visual check
//! of what a collective's schedule actually does on the fabric (who is
//! busy when, where the serialization is).

use crate::faults::FaultEvent;
use crate::netsim::TransferEvent;
use cloudtrain_obs::Span;

/// Renders one row per node NIC (tx side) plus one aggregate intra-node
/// row, over `width` character columns spanning `[0, makespan]`. Each cell
/// shows how many transfers overlapped that slice (` `, `1`-`9`, then `#`).
pub fn render_timeline(
    trace: &[TransferEvent],
    nodes: usize,
    gpus_per_node: usize,
    width: usize,
) -> String {
    assert!(width > 0, "render_timeline: width must be positive");
    let makespan = trace.iter().map(|e| e.end).fold(0.0f64, f64::max);
    if makespan <= 0.0 || trace.is_empty() {
        return "(no transfers)\n".to_string();
    }
    let col_of = |t: f64| ((t / makespan) * width as f64).min(width as f64 - 1.0) as usize;

    let mut rows: Vec<Vec<u32>> = vec![vec![0; width]; nodes + 1];
    for e in trace {
        let (a, b) = (col_of(e.start), col_of(e.end));
        if e.inter_node {
            // Charge the sender's node NIC row.
            let node = (e.src / gpus_per_node.max(1)).min(nodes - 1);
            for cell in &mut rows[node][a..=b] {
                *cell += 1;
            }
        } else {
            for cell in &mut rows[nodes][a..=b] {
                *cell += 1;
            }
        }
    }

    let glyph = |n: u32| match n {
        0 => ' ',
        // lint:allow(panic_free, reason = "the match arm guarantees n is a single decimal digit, for which from_digit always succeeds")
        1..=9 => char::from_digit(n, 10).unwrap(),
        _ => '#',
    };
    let mut out = String::new();
    for (i, row) in rows.iter().enumerate() {
        let label = if i < nodes {
            format!("nic{i:<3}")
        } else {
            "intra ".to_string()
        };
        out.push_str(&label);
        out.push('|');
        for &n in row {
            out.push(glyph(n));
        }
        out.push_str("|\n");
    }
    out.push_str(&format!(
        "       0 {:>width$.3} s\n",
        makespan,
        width = width - 2
    ));
    out
}

/// Serialises a recorded trace plus its injected faults as a deterministic
/// line-based event log.
///
/// One line per transfer (`>` inter-node, `-` intra-node) followed by one
/// line per fault, all fields rendered with fixed-precision scientific
/// notation — so two runs of the same schedule under the same
/// [`crate::FaultPlan`] seed produce **byte-identical** logs. This is the
/// artifact the CI fault gauntlet diffs: any nondeterminism in the fault
/// path shows up as a byte difference.
///
/// ```
/// use cloudtrain_simnet::timeline::event_log;
/// use cloudtrain_simnet::{clouds, FaultPlan, NetSim, SimResilience};
///
/// let mut sim = NetSim::new(clouds::tencent(2));
/// sim.enable_trace();
/// sim.inject_faults(FaultPlan::new(7).with_drops(0.2), SimResilience::default());
/// sim.transfer(0, 8, 4096);
/// let log = event_log(sim.trace(), sim.fault_events());
/// assert!(log.starts_with("transfer"));
/// ```
pub fn event_log(trace: &[TransferEvent], faults: &[FaultEvent]) -> String {
    event_log_with_spans(trace, faults, &[])
}

/// [`event_log`] extended with span-open/span-close events from an
/// observability registry (see [`cloudtrain_obs::Registry::spans`]), so a
/// full trace — transfers, faults, *and* the phase structure around them —
/// replays deterministically.
///
/// Span events are appended after the transfer and fault lines, ordered by
/// virtual time with record order as the tie-break (an open always
/// precedes its own close):
///
/// ```text
/// span-open name=<name> depth=<d> t=<start>
/// span-close name=<name> depth=<d> t=<end>
/// ```
pub fn event_log_with_spans(
    trace: &[TransferEvent],
    faults: &[FaultEvent],
    spans: &[Span],
) -> String {
    let mut out = String::new();
    for e in trace {
        let dir = if e.inter_node { '>' } else { '-' };
        out.push_str(&format!(
            "transfer {dir} src={} dst={} bytes={} start={:.9e} end={:.9e}\n",
            e.src, e.dst, e.bytes, e.start, e.end
        ));
    }
    for f in faults {
        out.push_str(&format!(
            "fault seq={} src={} dst={} kind={}\n",
            f.seq,
            f.src,
            f.dst,
            f.kind.code()
        ));
    }
    // (time, seq) events: span i contributes an open at seq 2i and a close
    // at seq 2i+1, so equal-time ties resolve in record order and an open
    // sorts before its own close. Span times are finite by construction
    // (the registry's clock is monotone and finite), so the comparison is
    // total.
    let mut events: Vec<(f64, usize, String)> = Vec::with_capacity(spans.len() * 2);
    for (i, s) in spans.iter().enumerate() {
        events.push((
            s.start,
            2 * i,
            format!(
                "span-open name={} depth={} t={:.9e}\n",
                s.name, s.depth, s.start
            ),
        ));
        events.push((
            s.end,
            2 * i + 1,
            format!(
                "span-close name={} depth={} t={:.9e}\n",
                s.name, s.depth, s.end
            ),
        ));
    }
    events.sort_by(|a, b| {
        a.0.partial_cmp(&b.0)
            // lint:allow(panic_free, reason = "span times come from the virtual clock, which only ever adds finite non-negative costs")
            .expect("finite span times")
            .then(a.1.cmp(&b.1))
    });
    for (_, _, line) in events {
        out.push_str(&line);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clouds;
    use crate::collectives::sim_torus_all_reduce;
    use crate::NetSim;

    #[test]
    fn renders_rows_and_span() {
        let spec = clouds::tencent(2);
        let mut sim = NetSim::new(spec);
        sim.enable_trace();
        sim_torus_all_reduce(&mut sim, &spec, 4 << 20);
        let s = render_timeline(sim.trace(), 2, 8, 60);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4); // 2 nics + intra + axis
        assert!(lines[0].starts_with("nic0"));
        assert!(lines[2].starts_with("intra"));
        // Something happened on both planes.
        assert!(lines[0].chars().any(|c| c != ' ' && c != '|'));
        assert!(lines[2].contains(|c: char| c.is_ascii_digit() || c == '#'));
    }

    #[test]
    fn empty_trace_is_graceful() {
        assert_eq!(render_timeline(&[], 4, 8, 40), "(no transfers)\n");
    }

    #[test]
    fn event_log_lists_transfers_then_faults() {
        use crate::{FaultPlan, SimResilience};
        let spec = clouds::tencent(2);
        let mut sim = NetSim::new(spec);
        sim.enable_trace();
        sim.inject_faults(FaultPlan::new(9).with_drops(0.9), SimResilience::default());
        sim.transfer(0, 1, 100); // intra: no fault lines
        sim.transfer(0, 8, 100);
        let log = event_log(sim.trace(), sim.fault_events());
        let lines: Vec<&str> = log.lines().collect();
        assert!(lines[0].starts_with("transfer - src=0 dst=1"));
        assert!(lines[1].starts_with("transfer > src=0 dst=8"));
        assert!(lines[2..].iter().all(|l| l.starts_with("fault seq=0")));
        assert!(log.contains("drop[0]"));
    }

    #[test]
    fn event_log_spans_interleave_by_virtual_time() {
        let spec = clouds::tencent(2);
        let mut sim = NetSim::new(spec);
        sim.enable_trace();
        sim.attach_obs();
        sim_torus_all_reduce(&mut sim, &spec, 1 << 20);
        let reg = sim.take_obs().unwrap();
        let log = event_log_with_spans(sim.trace(), sim.fault_events(), reg.spans());
        let span_lines: Vec<&str> = log.lines().filter(|l| l.starts_with("span-")).collect();
        // 3 phases -> 3 opens + 3 closes, opens before their closes.
        assert_eq!(span_lines.len(), 6);
        assert!(span_lines[0].starts_with("span-open name=2dtar/intra reduce-scatter"));
        assert!(log.contains("span-close name=2dtar/intra all-gather"));
        // The spans land after the transfer lines, in sorted time order.
        let times: Vec<f64> = span_lines
            .iter()
            .map(|l| l.rsplit("t=").next().unwrap().parse().unwrap())
            .collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
        // Without spans the log is unchanged from the legacy form.
        assert_eq!(
            event_log(sim.trace(), sim.fault_events()),
            event_log_with_spans(sim.trace(), sim.fault_events(), &[])
        );
    }

    #[test]
    fn event_log_is_byte_identical_across_replays() {
        let run = || {
            let spec = clouds::tencent(2);
            let mut sim = NetSim::new(spec);
            sim.enable_trace();
            sim.inject_faults(
                crate::FaultPlan::new(123)
                    .with_drops(0.2)
                    .with_spikes(0.2, 1e-3),
                crate::SimResilience::default(),
            );
            sim_torus_all_reduce(&mut sim, &spec, 1 << 20);
            event_log(sim.trace(), sim.fault_events())
        };
        assert_eq!(run(), run());
    }
}
