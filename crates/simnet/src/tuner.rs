//! Collective algorithm auto-tuning.
//!
//! NCCL picks its AllReduce algorithm per message size (tree for small,
//! latency-bound messages; ring for large, bandwidth-bound ones). The
//! simulator makes the same choice transparent: [`choose_dense`] evaluates
//! every dense scheme on the target cluster and message size and returns
//! the winner, and [`crossover_bytes`] locates the size where the choice
//! flips — useful both as an engine policy and as an explanation of the
//! regimes in Fig. 7.

use crate::collectives::{sim_torus_all_reduce, sim_tree_all_reduce_hier};
use crate::netsim::NetSim;
use crate::topology::ClusterSpec;

/// A dense AllReduce algorithm.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DenseAlgo {
    /// Hierarchical double-binary-tree AllReduce (latency-friendly).
    Tree,
    /// 2D-Torus AllReduce (bandwidth-friendly on two-level fabrics).
    Torus,
}

/// Simulated time of one dense algorithm at one size.
pub fn dense_time(spec: &ClusterSpec, algo: DenseAlgo, bytes: usize) -> f64 {
    let mut sim = NetSim::new(*spec);
    match algo {
        DenseAlgo::Tree => sim_tree_all_reduce_hier(&mut sim, spec, bytes).total,
        DenseAlgo::Torus => sim_torus_all_reduce(&mut sim, spec, bytes).total,
    }
}

/// Picks the faster dense algorithm for this cluster and message size.
pub fn choose_dense(spec: &ClusterSpec, bytes: usize) -> DenseAlgo {
    if dense_time(spec, DenseAlgo::Tree, bytes) <= dense_time(spec, DenseAlgo::Torus, bytes) {
        DenseAlgo::Tree
    } else {
        DenseAlgo::Torus
    }
}

/// Binary-searches the tree→torus crossover size in `[lo, hi]` bytes.
/// Returns `None` if one algorithm dominates the whole range.
pub fn crossover_bytes(spec: &ClusterSpec, lo: usize, hi: usize) -> Option<usize> {
    let at = |b: usize| choose_dense(spec, b);
    let (a_lo, a_hi) = (at(lo), at(hi));
    if a_lo == a_hi {
        return None;
    }
    let (mut lo, mut hi) = (lo, hi);
    while hi - lo > (lo / 16).max(1024) {
        let mid = lo + (hi - lo) / 2;
        if at(mid) == a_lo {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Some(hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clouds;

    #[test]
    fn tree_wins_small_torus_wins_large() {
        let spec = clouds::tencent(16);
        assert_eq!(choose_dense(&spec, 64 << 10), DenseAlgo::Tree);
        assert_eq!(choose_dense(&spec, 64 << 20), DenseAlgo::Torus);
    }

    #[test]
    fn crossover_exists_and_is_consistent() {
        let spec = clouds::tencent(16);
        let x = crossover_bytes(&spec, 64 << 10, 64 << 20).expect("crossover must exist");
        // The winner on each side of the crossover matches.
        assert_eq!(choose_dense(&spec, x / 2), DenseAlgo::Tree);
        assert_eq!(choose_dense(&spec, x * 2), DenseAlgo::Torus);
        // On 25GbE the flip sits in the hundreds-of-KB to few-MB band.
        assert!(x > 100 << 10 && x < 16 << 20, "crossover at {x} bytes");
    }

    #[test]
    fn no_crossover_when_one_side_dominates() {
        let spec = clouds::tencent(16);
        assert!(crossover_bytes(&spec, 32 << 20, 256 << 20).is_none());
    }

    #[test]
    fn faster_fabric_moves_the_crossover_up() {
        // With faster inter-node links the latency regime extends to
        // larger messages, pushing the tree→torus flip upward.
        let slow = clouds::tencent(16);
        let fast = clouds::infiniband_100g(16);
        let xs = crossover_bytes(&slow, 64 << 10, 256 << 20);
        let xf = crossover_bytes(&fast, 64 << 10, 256 << 20);
        if let (Some(xs), Some(xf)) = (xs, xf) {
            assert!(xf >= xs, "fast {xf} < slow {xs}");
        }
    }
}
