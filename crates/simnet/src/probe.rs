//! Topology probing: pairwise α/β estimation over the virtual clock.
//!
//! Public-cloud VMs see a fabric they cannot introspect: placement decides
//! which node pairs share a rack switch, which cross an oversubscribed
//! spine, and which sit behind a noisy neighbour's NIC. *Cloud Collectives*
//! (Luo et al.) shows that probing the realized pairwise performance and
//! reordering ranks to match it recovers a large fraction of the bandwidth
//! a placement-oblivious ring leaves on the table.
//!
//! [`probe_pairwise`] is that probing pass, run entirely inside the
//! simulator: for every ordered node pair it replays a two-point
//! measurement (a small and a large transfer between the pair's leader
//! GPUs on a *fresh* [`NetSim`]) and solves the α–β model from the two
//! virtual completion times:
//!
//! ```text
//! β = (t₂ − t₁) / (b₂ − b₁)        α = t₁ − b₁·β
//! ```
//!
//! Everything is derived from the simulator's virtual clock — no wall time
//! anywhere (the `wall_clock` lint rule holds for this module like every
//! other library path) — and every fault decision inside the probe is a
//! pure function of the injected [`FaultPlan`] seed, so two probes of the
//! same `(spec, plan)` are bitwise identical. Degradation windows active at
//! virtual time zero are observed as inflated β, latency spikes and drop
//! ladders as inflated α: the estimate reflects the *hostile* fabric, which
//! is exactly what the reordering optimizer needs to route around.

use crate::faults::{FaultPlan, SimResilience};
use crate::netsim::NetSim;
use crate::topology::ClusterSpec;

/// Payload of the small probe transfer (latency-dominated point).
pub const PROBE_SMALL_BYTES: usize = 4 * 1024;
/// Payload of the large probe transfer (bandwidth-dominated point).
pub const PROBE_LARGE_BYTES: usize = 1 << 20;

/// Pairwise α/β estimate over the `m` nodes of a cluster.
///
/// Row-major `m × m` matrices; the diagonal is zero (a node does not probe
/// itself).
#[derive(Debug, Clone, PartialEq)]
pub struct ProbeEstimate {
    nodes: usize,
    alpha: Vec<f64>,
    beta: Vec<f64>,
}

impl ProbeEstimate {
    /// Number of nodes probed.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Estimated per-message latency of the `src → dst` link, seconds.
    pub fn alpha(&self, src: usize, dst: usize) -> f64 {
        self.alpha[src * self.nodes + dst]
    }

    /// Estimated per-byte transfer time of the `src → dst` link, seconds.
    pub fn beta(&self, src: usize, dst: usize) -> f64 {
        self.beta[src * self.nodes + dst]
    }

    /// The full α matrix, row-major.
    pub fn alpha_matrix(&self) -> &[f64] {
        &self.alpha
    }

    /// The full β matrix, row-major.
    pub fn beta_matrix(&self) -> &[f64] {
        &self.beta
    }

    /// Estimated time for `bytes` over the `src → dst` link.
    pub fn pair_seconds(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        self.alpha(src, dst) + bytes as f64 * self.beta(src, dst)
    }

    /// Worst off-diagonal `(α, β)` over all ordered pairs — the link a
    /// deadline budget must be sized against.
    pub fn worst_link(&self) -> (f64, f64) {
        let m = self.nodes;
        let mut worst = (0.0f64, 0.0f64);
        for src in 0..m {
            for dst in 0..m {
                if src != dst {
                    worst.0 = worst.0.max(self.alpha(src, dst));
                    worst.1 = worst.1.max(self.beta(src, dst));
                }
            }
        }
        worst
    }

    /// Best (minimum) off-diagonal β — the clean-link baseline a straggler
    /// multiplier scales from.
    pub fn best_beta(&self) -> f64 {
        let m = self.nodes;
        let mut best = f64::INFINITY;
        for src in 0..m {
            for dst in 0..m {
                if src != dst {
                    best = best.min(self.beta(src, dst));
                }
            }
        }
        if best.is_finite() {
            best
        } else {
            0.0
        }
    }
}

/// Times one leader-to-leader transfer on a fresh simulator so probe
/// traffic never contends with itself across pairs.
fn probe_once(spec: &ClusterSpec, plan: &FaultPlan, src: usize, dst: usize, bytes: usize) -> f64 {
    let mut sim = NetSim::new(*spec);
    sim.inject_faults(plan.clone(), SimResilience::default());
    let n = spec.gpus_per_node;
    sim.transfer(src * n, dst * n, bytes)
}

/// Probes every ordered node pair of `spec` under `plan` and returns the
/// recovered α/β matrices.
///
/// Each pair is measured with two transfers of [`PROBE_SMALL_BYTES`] and
/// [`PROBE_LARGE_BYTES`] on fresh simulators (the retry policy is the
/// default reliable ladder, so dropped probes inflate α instead of
/// vanishing). Deterministic: pure in `(spec, plan)`.
///
/// # Panics
/// Panics if the cluster has no nodes.
pub fn probe_pairwise(spec: &ClusterSpec, plan: &FaultPlan) -> ProbeEstimate {
    assert!(spec.nodes > 0, "probe_pairwise: empty cluster");
    let m = spec.nodes;
    let mut alpha = vec![0.0f64; m * m];
    let mut beta = vec![0.0f64; m * m];
    let (b1, b2) = (PROBE_SMALL_BYTES as f64, PROBE_LARGE_BYTES as f64);
    for src in 0..m {
        for dst in 0..m {
            if src == dst {
                continue;
            }
            let t1 = probe_once(spec, plan, src, dst, PROBE_SMALL_BYTES);
            let t2 = probe_once(spec, plan, src, dst, PROBE_LARGE_BYTES);
            let b = ((t2 - t1) / (b2 - b1)).max(0.0);
            let a = (t1 - b1 * b).max(0.0);
            alpha[src * m + dst] = a;
            beta[src * m + dst] = b;
        }
    }
    ProbeEstimate {
        nodes: m,
        alpha,
        beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clouds;

    #[test]
    fn clean_probe_recovers_the_spec_link() {
        let spec = clouds::tencent(4);
        let est = probe_pairwise(&spec, &FaultPlan::new(1));
        for src in 0..4 {
            for dst in 0..4 {
                if src == dst {
                    assert_eq!(est.alpha(src, dst), 0.0);
                    assert_eq!(est.beta(src, dst), 0.0);
                    continue;
                }
                assert!(
                    (est.alpha(src, dst) - spec.inter.alpha).abs() < 1e-12,
                    "alpha {} vs {}",
                    est.alpha(src, dst),
                    spec.inter.alpha
                );
                assert!(
                    (est.beta(src, dst) - spec.inter.beta).abs() < 1e-18,
                    "beta {} vs {}",
                    est.beta(src, dst),
                    spec.inter.beta
                );
            }
        }
        let (wa, wb) = est.worst_link();
        assert!((wa - spec.inter.alpha).abs() < 1e-12);
        assert!((wb - spec.inter.beta).abs() < 1e-18);
        assert!((est.best_beta() - spec.inter.beta).abs() < 1e-18);
    }

    #[test]
    fn degraded_node_shows_up_as_inflated_beta() {
        let spec = clouds::tencent(4);
        // Node 2's NIC at one third line rate during the probe window.
        let plan = FaultPlan::new(7).degrade_link(2, 3.0, 0.0, f64::INFINITY);
        let est = probe_pairwise(&spec, &plan);
        // Every pair touching node 2 is ~3x slower; the rest are clean.
        for src in 0..4 {
            for dst in 0..4 {
                if src == dst {
                    continue;
                }
                let expect = if src == 2 || dst == 2 { 3.0 } else { 1.0 };
                let ratio = est.beta(src, dst) / spec.inter.beta;
                assert!(
                    (ratio - expect).abs() < 1e-6,
                    "{src}->{dst}: ratio {ratio} expect {expect}"
                );
            }
        }
    }

    #[test]
    fn spikes_inflate_alpha_not_beta() {
        let spec = clouds::tencent(2);
        let plan = FaultPlan::new(3).with_spikes(1.0, 0.01);
        let est = probe_pairwise(&spec, &plan);
        assert!(est.alpha(0, 1) > spec.inter.alpha + 0.009);
        assert!((est.beta(0, 1) - spec.inter.beta).abs() < 1e-15);
    }

    #[test]
    fn probe_is_deterministic() {
        let spec = clouds::tencent(3);
        let plan = FaultPlan::new(42).with_drops(0.3).with_spikes(0.2, 1e-3);
        let a = probe_pairwise(&spec, &plan);
        let b = probe_pairwise(&spec, &plan);
        assert_eq!(a, b);
    }

    #[test]
    fn pair_seconds_applies_the_model() {
        let spec = clouds::tencent(2);
        let est = probe_pairwise(&spec, &FaultPlan::new(1));
        let t = est.pair_seconds(0, 1, 1 << 20);
        assert!((t - spec.inter.transfer_time(1 << 20)).abs() < 1e-9);
    }
}
