use serde::{Deserialize, Serialize};

/// α–β parameters of one link class.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// Per-message latency in seconds (the `α` of the α–β model).
    pub alpha: f64,
    /// Transfer time per byte in seconds (the `β` of the α–β model;
    /// `1 / bandwidth`).
    pub beta: f64,
}

impl LinkSpec {
    /// Builds a link from latency (seconds) and bandwidth (bytes/second).
    ///
    /// # Panics
    /// Panics if the bandwidth is not positive.
    pub fn from_bandwidth(alpha: f64, bytes_per_sec: f64) -> Self {
        assert!(bytes_per_sec > 0.0, "LinkSpec: bandwidth must be positive");
        Self {
            alpha,
            beta: 1.0 / bytes_per_sec,
        }
    }

    /// Time to move `bytes` over an idle link.
    pub fn transfer_time(&self, bytes: usize) -> f64 {
        self.alpha + bytes as f64 * self.beta
    }
}

/// A two-level cluster: `nodes` machines, `gpus_per_node` GPUs each, fast
/// intra-node links and a single shared inter-node NIC per machine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of machines (`m` in the paper).
    pub nodes: usize,
    /// GPUs per machine (`n` in the paper).
    pub gpus_per_node: usize,
    /// GPU↔GPU link within a node (NVLink class).
    pub intra: LinkSpec,
    /// Node↔node link (Ethernet class); one NIC per node, shared by all of
    /// its GPUs.
    pub inter: LinkSpec,
}

impl ClusterSpec {
    /// Total number of GPUs (`P = m · n`).
    pub fn world(&self) -> usize {
        self.nodes * self.gpus_per_node
    }

    /// Node index of a global GPU id.
    pub fn node_of(&self, gpu: usize) -> usize {
        gpu / self.gpus_per_node
    }

    /// Local GPU index within its node.
    pub fn local_of(&self, gpu: usize) -> usize {
        gpu % self.gpus_per_node
    }

    /// Global GPU ids of node `i`.
    pub fn node_members(&self, i: usize) -> Vec<usize> {
        let n = self.gpus_per_node;
        (0..n).map(|j| i * n + j).collect()
    }

    /// Global GPU ids of local index `j` across all nodes (communication
    /// stream `j`).
    pub fn stream_members(&self, j: usize) -> Vec<usize> {
        let n = self.gpus_per_node;
        (0..self.nodes).map(|i| i * n + j).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_from_bandwidth() {
        // 25 Gbps = 3.125 GB/s.
        let l = LinkSpec::from_bandwidth(20e-6, 25e9 / 8.0);
        assert!((l.beta - 3.2e-10).abs() < 1e-12);
        // 1 MiB transfer: 20us + 1MiB * 0.32ns/B ≈ 355us.
        let t = l.transfer_time(1 << 20);
        assert!((t - (20e-6 + 1048576.0 * 3.2e-10)).abs() < 1e-9);
    }

    #[test]
    fn addressing_helpers() {
        let spec = ClusterSpec {
            nodes: 4,
            gpus_per_node: 8,
            intra: LinkSpec::from_bandwidth(3e-6, 130e9),
            inter: LinkSpec::from_bandwidth(20e-6, 25e9 / 8.0),
        };
        assert_eq!(spec.world(), 32);
        assert_eq!(spec.node_of(17), 2);
        assert_eq!(spec.local_of(17), 1);
        assert_eq!(spec.node_members(1), vec![8, 9, 10, 11, 12, 13, 14, 15]);
        assert_eq!(spec.stream_members(3), vec![3, 11, 19, 27]);
    }

    #[test]
    #[should_panic(expected = "bandwidth")]
    fn zero_bandwidth_panics() {
        LinkSpec::from_bandwidth(0.0, 0.0);
    }
}
