//! Cloud instance presets (Table 1 of the paper).
//!
//! All three providers offer 8×V100 instances with NVLink inside the node
//! and 25–32 Gbps virtual-private-cloud Ethernet between instances. The α
//! values are typical measured VPC round-trip/2 latencies and NVLink
//! latencies; the intra-node bandwidth is the effective per-GPU NCCL ring
//! bandwidth on an 8×V100 NVLink topology (~130 GB/s), not the theoretical
//! aggregate.

use crate::topology::{ClusterSpec, LinkSpec};

/// Effective per-GPU NVLink ring bandwidth on an 8×V100 node, bytes/s.
pub const NVLINK_BW: f64 = 130e9;
/// NVLink-class per-message latency, seconds.
pub const NVLINK_ALPHA: f64 = 3e-6;
/// VPC Ethernet per-message latency, seconds.
pub const ETH_ALPHA: f64 = 50e-6;
/// Fraction of Ethernet line rate NCCL-class ring transports sustain over
/// VPC TCP (no RDMA/GPUDirect on these cloud instances). Calibrated to the
/// paper's measured Dense-SGD scaling (Table 3); see EXPERIMENTS.md.
pub const ETH_EFFICIENCY: f64 = 0.45;
/// InfiniBand transports run near line rate.
pub const IB_EFFICIENCY: f64 = 0.9;

/// Builds a cluster of `nodes` 8-GPU instances with the given inter-node
/// line rate in Gbps.
pub fn v100_cluster(nodes: usize, eth_gbps: f64) -> ClusterSpec {
    ClusterSpec {
        nodes,
        gpus_per_node: 8,
        intra: LinkSpec::from_bandwidth(NVLINK_ALPHA, NVLINK_BW),
        inter: LinkSpec::from_bandwidth(ETH_ALPHA, eth_gbps * 1e9 / 8.0 * ETH_EFFICIENCY),
    }
}

/// Tencent Cloud 18XLARGE320 (the paper's testbed): 25 Gbps Ethernet.
pub fn tencent(nodes: usize) -> ClusterSpec {
    v100_cluster(nodes, 25.0)
}

/// AWS p3.16xlarge: 25 Gbps Ethernet.
pub fn aws(nodes: usize) -> ClusterSpec {
    v100_cluster(nodes, 25.0)
}

/// Aliyun gn6e-class instance: 32 Gbps Ethernet (the DAWNBench runner-up's
/// testbed).
pub fn aliyun(nodes: usize) -> ClusterSpec {
    v100_cluster(nodes, 32.0)
}

/// A 100 Gbps InfiniBand HPC cluster (the FastAI / Huawei DAWNBench
/// entries), for the Table 5 comparison.
pub fn infiniband_100g(nodes: usize) -> ClusterSpec {
    ClusterSpec {
        nodes,
        gpus_per_node: 8,
        intra: LinkSpec::from_bandwidth(NVLINK_ALPHA, NVLINK_BW),
        inter: LinkSpec::from_bandwidth(2e-6, 100e9 / 8.0 * IB_EFFICIENCY),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let c = tencent(16);
        assert_eq!(c.world(), 128);
        // Inter-node is ~2 orders of magnitude slower per byte than
        // intra-node once TCP efficiency is applied.
        let ratio = c.inter.beta / c.intra.beta;
        assert!(ratio > 50.0 && ratio < 150.0, "ratio {ratio}");
    }

    #[test]
    fn aliyun_is_faster_than_tencent() {
        assert!(aliyun(16).inter.beta < tencent(16).inter.beta);
    }

    #[test]
    fn infiniband_is_fastest() {
        assert!(infiniband_100g(16).inter.beta < aliyun(16).inter.beta);
        assert!(infiniband_100g(16).inter.alpha < ETH_ALPHA);
    }
}
