//! Discrete-event α–β network simulator for hierarchical cloud GPU
//! clusters.
//!
//! This crate is the *performance plane* of the reproduction: the paper's
//! testbed — 16 Tencent Cloud nodes with NVLink inside each node and shared
//! 25 Gbps Ethernet between nodes — is replaced by a simulator that charges
//! α–β time (per-message latency + per-byte transfer) for every
//! point-to-point transfer, with these physical constraints:
//!
//! * each node has **one inter-node NIC** (full duplex): concurrent
//!   cross-node transfers from the same node serialize on it — this is what
//!   makes flat AllGather/AllReduce collapse on cloud clusters and what the
//!   hierarchical algorithms are designed around;
//! * intra-node transfers use per-GPU NVLink ports (full duplex), orders of
//!   magnitude faster;
//! * every GPU has a local clock; transfers and compute advance it, so
//!   pipelined algorithms (rings) and tree dependencies are timed
//!   faithfully.
//!
//! [`collectives`] builds the paper's aggregation schemes (ring, double
//! tree, 2D-torus, NaiveAG, HiTopKComm, gTop-k, quantized AllGather) as
//! schedules of transfers on the simulator and reports per-phase timings —
//! the source of Figs. 7 and 8 and the communication leg of Tables 3–5.
//! [`jitter`] adds multi-tenant compute jitter and straggler statistics
//! for the BSP-penalty ablation.
//! [`faults`] injects seeded link faults (drops, latency spikes, transient
//! degradation) and node-level stragglers so resilience policies can be
//! evaluated deterministically.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clouds;
pub mod collectives;
pub mod faults;
pub mod jitter;
mod netsim;
pub mod probe;
pub mod timeline;
mod topology;
pub mod tuner;

pub use faults::{
    DeadlineMode, FaultCounters, FaultEvent, FaultEventKind, FaultPlan, LinkDegrade, SimResilience,
    Straggler,
};
pub use netsim::{NetSim, TransferEvent};
pub use probe::{probe_pairwise, ProbeEstimate};
pub use topology::{ClusterSpec, LinkSpec};
