//! Deadline-bounded collectives: ship what arrived, absorb the rest.
//!
//! The correctness-plane twin of the simulator's per-hop deadline budget
//! (`cloudtrain_simnet::SimResilience::deadline_bounded`). A retry ladder
//! bounds *loss* but not *latency* — one straggler hop in the tail drags
//! the whole BSP step (OptiReduce's observation). The deadline policy
//! inverts the contract: every hop gets a budget derived from the probed
//! clean link (`mult × (α + bytes·β)`), and a hop that would land after
//! the budget is treated as absent:
//!
//! * **Dense** ([`ring_all_reduce_deadline`]): a ReduceScatter hop that
//!   misses its deadline is *discarded by the receiver* — the partial sum
//!   proceeds without the upstream contributions. Misses only ever happen
//!   in the ReduceScatter phase; the AllGather that follows is reliable,
//!   so every member still ends with the *identical* (partial) vector.
//! * **Sparse** ([`hitopk_all_reduce_ef_deadline`]): the miss is decided
//!   at the sparsification point, per *(instance, member)* — a late member
//!   contributes an **empty sparse block** and `ErrorFeedback::absorb`
//!   keeps its entire compensated shard in the residual. Nothing is lost,
//!   only delayed: the conformance mass-conservation ledger holds, and all
//!   ranks observe the same contributed blocks so replicas stay bitwise
//!   identical.
//!
//! Like the resilience module, lateness is *virtual*: every message
//! physically arrives exactly once (the schedule stays deadlock-free by
//! construction) and [`DeadlineFaults`] decides — as a pure function of a
//! seed — how late each hop or contribution *would have been*. A clean
//! plan therefore never misses (the budget covers the clean transfer time
//! for any `mult ≥ 1`), making the deadline twins bitwise identical to
//! their plain counterparts — the property the CI tail gate pins.

use cloudtrain_compress::{Compressor, ErrorFeedback, SparseGrad};
use cloudtrain_tensor::ops;
use cloudtrain_tensor::partition::{shard_for, shards, Shard};

use crate::group::Peer;
use crate::hierarchical::{group_wire_bytes, shard_k, HiTopKReport};
use crate::ring::{
    all_gather_f32_scratch, all_gather_u32_scratch, ring_all_gather_scratch,
    ring_reduce_scatter_scratch,
};
use crate::scratch::CommScratch;
use crate::torus::{grid_pos, intra_node_members};

/// Seeded virtual-lateness model: how many seconds past the clean transfer
/// time each hop (or sparse contribution) would have landed.
///
/// Every draw is a pure function of `(seed, identifiers)` — the same plan
/// over the same schedule is late on the same hops on every run and every
/// rank, mirroring `cloudtrain_simnet::FaultPlan`.
#[derive(Debug, Clone, PartialEq)]
pub struct DeadlineFaults {
    /// Master seed for all lateness draws.
    pub seed: u64,
    /// Scale of the per-hop lateness draws, seconds (`0.0` = never late).
    pub jitter: f64,
    /// `(rank, multiplier)` pairs: hops and contributions touching these
    /// ranks draw lateness scaled by the multiplier (a straggler node).
    pub stragglers: Vec<(usize, f64)>,
}

impl DeadlineFaults {
    /// A never-late plan under `seed` (builder entry point).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            jitter: 0.0,
            stragglers: Vec::new(),
        }
    }

    /// Sets the lateness scale: each draw is uniform in `[0, seconds)`
    /// before straggler multipliers.
    #[must_use]
    pub fn with_jitter(mut self, seconds: f64) -> Self {
        assert!(seconds >= 0.0, "jitter must be non-negative");
        self.jitter = seconds;
        self
    }

    /// Marks `rank` as living on a straggler node: its lateness draws are
    /// scaled by `mult`.
    #[must_use]
    pub fn straggle(mut self, rank: usize, mult: f64) -> Self {
        assert!(mult >= 1.0, "straggler multiplier must be >= 1");
        self.stragglers.push((rank, mult));
        self
    }

    /// Whether the plan can never produce lateness.
    pub fn is_clean(&self) -> bool {
        self.jitter == 0.0
    }

    /// Straggler multiplier of `rank` (max of matching entries, 1.0 when
    /// none).
    fn mult_for(&self, rank: usize) -> f64 {
        self.stragglers
            .iter()
            .filter(|(r, _)| *r == rank)
            .map(|(_, m)| *m)
            .fold(1.0, f64::max)
    }

    /// Virtual lateness of the `hop`-th message on the ordered pair
    /// `src → dst`, seconds. Pure in all arguments; sender and receiver
    /// agree.
    pub fn hop_lateness(&self, src: usize, dst: usize, hop: u64) -> f64 {
        if self.is_clean() {
            return 0.0;
        }
        let pair = (src as u64) << 20 | dst as u64;
        let u = unit(hash3(self.seed ^ LATENESS_SALT, pair, hop));
        self.jitter * u * self.mult_for(src).max(self.mult_for(dst))
    }

    /// Virtual lateness of `member`'s sparse contribution to collective
    /// instance `instance`, seconds.
    pub fn contribution_lateness(&self, instance: u64, member: usize) -> f64 {
        if self.is_clean() {
            return 0.0;
        }
        let u = unit(hash3(self.seed ^ CONTRIB_SALT, instance, member as u64));
        self.jitter * u * self.mult_for(member)
    }
}

/// The per-hop deadline budget, derived from a probed clean link.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlinePolicy {
    /// Probed clean per-message latency, seconds.
    pub alpha: f64,
    /// Probed clean per-byte transfer time, seconds.
    pub beta: f64,
    /// Absolute per-hop budget, seconds: a hop whose clean time plus
    /// lateness exceeds this is treated as absent.
    pub deadline: f64,
}

impl DeadlinePolicy {
    /// Sizes the budget at `mult` times the probed clean transfer time of
    /// a `bytes`-sized hop: `deadline = mult × (alpha + bytes·beta)`.
    ///
    /// # Panics
    /// Panics if `mult < 1` — a budget below the clean transfer time would
    /// discard fault-free traffic.
    pub fn from_link(alpha: f64, beta: f64, bytes: usize, mult: f64) -> Self {
        assert!(mult >= 1.0, "deadline multiplier must be >= 1");
        Self {
            alpha,
            beta,
            deadline: mult * (alpha + bytes as f64 * beta),
        }
    }

    /// Whether a `bytes`-sized hop arriving `lateness` seconds past its
    /// clean time misses the budget. Never true for `lateness = 0` when
    /// the policy was sized for at least `bytes` with `mult ≥ 1`.
    pub fn hop_missed(&self, bytes: usize, lateness: f64) -> bool {
        self.alpha + bytes as f64 * self.beta + lateness > self.deadline
    }
}

/// What a deadline-bounded collective paid.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeadlineReport {
    /// Deadline-checked hops (or sparse contributions) observed.
    pub hops: u64,
    /// Hops (or contributions) that missed their budget and were treated
    /// as absent.
    pub missed: u64,
}

/// Deadline-bounded ring ReduceScatter: the schedule of
/// [`crate::ring::ring_reduce_scatter_scratch`] with every received chunk
/// checked against the budget — a late chunk is discarded and the partial
/// sum proceeds without the upstream contributions.
#[allow(clippy::too_many_arguments)]
fn ring_reduce_scatter_deadline(
    peer: &Peer,
    x: &mut [f32],
    members: &[usize],
    instance: u64,
    faults: &DeadlineFaults,
    policy: &DeadlinePolicy,
    scratch: &mut CommScratch,
    report: &mut DeadlineReport,
) -> Shard {
    let p = members.len();
    let me = member_index(members, peer.rank());
    let d = x.len();
    if p == 1 {
        return shard_for(d, 1, 0);
    }
    let chunks = shards(d, p);
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];
    for s in 0..p - 1 {
        let send_idx = (me + p - s - 1) % p;
        let recv_idx = (me + 2 * p - s - 2) % p;
        let send_chunk = scratch.copy_f32(chunks[send_idx].slice(x));
        peer.send_f32(right, send_chunk);
        let recv = peer.recv_f32(left);
        report.hops += 1;
        let hop = instance.wrapping_mul(4096).wrapping_add(s as u64);
        let lateness = faults.hop_lateness(left, peer.rank(), hop);
        if policy.hop_missed(recv.len() * 4, lateness) {
            // Late: the receiver proceeds without it. (The payload still
            // physically arrived — lateness is virtual — so the schedule
            // stays deadlock-free.)
            report.missed += 1;
        } else {
            ops::add_assign(chunks[recv_idx].slice_mut(x), &recv);
        }
        scratch.put_f32(recv);
    }
    chunks[me]
}

/// Deadline-bounded ring AllReduce over `members`: ReduceScatter with
/// per-hop deadline discards, then a *reliable* AllGather — so every
/// member ends with the identical vector (a partial sum when hops missed,
/// the exact sum otherwise). With a clean plan the result is bitwise
/// identical to [`crate::ring::ring_all_reduce`].
///
/// `instance` domain-separates the lateness draws of repeated invocations;
/// every rank must pass the same value.
pub fn ring_all_reduce_deadline(
    peer: &Peer,
    x: &mut [f32],
    members: &[usize],
    instance: u64,
    faults: &DeadlineFaults,
    policy: &DeadlinePolicy,
    scratch: &mut CommScratch,
) -> DeadlineReport {
    let mut report = DeadlineReport::default();
    ring_reduce_scatter_deadline(
        peer,
        x,
        members,
        instance,
        faults,
        policy,
        scratch,
        &mut report,
    );
    ring_all_gather_scratch(peer, x, members, scratch);
    report
}

/// Deadline-bounded HiTopKComm with error feedback: the data flow of
/// [`crate::hierarchical::hitopk_all_reduce_ef_scratch`], with this rank's
/// contribution checked against the budget at the sparsification point. A
/// late member transmits an empty sparse block and `ef.absorb` keeps its
/// whole compensated shard in the residual — the discarded mass is
/// re-injected next invocation (the mass-conservation ledger holds).
///
/// The miss decision is per *(instance, member)* — never per hop — so all
/// ranks observe the same contributed blocks and replicas stay bitwise
/// identical. With a clean plan no contribution misses and the result is
/// bitwise identical to the plain EF twin.
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_ef_deadline<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    instance: u64,
    faults: &DeadlineFaults,
    policy: &DeadlinePolicy,
    scratch: &mut CommScratch,
) -> (HiTopKReport, DeadlineReport) {
    assert_eq!(peer.size(), m * n, "hitopk_all_reduce_ef: group is not m*n");
    let d = x.len();
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = crate::torus::inter_node_members(pos.gpu, m, n);

    let shard = ring_reduce_scatter_scratch(peer, x, &intra, scratch);
    assert_eq!(
        ef.dim(),
        shard.len(),
        "hitopk_all_reduce_ef: residual must match the shard"
    );

    let k = shard_k(d, n, rho).min(shard.len());
    let shard_buf = shard.slice_mut(x);
    ef.compensate(shard_buf);
    // Deadline check at the sparsification point: would this member's
    // compressed block (k values + k indices) have landed inside the
    // budget? A miss selects nothing, so absorb() keeps the whole
    // compensated shard as residual.
    let mut report = DeadlineReport { hops: 1, missed: 0 };
    let lateness = faults.contribution_lateness(instance, peer.rank());
    let wire = 8 * k;
    let selection: SparseGrad = if policy.hop_missed(wire, lateness) {
        report.missed = 1;
        SparseGrad::empty(shard.len())
    } else {
        compressor.compress(shard_buf, k)
    };
    ef.absorb(shard_buf, &selection);

    let value_blocks = all_gather_f32_scratch(peer, &selection.values, &inter, scratch);
    let index_blocks = all_gather_u32_scratch(peer, &selection.indices, &inter, scratch);
    let inter_bytes_sent = group_wire_bytes(&selection, inter.len());

    let shard_buf = shard.slice_mut(x);
    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in value_blocks.into_iter().zip(index_blocks) {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();

    ring_all_gather_scratch(peer, x, &intra, scratch);

    (
        HiTopKReport {
            k_per_shard: k,
            shard_nonzeros,
            inter_bytes_sent,
        },
        report,
    )
}

/// Position of `rank` within `members` (panics for non-members, mirroring
/// the plain ring collectives).
fn member_index(members: &[usize], rank: usize) -> usize {
    members
        .iter()
        .position(|&m| m == rank)
        // lint:allow(panic_free, reason = "a rank outside its own member list is a schedule construction bug, mirroring the plain ring collectives")
        .unwrap_or_else(|| panic!("rank {rank} is not in members {members:?}"))
}

/// Domain-separation salts for the two lateness streams.
const LATENESS_SALT: u64 = 0x1A7E_1A7E_1A7E_1A7E;
const CONTRIB_SALT: u64 = 0xC0DE_C0DE_C0DE_C0DE;

/// SplitMix64-style hash over three words (the construction every seeded
/// decision stream in this workspace shares — deterministic, no global
/// RNG).
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(41));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use crate::hierarchical::hitopk_all_reduce_ef_scratch;
    use crate::ring::ring_all_reduce;
    use cloudtrain_compress::exact::SortTopK;
    use cloudtrain_tensor::init;

    /// A tencent-like inter link: 50 µs latency, ~25 Gbps.
    const ALPHA: f64 = 5e-5;
    const BETA: f64 = 4e-10;

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(9500 + rank as u64);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    fn expected_sum(p: usize, d: usize) -> Vec<f32> {
        let mut acc = vec![0.0; d];
        for r in 0..p {
            ops::add_assign(&mut acc, &vec_for(r, d));
        }
        acc
    }

    fn chunk_policy(d: usize, p: usize, mult: f64) -> DeadlinePolicy {
        DeadlinePolicy::from_link(ALPHA, BETA, d.div_ceil(p) * 4, mult)
    }

    #[test]
    fn lateness_draws_are_deterministic_and_scaled() {
        let f = DeadlineFaults::new(7).with_jitter(1e-3).straggle(1, 10.0);
        for hop in 0..50u64 {
            assert_eq!(f.hop_lateness(0, 1, hop), f.hop_lateness(0, 1, hop));
            assert!(f.hop_lateness(2, 3, hop) < 1e-3);
        }
        for inst in 0..50u64 {
            assert_eq!(
                f.contribution_lateness(inst, 1),
                f.contribution_lateness(inst, 1)
            );
        }
        // Straggler draws dominate clean draws on average.
        let straggler: f64 = (0..200).map(|i| f.contribution_lateness(i, 1)).sum();
        let clean: f64 = (0..200).map(|i| f.contribution_lateness(i, 0)).sum();
        assert!(straggler > clean, "straggler {straggler} <= clean {clean}");
        assert_eq!(DeadlineFaults::new(7).hop_lateness(0, 1, 3), 0.0);
    }

    #[test]
    fn policy_boundary_is_the_budget() {
        let p = DeadlinePolicy::from_link(ALPHA, BETA, 1024, 1.5);
        assert!(!p.hop_missed(1024, 0.0), "clean hop must fit a 1.5x budget");
        let clean = ALPHA + 1024.0 * BETA;
        assert!(!p.hop_missed(1024, 0.5 * clean - 1e-12));
        assert!(p.hop_missed(1024, 0.5 * clean + 1e-12));
    }

    #[test]
    #[should_panic(expected = "must be >= 1")]
    fn sub_unit_multiplier_panics() {
        let _ = DeadlinePolicy::from_link(ALPHA, BETA, 1024, 0.9);
    }

    #[test]
    fn clean_plan_is_bitwise_identical_to_plain_ring() {
        let (p, d) = (4usize, 53usize);
        let members: Vec<usize> = (0..p).collect();
        let plain = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            ring_all_reduce(peer, &mut x, &members);
            x
        });
        let bounded = run_on_group(p, |peer| {
            let faults = DeadlineFaults::new(5);
            let policy = chunk_policy(d, p, 1.5);
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let rep =
                ring_all_reduce_deadline(peer, &mut x, &members, 0, &faults, &policy, &mut scratch);
            assert_eq!(rep.missed, 0);
            assert_eq!(rep.hops, (p - 1) as u64);
            x
        });
        assert_eq!(plain, bounded);
    }

    #[test]
    fn missed_hops_keep_ranks_bitwise_identical() {
        let (p, d) = (4usize, 64usize);
        let members: Vec<usize> = (0..p).collect();
        let results = run_on_group(p, |peer| {
            // Jitter far beyond the budget on half the draws.
            let faults = DeadlineFaults::new(11).with_jitter(1e-2);
            let policy = chunk_policy(d, p, 1.2);
            let mut scratch = CommScratch::new();
            let mut out = Vec::new();
            let mut missed = 0;
            for round in 0..4u64 {
                let mut x = vec_for(10 * round as usize + peer.rank(), d);
                let rep = ring_all_reduce_deadline(
                    peer,
                    &mut x,
                    &members,
                    round,
                    &faults,
                    &policy,
                    &mut scratch,
                );
                missed += rep.missed;
                out.push(x);
            }
            (out, missed)
        });
        let total_missed: u64 = results.iter().map(|(_, m)| m).sum();
        assert!(total_missed > 0, "1e-2 jitter must blow a ~100 µs budget");
        for (r, (out, _)) in results.iter().enumerate() {
            assert_eq!(*out, results[0].0, "rank {r} diverged under misses");
        }
        // A partial sum: never exceeding the exact sum's magnitude by more
        // than rounding, and differing from it (contributions were lost).
        let exact = expected_sum(p, d);
        assert_ne!(results[0].0[0], exact, "misses should change the sum");
    }

    #[test]
    fn hitopk_deadline_clean_is_bitwise_identical_to_plain_ef() {
        let (m, n, d, rho) = (2usize, 2usize, 64usize, 0.1f64);
        let run = |bounded: bool| {
            run_on_group(m * n, move |peer| {
                let shard_len = shards_len(d, n, peer.rank() % n);
                let mut ef = ErrorFeedback::new(shard_len);
                let mut c = SortTopK;
                let mut scratch = CommScratch::new();
                let faults = DeadlineFaults::new(3);
                let policy = DeadlinePolicy::from_link(ALPHA, BETA, 1 << 20, 1.5);
                let mut out = Vec::new();
                for round in 0..3u64 {
                    let mut x = vec_for(100 * round as usize + peer.rank(), d);
                    if bounded {
                        let (_, rep) = hitopk_all_reduce_ef_deadline(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            round,
                            &faults,
                            &policy,
                            &mut scratch,
                        );
                        assert_eq!(rep.missed, 0);
                    } else {
                        hitopk_all_reduce_ef_scratch(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            &mut scratch,
                        );
                    }
                    out.push(x);
                }
                (out, ef.residual_norm())
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn late_member_mass_lands_in_its_residual_and_ranks_agree() {
        // Rank 1 is a heavy straggler under a tight budget: its
        // contributions miss, its residual keeps the mass, and replicas
        // stay bitwise identical (the empty block physically travels).
        let (m, n, d, rho) = (2usize, 2usize, 64usize, 0.25f64);
        let results = run_on_group(m * n, move |peer| {
            let shard_len = shards_len(d, n, peer.rank() % n);
            let mut ef = ErrorFeedback::new(shard_len);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let faults = DeadlineFaults::new(13).with_jitter(1e-4).straggle(1, 100.0);
            let policy = DeadlinePolicy::from_link(ALPHA, BETA, 8 * shard_k(d, n, rho), 1.1);
            let mut out = Vec::new();
            let mut missed = 0;
            for round in 0..4u64 {
                let mut x = vec_for(100 * round as usize + peer.rank(), d);
                let (_, rep) = hitopk_all_reduce_ef_deadline(
                    peer,
                    &mut x,
                    m,
                    n,
                    rho,
                    &mut c,
                    &mut ef,
                    round,
                    &faults,
                    &policy,
                    &mut scratch,
                );
                missed += rep.missed;
                out.push(x);
            }
            (out, ef.residual_norm(), missed)
        });
        assert!(
            results[1].2 > 0,
            "the straggler's contributions should miss"
        );
        assert!(results[1].1 > 0.0, "missed mass must stay in the residual");
        for (r, (out, _, _)) in results.iter().enumerate() {
            assert_eq!(*out, results[0].0, "rank {r} diverged");
        }
    }

    /// Shard length of position `j` when `d` elements split over `n`.
    fn shards_len(d: usize, n: usize, j: usize) -> usize {
        cloudtrain_tensor::partition::shards(d, n)[j].len()
    }
}
