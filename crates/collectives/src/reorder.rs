//! Topology-aware rank reordering (Cloud Collectives, Luo et al.).
//!
//! On a public cloud the fabric under a job is opaque: VM placement decides
//! which node pairs share a rack switch and which cross an oversubscribed
//! spine, so the *default* rank order almost never matches the fastest
//! Hamiltonian cycle through the realized topology. This module closes that
//! gap deterministically:
//!
//! 1. a pairwise α–β cost model ([`PairCost`]) — filled from the
//!    performance plane's probe pass (`cloudtrain_simnet::probe_pairwise`)
//!    or built by hand,
//! 2. a seeded local-search optimizer ([`optimize_ring_order`]) minimizing
//!    the directed ring cost over node permutations,
//! 3. reordered twins of the dense and sparse collectives
//!    ([`ring_all_reduce_reordered`], [`torus_all_reduce_reordered`],
//!    [`hitopk_all_reduce_ef_reordered`]) that run the *identical* schedule
//!    over the permuted member lists — with the identity order they are
//!    bitwise-identical to their natural twins.
//!
//! The optimizer is a pure function of `(cost, bytes, seed)`: greedy
//! position swaps to a local optimum from a handful of seeded restarts,
//! with the winner canonicalized to start at node 0 (ring cost is
//! rotation-invariant), so two runs over the same probe always emit the
//! same permutation — the property the CI determinism gate pins.

use cloudtrain_compress::{Compressor, ErrorFeedback, SparseGrad};
use cloudtrain_tensor::ops;
use cloudtrain_tensor::partition::shard_for;

use crate::group::Peer;
use crate::hierarchical::{group_wire_bytes, shard_k, HiTopKReport};
use crate::ring::{
    all_gather_f32_scratch, all_gather_u32_scratch, ring_all_gather, ring_all_gather_scratch,
    ring_all_reduce, ring_reduce_scatter, ring_reduce_scatter_scratch,
};
use crate::scratch::CommScratch;
use crate::torus::{grid_pos, intra_node_members};

/// Pairwise α–β cost model over the `m` nodes of a cluster (directed:
/// `src → dst` and `dst → src` are independent links).
#[derive(Debug, Clone, PartialEq)]
pub struct PairCost {
    nodes: usize,
    alpha: Vec<f64>,
    beta: Vec<f64>,
}

impl PairCost {
    /// A uniform fabric: every ordered pair costs `alpha + bytes·beta`.
    pub fn uniform(nodes: usize, alpha: f64, beta: f64) -> Self {
        assert!(nodes > 0, "PairCost: empty cluster");
        let mut c = Self {
            nodes,
            alpha: vec![alpha; nodes * nodes],
            beta: vec![beta; nodes * nodes],
        };
        for i in 0..nodes {
            c.alpha[i * nodes + i] = 0.0;
            c.beta[i * nodes + i] = 0.0;
        }
        c
    }

    /// Wraps probed row-major `m × m` α/β matrices (the layout
    /// `cloudtrain_simnet::ProbeEstimate` exposes).
    ///
    /// # Panics
    /// Panics if either matrix is not `nodes × nodes`.
    pub fn from_matrices(nodes: usize, alpha: Vec<f64>, beta: Vec<f64>) -> Self {
        assert!(nodes > 0, "PairCost: empty cluster");
        assert_eq!(alpha.len(), nodes * nodes, "alpha matrix is not m x m");
        assert_eq!(beta.len(), nodes * nodes, "beta matrix is not m x m");
        Self { nodes, alpha, beta }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Overrides one directed link (builder for hand-made topologies).
    pub fn set_link(&mut self, src: usize, dst: usize, alpha: f64, beta: f64) {
        self.alpha[src * self.nodes + dst] = alpha;
        self.beta[src * self.nodes + dst] = beta;
    }

    /// Modelled seconds for `bytes` on the directed `src → dst` link.
    pub fn link_seconds(&self, src: usize, dst: usize, bytes: usize) -> f64 {
        self.alpha[src * self.nodes + dst] + bytes as f64 * self.beta[src * self.nodes + dst]
    }

    /// Directed ring cost of `order`: the sum of `link_seconds` over the
    /// cyclic consecutive pairs — what one `bytes`-sized ring step costs
    /// when every hop runs concurrently is the max, but the *sum* is the
    /// right objective for a pipelined ring where every link is traversed
    /// `P-1` times per phase.
    ///
    /// # Panics
    /// Panics unless `order` is a permutation of `0..nodes`.
    pub fn ring_cost(&self, order: &[usize], bytes: usize) -> f64 {
        assert_valid_order(order, self.nodes);
        let m = order.len();
        if m < 2 {
            return 0.0;
        }
        (0..m)
            .map(|i| self.link_seconds(order[i], order[(i + 1) % m], bytes))
            .sum()
    }
}

/// Asserts `node_order` is a permutation of `0..nodes`.
///
/// # Panics
/// Panics on wrong length or repeated/out-of-range entries.
fn assert_valid_order(node_order: &[usize], nodes: usize) {
    assert_eq!(node_order.len(), nodes, "node order has wrong length");
    let mut seen = vec![false; nodes];
    for &i in node_order {
        assert!(
            i < nodes && !seen[i],
            "node order {node_order:?} is not a permutation of 0..{nodes}"
        );
        seen[i] = true;
    }
}

/// Rotates `order` so node 0 is first (ring cost is rotation-invariant,
/// so this is the canonical representative the determinism gate compares).
fn canonicalize(mut order: Vec<usize>) -> Vec<usize> {
    // lint:allow(panic_free, reason = "assert_valid_order guarantees node 0 is present")
    let z = order.iter().position(|&i| i == 0).expect("0 not in order");
    order.rotate_left(z);
    order
}

/// Greedy position-swap descent to a local optimum of the ring cost.
fn improve(order: &mut [usize], cost: &PairCost, bytes: usize) {
    let m = order.len();
    let mut best = cost.ring_cost(order, bytes);
    loop {
        let mut improved = false;
        for i in 0..m {
            for j in i + 1..m {
                order.swap(i, j);
                let c = cost.ring_cost(order, bytes);
                if c + 1e-15 < best {
                    best = c;
                    improved = true;
                } else {
                    order.swap(i, j);
                }
            }
        }
        if !improved {
            return;
        }
    }
}

/// Deterministic seeded optimizer: minimizes the directed ring cost over
/// node permutations via greedy swap descent from the identity plus a
/// handful of seeded restarts, returning the canonicalized winner (rotated
/// to start at node 0).
///
/// Pure in `(cost, bytes, seed)` — two runs over the same probe produce the
/// identical permutation. A restart only replaces the incumbent on a
/// *strictly* better cost, so a uniform fabric always yields the identity.
pub fn optimize_ring_order(cost: &PairCost, bytes: usize, seed: u64) -> Vec<usize> {
    let m = cost.nodes();
    let mut best: Vec<usize> = (0..m).collect();
    if m <= 2 {
        return best;
    }
    improve(&mut best, cost, bytes);
    let mut best_cost = cost.ring_cost(&best, bytes);
    let restarts = m.max(4);
    for r in 1..restarts as u64 {
        let mut cand: Vec<usize> = (0..m).collect();
        // Seeded shuffle: order nodes by a hash of (seed, restart, node).
        cand.sort_by_key(|&i| hash3(seed, r, i as u64));
        improve(&mut cand, cost, bytes);
        let c = cost.ring_cost(&cand, bytes);
        if c + 1e-15 < best_cost {
            best = cand;
            best_cost = c;
        }
    }
    canonicalize(best)
}

/// Ranks of GPU `j` across the nodes *in `node_order`* — the reordered
/// inter-node ring (communication stream `j`).
///
/// # Panics
/// Panics unless `node_order` is a permutation.
pub fn inter_members_ordered(j: usize, node_order: &[usize], n: usize) -> Vec<usize> {
    assert_valid_order(node_order, node_order.len());
    node_order.iter().map(|&i| i * n + j).collect()
}

/// Ring AllReduce over `members` visited in `order` (a permutation of
/// member *positions*). With the identity order this is exactly
/// [`ring_all_reduce`] — bitwise identical.
///
/// # Panics
/// Panics unless `order` is a permutation of `0..members.len()`.
pub fn ring_all_reduce_reordered(peer: &Peer, x: &mut [f32], members: &[usize], order: &[usize]) {
    assert_valid_order(order, members.len());
    let reordered: Vec<usize> = order.iter().map(|&i| members[i]).collect();
    ring_all_reduce(peer, x, &reordered);
}

/// 2D-Torus AllReduce with the inter-node rings visiting nodes in
/// `node_order`. The schedule is [`crate::torus::torus_all_reduce`]'s —
/// only the phase-2 ring order changes — so the identity order is bitwise
/// identical to the natural twin.
///
/// # Panics
/// Panics if the group size is not `m * n` or `node_order` is not a
/// permutation of `0..m`.
pub fn torus_all_reduce_reordered(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    node_order: &[usize],
) {
    assert_eq!(peer.size(), m * n, "torus_all_reduce: group is not m*n");
    assert_valid_order(node_order, m);
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_members_ordered(pos.gpu, node_order, n);

    let shard = ring_reduce_scatter(peer, x, &intra);
    debug_assert_eq!(shard, shard_for(x.len(), n, pos.gpu));
    ring_all_reduce(peer, shard.slice_mut(x), &inter);
    ring_all_gather(peer, x, &intra);
}

/// HiTopKComm with error feedback over reordered inter-node rings: the
/// data flow of [`crate::hierarchical::hitopk_all_reduce_ef_scratch`] with
/// the sparse AllGather of step 3 visiting nodes in `node_order`. Identity
/// order ⇒ bitwise identical to the natural twin; any order preserves
/// replica agreement (every rank of a stream gathers the same blocks in
/// the same member order).
///
/// # Panics
/// Panics if the group size is not `m * n`, the residual dimension does
/// not match this rank's shard, or `node_order` is not a permutation.
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_ef_reordered<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    node_order: &[usize],
    scratch: &mut CommScratch,
) -> HiTopKReport {
    assert_eq!(peer.size(), m * n, "hitopk_all_reduce_ef: group is not m*n");
    assert_valid_order(node_order, m);
    let d = x.len();
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_members_ordered(pos.gpu, node_order, n);

    let shard = ring_reduce_scatter_scratch(peer, x, &intra, scratch);
    assert_eq!(
        ef.dim(),
        shard.len(),
        "hitopk_all_reduce_ef: residual must match the shard"
    );

    let k = shard_k(d, n, rho).min(shard.len());
    let shard_buf = shard.slice_mut(x);
    ef.compensate(shard_buf);
    let selection: SparseGrad = compressor.compress(shard_buf, k);
    ef.absorb(shard_buf, &selection);

    let value_blocks = all_gather_f32_scratch(peer, &selection.values, &inter, scratch);
    let index_blocks = all_gather_u32_scratch(peer, &selection.indices, &inter, scratch);
    let inter_bytes_sent = group_wire_bytes(&selection, inter.len());

    let shard_buf = shard.slice_mut(x);
    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in value_blocks.into_iter().zip(index_blocks) {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();

    ring_all_gather_scratch(peer, x, &intra, scratch);

    HiTopKReport {
        k_per_shard: k,
        shard_nonzeros,
        inter_bytes_sent,
    }
}

/// SplitMix64-style hash over three words (the construction every seeded
/// decision stream in this workspace shares — deterministic, no global
/// RNG).
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(41));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use crate::hierarchical::hitopk_all_reduce_ef_scratch;
    use crate::torus::torus_all_reduce;
    use cloudtrain_compress::exact::SortTopK;
    use cloudtrain_tensor::init;
    use cloudtrain_tensor::partition::shards;

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(9000 + rank as u64);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    fn expected_sum(p: usize, d: usize) -> Vec<f32> {
        let mut acc = vec![0.0; d];
        for r in 0..p {
            ops::add_assign(&mut acc, &vec_for(r, d));
        }
        acc
    }

    #[test]
    fn ring_cost_matches_hand_computation() {
        let mut c = PairCost::uniform(3, 1.0, 0.5);
        c.set_link(0, 1, 2.0, 1.0);
        // order 0->1->2->0 with 4 bytes: (2+4) + (1+2) + (1+2) = 12
        assert_eq!(c.ring_cost(&[0, 1, 2], 4), 12.0);
        // order 0->2->1->0 avoids the expensive 0->1 link: 3*(1+2) = 9
        assert_eq!(c.ring_cost(&[0, 2, 1], 4), 9.0);
        assert_eq!(c.link_seconds(0, 1, 4), 6.0);
        assert_eq!(c.link_seconds(0, 0, 4), 0.0);
    }

    #[test]
    fn uniform_fabric_keeps_the_identity_order() {
        let c = PairCost::uniform(6, 5e-5, 4e-10);
        assert_eq!(optimize_ring_order(&c, 1 << 20, 7), vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn optimizer_routes_around_a_slow_pair() {
        // Links 0<->1 are 10x slower in both directions: the optimal ring
        // must not place 0 and 1 adjacently.
        let mut c = PairCost::uniform(4, 5e-5, 4e-10);
        c.set_link(0, 1, 5e-4, 4e-9);
        c.set_link(1, 0, 5e-4, 4e-9);
        let order = optimize_ring_order(&c, 1 << 20, 3);
        let identity: Vec<usize> = (0..4).collect();
        assert!(
            c.ring_cost(&order, 1 << 20) < c.ring_cost(&identity, 1 << 20),
            "optimizer should beat the identity on a hostile fabric"
        );
        let m = order.len();
        for i in 0..m {
            let (a, b) = (order[i], order[(i + 1) % m]);
            assert!(
                !(a == 0 && b == 1 || a == 1 && b == 0),
                "slow pair left adjacent in {order:?}"
            );
        }
    }

    #[test]
    fn optimizer_is_deterministic_and_canonical() {
        let mut c = PairCost::uniform(5, 5e-5, 4e-10);
        c.set_link(2, 3, 1e-3, 4e-9);
        c.set_link(3, 2, 1e-3, 4e-9);
        let a = optimize_ring_order(&c, 1 << 18, 42);
        let b = optimize_ring_order(&c, 1 << 18, 42);
        assert_eq!(a, b);
        assert_eq!(a[0], 0, "canonical order starts at node 0");
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn ring_cost_rejects_non_permutations() {
        PairCost::uniform(3, 1.0, 1.0).ring_cost(&[0, 0, 1], 8);
    }

    #[test]
    fn reordered_ring_identity_is_bitwise_identical() {
        let (p, d) = (4usize, 53usize);
        let members: Vec<usize> = (0..p).collect();
        let identity: Vec<usize> = (0..p).collect();
        let plain = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            ring_all_reduce(peer, &mut x, &members);
            x
        });
        let reordered = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            ring_all_reduce_reordered(peer, &mut x, &members, &identity);
            x
        });
        assert_eq!(plain, reordered);
    }

    #[test]
    fn reordered_ring_still_sums_under_a_permutation() {
        let (p, d) = (4usize, 37usize);
        let members: Vec<usize> = (0..p).collect();
        let order = vec![2usize, 0, 3, 1];
        let expect = expected_sum(p, d);
        let results = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            ring_all_reduce_reordered(peer, &mut x, &members, &order);
            x
        });
        for (r, x) in results.iter().enumerate() {
            assert!(ops::approx_eq(x, &expect, 1e-4), "rank {r} diverged");
            assert_eq!(*x, results[0], "rank {r} broke replica agreement");
        }
    }

    #[test]
    fn reordered_torus_identity_is_bitwise_identical() {
        let (m, n, d) = (4usize, 2usize, 100usize);
        let identity: Vec<usize> = (0..m).collect();
        let plain = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            torus_all_reduce(peer, &mut x, m, n);
            x
        });
        let reordered = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            torus_all_reduce_reordered(peer, &mut x, m, n, &identity);
            x
        });
        assert_eq!(plain, reordered);
    }

    #[test]
    fn reordered_torus_still_sums_under_a_permutation() {
        let (m, n, d) = (4usize, 2usize, 100usize);
        let order = vec![1usize, 3, 0, 2];
        let expect = expected_sum(m * n, d);
        let results = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            torus_all_reduce_reordered(peer, &mut x, m, n, &order);
            x
        });
        for (r, x) in results.iter().enumerate() {
            assert!(ops::approx_eq(x, &expect, 1e-4), "rank {r} diverged");
            assert_eq!(*x, results[0], "rank {r} broke replica agreement");
        }
    }

    #[test]
    fn reordered_hitopk_identity_is_bitwise_identical() {
        let (m, n, d, rho) = (2usize, 2usize, 64usize, 0.1f64);
        let identity: Vec<usize> = (0..m).collect();
        let run = |reorder: bool| {
            let identity = identity.clone();
            run_on_group(m * n, move |peer| {
                let shard_len = shards(d, n)[peer.rank() % n].len();
                let mut ef = ErrorFeedback::new(shard_len);
                let mut c = SortTopK;
                let mut scratch = CommScratch::new();
                let mut out = Vec::new();
                for round in 0..3 {
                    let mut x = vec_for(100 * round + peer.rank(), d);
                    if reorder {
                        hitopk_all_reduce_ef_reordered(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            &identity,
                            &mut scratch,
                        );
                    } else {
                        hitopk_all_reduce_ef_scratch(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            &mut scratch,
                        );
                    }
                    out.push(x);
                }
                (out, ef.residual_norm())
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn reordered_hitopk_ranks_agree_under_a_permutation() {
        let (m, n, d, rho) = (4usize, 2usize, 120usize, 0.1f64);
        let order = vec![3usize, 1, 0, 2];
        let results = run_on_group(m * n, move |peer| {
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut out = Vec::new();
            for round in 0..3 {
                let mut x = vec_for(100 * round + peer.rank(), d);
                hitopk_all_reduce_ef_reordered(
                    peer,
                    &mut x,
                    m,
                    n,
                    rho,
                    &mut c,
                    &mut ef,
                    &order,
                    &mut scratch,
                );
                out.push(x);
            }
            out
        });
        for (r, out) in results.iter().enumerate() {
            assert_eq!(*out, results[0], "rank {r} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn reordered_torus_rejects_non_permutations() {
        run_on_group(4, |peer| {
            let mut x = vec![1.0f32; 8];
            torus_all_reduce_reordered(peer, &mut x, 2, 2, &[0, 0]);
            x
        });
    }

    #[test]
    fn inter_members_follow_the_node_order() {
        assert_eq!(
            inter_members_ordered(3, &[2, 0, 3, 1], 8),
            vec![19, 3, 27, 11]
        );
    }
}
