//! Ring collectives over an arbitrary member subset.
//!
//! Every function takes a `members` slice — the global ranks participating,
//! in a fixed order shared by all callers — and the calling peer must be one
//! of them. Sub-communicators are therefore just rank lists: the 2D-torus
//! and hierarchical algorithms pass "the GPUs of my node" or "the j-th GPU
//! of every node".
//!
//! Chunking follows `cloudtrain_tensor::partition`: member `r` (by position
//! in `members`) ends a ReduceScatter owning shard `r`, matching Eq. (4) of
//! the paper where GPU `j` owns the `j`-th `d/n` segment.

use cloudtrain_tensor::ops;
use cloudtrain_tensor::partition::{shard_for, shards, Shard};

use crate::group::Peer;
use crate::scratch::CommScratch;

/// Position of `rank` within `members`.
///
/// # Panics
/// Panics if `rank` is not a member — collectives must only be called by
/// participants.
fn member_index(members: &[usize], rank: usize) -> usize {
    members
        .iter()
        .position(|&m| m == rank)
        // lint:allow(panic_free, reason = "a rank outside its own member list is a schedule construction bug, documented in the Panics section above")
        .unwrap_or_else(|| panic!("rank {rank} is not in members {members:?}"))
}

/// Ring ReduceScatter over `members`: on return, `x` holds the fully
/// reduced values in this member's own shard (other positions of `x` hold
/// partial sums and must be treated as garbage). Returns the owned shard.
///
/// Cost: `P-1` steps, each transferring `d/P` elements — Eq. (7) with
/// per-byte volume `(P-1) d/P`.
pub fn ring_reduce_scatter(peer: &Peer, x: &mut [f32], members: &[usize]) -> Shard {
    ring_reduce_scatter_scratch(peer, x, members, &mut CommScratch::new())
}

/// [`ring_reduce_scatter`] drawing its per-hop send buffers from `scratch`.
///
/// Each hop takes one pooled buffer (the outgoing copy) and recycles the
/// buffer it received, so the pool's flow is balanced and steady-state
/// iterations allocate nothing.
pub fn ring_reduce_scatter_scratch(
    peer: &Peer,
    x: &mut [f32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> Shard {
    let p = members.len();
    let me = member_index(members, peer.rank());
    let d = x.len();
    if p == 1 {
        return shard_for(d, 1, 0);
    }
    let chunks = shards(d, p);
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];

    // Step s: send chunk (me - s - 1) mod p, receive and accumulate chunk
    // (me - s - 2) mod p. After p-1 steps this member fully owns chunk `me`.
    for s in 0..p - 1 {
        let send_idx = (me + p - s - 1) % p;
        let recv_idx = (me + 2 * p - s - 2) % p;
        let send_chunk = scratch.copy_f32(chunks[send_idx].slice(x));
        peer.send_f32(right, send_chunk);
        let recv = peer.recv_f32(left);
        ops::add_assign(chunks[recv_idx].slice_mut(x), &recv);
        scratch.put_f32(recv);
    }
    chunks[me]
}

/// Ring AllGather over `members`: each member contributes its own shard of
/// `x` (shard `r` for member position `r`) and on return every member's `x`
/// holds all shards.
///
/// Cost: `P-1` steps of `d/P` elements each.
pub fn ring_all_gather(peer: &Peer, x: &mut [f32], members: &[usize]) {
    ring_all_gather_scratch(peer, x, members, &mut CommScratch::new());
}

/// [`ring_all_gather`] drawing its per-hop send buffers from `scratch`
/// (take one, recycle one — see [`ring_reduce_scatter_scratch`]).
pub fn ring_all_gather_scratch(
    peer: &Peer,
    x: &mut [f32],
    members: &[usize],
    scratch: &mut CommScratch,
) {
    let p = members.len();
    let me = member_index(members, peer.rank());
    if p == 1 {
        return;
    }
    let chunks = shards(x.len(), p);
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];

    // Step s: forward chunk (me - s) mod p, receive chunk (me - s - 1) mod p.
    for s in 0..p - 1 {
        let send_idx = (me + p - s) % p;
        let recv_idx = (me + 2 * p - s - 1) % p;
        let send_chunk = scratch.copy_f32(chunks[send_idx].slice(x));
        peer.send_f32(right, send_chunk);
        let recv = peer.recv_f32(left);
        chunks[recv_idx].slice_mut(x).copy_from_slice(&recv);
        scratch.put_f32(recv);
    }
}

/// Ring AllReduce = ReduceScatter + AllGather. On return every member's `x`
/// holds the element-wise sum over all members.
pub fn ring_all_reduce(peer: &Peer, x: &mut [f32], members: &[usize]) {
    ring_all_reduce_scratch(peer, x, members, &mut CommScratch::new());
}

/// [`ring_all_reduce`] drawing all per-hop buffers from `scratch`.
pub fn ring_all_reduce_scratch(
    peer: &Peer,
    x: &mut [f32],
    members: &[usize],
    scratch: &mut CommScratch,
) {
    ring_reduce_scatter_scratch(peer, x, members, scratch);
    ring_all_gather_scratch(peer, x, members, scratch);
}

/// AllGather of variable payloads: every member contributes `mine` and
/// receives the concatenation of all members' payloads in member order.
///
/// This is the primitive behind the sparse AllGathers of Algorithm 2 (lines
/// 12–13), where each member contributes exactly `k` values and `k` indices.
/// Implemented as a ring pipeline: `P-1` steps forwarding the youngest
/// block.
pub fn all_gather_f32(peer: &Peer, mine: &[f32], members: &[usize]) -> Vec<Vec<f32>> {
    all_gather_f32_scratch(peer, mine, members, &mut CommScratch::new())
}

/// [`all_gather_f32`] drawing its block copies from `scratch`.
///
/// Ownership contract: the returned blocks belong to the caller; to keep
/// the pool balanced across iterations the caller should `put_f32` each
/// block back once consumed (the hierarchical collectives do).
pub fn all_gather_f32_scratch(
    peer: &Peer,
    mine: &[f32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> Vec<Vec<f32>> {
    let p = members.len();
    let me = member_index(members, peer.rank());
    let mut blocks: Vec<Option<Vec<f32>>> = vec![None; p];
    blocks[me] = Some(scratch.copy_f32(mine));
    if p == 1 {
        // lint:allow(panic_free, reason = "single-member ring: the only block was filled on the previous line")
        return blocks.into_iter().map(Option::unwrap).collect();
    }
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];
    for s in 0..p - 1 {
        let send_idx = (me + p - s) % p;
        let recv_idx = (me + 2 * p - s - 1) % p;
        // Pooled copy instead of a per-hop clone: the forwarded block stays
        // in `blocks` for the caller while its copy rides the channel.
        // lint:allow(panic_free, reason = "the ring schedule fills block s before step s sends it; a hole is an unconditional schedule bug")
        let src = blocks[send_idx].as_deref().expect("ring schedule hole");
        let payload = scratch.copy_f32(src);
        peer.send_f32(right, payload);
        blocks[recv_idx] = Some(peer.recv_f32(left));
    }
    // lint:allow(panic_free, reason = "after p-1 ring steps every block has been received; a hole is an unconditional schedule bug")
    blocks.into_iter().map(Option::unwrap).collect()
}

/// AllGather of `(values, indices)` pairs in **one** ring pipeline.
///
/// The separate [`all_gather_f32`] + [`all_gather_u32`] idiom runs two
/// serialized `P-1`-hop pipelines over the same members — `2(P-1)` channel
/// round-trips for what is logically one block exchange. This primitive
/// frames each member's pair as a single `u32` payload
/// `[len, indices…, value-bits…]` (values ride as `f32::to_bits`
/// reinterpretations; no arithmetic ever touches the bit-cast words), so
/// the exchange costs `P-1` hops. Blocks come back split into owned
/// `(values, indices)` pairs in member order, bit-exact — downstream
/// consumers see exactly what the two-pipeline idiom would have produced.
///
/// Ownership contract as in [`all_gather_f32_scratch`]: the caller recycles
/// each returned pair (`put_f32` + `put_u32`) once consumed.
pub fn all_gather_pairs_scratch(
    peer: &Peer,
    values: &[f32],
    indices: &[u32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> Vec<(Vec<f32>, Vec<u32>)> {
    assert_eq!(
        values.len(),
        indices.len(),
        "all_gather_pairs: values and indices must pair up"
    );
    let mut mine = scratch.take_u32(0);
    mine.push(values.len() as u32);
    mine.extend(indices.iter().copied());
    mine.extend(values.iter().map(|v| v.to_bits()));
    let framed = all_gather_u32_scratch(peer, &mine, members, scratch);
    scratch.put_u32(mine);
    framed
        .into_iter()
        .map(|block| {
            let mut words = block.iter().copied();
            let len = words.next().unwrap_or(0) as usize;
            let mut idxs = scratch.take_u32(0);
            idxs.extend(words.by_ref().take(len));
            let mut vals = scratch.take_f32(0);
            vals.extend(words.by_ref().take(len).map(f32::from_bits));
            scratch.put_u32(block);
            (vals, idxs)
        })
        .collect()
}

/// AllGather of index payloads (see [`all_gather_f32`]).
pub fn all_gather_u32(peer: &Peer, mine: &[u32], members: &[usize]) -> Vec<Vec<u32>> {
    all_gather_u32_scratch(peer, mine, members, &mut CommScratch::new())
}

/// [`all_gather_u32`] drawing its block copies from `scratch` (ownership
/// contract as in [`all_gather_f32_scratch`]).
pub fn all_gather_u32_scratch(
    peer: &Peer,
    mine: &[u32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> Vec<Vec<u32>> {
    let p = members.len();
    let me = member_index(members, peer.rank());
    let mut blocks: Vec<Option<Vec<u32>>> = vec![None; p];
    blocks[me] = Some(scratch.copy_u32(mine));
    if p == 1 {
        // lint:allow(panic_free, reason = "single-member ring: the only block was filled on the previous line")
        return blocks.into_iter().map(Option::unwrap).collect();
    }
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];
    for s in 0..p - 1 {
        let send_idx = (me + p - s) % p;
        let recv_idx = (me + 2 * p - s - 1) % p;
        // lint:allow(panic_free, reason = "the ring schedule fills block s before step s sends it; a hole is an unconditional schedule bug")
        let src = blocks[send_idx].as_deref().expect("ring schedule hole");
        let payload = scratch.copy_u32(src);
        peer.send_u32(right, payload);
        blocks[recv_idx] = Some(peer.recv_u32(left));
    }
    // lint:allow(panic_free, reason = "after p-1 ring steps every block has been received; a hole is an unconditional schedule bug")
    blocks.into_iter().map(Option::unwrap).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use cloudtrain_tensor::init;

    /// Per-rank deterministic test vector.
    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(1000 + rank as u64);
        init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec()
    }

    fn expected_sum(p: usize, d: usize) -> Vec<f32> {
        let mut acc = vec![0.0; d];
        for r in 0..p {
            ops::add_assign(&mut acc, &vec_for(r, d));
        }
        acc
    }

    #[test]
    fn all_reduce_matches_sequential_sum() {
        for (p, d) in [(2usize, 10usize), (4, 37), (8, 64), (3, 5)] {
            let members: Vec<usize> = (0..p).collect();
            let expect = expected_sum(p, d);
            let results = run_on_group(p, |peer| {
                let mut x = vec_for(peer.rank(), d);
                ring_all_reduce(peer, &mut x, &members);
                x
            });
            for (r, x) in results.iter().enumerate() {
                assert!(
                    ops::approx_eq(x, &expect, 1e-4),
                    "p={p} d={d} rank {r} diverged"
                );
            }
        }
    }

    #[test]
    fn all_reduce_is_bitwise_identical_across_ranks() {
        let p = 8;
        let d = 1000;
        let members: Vec<usize> = (0..p).collect();
        let results = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            ring_all_reduce(peer, &mut x, &members);
            x
        });
        for r in 1..p {
            assert_eq!(results[0], results[r], "rank {r} differs bitwise");
        }
    }

    #[test]
    fn reduce_scatter_owns_correct_shard() {
        let p = 4;
        let d = 26; // non-divisible: shards of 7,7,6,6
        let members: Vec<usize> = (0..p).collect();
        let expect = expected_sum(p, d);
        let results = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let shard = ring_reduce_scatter(peer, &mut x, &members);
            (shard, x)
        });
        for (r, (shard, x)) in results.iter().enumerate() {
            assert_eq!(*shard, shard_for(d, p, r));
            assert!(
                ops::approx_eq(shard.slice(x), shard.slice(&expect), 1e-4),
                "rank {r} shard wrong"
            );
        }
    }

    #[test]
    fn all_gather_reconstructs_vector() {
        let p = 4;
        let d = 26;
        let members: Vec<usize> = (0..p).collect();
        // Start from a known full vector; each rank zeroes everything except
        // its shard, then AllGather must reconstruct the whole.
        let full: Vec<f32> = (0..d).map(|i| i as f32).collect();
        let results = run_on_group(p, |peer| {
            let mut x = vec![0.0; d];
            let s = shard_for(d, p, peer.rank());
            s.slice_mut(&mut x).copy_from_slice(s.slice(&full));
            ring_all_gather(peer, &mut x, &members);
            x
        });
        for x in &results {
            assert_eq!(*x, full);
        }
    }

    #[test]
    fn subset_collectives_leave_non_members_untouched() {
        let p = 6;
        let d = 12;
        let members = vec![1usize, 3, 5];
        let results = run_on_group(p, |peer| {
            let mut x = vec![peer.rank() as f32; d];
            if members.contains(&peer.rank()) {
                ring_all_reduce(peer, &mut x, &members);
            }
            x
        });
        let expect_sum = vec![(1 + 3 + 5) as f32; d];
        for &m in &members {
            assert_eq!(results[m], expect_sum);
        }
        for r in [0usize, 2, 4] {
            assert_eq!(results[r], vec![r as f32; d]);
        }
    }

    #[test]
    fn variable_all_gather_returns_blocks_in_member_order() {
        let p = 3;
        let members: Vec<usize> = (0..p).collect();
        let results = run_on_group(p, |peer| {
            let mine = vec![peer.rank() as f32; peer.rank() + 1];
            all_gather_f32(peer, &mine, &members)
        });
        for blocks in &results {
            assert_eq!(blocks.len(), 3);
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(*b, vec![r as f32; r + 1]);
            }
        }
    }

    #[test]
    fn u32_all_gather_matches() {
        let p = 4;
        let members: Vec<usize> = (0..p).collect();
        let results = run_on_group(p, |peer| {
            let mine = vec![peer.rank() as u32 * 10, peer.rank() as u32 * 10 + 1];
            all_gather_u32(peer, &mine, &members)
        });
        for blocks in &results {
            for (r, b) in blocks.iter().enumerate() {
                assert_eq!(*b, vec![r as u32 * 10, r as u32 * 10 + 1]);
            }
        }
    }

    #[test]
    fn scratch_variants_are_bitwise_identical_to_plain() {
        let (p, d) = (4usize, 53usize);
        let members: Vec<usize> = (0..p).collect();
        let plain = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            ring_all_reduce(peer, &mut x, &members);
            let blocks = all_gather_f32(peer, &x[..5], &members);
            let idx = all_gather_u32(peer, &[peer.rank() as u32; 3], &members);
            (x, blocks, idx)
        });
        let scratched = run_on_group(p, |peer| {
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            ring_all_reduce_scratch(peer, &mut x, &members, &mut scratch);
            let blocks = all_gather_f32_scratch(peer, &x[..5], &members, &mut scratch);
            let idx =
                all_gather_u32_scratch(peer, &[peer.rank() as u32; 3], &members, &mut scratch);
            (x, blocks, idx)
        });
        assert_eq!(plain, scratched);
    }

    #[test]
    fn ring_collectives_reach_zero_miss_steady_state() {
        let (p, d) = (4usize, 26usize);
        let members: Vec<usize> = (0..p).collect();
        let miss_growth = run_on_group(p, |peer| {
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            // Warmup iteration populates the pool...
            ring_all_reduce_scratch(peer, &mut x, &members, &mut scratch);
            let warm = scratch.misses();
            // ...after which further iterations must not allocate at all.
            for round in 0..3 {
                let mut y = vec_for(10 * round + peer.rank(), d);
                ring_all_reduce_scratch(peer, &mut y, &members, &mut scratch);
            }
            (warm, scratch.misses())
        });
        for (r, (warm, total)) in miss_growth.iter().enumerate() {
            assert!(*warm > 0, "rank {r}: warmup should allocate");
            assert_eq!(total, warm, "rank {r}: steady state allocated");
        }
    }

    #[test]
    fn variable_gather_pool_balances_when_blocks_are_recycled() {
        let (p, k) = (3usize, 8usize);
        let members: Vec<usize> = (0..p).collect();
        let miss_growth = run_on_group(p, |peer| {
            let mut scratch = CommScratch::new();
            let payload = vec![peer.rank() as f32; k];
            let warm = {
                let blocks = all_gather_f32_scratch(peer, &payload, &members, &mut scratch);
                for b in blocks {
                    scratch.put_f32(b);
                }
                scratch.misses()
            };
            for _ in 0..3 {
                let blocks = all_gather_f32_scratch(peer, &payload, &members, &mut scratch);
                for b in blocks {
                    scratch.put_f32(b);
                }
            }
            (warm, scratch.misses())
        });
        for (warm, total) in &miss_growth {
            assert_eq!(total, warm, "recycled gathers must not re-allocate");
        }
    }

    #[test]
    fn single_member_collectives_are_identity() {
        let results = run_on_group(1, |peer| {
            let mut x = vec![1.0, 2.0];
            ring_all_reduce(peer, &mut x, &[0]);
            let blocks = all_gather_f32(peer, &x, &[0]);
            (x, blocks)
        });
        assert_eq!(results[0].0, vec![1.0, 2.0]);
        assert_eq!(results[0].1, vec![vec![1.0, 2.0]]);
    }
}
