//! gTop-k sparse AllReduce (Shi et al., ICDCS 2019 — cited by the paper as
//! the global-top-k alternative to per-worker top-k aggregation).
//!
//! Instead of gathering every worker's top-k (NaiveAG, whose output grows
//! with `P`), gTop-k keeps the result at *exactly k* entries: workers pair
//! up in `log₂ P` recursive-doubling rounds, exchange their current sparse
//! sets, merge-sum them, and re-select the top-k of the merge. Both pair
//! members compute the same deterministic merge, so all ranks converge to
//! an identical global selection.

use cloudtrain_compress::{Compressor, SparseGrad};
use cloudtrain_tensor::ops;

use crate::group::Peer;
use crate::scratch::CommScratch;

/// Merges two sparse gradients over the same dense space, summing values
/// on shared indices. Output indices are sorted.
///
/// # Panics
/// Panics if the dimensions differ.
pub fn merge_sparse(a: &SparseGrad, b: &SparseGrad) -> SparseGrad {
    assert_eq!(a.dim, b.dim, "merge_sparse: dimension mismatch");
    let mut values = Vec::with_capacity(a.len() + b.len());
    let mut indices = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() || j < b.len() {
        let ai = a.indices.get(i).copied();
        let bj = b.indices.get(j).copied();
        match (ai, bj) {
            (Some(x), Some(y)) if x == y => {
                indices.push(x);
                values.push(a.values[i] + b.values[j]);
                i += 1;
                j += 1;
            }
            (Some(x), Some(y)) if x < y => {
                indices.push(x);
                values.push(a.values[i]);
                i += 1;
            }
            (Some(_), Some(y)) => {
                indices.push(y);
                values.push(b.values[j]);
                j += 1;
            }
            (Some(x), None) => {
                indices.push(x);
                values.push(a.values[i]);
                i += 1;
            }
            (None, Some(y)) => {
                indices.push(y);
                values.push(b.values[j]);
                j += 1;
            }
            (None, None) => unreachable!(),
        }
    }
    SparseGrad::new(values, indices, a.dim)
}

/// Trims a sparse gradient to its `k` largest-magnitude entries
/// (deterministic ties toward lower indices), keeping indices sorted.
pub fn trim_topk(s: &SparseGrad, k: usize) -> SparseGrad {
    if s.len() <= k {
        return s.clone();
    }
    let mut order: Vec<usize> = (0..s.len()).collect();
    order.sort_by(|&a, &b| {
        s.values[b]
            .abs()
            .partial_cmp(&s.values[a].abs())
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(s.indices[a].cmp(&s.indices[b]))
    });
    order.truncate(k);
    order.sort_by_key(|&i| s.indices[i]);
    SparseGrad::new(
        order.iter().map(|&i| s.values[i]).collect(),
        order.iter().map(|&i| s.indices[i]).collect(),
        s.dim,
    )
}

/// gTop-k AllReduce: on return every rank's `x` holds the same dense
/// vector with (at most) `k` nonzeros — the global top-k approximation of
/// the sum. Returns the bytes this rank sent.
///
/// # Panics
/// Panics unless the group size is a power of two (the recursive-doubling
/// schedule's requirement).
pub fn gtopk_all_reduce<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    k: usize,
    compressor: &mut C,
) -> usize {
    gtopk_all_reduce_scratch(peer, x, k, compressor, &mut CommScratch::new())
}

/// [`gtopk_all_reduce`] drawing its per-round wire copies from `scratch`.
///
/// Each recursive-doubling round takes two pooled buffers (the outgoing
/// value/index copies, previously fresh `clone`s) and recycles the
/// partner's received pair once merged, keeping the pool flow balanced so
/// repeated invocations stop allocating on the wire path after warmup.
///
/// # Panics
/// Panics unless the group size is a power of two.
pub fn gtopk_all_reduce_scratch<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    k: usize,
    compressor: &mut C,
    scratch: &mut CommScratch,
) -> usize {
    let p = peer.size();
    assert!(
        p.is_power_of_two(),
        "gtopk_all_reduce: group size must be 2^m"
    );
    let rank = peer.rank();
    let mut current = compressor.compress(x, k);
    let mut sent = 0;

    let mut mask = 1;
    while mask < p {
        let partner = rank ^ mask;
        // Both directions of the exchange; lower rank sends first to keep
        // the schedule deterministic (channels are pairwise ordered anyway).
        peer.send_f32(partner, scratch.copy_f32(&current.values));
        peer.send_u32(partner, scratch.copy_u32(&current.indices));
        sent += current.wire_bytes();
        let vals = peer.recv_f32(partner);
        let idxs = peer.recv_u32(partner);
        let theirs = SparseGrad::new(vals, idxs, current.dim);
        current = trim_topk(&merge_sparse(&current, &theirs), k);
        // The partner's pair balances the two takes above; the merge output
        // is a fresh selection, so recycling `theirs` (and not the old
        // `current`) keeps the pool at a fixed size.
        let SparseGrad {
            values, indices, ..
        } = theirs;
        scratch.put_f32(values);
        scratch.put_u32(indices);
        mask <<= 1;
    }

    ops::fill(x, 0.0);
    current.add_into(x);
    sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use cloudtrain_compress::exact::SortTopK;
    use cloudtrain_tensor::init;

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(6000 + rank as u64);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    #[test]
    fn merge_sums_shared_indices() {
        let a = SparseGrad::new(vec![1.0, 2.0], vec![1, 5], 8);
        let b = SparseGrad::new(vec![10.0, 20.0], vec![5, 7], 8);
        let m = merge_sparse(&a, &b);
        assert_eq!(m.indices, vec![1, 5, 7]);
        assert_eq!(m.values, vec![1.0, 12.0, 20.0]);
    }

    #[test]
    fn trim_keeps_largest_by_magnitude() {
        let s = SparseGrad::new(vec![1.0, -5.0, 3.0], vec![0, 4, 9], 10);
        let t = trim_topk(&s, 2);
        assert_eq!(t.indices, vec![4, 9]);
        assert_eq!(t.values, vec![-5.0, 3.0]);
        // k >= len is identity.
        assert_eq!(trim_topk(&s, 5), s);
    }

    #[test]
    fn all_ranks_agree_and_result_has_k_nonzeros() {
        for p in [2usize, 4, 8] {
            let d = 500;
            let k = 20;
            let results = run_on_group(p, |peer| {
                let mut x = vec_for(peer.rank(), d);
                let mut c = SortTopK;
                let sent = gtopk_all_reduce(peer, &mut x, k, &mut c);
                (x, sent)
            });
            for (x, sent) in &results {
                assert_eq!(x, &results[0].0, "p={p}: ranks diverged");
                assert!(x.iter().filter(|v| **v != 0.0).count() <= k);
                // log2(p) rounds x 8 bytes x k.
                assert_eq!(*sent, (p.trailing_zeros() as usize) * 8 * k);
            }
        }
    }

    #[test]
    fn well_separated_peaks_recover_exact_global_topk() {
        // Each rank contributes one huge coordinate; the global top-k must
        // contain all of them with their exact sums.
        let (p, d, k) = (4usize, 64usize, 4usize);
        let results = run_on_group(p, |peer| {
            let mut x = vec![0.01f32; d];
            x[peer.rank() * 10] = 100.0 + peer.rank() as f32;
            let mut c = SortTopK;
            gtopk_all_reduce(peer, &mut x, k, &mut c);
            x
        });
        for r in 0..p {
            let expect = 100.0 + r as f32;
            // Peaks are disjoint across ranks; partners' tiny filler
            // coordinates may leak into the sum, hence the tolerance.
            assert!(
                (results[0][r * 10] - expect).abs() < 0.1,
                "peak {r}: {} vs {expect}",
                results[0][r * 10]
            );
        }
    }

    #[test]
    fn scratch_variant_is_bitwise_identical_to_plain() {
        let (p, d, k) = (4usize, 300usize, 15usize);
        let plain = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            let sent = gtopk_all_reduce(peer, &mut x, k, &mut c);
            (x, sent)
        });
        let scratched = run_on_group(p, |peer| {
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            let sent = gtopk_all_reduce_scratch(peer, &mut x, k, &mut c, &mut scratch);
            (x, sent)
        });
        assert_eq!(plain, scratched);
    }

    #[test]
    fn gtopk_reaches_zero_miss_steady_state() {
        let (p, d, k) = (4usize, 200usize, 10usize);
        let miss_growth = run_on_group(p, |peer| {
            let mut scratch = CommScratch::new();
            let mut c = SortTopK;
            let mut x = vec_for(peer.rank(), d);
            gtopk_all_reduce_scratch(peer, &mut x, k, &mut c, &mut scratch);
            let warm = scratch.misses();
            for round in 1..4 {
                let mut y = vec_for(20 * round + peer.rank(), d);
                gtopk_all_reduce_scratch(peer, &mut y, k, &mut c, &mut scratch);
            }
            (warm, scratch.misses())
        });
        for (r, (warm, total)) in miss_growth.iter().enumerate() {
            assert!(*warm > 0, "rank {r}: warmup should allocate");
            assert_eq!(total, warm, "rank {r}: steady-state gtopk allocated");
        }
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn non_power_of_two_panics() {
        // The "2^m" assertion fires inside the workers and surfaces as a
        // join failure in the harness.
        run_on_group(3, |peer| {
            let mut x = vec![0.0f32; 8];
            let mut c = SortTopK;
            gtopk_all_reduce(peer, &mut x, 2, &mut c);
        });
    }
}
