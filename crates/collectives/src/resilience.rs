//! Resilience policies for collectives on a faulty fabric.
//!
//! The correctness-plane twin of `cloudtrain-simnet`'s fault injection:
//! [`CommFaults`] decides — as a pure function of a seed — which hops are
//! dropped and which members' sparse contributions are degraded, and
//! [`ResilientPeer`] wraps a [`Peer`] to apply a timeout/retry/backoff
//! policy to every hop while counting what the policy paid. Because the
//! underlying channels are reliable, "drops" and "timeouts" are *virtual*:
//! every message physically arrives exactly once, the policy only charges
//! the time a real network would have lost. That keeps the resilient
//! collectives deadlock-free by construction while their accounting tells
//! the BSP-penalty-vs-resilience story.
//!
//! Two policies, keyed by traffic class:
//!
//! * **Dense collectives** (ring, torus) must deliver every byte, so a hop
//!   that keeps dropping is retried up to [`ResiliencePolicy::max_retries`]
//!   times and then *escalated* — the final attempt always lands. The sum
//!   is exact; the cost is the full retry ladder in the tail.
//! * **Sparse collectives** (HiTopKComm, gTop-k) may *degrade*: a member
//!   whose contribution misses its deadline transmits an **empty sparse
//!   block** instead. Error feedback makes this safe — the member's
//!   residual absorbs the entire compensated gradient (an empty selection
//!   zeroes nothing), so the skipped mass is re-queued next step and no
//!   information is lost, only delayed.
//!
//! Replica consistency: degradation is decided per *(collective instance,
//! contributing member)* — never per hop — so every rank observes the same
//! set of contributed blocks and replicas stay bitwise identical. Hop-drop
//! outcomes are derived from per-ordered-pair hop counters kept
//! symmetrically by sender and receiver (channels are FIFO, so the
//! counters agree), with the sender charging drops/retries/escalations and
//! the receiver charging the virtual wait — nothing is double-counted.

use cloudtrain_compress::{Compressor, ErrorFeedback, SparseGrad};
use cloudtrain_tensor::ops;
use cloudtrain_tensor::partition::{shard_for, shards, Shard};

use crate::group::Peer;
use crate::gtopk::{merge_sparse, trim_topk};
use crate::hierarchical::{group_wire_bytes, shard_k, HiTopKReport};
use crate::scratch::CommScratch;
use crate::torus::{grid_pos, inter_node_members, intra_node_members};

/// Seeded fault decisions for the correctness-plane collectives.
///
/// Mirrors `cloudtrain_simnet::FaultPlan` in spirit: every decision is a
/// pure function of `(seed, identifiers)`, so the same plan over the same
/// schedule faults the same hops on every run and on every rank.
#[derive(Debug, Clone, PartialEq)]
pub struct CommFaults {
    /// Master seed for all decisions.
    pub seed: u64,
    /// Per-attempt probability that a hop is (virtually) dropped.
    pub drop_prob: f64,
    /// Per-instance probability that a member's sparse contribution misses
    /// its deadline and degrades to an empty block.
    pub degrade_prob: f64,
    /// Ranks living on straggler nodes: their contributions miss deadlines
    /// with [`CommFaults::straggler_degrade_prob`] instead.
    pub stragglers: Vec<usize>,
    /// Elevated degradation probability of straggler ranks.
    pub straggler_degrade_prob: f64,
}

impl CommFaults {
    /// A fault-free plan under `seed` (builder entry point).
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            degrade_prob: 0.0,
            stragglers: Vec::new(),
            straggler_degrade_prob: 0.0,
        }
    }

    /// Sets the per-attempt hop-drop probability.
    #[must_use]
    pub fn with_drops(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "drop_prob out of [0,1]");
        self.drop_prob = prob;
        self
    }

    /// Sets the per-instance member-degradation probability.
    #[must_use]
    pub fn with_degrade(mut self, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "degrade_prob out of [0,1]");
        self.degrade_prob = prob;
        self
    }

    /// Marks `rank` as living on a straggler node, degrading with
    /// probability `prob` (typically well above the baseline, but below 1
    /// so the rank's gradient mass still escapes via error feedback).
    #[must_use]
    pub fn straggle(mut self, rank: usize, prob: f64) -> Self {
        assert!((0.0..=1.0).contains(&prob), "straggler prob out of [0,1]");
        self.stragglers.push(rank);
        self.straggler_degrade_prob = prob;
        self
    }

    /// Whether the plan injects nothing.
    pub fn is_clean(&self) -> bool {
        self.drop_prob == 0.0 && self.degrade_prob == 0.0 && self.stragglers.is_empty()
    }

    /// Whether attempt `attempt` of the `hop`-th message on the ordered
    /// pair `src → dst` is dropped. Pure in all arguments; sender and
    /// receiver evaluate it with the same hop counter and agree.
    pub fn hop_dropped(&self, src: usize, dst: usize, hop: u64, attempt: u32) -> bool {
        if self.drop_prob == 0.0 {
            return false;
        }
        let pair = (src as u64) << 20 | dst as u64;
        let draw = hash3(
            self.seed ^ HOP_SALT,
            pair,
            hop.wrapping_mul(256).wrapping_add(attempt as u64),
        );
        unit(draw) < self.drop_prob
    }

    /// Whether `member`'s contribution to collective instance `instance`
    /// misses its deadline (straggler ranks use the elevated probability).
    pub fn member_degraded(&self, instance: u64, member: usize) -> bool {
        let prob = if self.stragglers.contains(&member) {
            self.straggler_degrade_prob
        } else {
            self.degrade_prob
        };
        prob > 0.0 && unit(hash3(self.seed ^ DEGRADE_SALT, instance, member as u64)) < prob
    }
}

/// Timeout/retry parameters a [`ResilientPeer`] charges faulted hops with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResiliencePolicy {
    /// Virtual seconds a sender waits before declaring an attempt lost.
    pub hop_timeout: f64,
    /// Re-transmissions allowed after the first attempt.
    pub max_retries: u32,
    /// Extra wait added per attempt number (linear backoff), seconds.
    pub backoff: f64,
}

impl Default for ResiliencePolicy {
    fn default() -> Self {
        Self {
            hop_timeout: 1e-3,
            max_retries: 3,
            backoff: 5e-4,
        }
    }
}

/// What the resilience policy paid over a [`ResilientPeer`]'s lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ResilienceReport {
    /// Hops sent through the peer.
    pub hops: u64,
    /// Virtually dropped attempts (observed at the send side).
    pub drops: u64,
    /// Re-transmissions performed.
    pub retries: u64,
    /// Hops that exhausted the retry budget and were force-delivered.
    pub escalations: u64,
    /// Sparse contributions this rank degraded to empty blocks.
    pub degraded_members: u64,
    /// Virtual seconds of timeout + backoff this rank waited on receives.
    pub virtual_delay: f64,
}

/// A [`Peer`] wrapped with fault decisions and resilience accounting.
///
/// All sends physically deliver exactly once (drops are virtual), so any
/// schedule that is deadlock-free over a plain `Peer` stays deadlock-free
/// over a `ResilientPeer`.
#[derive(Debug)]
pub struct ResilientPeer<'a> {
    peer: &'a Peer,
    faults: CommFaults,
    policy: ResiliencePolicy,
    /// Per-destination count of messages sent (ordered-pair hop counter).
    sent: Vec<u64>,
    /// Per-source count of messages received (the mirror counter).
    received: Vec<u64>,
    /// Collective instances started via [`ResilientPeer::begin_instance`].
    instance: u64,
    report: ResilienceReport,
}

impl<'a> ResilientPeer<'a> {
    /// Wraps `peer` with a fault plan and policy.
    pub fn new(peer: &'a Peer, faults: CommFaults, policy: ResiliencePolicy) -> Self {
        let p = peer.size();
        Self {
            peer,
            faults,
            policy,
            sent: vec![0; p],
            received: vec![0; p],
            instance: 0,
            report: ResilienceReport::default(),
        }
    }

    /// This peer's rank.
    pub fn rank(&self) -> usize {
        self.peer.rank()
    }

    /// Group size.
    pub fn size(&self) -> usize {
        self.peer.size()
    }

    /// Starts a new collective instance and returns its id. Every rank
    /// executes the same collective sequence, so local instance counters
    /// agree across the group without communication.
    pub fn begin_instance(&mut self) -> u64 {
        let id = self.instance;
        self.instance += 1;
        id
    }

    /// Whether this rank's sparse contribution to instance `instance`
    /// misses its deadline (and must be sent as an empty block).
    pub fn contribution_degraded(&mut self, instance: u64) -> bool {
        let degraded = self.faults.member_degraded(instance, self.rank());
        if degraded {
            self.report.degraded_members += 1;
        }
        degraded
    }

    /// Cumulative resilience accounting.
    pub fn report(&self) -> ResilienceReport {
        self.report
    }

    /// Walks the drop ladder of one outgoing hop, charging drops, retries
    /// and escalations. Returns nothing: the payload always goes out.
    fn charge_send(&mut self, to: usize) {
        let hop = self.sent[to];
        self.sent[to] += 1;
        self.report.hops += 1;
        if self.faults.drop_prob == 0.0 {
            return;
        }
        let me = self.rank();
        let mut attempt = 0u32;
        while self.faults.hop_dropped(me, to, hop, attempt) {
            self.report.drops += 1;
            if attempt == self.policy.max_retries {
                self.report.escalations += 1;
                break;
            }
            self.report.retries += 1;
            attempt += 1;
        }
    }

    /// Replays the sender's drop ladder from the receiver's side (the
    /// counters agree because channels are FIFO) and charges the virtual
    /// wait the timeouts cost this rank.
    fn charge_recv(&mut self, from: usize) {
        let hop = self.received[from];
        self.received[from] += 1;
        if self.faults.drop_prob == 0.0 {
            return;
        }
        let me = self.rank();
        let mut wait = 0.0;
        let mut attempt = 0u32;
        while self.faults.hop_dropped(from, me, hop, attempt) {
            wait += self.policy.hop_timeout + self.policy.backoff * attempt as f64;
            if attempt == self.policy.max_retries {
                break;
            }
            attempt += 1;
        }
        self.report.virtual_delay += wait;
    }

    /// Sends a float payload, charging the hop's fault outcome.
    pub fn send_f32(&mut self, to: usize, data: Vec<f32>) {
        self.charge_send(to);
        self.peer.send_f32(to, data);
    }

    /// Sends an index payload, charging the hop's fault outcome.
    pub fn send_u32(&mut self, to: usize, data: Vec<u32>) {
        self.charge_send(to);
        self.peer.send_u32(to, data);
    }

    /// Receives a float payload, charging the virtual wait (blocks).
    pub fn recv_f32(&mut self, from: usize) -> Vec<f32> {
        self.charge_recv(from);
        self.peer.recv_f32(from)
    }

    /// Receives an index payload, charging the virtual wait (blocks).
    pub fn recv_u32(&mut self, from: usize) -> Vec<u32> {
        self.charge_recv(from);
        self.peer.recv_u32(from)
    }
}

/// Position of `rank` within `members` (panics for non-members, mirroring
/// the plain ring collectives).
fn member_index(members: &[usize], rank: usize) -> usize {
    members
        .iter()
        .position(|&m| m == rank)
        // lint:allow(panic_free, reason = "a rank outside its own member list is a schedule construction bug, mirroring the plain ring collectives")
        .unwrap_or_else(|| panic!("rank {rank} is not in members {members:?}"))
}

/// Resilient ring ReduceScatter — the data flow of
/// [`crate::ring::ring_reduce_scatter_scratch`] with every hop charged
/// through the policy. Results are bitwise identical to the plain variant
/// (drops are virtual; every byte is delivered).
pub fn ring_reduce_scatter_resilient(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> Shard {
    let p = members.len();
    let me = member_index(members, rp.rank());
    let d = x.len();
    if p == 1 {
        return shard_for(d, 1, 0);
    }
    let chunks = shards(d, p);
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];
    for s in 0..p - 1 {
        let send_idx = (me + p - s - 1) % p;
        let recv_idx = (me + 2 * p - s - 2) % p;
        let send_chunk = scratch.copy_f32(chunks[send_idx].slice(x));
        rp.send_f32(right, send_chunk);
        let recv = rp.recv_f32(left);
        ops::add_assign(chunks[recv_idx].slice_mut(x), &recv);
        scratch.put_f32(recv);
    }
    chunks[me]
}

/// Resilient ring AllGather (see [`ring_reduce_scatter_resilient`]).
pub fn ring_all_gather_resilient(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    members: &[usize],
    scratch: &mut CommScratch,
) {
    let p = members.len();
    let me = member_index(members, rp.rank());
    if p == 1 {
        return;
    }
    let chunks = shards(x.len(), p);
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];
    for s in 0..p - 1 {
        let send_idx = (me + p - s) % p;
        let recv_idx = (me + 2 * p - s - 1) % p;
        let send_chunk = scratch.copy_f32(chunks[send_idx].slice(x));
        rp.send_f32(right, send_chunk);
        let recv = rp.recv_f32(left);
        chunks[recv_idx].slice_mut(x).copy_from_slice(&recv);
        scratch.put_f32(recv);
    }
}

/// Resilient ring AllReduce = resilient ReduceScatter + AllGather. Exact:
/// on return every member holds the dense sum, whatever the fault plan.
pub fn ring_all_reduce_resilient(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    members: &[usize],
    scratch: &mut CommScratch,
) {
    ring_reduce_scatter_resilient(rp, x, members, scratch);
    ring_all_gather_resilient(rp, x, members, scratch);
}

/// Resilient AllGather of variable float payloads (ownership contract as
/// in [`crate::ring::all_gather_f32_scratch`]: the caller recycles blocks).
pub fn all_gather_f32_resilient(
    rp: &mut ResilientPeer,
    mine: &[f32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> Vec<Vec<f32>> {
    let p = members.len();
    let me = member_index(members, rp.rank());
    let mut blocks: Vec<Option<Vec<f32>>> = vec![None; p];
    blocks[me] = Some(scratch.copy_f32(mine));
    if p == 1 {
        // lint:allow(panic_free, reason = "single-member ring: the only block was filled on the previous line")
        return blocks.into_iter().map(Option::unwrap).collect();
    }
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];
    for s in 0..p - 1 {
        let send_idx = (me + p - s) % p;
        let recv_idx = (me + 2 * p - s - 1) % p;
        // lint:allow(panic_free, reason = "the ring schedule fills block s before step s sends it; a hole is an unconditional schedule bug")
        let src = blocks[send_idx].as_deref().expect("ring schedule hole");
        let payload = scratch.copy_f32(src);
        rp.send_f32(right, payload);
        blocks[recv_idx] = Some(rp.recv_f32(left));
    }
    // lint:allow(panic_free, reason = "after p-1 ring steps every block has been received; a hole is an unconditional schedule bug")
    blocks.into_iter().map(Option::unwrap).collect()
}

/// Resilient AllGather of variable index payloads (see
/// [`all_gather_f32_resilient`]).
pub fn all_gather_u32_resilient(
    rp: &mut ResilientPeer,
    mine: &[u32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> Vec<Vec<u32>> {
    let p = members.len();
    let me = member_index(members, rp.rank());
    let mut blocks: Vec<Option<Vec<u32>>> = vec![None; p];
    blocks[me] = Some(scratch.copy_u32(mine));
    if p == 1 {
        // lint:allow(panic_free, reason = "single-member ring: the only block was filled on the previous line")
        return blocks.into_iter().map(Option::unwrap).collect();
    }
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];
    for s in 0..p - 1 {
        let send_idx = (me + p - s) % p;
        let recv_idx = (me + 2 * p - s - 1) % p;
        // lint:allow(panic_free, reason = "the ring schedule fills block s before step s sends it; a hole is an unconditional schedule bug")
        let src = blocks[send_idx].as_deref().expect("ring schedule hole");
        let payload = scratch.copy_u32(src);
        rp.send_u32(right, payload);
        blocks[recv_idx] = Some(rp.recv_u32(left));
    }
    // lint:allow(panic_free, reason = "after p-1 ring steps every block has been received; a hole is an unconditional schedule bug")
    blocks.into_iter().map(Option::unwrap).collect()
}

/// Resilient 2D-Torus AllReduce: the dense baseline under the retry
/// policy. The sum is exact on every rank — dense traffic never degrades —
/// but the report shows what the BSP barrier paid for that guarantee.
///
/// # Panics
/// Panics if the group size is not `m * n`.
pub fn torus_all_reduce_resilient(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    m: usize,
    n: usize,
    scratch: &mut CommScratch,
) {
    assert_eq!(rp.size(), m * n, "torus_all_reduce: group is not m*n");
    rp.begin_instance();
    let pos = grid_pos(rp.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);
    let shard = ring_reduce_scatter_resilient(rp, x, &intra, scratch);
    debug_assert_eq!(shard, shard_for(x.len(), n, pos.gpu));
    ring_all_reduce_resilient(rp, shard.slice_mut(x), &inter, scratch);
    ring_all_gather_resilient(rp, x, &intra, scratch);
}

/// Resilient HiTopKComm with error feedback: the data flow of
/// [`crate::hierarchical::hitopk_all_reduce_ef_scratch`] with hops charged
/// through the policy and *graceful degradation* — if this rank's
/// contribution misses its deadline, it transmits an empty sparse block.
///
/// Correctness under degradation: `ef.absorb` with an empty selection
/// zeroes nothing, so the member's entire compensated shard gradient lands
/// in the residual and is re-injected next invocation. All ranks observe
/// the same contributed blocks (the empty block physically travels through
/// the AllGather), so replicas stay bitwise identical.
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_ef_resilient<C: Compressor + ?Sized>(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
) -> HiTopKReport {
    assert_eq!(rp.size(), m * n, "hitopk_all_reduce_ef: group is not m*n");
    let d = x.len();
    let instance = rp.begin_instance();
    let pos = grid_pos(rp.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    let shard = ring_reduce_scatter_resilient(rp, x, &intra, scratch);
    assert_eq!(
        ef.dim(),
        shard.len(),
        "hitopk_all_reduce_ef: residual must match the shard"
    );

    let k = shard_k(d, n, rho).min(shard.len());
    let shard_buf = shard.slice_mut(x);
    ef.compensate(shard_buf);
    // Deadline check at the sparsification point: a degraded member selects
    // nothing, so absorb() keeps its whole compensated shard as residual.
    let selection: SparseGrad = if rp.contribution_degraded(instance) {
        SparseGrad::empty(shard.len())
    } else {
        compressor.compress(shard_buf, k)
    };
    ef.absorb(shard_buf, &selection);

    let value_blocks = all_gather_f32_resilient(rp, &selection.values, &inter, scratch);
    let index_blocks = all_gather_u32_resilient(rp, &selection.indices, &inter, scratch);
    let inter_bytes_sent = group_wire_bytes(&selection, inter.len());

    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in value_blocks.into_iter().zip(index_blocks) {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();

    ring_all_gather_resilient(rp, x, &intra, scratch);

    HiTopKReport {
        k_per_shard: k,
        shard_nonzeros,
        inter_bytes_sent,
    }
}

/// Resilient gTop-k with error feedback: compensate → select (or degrade
/// to an empty selection) → absorb → recursive-doubling exchange, all hops
/// charged through the policy. Returns the bytes this rank sent.
///
/// A degraded rank contributes the empty set; merges against it are
/// identities, every rank still runs all `log₂ P` rounds (no deadlock),
/// and the rank's gradient mass survives in its residual.
///
/// # Panics
/// Panics unless the group size is a power of two.
pub fn gtopk_all_reduce_ef_resilient<C: Compressor + ?Sized>(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    k: usize,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
) -> usize {
    let p = rp.size();
    assert!(
        p.is_power_of_two(),
        "gtopk_all_reduce: group size must be 2^m"
    );
    assert_eq!(ef.dim(), x.len(), "gtopk ef: residual must match x");
    let instance = rp.begin_instance();
    let rank = rp.rank();

    ef.compensate(x);
    let mut current = if rp.contribution_degraded(instance) {
        SparseGrad::empty(x.len())
    } else {
        compressor.compress(x, k)
    };
    ef.absorb(x, &current);
    let mut sent = 0;

    let mut mask = 1;
    while mask < p {
        let partner = rank ^ mask;
        rp.send_f32(partner, scratch.copy_f32(&current.values));
        rp.send_u32(partner, scratch.copy_u32(&current.indices));
        sent += current.wire_bytes();
        let vals = rp.recv_f32(partner);
        let idxs = rp.recv_u32(partner);
        let theirs = SparseGrad::new(vals, idxs, current.dim);
        current = trim_topk(&merge_sparse(&current, &theirs), k);
        let SparseGrad {
            values, indices, ..
        } = theirs;
        scratch.put_f32(values);
        scratch.put_u32(indices);
        mask <<= 1;
    }

    ops::fill(x, 0.0);
    current.add_into(x);
    sent
}

/// Domain-separation salts for the two decision streams.
const HOP_SALT: u64 = 0x40B5_40B5_40B5_40B5;
const DEGRADE_SALT: u64 = 0xDE6A_DE6A_DE6A_DE6A;

/// SplitMix64-style hash over three words (the same construction the
/// simnet fault plan uses — deterministic, no global RNG).
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(41));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Maps a hash to a uniform draw in `[0, 1)`.
fn unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use crate::hierarchical::hitopk_all_reduce_ef_scratch;
    use crate::torus::torus_all_reduce;
    use cloudtrain_compress::exact::SortTopK;
    use cloudtrain_tensor::init;

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(8000 + rank as u64);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    fn hostile(seed: u64) -> CommFaults {
        CommFaults::new(seed)
            .with_drops(0.05)
            .with_degrade(0.2)
            .straggle(1, 0.6)
    }

    #[test]
    fn clean_faults_leave_torus_bitwise_identical() {
        let (m, n, d) = (2usize, 4usize, 53usize);
        let plain = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            torus_all_reduce(peer, &mut x, m, n);
            x
        });
        let resilient = run_on_group(m * n, |peer| {
            let mut rp = ResilientPeer::new(peer, CommFaults::new(5), ResiliencePolicy::default());
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            torus_all_reduce_resilient(&mut rp, &mut x, m, n, &mut scratch);
            assert_eq!(rp.report().drops, 0);
            assert_eq!(rp.report().virtual_delay, 0.0);
            x
        });
        assert_eq!(plain, resilient);
    }

    #[test]
    fn dense_sum_stays_exact_under_heavy_drops() {
        let (m, n, d) = (2usize, 4usize, 40usize);
        let plain = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            torus_all_reduce(peer, &mut x, m, n);
            x
        });
        let reports = run_on_group(m * n, |peer| {
            let faults = CommFaults::new(77).with_drops(0.3);
            let mut rp = ResilientPeer::new(peer, faults, ResiliencePolicy::default());
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            torus_all_reduce_resilient(&mut rp, &mut x, m, n, &mut scratch);
            (x, rp.report())
        });
        let total_drops: u64 = reports.iter().map(|(_, r)| r.drops).sum();
        let total_delay: f64 = reports.iter().map(|(_, r)| r.virtual_delay).sum();
        assert!(total_drops > 0, "p=0.3 must drop something");
        assert!(total_delay > 0.0, "receivers must charge the waits");
        for (r, (x, rep)) in reports.iter().enumerate() {
            assert_eq!(*x, plain[r], "rank {r}: dense sum must stay exact");
            assert_eq!(rep.degraded_members, 0, "dense path never degrades");
            assert_eq!(rep.drops, rep.retries + rep.escalations);
        }
    }

    #[test]
    fn send_and_recv_sides_agree_on_fault_outcomes() {
        // Global reconciliation: a hop's drops charged at the sender
        // correspond to waits charged at the receiver, so across the whole
        // group (total drops > 0) <=> (total virtual delay > 0), and with a
        // symmetric all-to-all schedule each rank's numbers mirror its
        // partner's.
        let p = 4usize;
        let reports = run_on_group(p, |peer| {
            let faults = CommFaults::new(13).with_drops(0.5);
            let mut rp = ResilientPeer::new(peer, faults, ResiliencePolicy::default());
            let members: Vec<usize> = (0..p).collect();
            let mut scratch = CommScratch::new();
            for round in 0..5 {
                let mut x = vec_for(round * 10 + rp.rank(), 24);
                ring_all_reduce_resilient(&mut rp, &mut x, &members, &mut scratch);
            }
            rp.report()
        });
        let drops: u64 = reports.iter().map(|r| r.drops).sum();
        let policy = ResiliencePolicy::default();
        // Every drop causes exactly one timeout+backoff wait at its
        // receiver; reconstruct the total delay from the drop count bounds.
        let min_delay = drops as f64 * policy.hop_timeout;
        let max_delay =
            drops as f64 * (policy.hop_timeout + policy.backoff * policy.max_retries as f64);
        let delay: f64 = reports.iter().map(|r| r.virtual_delay).sum();
        assert!(
            delay >= min_delay - 1e-9 && delay <= max_delay + 1e-9,
            "delay {delay} outside [{min_delay}, {max_delay}] for {drops} drops"
        );
    }

    #[test]
    fn hitopk_resilient_clean_matches_plain_ef() {
        let (m, n, d, rho) = (2usize, 2usize, 64usize, 0.1f64);
        let run_plain = || {
            run_on_group(m * n, |peer| {
                let shard_len = shards(d, n)[peer.rank() % n].len();
                let mut ef = ErrorFeedback::new(shard_len);
                let mut c = SortTopK;
                let mut scratch = CommScratch::new();
                let mut out = Vec::new();
                for round in 0..3 {
                    let mut x = vec_for(100 * round + peer.rank(), d);
                    hitopk_all_reduce_ef_scratch(
                        peer,
                        &mut x,
                        m,
                        n,
                        rho,
                        &mut c,
                        &mut ef,
                        &mut scratch,
                    );
                    out.push(x);
                }
                (out, ef.residual_norm())
            })
        };
        let run_resilient = || {
            run_on_group(m * n, |peer| {
                let mut rp =
                    ResilientPeer::new(peer, CommFaults::new(9), ResiliencePolicy::default());
                let shard_len = shards(d, n)[peer.rank() % n].len();
                let mut ef = ErrorFeedback::new(shard_len);
                let mut c = SortTopK;
                let mut scratch = CommScratch::new();
                let mut out = Vec::new();
                for round in 0..3 {
                    let mut x = vec_for(100 * round + peer.rank(), d);
                    hitopk_all_reduce_ef_resilient(
                        &mut rp,
                        &mut x,
                        m,
                        n,
                        rho,
                        &mut c,
                        &mut ef,
                        &mut scratch,
                    );
                    out.push(x);
                }
                (out, ef.residual_norm())
            })
        };
        assert_eq!(run_plain(), run_resilient());
    }

    #[test]
    fn hitopk_degradation_keeps_ranks_bitwise_identical() {
        let (m, n, d, rho) = (2usize, 4usize, 120usize, 0.1f64);
        let results = run_on_group(m * n, |peer| {
            let mut rp = ResilientPeer::new(peer, hostile(21), ResiliencePolicy::default());
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut out = Vec::new();
            for round in 0..4 {
                let mut x = vec_for(100 * round + peer.rank(), d);
                hitopk_all_reduce_ef_resilient(
                    &mut rp,
                    &mut x,
                    m,
                    n,
                    rho,
                    &mut c,
                    &mut ef,
                    &mut scratch,
                );
                out.push(x);
            }
            (out, rp.report().degraded_members)
        });
        let degraded_total: u64 = results.iter().map(|(_, g)| g).sum();
        assert!(
            degraded_total > 0,
            "hostile plan should degrade some contributions"
        );
        for (r, (out, _)) in results.iter().enumerate() {
            assert_eq!(*out, results[0].0, "rank {r} diverged under degradation");
        }
    }

    #[test]
    fn degraded_member_mass_lands_in_its_residual() {
        // Force every contribution of rank 1 to degrade; its compensated
        // shard must be fully preserved by the residual each round.
        let (m, n, d, rho) = (2usize, 2usize, 32usize, 0.25f64);
        let results = run_on_group(m * n, |peer| {
            let faults = CommFaults::new(3).straggle(1, 1.0);
            let mut rp = ResilientPeer::new(peer, faults, ResiliencePolicy::default());
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            hitopk_all_reduce_ef_resilient(
                &mut rp,
                &mut x,
                m,
                n,
                rho,
                &mut c,
                &mut ef,
                &mut scratch,
            );
            (ef.residual_norm(), rp.report().degraded_members)
        });
        // Rank 1 degraded: nonzero residual holding the whole shard.
        assert_eq!(results[1].1, 1);
        assert!(results[1].0 > 0.0, "degraded rank must keep its mass");
        // Rank 0 (clean, rho high enough to select) has a residual from
        // normal truncation but no degradations.
        assert_eq!(results[0].1, 0);
    }

    #[test]
    fn gtopk_resilient_completes_and_ranks_agree_under_faults() {
        let (p, d, k) = (4usize, 200usize, 10usize);
        let results = run_on_group(p, |peer| {
            let mut rp = ResilientPeer::new(peer, hostile(31), ResiliencePolicy::default());
            let mut ef = ErrorFeedback::new(d);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut out = Vec::new();
            for round in 0..4 {
                let mut x = vec_for(20 * round + peer.rank(), d);
                gtopk_all_reduce_ef_resilient(&mut rp, &mut x, k, &mut c, &mut ef, &mut scratch);
                out.push(x);
            }
            (out, ef.residual_norm())
        });
        for (r, (out, _)) in results.iter().enumerate() {
            assert_eq!(*out, results[0].0, "rank {r} diverged");
            for x in out {
                assert!(x.iter().filter(|v| **v != 0.0).count() <= k);
            }
        }
    }

    #[test]
    fn resilient_paths_reach_zero_miss_steady_state() {
        // The scratch pool must stay balanced under fault-retry and
        // degradation paths too: block sizes vary (empty blocks!), but the
        // take/put flow still nets to zero.
        let (m, n, d, rho) = (2usize, 4usize, 240usize, 0.05f64);
        let miss_growth = run_on_group(m * n, |peer| {
            let mut rp = ResilientPeer::new(peer, hostile(17), ResiliencePolicy::default());
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            hitopk_all_reduce_ef_resilient(
                &mut rp,
                &mut x,
                m,
                n,
                rho,
                &mut c,
                &mut ef,
                &mut scratch,
            );
            let warm = scratch.misses();
            scratch.reset_stats();
            for round in 1..5 {
                let mut y = vec_for(50 * round + peer.rank(), d);
                hitopk_all_reduce_ef_resilient(
                    &mut rp,
                    &mut y,
                    m,
                    n,
                    rho,
                    &mut c,
                    &mut ef,
                    &mut scratch,
                );
            }
            (warm, scratch.misses())
        });
        for (r, (warm, steady)) in miss_growth.iter().enumerate() {
            assert!(*warm > 0, "rank {r}: warmup should allocate");
            assert_eq!(
                *steady, 0,
                "rank {r}: steady-state resilient hitopk allocated"
            );
        }
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let f = hostile(99);
        for hop in 0..50u64 {
            assert_eq!(f.hop_dropped(0, 1, hop, 0), f.hop_dropped(0, 1, hop, 0));
        }
        for inst in 0..50u64 {
            assert_eq!(f.member_degraded(inst, 3), f.member_degraded(inst, 3));
        }
        // Straggler ranks degrade far more often than clean ranks.
        let straggler_hits = (0..1000u64).filter(|&i| f.member_degraded(i, 1)).count();
        let clean_hits = (0..1000u64).filter(|&i| f.member_degraded(i, 0)).count();
        assert!(
            straggler_hits > clean_hits,
            "straggler {straggler_hits} <= clean {clean_hits}"
        );
    }

    #[test]
    #[should_panic(expected = "out of [0,1]")]
    fn invalid_probability_panics() {
        let _ = CommFaults::new(0).with_drops(2.0);
    }
}
