//! `CommScratch` — a reusable buffer arena for the collective hot path.
//!
//! Every ring hop of the collectives in this crate needs a fresh owned
//! buffer: [`crate::group::Peer::send_f32`] transfers ownership of the
//! payload, so a hop must copy the outgoing chunk into a `Vec` it can give
//! away. The seed implementation allocated that `Vec` on every hop
//! (`slice.to_vec()` / `block.clone()`), which at 25M-parameter scale means
//! thousands of heap round-trips per training iteration.
//!
//! The arena replaces those allocations with a take/put pool:
//!
//! * a hop **takes** a pooled buffer, copies the outgoing chunk into it and
//!   sends it away;
//! * when the matching inbound buffer has been consumed (accumulated or
//!   copied out), the hop **puts** it back into the pool.
//!
//! Because every hop gives away exactly one buffer and receives exactly one
//! (ring traffic is balanced by construction), the pool reaches a fixed
//! point after the first iteration: buffers *migrate* between the workers'
//! pools via the channels, but each pool's take/put flow nets to zero, so
//! steady-state training performs **zero** per-hop allocations. The
//! [`ScratchStats`] counters make that claim testable: `misses` stops
//! growing after warmup.
//!
//! Callers of the variable-payload gathers ([`crate::ring::all_gather_f32_scratch`])
//! own the returned blocks and must `put` them back once consumed —
//! [`crate::hierarchical::hitopk_all_reduce_scratch`] does so after its
//! scatter-accumulate — otherwise the pool re-allocates every iteration.

use std::fmt;

/// Allocation counters of one element-type pool inside a [`CommScratch`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Buffers handed out by `take`/`copy` calls.
    pub takes: usize,
    /// Takes that found the pool empty and had to heap-allocate.
    pub misses: usize,
}

impl ScratchStats {
    /// Takes served from the pool without allocating.
    pub fn hits(&self) -> usize {
        self.takes - self.misses
    }
}

/// A per-worker pool of reusable `Vec<f32>` / `Vec<u32>` buffers for the
/// collective hot path. Not shared between threads: each worker owns one
/// and buffers migrate between pools by riding the channels.
#[derive(Default)]
pub struct CommScratch {
    f32_pool: Vec<Vec<f32>>,
    u32_pool: Vec<Vec<u32>>,
    f32_stats: ScratchStats,
    u32_stats: ScratchStats,
}

impl fmt::Debug for CommScratch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("CommScratch")
            .field("f32_pooled", &self.f32_pool.len())
            .field("u32_pooled", &self.u32_pool.len())
            .field("f32_stats", &self.f32_stats)
            .field("u32_stats", &self.u32_stats)
            .finish()
    }
}

impl CommScratch {
    /// An empty arena. The first iteration through a collective warms it
    /// up (every take is a miss); later iterations run allocation-free.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Takes a buffer holding a copy of `src` (the send-side idiom: the
    /// copy's ownership goes to the channel). No zero-fill — the buffer is
    /// cleared and overwritten in one pass.
    pub fn copy_f32(&mut self, src: &[f32]) -> Vec<f32> {
        let mut buf = self.take_f32(0);
        buf.extend_from_slice(src);
        buf
    }

    /// Takes a zero-padded buffer of exactly `len` elements.
    pub fn take_f32(&mut self, len: usize) -> Vec<f32> {
        self.f32_stats.takes += 1;
        let mut buf = self.f32_pool.pop().unwrap_or_else(|| {
            self.f32_stats.misses += 1;
            Vec::new()
        });
        buf.clear();
        buf.resize(len, 0.0);
        buf
    }

    /// Returns a consumed buffer to the pool.
    pub fn put_f32(&mut self, buf: Vec<f32>) {
        self.f32_pool.push(buf);
    }

    /// Takes a buffer holding a copy of `src` (see [`Self::copy_f32`]).
    pub fn copy_u32(&mut self, src: &[u32]) -> Vec<u32> {
        let mut buf = self.take_u32(0);
        buf.extend_from_slice(src);
        buf
    }

    /// Takes a zero-padded buffer of exactly `len` elements.
    pub fn take_u32(&mut self, len: usize) -> Vec<u32> {
        self.u32_stats.takes += 1;
        let mut buf = self.u32_pool.pop().unwrap_or_else(|| {
            self.u32_stats.misses += 1;
            Vec::new()
        });
        buf.clear();
        buf.resize(len, 0);
        buf
    }

    /// Returns a consumed buffer to the pool.
    pub fn put_u32(&mut self, buf: Vec<u32>) {
        self.u32_pool.push(buf);
    }

    /// Counters of the `f32` pool.
    pub fn f32_stats(&self) -> ScratchStats {
        self.f32_stats
    }

    /// Counters of the `u32` pool.
    pub fn u32_stats(&self) -> ScratchStats {
        self.u32_stats
    }

    /// Total allocating takes across both pools — the number that must stop
    /// growing once a collective reaches steady state.
    pub fn misses(&self) -> usize {
        self.f32_stats.misses + self.u32_stats.misses
    }

    /// Buffers currently parked in the arena (both pools).
    pub fn pooled(&self) -> usize {
        self.f32_pool.len() + self.u32_pool.len()
    }

    /// Publishes both pools' counters into an observability registry, so a
    /// trace snapshot carries the allocation behaviour alongside the span
    /// breakdown (`scratch/f32_takes`, `scratch/f32_misses`,
    /// `scratch/u32_takes`, `scratch/u32_misses`, `scratch/pooled`).
    pub fn publish_obs(&self, reg: &mut cloudtrain_obs::Registry) {
        reg.counter_add("scratch/f32_takes", self.f32_stats.takes as u64);
        reg.counter_add("scratch/f32_misses", self.f32_stats.misses as u64);
        reg.counter_add("scratch/u32_takes", self.u32_stats.takes as u64);
        reg.counter_add("scratch/u32_misses", self.u32_stats.misses as u64);
        reg.counter_add("scratch/pooled", self.pooled() as u64);
    }

    /// Zeroes both pools' counters while keeping the pooled buffers.
    ///
    /// Long trainer sessions measure allocation behaviour *per window*
    /// (per epoch, per phase): warmup legitimately misses, so without a
    /// reset the cumulative counters would hide a regression where a later
    /// phase starts allocating again. Reset after warmup, then assert
    /// `misses() == 0` at the end of the window.
    pub fn reset_stats(&mut self) {
        self.f32_stats = ScratchStats::default();
        self.u32_stats = ScratchStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_put_cycle_allocates_once() {
        let mut s = CommScratch::new();
        let a = s.copy_f32(&[1.0, 2.0, 3.0]);
        assert_eq!(a, vec![1.0, 2.0, 3.0]);
        assert_eq!(s.f32_stats().misses, 1);
        s.put_f32(a);
        // Reuse: second take of any length must not miss.
        let b = s.take_f32(5);
        assert_eq!(b, vec![0.0; 5]);
        assert_eq!(
            s.f32_stats(),
            ScratchStats {
                takes: 2,
                misses: 1
            }
        );
    }

    #[test]
    fn pools_are_independent_per_type() {
        let mut s = CommScratch::new();
        let v = s.copy_u32(&[7, 8]);
        assert_eq!(v, vec![7, 8]);
        s.put_u32(v);
        assert_eq!(
            s.u32_stats(),
            ScratchStats {
                takes: 1,
                misses: 1
            }
        );
        assert_eq!(s.f32_stats(), ScratchStats::default());
        assert_eq!(s.misses(), 1);
        assert_eq!(s.pooled(), 1);
    }

    #[test]
    fn reset_stats_keeps_pooled_buffers() {
        let mut s = CommScratch::new();
        let a = s.copy_f32(&[1.0; 8]);
        let b = s.copy_u32(&[2; 8]);
        s.put_f32(a);
        s.put_u32(b);
        assert_eq!(s.misses(), 2);
        s.reset_stats();
        assert_eq!(s.misses(), 0);
        assert_eq!(s.f32_stats(), ScratchStats::default());
        assert_eq!(s.u32_stats(), ScratchStats::default());
        // The buffers survive the reset: the next takes are hits.
        assert_eq!(s.pooled(), 2);
        let _ = s.take_f32(4);
        let _ = s.take_u32(4);
        assert_eq!(s.misses(), 0);
    }

    #[test]
    fn copy_reuses_capacity_without_zero_fill() {
        let mut s = CommScratch::new();
        s.put_f32(Vec::with_capacity(64));
        let c = s.copy_f32(&[4.0; 10]);
        assert_eq!(c, vec![4.0; 10]);
        assert!(c.capacity() >= 64, "pooled capacity must be retained");
        assert_eq!(s.f32_stats().misses, 0);
    }
}
