//! Recursive halving-doubling AllReduce (Thakur et al.'s classic MPI
//! algorithm; the basis of several of the large-scale ImageNet entries the
//! paper's related work surveys, e.g. Mikami et al.'s hybrid).
//!
//! `log₂ P` halving rounds of ReduceScatter (exchange half the working
//! vector with a partner at distance `P/2, P/4, …`) followed by `log₂ P`
//! doubling rounds of AllGather — bandwidth-optimal like the ring but with
//! logarithmic round count, so it wins the latency-bound regime.

use cloudtrain_tensor::ops;

use crate::group::Peer;

/// Recursive halving-doubling AllReduce over the whole group: on return
/// every rank's `x` holds the element-wise sum.
///
/// # Panics
/// Panics unless the group size is a power of two.
pub fn rhd_all_reduce(peer: &Peer, x: &mut [f32]) {
    let p = peer.size();
    assert!(
        p.is_power_of_two(),
        "rhd_all_reduce: group size must be 2^m"
    );
    if p == 1 {
        return;
    }
    let rank = peer.rank();
    let d = x.len();

    // Halving (ReduceScatter): the owned window shrinks by half each
    // round; the half sent is the one the partner will own.
    let mut lo = 0usize;
    let mut hi = d;
    let mut mask = p / 2;
    while mask > 0 {
        let partner = rank ^ mask;
        let mid = lo + (hi - lo) / 2;
        // The rank whose bit is 0 keeps the lower half.
        let keep_low = rank & mask == 0;
        let (send_range, keep_range) = if keep_low {
            ((mid, hi), (lo, mid))
        } else {
            ((lo, mid), (mid, hi))
        };
        peer.send_f32(partner, x[send_range.0..send_range.1].to_vec());
        let recv = peer.recv_f32(partner);
        ops::add_assign(&mut x[keep_range.0..keep_range.1], &recv);
        lo = keep_range.0;
        hi = keep_range.1;
        mask >>= 1;
    }

    // Doubling (AllGather): windows merge back in reverse order.
    let mut mask = 1;
    while mask < p {
        let partner = rank ^ mask;
        peer.send_f32(partner, x[lo..hi].to_vec());
        let recv = peer.recv_f32(partner);
        // The partner owns the mirror half of the common parent window;
        // with odd parents its width differs from ours by one, so size
        // the splice by what actually arrived.
        let keep_low = rank & mask == 0;
        if keep_low {
            x[hi..hi + recv.len()].copy_from_slice(&recv);
            hi += recv.len();
        } else {
            x[lo - recv.len()..lo].copy_from_slice(&recv);
            lo -= recv.len();
        }
        mask <<= 1;
    }
    debug_assert_eq!((lo, hi), (0, d));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use cloudtrain_tensor::init;

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(9100 + rank as u64);
        init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec()
    }

    #[test]
    fn matches_sequential_sum_for_powers_of_two() {
        for (p, d) in [(2usize, 10usize), (4, 64), (8, 100), (16, 37)] {
            let expect = {
                let mut acc = vec![0.0; d];
                for r in 0..p {
                    ops::add_assign(&mut acc, &vec_for(r, d));
                }
                acc
            };
            let results = run_on_group(p, |peer| {
                let mut x = vec_for(peer.rank(), d);
                rhd_all_reduce(peer, &mut x);
                x
            });
            for (r, x) in results.iter().enumerate() {
                assert!(
                    ops::approx_eq(x, &expect, 1e-4),
                    "p={p} d={d} rank {r} diverged"
                );
            }
        }
    }

    #[test]
    fn all_ranks_identical_bitwise() {
        let results = run_on_group(8, |peer| {
            let mut x = vec_for(peer.rank(), 501);
            rhd_all_reduce(peer, &mut x);
            x
        });
        for r in 1..8 {
            assert_eq!(results[0], results[r]);
        }
    }

    #[test]
    fn single_rank_is_identity() {
        let results = run_on_group(1, |peer| {
            let mut x = vec![1.0, 2.0, 3.0];
            rhd_all_reduce(peer, &mut x);
            x
        });
        assert_eq!(results[0], vec![1.0, 2.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "worker thread panicked")]
    fn non_power_of_two_panics() {
        run_on_group(3, |peer| {
            let mut x = vec![0.0f32; 8];
            rhd_all_reduce(peer, &mut x);
        });
    }
}
