//! Fused compress–reduce collectives.
//!
//! The unfused HiTopKComm pipeline ([`crate::hierarchical`]) materializes
//! the full dense gradient between its hops: the intra-node ReduceScatter
//! accumulates partial sums *in place* across all of `x`, then the top-k
//! stage reads one shard back out of it. The fused variants here instead
//! thread one owned shard-sized buffer through the ring — each hop adds the
//! local contribution into the buffer that just arrived and forwards it —
//! so the reduction's working set is `d/P` elements instead of `d`, `x`
//! stays read-only until the sparse aggregate is scattered back, and the
//! compressor consumes the reduced shard straight out of the comm buffer
//! (the compress hop is *fused* onto the final reduce hop; cf. Li &
//! Hoefler, *Near-Optimal Sparse Allreduce*, on avoiding the dense
//! materialization between reduction and selection).
//!
//! Determinism contract: the fused schedule performs, per hop, the same
//! two-operand IEEE-754 addition as the unfused one with the operands
//! swapped (`recv + local` instead of `local + recv`). `f32` addition is
//! commutative bit for bit, so every fused collective is **bitwise
//! identical** to its unfused twin — the tests and the conformance oracle
//! enforce it, and the fault gauntlet holds the resilient variant to the
//! same mass ledger as the unfused path.

use cloudtrain_compress::{Compressor, ErrorFeedback, SparseGrad};
use cloudtrain_obs::{self as obs, Registry};
use cloudtrain_tensor::ops;
use cloudtrain_tensor::partition::{shard_for, shards, Shard};

use crate::group::Peer;
use crate::hierarchical::{group_wire_bytes, shard_k, HiTopKReport};
use crate::resilience::{
    all_gather_f32_resilient, all_gather_u32_resilient, ring_all_gather_resilient, ResilientPeer,
};
use crate::ring::{all_gather_pairs_scratch, ring_all_gather_scratch};
use crate::scratch::CommScratch;
use crate::torus::{grid_pos, inter_node_members, intra_node_members};

/// Position of `rank` within `members`.
///
/// # Panics
/// Panics if `rank` is not a member — collectives must only be called by
/// participants.
fn member_index(members: &[usize], rank: usize) -> usize {
    members
        .iter()
        .position(|&m| m == rank)
        // lint:allow(panic_free, reason = "a rank outside its own member list is a schedule construction bug, documented in the Panics section above")
        .unwrap_or_else(|| panic!("rank {rank} is not in members {members:?}"))
}

/// Fused ring ReduceScatter: like
/// [`crate::ring::ring_reduce_scatter_scratch`], but `x` is **read-only**
/// and the reduction state rides the ring in one owned shard-sized buffer.
/// Returns this member's shard descriptor and a pooled buffer holding the
/// fully reduced shard (bitwise equal to what the in-place variant leaves
/// in `x`'s own shard).
///
/// The caller owns the returned buffer and should `put_f32` it back once
/// consumed so the arena's take/put flow stays balanced.
pub fn ring_reduce_scatter_fused(
    peer: &Peer,
    x: &[f32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> (Shard, Vec<f32>) {
    let p = members.len();
    let me = member_index(members, peer.rank());
    let d = x.len();
    if p == 1 {
        return (shard_for(d, 1, 0), scratch.copy_f32(x));
    }
    let chunks = shards(d, p);
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];

    // Same hop schedule as the in-place variant: step s forwards chunk
    // (me - s - 1) mod p and accumulates chunk (me - s - 2) mod p, but the
    // accumulation happens in the just-received buffer (`recv += local`
    // instead of `local += recv`; IEEE addition commutes bitwise). The
    // final received chunk index is `me`, so after p-1 hops `cur` holds
    // this member's fully reduced shard without ever writing `x`.
    let mut cur = scratch.copy_f32(chunks[(me + p - 1) % p].slice(x));
    for s in 0..p - 1 {
        peer.send_f32(right, cur);
        let recv_idx = (me + 2 * p - s - 2) % p;
        let mut recv = peer.recv_f32(left);
        ops::add_assign(&mut recv, chunks[recv_idx].slice(x));
        cur = recv;
    }
    (chunks[me], cur)
}

/// Fused ring ReduceScatter over a [`ResilientPeer`]: the schedule of
/// [`ring_reduce_scatter_fused`] with every hop charged through the
/// timeout/retry policy.
pub fn ring_reduce_scatter_fused_resilient(
    rp: &mut ResilientPeer,
    x: &[f32],
    members: &[usize],
    scratch: &mut CommScratch,
) -> (Shard, Vec<f32>) {
    let p = members.len();
    let me = member_index(members, rp.rank());
    let d = x.len();
    if p == 1 {
        return (shard_for(d, 1, 0), scratch.copy_f32(x));
    }
    let chunks = shards(d, p);
    let right = members[(me + 1) % p];
    let left = members[(me + p - 1) % p];

    let mut cur = scratch.copy_f32(chunks[(me + p - 1) % p].slice(x));
    for s in 0..p - 1 {
        rp.send_f32(right, cur);
        let recv_idx = (me + 2 * p - s - 2) % p;
        let mut recv = rp.recv_f32(left);
        ops::add_assign(&mut recv, chunks[recv_idx].slice(x));
        cur = recv;
    }
    (chunks[me], cur)
}

/// Fused HiTopKComm: [`crate::hierarchical::hitopk_all_reduce`] with the
/// intra-node reduction and the top-k selection fused — the compressor
/// reads the reduced shard straight out of the ring buffer, and the full
/// dense partial sums are never materialized in `x`.
///
/// Bitwise identical to the unfused collective on every rank.
///
/// # Panics
/// Panics if the group size is not `m * n`.
pub fn hitopk_all_reduce_fused<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
) -> HiTopKReport {
    hitopk_all_reduce_fused_scratch(peer, x, m, n, rho, compressor, &mut CommScratch::new())
}

/// [`hitopk_all_reduce_fused`] drawing every communication buffer from
/// `scratch`.
pub fn hitopk_all_reduce_fused_scratch<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    scratch: &mut CommScratch,
) -> HiTopKReport {
    hitopk_fused_impl(peer, x, m, n, rho, compressor, None, scratch, None)
}

/// [`hitopk_all_reduce_fused_scratch`] with per-stage spans and counters
/// recorded into `reg`. The fused reduce+compress hop is charged as one
/// span (`hitopk/fused reduce-compress`, `d + d/n` logical units); the
/// remaining stages keep the unfused span names so trace consumers can
/// compare shapes directly.
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_fused_traced<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    scratch: &mut CommScratch,
    reg: &mut Registry,
) -> HiTopKReport {
    hitopk_fused_impl(peer, x, m, n, rho, compressor, None, scratch, Some(reg))
}

/// Fused HiTopKComm with error feedback: the compensate → select → absorb
/// cycle runs on the ring buffer holding the reduced shard (the residual
/// still lives at the sparsification point and has dimension `d/n`).
///
/// Bitwise identical to [`crate::hierarchical::hitopk_all_reduce_ef`].
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
pub fn hitopk_all_reduce_ef_fused<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
) -> HiTopKReport {
    hitopk_all_reduce_ef_fused_scratch(peer, x, m, n, rho, compressor, ef, &mut CommScratch::new())
}

/// [`hitopk_all_reduce_ef_fused`] drawing every communication buffer from
/// `scratch`.
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_ef_fused_scratch<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
) -> HiTopKReport {
    hitopk_fused_impl(peer, x, m, n, rho, compressor, Some(ef), scratch, None)
}

/// [`hitopk_all_reduce_ef_fused_scratch`] with per-stage spans and
/// counters recorded into `reg` (span names as in
/// [`hitopk_all_reduce_fused_traced`]).
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_ef_fused_traced<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
    reg: &mut Registry,
) -> HiTopKReport {
    hitopk_fused_impl(peer, x, m, n, rho, compressor, Some(ef), scratch, Some(reg))
}

#[allow(clippy::too_many_arguments)]
fn hitopk_fused_impl<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: Option<&mut ErrorFeedback>,
    scratch: &mut CommScratch,
    mut reg: Option<&mut Registry>,
) -> HiTopKReport {
    assert_eq!(peer.size(), m * n, "hitopk_all_reduce: group is not m*n");
    let d = x.len();
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    // Fused hop: intra-node ReduceScatter rides a shard-sized ring buffer
    // (x stays read-only) and the compressor consumes the reduced shard
    // straight out of it — no dense materialization in between.
    let span = obs::span_begin(&mut reg, "hitopk/fused reduce-compress");
    let (shard, mut reduced) = ring_reduce_scatter_fused(peer, x, &intra, scratch);
    debug_assert_eq!(shard, shard_for(d, n, pos.gpu));
    let k = shard_k(d, n, rho).min(shard.len());
    let selection: SparseGrad = match ef {
        Some(ef) => {
            assert_eq!(
                ef.dim(),
                shard.len(),
                "hitopk_all_reduce_ef: residual must match the shard"
            );
            ef.compensate(&mut reduced);
            let selection = compressor.compress(&reduced, k);
            ef.absorb(&reduced, &selection);
            selection
        }
        None => compressor.compress(&reduced, k),
    };
    scratch.put_f32(reduced);
    obs::span_end(&mut reg, span, (d + shard.len()) as f64);

    // Inter-node AllGather of the selections, scattered into the (still
    // untouched) shard region of x. The fused path gathers the value and
    // index streams as one framed pair pipeline — m-1 ring hops instead of
    // the staged path's 2(m-1) — which is where fusion actually recoups
    // its bookkeeping: same bytes, half the messages, identical values.
    let span = obs::span_begin(&mut reg, "hitopk/inter all-gather");
    let blocks =
        all_gather_pairs_scratch(peer, &selection.values, &selection.indices, &inter, scratch);
    let inter_bytes_sent = group_wire_bytes(&selection, inter.len());

    let shard_buf = shard.slice_mut(x);
    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in blocks {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();
    obs::span_end(&mut reg, span, (2 * m * k) as f64);

    // Intra-node AllGather overwrites every non-own chunk of x, so the
    // stale local values outside the shard never survive to the caller.
    let span = obs::span_begin(&mut reg, "hitopk/intra all-gather");
    ring_all_gather_scratch(peer, x, &intra, scratch);
    obs::span_end(&mut reg, span, d as f64);

    if let Some(reg) = reg.as_mut() {
        reg.counter_add("hitopk/invocations", 1);
        reg.counter_add("hitopk/fused_invocations", 1);
        reg.counter_add("hitopk/inter_bytes_sent", inter_bytes_sent as u64);
        reg.counter_add("hitopk/shard_nonzeros", shard_nonzeros as u64);
        reg.gauge_set("hitopk/k_per_shard", k as f64);
    }

    HiTopKReport {
        k_per_shard: k,
        shard_nonzeros,
        inter_bytes_sent,
    }
}

/// Fused HiTopKComm with error feedback over a [`ResilientPeer`]:
/// [`crate::resilience::hitopk_all_reduce_ef_resilient`] with the fused
/// reduce+compress hop. With clean faults it is bitwise identical to the
/// unfused resilient collective; a degraded member selects nothing and its
/// whole compensated shard survives in the residual, so the gradient-mass
/// ledger balances exactly as in the unfused path.
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
#[allow(clippy::too_many_arguments)] // mirrors hitopk_all_reduce_ef_resilient's signature
pub fn hitopk_all_reduce_ef_fused_resilient<C: Compressor + ?Sized>(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
) -> HiTopKReport {
    assert_eq!(rp.size(), m * n, "hitopk_all_reduce_ef: group is not m*n");
    let d = x.len();
    let instance = rp.begin_instance();
    let pos = grid_pos(rp.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    let (shard, mut reduced) = ring_reduce_scatter_fused_resilient(rp, x, &intra, scratch);
    assert_eq!(
        ef.dim(),
        shard.len(),
        "hitopk_all_reduce_ef: residual must match the shard"
    );

    let k = shard_k(d, n, rho).min(shard.len());
    ef.compensate(&mut reduced);
    // Deadline check at the sparsification point: a degraded member selects
    // nothing, so absorb() keeps its whole compensated shard as residual.
    let selection: SparseGrad = if rp.contribution_degraded(instance) {
        SparseGrad::empty(shard.len())
    } else {
        compressor.compress(&reduced, k)
    };
    ef.absorb(&reduced, &selection);
    scratch.put_f32(reduced);

    let value_blocks = all_gather_f32_resilient(rp, &selection.values, &inter, scratch);
    let index_blocks = all_gather_u32_resilient(rp, &selection.indices, &inter, scratch);
    let inter_bytes_sent = group_wire_bytes(&selection, inter.len());

    let shard_buf = shard.slice_mut(x);
    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in value_blocks.into_iter().zip(index_blocks) {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();

    ring_all_gather_resilient(rp, x, &intra, scratch);

    HiTopKReport {
        k_per_shard: k,
        shard_nonzeros,
        inter_bytes_sent,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use crate::hierarchical::{hitopk_all_reduce, hitopk_all_reduce_ef, hitopk_all_reduce_traced};
    use crate::resilience::{hitopk_all_reduce_ef_resilient, CommFaults, ResiliencePolicy};
    use crate::ring::ring_reduce_scatter;
    use cloudtrain_compress::exact::SortTopK;
    use cloudtrain_compress::MsTopK;
    use cloudtrain_tensor::init;

    /// Per-rank deterministic test vector.
    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(12000 + rank as u64);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    #[test]
    fn fused_reduce_scatter_matches_in_place_bitwise() {
        for (p, d) in [(2usize, 10usize), (4, 37), (8, 64), (3, 5), (1, 7)] {
            let members: Vec<usize> = (0..p).collect();
            let in_place = run_on_group(p, |peer| {
                let mut x = vec_for(peer.rank(), d);
                let shard = ring_reduce_scatter(peer, &mut x, &members);
                (shard, shard.slice(&x).to_vec())
            });
            let fused = run_on_group(p, |peer| {
                let x = vec_for(peer.rank(), d);
                let mut scratch = CommScratch::new();
                let (shard, reduced) = ring_reduce_scatter_fused(peer, &x, &members, &mut scratch);
                // x must be untouched by the fused schedule.
                assert_eq!(x, vec_for(peer.rank(), d));
                (shard, reduced)
            });
            for (r, (a, b)) in in_place.iter().zip(&fused).enumerate() {
                assert_eq!(a.0, b.0, "p={p} d={d} rank {r}: shard descriptor");
                assert_eq!(a.1, b.1, "p={p} d={d} rank {r}: reduced shard bits");
            }
        }
    }

    #[test]
    fn fused_hitopk_matches_unfused_bitwise() {
        for (m, n, d, rho) in [
            (2usize, 2usize, 40usize, 0.2f64),
            (3, 2, 53, 0.1),
            (2, 4, 64, 0.5),
        ] {
            let unfused = run_on_group(m * n, |peer| {
                let mut x = vec_for(peer.rank(), d);
                let rep = hitopk_all_reduce(peer, &mut x, m, n, rho, &mut SortTopK);
                (x, rep)
            });
            let fused = run_on_group(m * n, |peer| {
                let mut x = vec_for(peer.rank(), d);
                let rep = hitopk_all_reduce_fused(peer, &mut x, m, n, rho, &mut SortTopK);
                (x, rep)
            });
            for (r, (a, b)) in unfused.iter().zip(&fused).enumerate() {
                assert_eq!(a.0, b.0, "m={m} n={n} rank {r}: vectors diverged");
                assert_eq!(a.1, b.1, "m={m} n={n} rank {r}: reports diverged");
            }
        }
    }

    #[test]
    fn fused_hitopk_with_mstopk_matches_unfused_bitwise() {
        let (m, n, d, rho) = (2usize, 2usize, 512usize, 0.05f64);
        let unfused = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(3, 42);
            hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c);
            x
        });
        let fused = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(3, 42);
            hitopk_all_reduce_fused(peer, &mut x, m, n, rho, &mut c);
            x
        });
        assert_eq!(unfused, fused);
    }

    #[test]
    fn fused_ef_matches_unfused_over_rounds() {
        // Multi-round: residuals must track bit for bit across rounds.
        let (m, n, d, rho) = (2usize, 2usize, 60usize, 0.1f64);
        let shard_len = d.div_ceil(n);
        let run = |fused: bool| {
            run_on_group(m * n, |peer| {
                let mut ef = ErrorFeedback::new(shard_len);
                let mut scratch = CommScratch::new();
                let mut outs = Vec::new();
                for round in 0..3usize {
                    let mut x = vec_for(100 * round + peer.rank(), d);
                    if fused {
                        hitopk_all_reduce_ef_fused_scratch(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut SortTopK,
                            &mut ef,
                            &mut scratch,
                        );
                    } else {
                        hitopk_all_reduce_ef(peer, &mut x, m, n, rho, &mut SortTopK, &mut ef);
                    }
                    outs.push(x);
                }
                (outs, ef.residual().to_vec())
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fused_traced_is_bitwise_identical_and_spans_fused_hop() {
        let (m, n, d, rho) = (2usize, 2usize, 40usize, 0.25f64);
        let plain = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            hitopk_all_reduce_fused(peer, &mut x, m, n, rho, &mut SortTopK);
            x
        });
        let traced = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut scratch = CommScratch::new();
            let mut reg = Registry::new();
            hitopk_all_reduce_fused_traced(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut SortTopK,
                &mut scratch,
                &mut reg,
            );
            (x, reg)
        });
        for (r, ((x, reg), p)) in traced.iter().zip(&plain).enumerate() {
            assert_eq!(x, p, "rank {r}: tracing perturbed the aggregation");
            let spans: Vec<&str> = reg.spans().iter().map(|s| s.name.as_str()).collect();
            assert_eq!(
                spans,
                vec![
                    "hitopk/fused reduce-compress",
                    "hitopk/inter all-gather",
                    "hitopk/intra all-gather",
                ],
                "rank {r}: span shape"
            );
            let shard_len = d.div_ceil(n);
            assert_eq!(reg.spans()[0].seconds(), (d + shard_len) as f64);
        }
    }

    #[test]
    fn fused_resilient_with_clean_faults_matches_unfused_bitwise() {
        let (m, n, d, rho) = (2usize, 2usize, 48usize, 0.2f64);
        let shard_len = d.div_ceil(n);
        let clean = CommFaults::new(7);
        let run = |fused: bool| {
            run_on_group(m * n, |peer| {
                let mut rp = ResilientPeer::new(peer, clean.clone(), ResiliencePolicy::default());
                let mut ef = ErrorFeedback::new(shard_len);
                let mut scratch = CommScratch::new();
                let mut x = vec_for(peer.rank(), d);
                if fused {
                    hitopk_all_reduce_ef_fused_resilient(
                        &mut rp,
                        &mut x,
                        m,
                        n,
                        rho,
                        &mut SortTopK,
                        &mut ef,
                        &mut scratch,
                    );
                } else {
                    hitopk_all_reduce_ef_resilient(
                        &mut rp,
                        &mut x,
                        m,
                        n,
                        rho,
                        &mut SortTopK,
                        &mut ef,
                        &mut scratch,
                    );
                }
                (x, ef.residual().to_vec())
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn fused_resilient_conserves_mass_under_hostile_faults() {
        // transmitted + residual must equal each rank's compensated shard:
        // with degradation active, whatever a rank fails to send must
        // survive in its residual (checked via the aggregate identity
        // aggregated_shard + Σ residuals == Σ compensated shards).
        let (m, n, d, rho) = (2usize, 2usize, 48usize, 0.25f64);
        let shard_len = d.div_ceil(n);
        let faults = CommFaults::new(99).with_degrade(0.5);
        let results = run_on_group(m * n, |peer| {
            let mut rp = ResilientPeer::new(peer, faults.clone(), ResiliencePolicy::default());
            let mut ef = ErrorFeedback::new(shard_len);
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            // Clean-fault pre-pass computes the compensated shard reference
            // (residual is zero on round 1, so it is just the reduced shard).
            let x_ref = {
                let x0 = vec_for(peer.rank(), d);
                let members = intra_node_members(grid_pos(peer.rank(), m, n).node, n);
                let (_, reduced) = ring_reduce_scatter_fused(peer, &x0, &members, &mut scratch);
                reduced
            };
            let rep = hitopk_all_reduce_ef_fused_resilient(
                &mut rp,
                &mut x,
                m,
                n,
                rho,
                &mut SortTopK,
                &mut ef,
                &mut scratch,
            );
            let report = rp.report();
            (x, ef.residual().to_vec(), x_ref, rep, report)
        });
        let degraded: usize = results
            .iter()
            .map(|(_, _, _, _, rep)| rep.degraded_members as usize)
            .sum();
        assert!(degraded > 0, "hostile seed must degrade someone");
        // Aggregate identity per shard: the aggregated value of shard j
        // (on any rank of the owning stream) plus both owners' residuals
        // equals the sum of both nodes' compensated shard-j sums.
        for gpu in 0..n {
            let shard = shard_for(d, n, gpu);
            let aggregated = shard.slice(&results[gpu].0); // rank `gpu` is node 0, gpu `gpu`
            let owners: Vec<usize> = (0..m).map(|node| node * n + gpu).collect();
            for (i, agg) in aggregated.iter().enumerate() {
                let compensated: f32 = owners.iter().map(|&r| results[r].2[i]).sum();
                let residuals: f32 = owners.iter().map(|&r| results[r].1[i]).sum();
                let diff = (agg + residuals - compensated).abs();
                assert!(
                    diff <= 1e-4 * compensated.abs().max(1.0),
                    "shard {gpu} elem {i}: mass leaked ({agg} + {residuals} != {compensated})"
                );
            }
        }
    }

    #[test]
    fn fused_path_reaches_zero_miss_steady_state() {
        let (m, n, d, rho) = (2usize, 2usize, 64usize, 0.2f64);
        let miss_growth = run_on_group(m * n, |peer| {
            let mut scratch = CommScratch::new();
            let shard_len = d.div_ceil(n);
            let mut ef = ErrorFeedback::new(shard_len);
            let mut x = vec_for(peer.rank(), d);
            hitopk_all_reduce_ef_fused_scratch(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut SortTopK,
                &mut ef,
                &mut scratch,
            );
            let warm = scratch.misses();
            for round in 1..4usize {
                let mut y = vec_for(50 * round + peer.rank(), d);
                hitopk_all_reduce_ef_fused_scratch(
                    peer,
                    &mut y,
                    m,
                    n,
                    rho,
                    &mut SortTopK,
                    &mut ef,
                    &mut scratch,
                );
            }
            (warm, scratch.misses())
        });
        for (r, (warm, total)) in miss_growth.iter().enumerate() {
            assert!(*warm > 0, "rank {r}: warmup should allocate");
            assert_eq!(total, warm, "rank {r}: fused steady state allocated");
        }
    }

    #[test]
    fn fused_traced_aggregation_matches_unfused_traced() {
        // Cross-check against the unfused traced variant too: same bits,
        // different span shape (4 spans unfused, 3 fused).
        let (m, n, d, rho) = (2usize, 2usize, 40usize, 0.25f64);
        let unfused = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut scratch = CommScratch::new();
            let mut reg = Registry::new();
            hitopk_all_reduce_traced(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut SortTopK,
                &mut scratch,
                &mut reg,
            );
            (x, reg.spans().len())
        });
        let fused = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut scratch = CommScratch::new();
            let mut reg = Registry::new();
            hitopk_all_reduce_fused_traced(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut SortTopK,
                &mut scratch,
                &mut reg,
            );
            (x, reg.spans().len())
        });
        for (r, ((xa, sa), (xb, sb))) in unfused.iter().zip(&fused).enumerate() {
            assert_eq!(xa, xb, "rank {r}: aggregation diverged");
            assert_eq!((*sa, *sb), (4, 3), "rank {r}: span counts");
        }
    }
}
