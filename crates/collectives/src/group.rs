//! Mesh-connected peer groups.
//!
//! [`Group::connect`] creates `p` [`Peer`] handles with a dedicated
//! unbounded channel for every ordered pair, so `recv(from)` is
//! deterministic: a message can only be received from the peer it names.
//! Peers are moved into worker threads (one peer per thread) and all
//! collectives are expressed as free functions over `&Peer`.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// A message between peers: gradient payloads are `f32`, index payloads are
/// `u32` (the two wires of a sparse gradient).
#[derive(Debug, Clone)]
pub enum Message {
    /// A vector of 32-bit floats (values).
    F32(Vec<f32>),
    /// A vector of 32-bit indices.
    U32(Vec<u32>),
}

/// Factory for a fully connected peer group.
#[derive(Debug)]
pub struct Group;

impl Group {
    /// Creates `p` mesh-connected peers.
    ///
    /// # Panics
    /// Panics if `p == 0`.
    pub fn connect(p: usize) -> Vec<Peer> {
        assert!(p > 0, "Group::connect: need at least one peer");
        // txs[i][j] sends from i to j; rxs[j][i] receives at j from i.
        let mut txs: Vec<Vec<Option<Sender<Message>>>> = (0..p).map(|_| vec![None; p]).collect();
        let mut rxs: Vec<Vec<Option<Receiver<Message>>>> = (0..p).map(|_| vec![None; p]).collect();
        for (i, row) in txs.iter_mut().enumerate() {
            for (j, slot) in row.iter_mut().enumerate() {
                let (tx, rx) = unbounded();
                *slot = Some(tx);
                rxs[j][i] = Some(rx);
            }
        }
        let barrier = Arc::new(Barrier::new(p));
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| Peer {
                rank,
                size: p,
                // lint:allow(panic_free, reason = "the mesh loop above just filled every slot; a None is an impossible construction bug")
                txs: tx_row.into_iter().map(Option::unwrap).collect(),
                // lint:allow(panic_free, reason = "the mesh loop above just filled every slot; a None is an impossible construction bug")
                rxs: rx_row.into_iter().map(Option::unwrap).collect(),
                barrier: barrier.clone(),
            })
            .collect()
    }
}

/// One worker's endpoint in a mesh-connected group.
#[derive(Debug)]
pub struct Peer {
    rank: usize,
    size: usize,
    txs: Vec<Sender<Message>>,
    rxs: Vec<Receiver<Message>>,
    barrier: Arc<Barrier>,
}

impl Peer {
    /// This peer's rank in `[0, size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Number of peers in the group.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Sends a float payload to `to`.
    ///
    /// # Panics
    /// Panics if `to` is out of range (sending to self is allowed but
    /// usually a schedule bug — collectives never do it).
    pub fn send_f32(&self, to: usize, data: Vec<f32>) {
        self.txs[to]
            .send(Message::F32(data))
            // lint:allow(panic_free, reason = "a closed channel means a peer already panicked; unwinding the group loudly is the harness contract")
            .expect("peer channel closed");
    }

    /// Sends an index payload to `to`.
    pub fn send_u32(&self, to: usize, data: Vec<u32>) {
        self.txs[to]
            .send(Message::U32(data))
            // lint:allow(panic_free, reason = "a closed channel means a peer already panicked; unwinding the group loudly is the harness contract")
            .expect("peer channel closed");
    }

    /// Receives a float payload from `from` (blocks).
    ///
    /// # Panics
    /// Panics if the next message from `from` is not an `F32` payload —
    /// peers must agree on the schedule, so a type mismatch is a bug.
    pub fn recv_f32(&self, from: usize) -> Vec<f32> {
        // lint:allow(panic_free, reason = "a closed channel means a peer already panicked; unwinding the group loudly is the harness contract")
        match self.rxs[from].recv().expect("peer channel closed") {
            Message::F32(v) => v,
            // lint:allow(panic_free, reason = "schedule type mismatch is a collective programming bug, documented in this method's Panics section")
            Message::U32(_) => panic!("peer {}: expected F32 from {}, got U32", self.rank, from),
        }
    }

    /// Receives an index payload from `from` (blocks).
    ///
    /// # Panics
    /// Panics on a payload type mismatch (see [`Peer::recv_f32`]).
    pub fn recv_u32(&self, from: usize) -> Vec<u32> {
        // lint:allow(panic_free, reason = "a closed channel means a peer already panicked; unwinding the group loudly is the harness contract")
        match self.rxs[from].recv().expect("peer channel closed") {
            Message::U32(v) => v,
            // lint:allow(panic_free, reason = "schedule type mismatch is a collective programming bug, documented in this method's Panics section")
            Message::F32(_) => panic!("peer {}: expected U32 from {}, got F32", self.rank, from),
        }
    }

    /// Synchronises all peers of the group.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

/// Runs `f` on every peer of a fresh `p`-peer group, one thread per peer,
/// and returns the per-rank results in rank order.
///
/// This is the harness used by tests, benches and the training engine to
/// execute a collective "program" on all workers.
///
/// # Examples
/// ```
/// use cloudtrain_collectives::group::run_on_group;
/// use cloudtrain_collectives::ring::ring_all_reduce;
///
/// let members: Vec<usize> = (0..4).collect();
/// let sums = run_on_group(4, |peer| {
///     let mut x = vec![peer.rank() as f32; 3];
///     ring_all_reduce(peer, &mut x, &members);
///     x[0]
/// });
/// assert_eq!(sums, vec![6.0; 4]); // 0+1+2+3 on every rank
/// ```
pub fn run_on_group<T, F>(p: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&Peer) -> T + Sync,
{
    let peers = Group::connect(p);
    std::thread::scope(|s| {
        let mut handles = Vec::with_capacity(p);
        for peer in peers {
            let f = &f;
            // Each thread owns its peer: if a worker panics, its channel
            // endpoints drop, peers blocked on recv fail loudly, and the
            // whole group unwinds instead of deadlocking.
            // lint:allow(ambient, reason = "run_on_group IS the deterministic worker harness; results are joined in rank order so scheduling cannot leak into output")
            handles.push(s.spawn(move || f(&peer)));
        }
        handles
            .into_iter()
            // lint:allow(panic_free, reason = "propagating a worker panic to the caller is the documented harness contract")
            .map(|h| h.join().expect("worker thread panicked"))
            .collect()
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_to_point_roundtrip() {
        let results = run_on_group(2, |peer| {
            if peer.rank() == 0 {
                peer.send_f32(1, vec![1.0, 2.0]);
                peer.recv_f32(1)
            } else {
                let got = peer.recv_f32(0);
                peer.send_f32(0, vec![got[0] * 10.0, got[1] * 10.0]);
                got
            }
        });
        assert_eq!(results[0], vec![10.0, 20.0]);
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn channels_are_pairwise_ordered() {
        // Rank 0 sends two messages to rank 1; they arrive in order.
        let results = run_on_group(2, |peer| {
            if peer.rank() == 0 {
                peer.send_f32(1, vec![1.0]);
                peer.send_f32(1, vec![2.0]);
                vec![]
            } else {
                let a = peer.recv_f32(0);
                let b = peer.recv_f32(0);
                vec![a[0], b[0]]
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0]);
    }

    #[test]
    fn u32_and_f32_payloads_coexist() {
        let results = run_on_group(2, |peer| {
            if peer.rank() == 0 {
                peer.send_u32(1, vec![7, 8]);
                peer.send_f32(1, vec![0.5]);
                0.0
            } else {
                let idx = peer.recv_u32(0);
                let val = peer.recv_f32(0);
                idx[0] as f32 + idx[1] as f32 + val[0]
            }
        });
        assert_eq!(results[1], 15.5);
    }

    #[test]
    fn barrier_synchronises() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        run_on_group(4, |peer| {
            counter.fetch_add(1, Ordering::SeqCst);
            peer.barrier();
            // After the barrier every increment must be visible.
            assert_eq!(counter.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "at least one peer")]
    fn empty_group_panics() {
        Group::connect(0);
    }
}
