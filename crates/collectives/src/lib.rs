//! In-process collective communication.
//!
//! This crate is the *correctness plane* of the reproduction: it implements
//! the communication algorithms the paper runs over NCCL — moving real bytes
//! between worker threads — so that every aggregation scheme can be tested
//! for bit-exactness against a sequential reference. (Its *performance*
//! twin, `cloudtrain-simnet`, charges simulated α–β time for the same
//! schedules.)
//!
//! Implemented collectives:
//!
//! * [`ring`] — ring ReduceScatter / AllGather / AllReduce over an arbitrary
//!   member subset (sub-communicators are just rank lists, which is how the
//!   hierarchical algorithms address "GPUs of one node" and "the j-th GPU of
//!   every node").
//! * [`tree`] — double-binary-tree AllReduce ("TreeAR", the NCCL baseline of
//!   Fig. 7).
//! * [`torus`] — 2D-Torus AllReduce ("2DTAR", Mikami et al. 2018): intra-row
//!   ReduceScatter, inter-row AllReduce on the shard, intra-row AllGather.
//! * [`hierarchical`] — **HiTopKComm** (§3.2, Algorithm 2): the paper's
//!   hierarchical sparse aggregation, plus the flat `NaiveAG` sparse
//!   baseline.
//! * [`fusion`] — fused compress–reduce variants of HiTopKComm: the
//!   intra-node reduction rides one shard-sized ring buffer and the top-k
//!   selection consumes it directly, skipping the dense materialization;
//!   bitwise identical to the unfused pipeline.
//! * [`gtopk`] — gTop-k recursive-doubling sparse AllReduce (Shi et al.
//!   2019, cited in §6).
//! * [`quantized`] — AllReduce of QSGD/TernGrad/sign-quantized gradients.
//! * [`rhd`] — recursive halving-doubling AllReduce (the classic
//!   latency-optimal MPI algorithm).
//! * [`primitives`] — rooted Broadcast/Reduce (parameter seeding, metric
//!   collection).
//! * [`scratch`] — the [`CommScratch`] buffer arena backing the
//!   `*_scratch` collective variants: pooled send copies instead of
//!   per-hop allocations, so steady-state training iterations are
//!   allocation-free on the communication path.
//! * [`resilience`] — fault decisions ([`resilience::CommFaults`]) and the
//!   [`resilience::ResilientPeer`] wrapper applying timeout/retry/backoff
//!   accounting to dense collectives and graceful degradation (empty
//!   sparse blocks, safe under error feedback) to HiTopKComm / gTop-k.
//! * [`reorder`] — topology-probed rank reordering: a pairwise α–β cost
//!   model, a seeded deterministic ring-order optimizer, and reordered
//!   twins of the ring / torus / HiTopKComm collectives (bitwise identical
//!   under the identity order).
//! * [`deadline`] — deadline-bounded collectives: per-hop budgets derived
//!   from probed α/β; late dense chunks are discarded (partial
//!   aggregates), late sparse contributions degrade to empty blocks under
//!   error feedback (bitwise identical to the plain twins on clean runs).
//! * [`sparse_allreduce`] — the **O(k) sparse allreduce** (Li & Hoefler,
//!   PPoPP 2022): balanced index partitioning plus split-and-merge
//!   reduction replaces HiTopKComm's `O(m·k̃)` inter-node AllGather with an
//!   `O(k̃)` schedule, bitwise identical in value to the hitopk twins and
//!   mirrored across the same scratch / traced / reordered / resilient /
//!   deadline / quantized variant family.
//!
//! All collectives run on a [`group::Group`] of mesh-connected peers created
//! with [`group::Group::connect`]; each worker thread owns one
//! [`group::Peer`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod deadline;
pub mod fusion;
pub mod group;
pub mod gtopk;
pub mod hierarchical;
pub mod primitives;
pub mod quantized;
pub mod reorder;
pub mod resilience;
pub mod rhd;
pub mod ring;
pub mod scratch;
pub mod sparse_allreduce;
pub mod torus;
pub mod tree;

pub use deadline::{DeadlineFaults, DeadlinePolicy, DeadlineReport};
pub use group::{Group, Peer};
pub use reorder::{optimize_ring_order, PairCost};
pub use resilience::{CommFaults, ResiliencePolicy, ResilienceReport, ResilientPeer};
pub use scratch::CommScratch;
pub use sparse_allreduce::OkSparseReport;
