//! HiTopKComm — hierarchical top-k sparse aggregation (§3.2, Algorithm 2) —
//! and the flat sparse AllGather baseline ("NaiveAG").
//!
//! HiTopKComm exploits the two-level cloud fabric: dense traffic stays on
//! the fast intra-node links, and only `ρ·d/n` sparsified elements per GPU
//! cross the slow inter-node links, in `n` concurrent streams:
//!
//! 1. intra-node ring ReduceScatter — GPU `j` of node `i` ends with the
//!    dense node-local sum of shard `j` (Eq. 4),
//! 2. top-k selection on the shard with `k̃ = ρ·d/n` (Eq. 5),
//! 3. inter-node AllGather of `(values, indices)` among the `j`-th GPUs of
//!    all nodes, followed by index-wise accumulation (Eq. 6),
//! 4. intra-node AllGather reassembling the full vector.
//!
//! Note the *semantic* difference from flat TopK-SGD: intra-node gradients
//! are aggregated densely (no information loss) before sparsification —
//! the paper credits MSTopK-SGD's small accuracy edge over TopK-SGD to
//! exactly this (§5.5.1).

use cloudtrain_compress::{Compressor, SparseGrad};
use cloudtrain_obs::{self as obs, Registry};
use cloudtrain_tensor::ops;
use cloudtrain_tensor::partition::shard_for;

use crate::group::Peer;
use crate::ring::{
    all_gather_f32, all_gather_f32_scratch, all_gather_u32, all_gather_u32_scratch,
    ring_all_gather_scratch, ring_reduce_scatter_scratch,
};
use crate::scratch::CommScratch;
use crate::torus::{grid_pos, inter_node_members, intra_node_members};

/// Per-invocation statistics of a hierarchical sparse AllReduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HiTopKReport {
    /// Elements selected per shard (`k̃ = ρ·d/n`, Eq. 5).
    pub k_per_shard: usize,
    /// Distinct nonzero coordinates in this GPU's aggregated shard
    /// (at most `m · k̃`, fewer when selections overlap).
    pub shard_nonzeros: usize,
    /// Bytes this GPU sent over the inter-node links (values + indices).
    pub inter_bytes_sent: usize,
}

/// Number of elements each shard selects for density `rho` over a
/// `d`-element gradient split across `n` GPUs.
pub fn shard_k(d: usize, n: usize, rho: f64) -> usize {
    let shard = d.div_ceil(n);
    (((d as f64 * rho) / n as f64).round() as usize).clamp(1, shard.max(1))
}

/// Wire bytes a member pays to broadcast `selection` to the other
/// `group_len - 1` members of a sparse AllGather group.
///
/// Every hitopk-family variant (staged, fused, reordered, resilient,
/// deadline) and the flat NaiveAG account their `inter_bytes_sent` through
/// this one expression, so identical traffic always reports identical
/// bytes — the conformance differential test pins it.
pub fn group_wire_bytes(selection: &SparseGrad, group_len: usize) -> usize {
    selection.wire_bytes() * group_len.saturating_sub(1)
}

/// Wire bytes of one framed `(values, indices)` pair message carrying
/// `entries` coordinates: an FP32 value plus a 32-bit index each.
///
/// The point-to-point counterpart of [`group_wire_bytes`]:
/// `group_wire_bytes(sel, g) == pair_wire_bytes(sel.values.len()) * (g-1)`
/// whenever values and indices pair up. The O(k) sparse allreduce accounts
/// its split and merged-broadcast traffic through this, so its bytes stay
/// directly comparable with the hitopk family's.
pub fn pair_wire_bytes(entries: usize) -> usize {
    8 * entries
}

/// HiTopKComm (Algorithm 2): hierarchical sparse AllReduce over an
/// `m × n` grid. On return every rank's `x` holds
/// `Σ_nodes TopK(node-local dense sum)` per shard — identical on all ranks.
///
/// The `compressor` performs step 2's selection; the paper uses
/// [`cloudtrain_compress::MsTopK`], and tests use the exact operator for a
/// deterministic reference.
///
/// # Examples
/// ```
/// use cloudtrain_collectives::group::run_on_group;
/// use cloudtrain_collectives::hierarchical::hitopk_all_reduce;
/// use cloudtrain_compress::MsTopK;
///
/// // 2 nodes x 2 GPUs aggregate sparsified gradients at density 0.25.
/// let results = run_on_group(4, |peer| {
///     let mut grad = vec![peer.rank() as f32 + 1.0; 64];
///     grad[peer.rank()] = 100.0; // a large coordinate per worker
///     let mut topk = MsTopK::new(30, peer.rank() as u64);
///     hitopk_all_reduce(peer, &mut grad, 2, 2, 0.25, &mut topk);
///     grad
/// });
/// // Every rank holds the identical aggregated vector.
/// assert!(results.iter().all(|r| r == &results[0]));
/// ```
///
/// # Panics
/// Panics if the group size is not `m * n`.
pub fn hitopk_all_reduce<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
) -> HiTopKReport {
    hitopk_all_reduce_scratch(peer, x, m, n, rho, compressor, &mut CommScratch::new())
}

/// [`hitopk_all_reduce`] drawing every communication buffer from `scratch`.
///
/// All four communication steps run through the pooled collectives, and the
/// gathered value/index blocks are recycled after the scatter-accumulate,
/// so each steady-state invocation is allocation-free on the wire path
/// (the compressor's selection is the only remaining allocation).
pub fn hitopk_all_reduce_scratch<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    scratch: &mut CommScratch,
) -> HiTopKReport {
    hitopk_impl(peer, x, m, n, rho, compressor, scratch, None)
}

/// [`hitopk_all_reduce_scratch`] with per-stage spans and counters recorded
/// into `reg`.
///
/// The correctness plane has no clock, so spans are charged in *logical
/// work units* (elements touched per stage: `d` for the dense intra-node
/// steps, the shard length for selection, `2·m·k̃` for the inter-node
/// gather-accumulate). The resulting breakdown has the same shape as the
/// performance plane's Fig. 8 decomposition and is byte-stable across runs.
/// Instrumentation does not perturb the aggregation: the traced variant is
/// bitwise-identical to the plain one.
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_traced<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    scratch: &mut CommScratch,
    reg: &mut Registry,
) -> HiTopKReport {
    hitopk_impl(peer, x, m, n, rho, compressor, scratch, Some(reg))
}

#[allow(clippy::too_many_arguments)]
fn hitopk_impl<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    scratch: &mut CommScratch,
    mut reg: Option<&mut Registry>,
) -> HiTopKReport {
    assert_eq!(peer.size(), m * n, "hitopk_all_reduce: group is not m*n");
    let d = x.len();
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    // Step 1: intra-node dense ReduceScatter (fast links).
    let span = obs::span_begin(&mut reg, "hitopk/intra reduce-scatter");
    let shard = ring_reduce_scatter_scratch(peer, x, &intra, scratch);
    obs::span_end(&mut reg, span, d as f64);
    debug_assert_eq!(shard, shard_for(d, n, pos.gpu));

    // Step 2: top-k on the node-local dense sum of my shard.
    let k = shard_k(d, n, rho).min(shard.len());
    let span = obs::span_begin(&mut reg, "hitopk/top-k compression");
    let selection: SparseGrad = compressor.compress(shard.slice(x), k);
    obs::span_end(&mut reg, span, shard.len() as f64);

    // Step 3: inter-node AllGather of values and indices (stream `gpu`),
    // then index-wise accumulation into a zeroed shard. The gathered
    // blocks go back to the pool once consumed, balancing the takes the
    // gathers made.
    let span = obs::span_begin(&mut reg, "hitopk/inter all-gather");
    let value_blocks = all_gather_f32_scratch(peer, &selection.values, &inter, scratch);
    let index_blocks = all_gather_u32_scratch(peer, &selection.indices, &inter, scratch);
    let inter_bytes_sent = group_wire_bytes(&selection, inter.len());

    let shard_buf = shard.slice_mut(x);
    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in value_blocks.into_iter().zip(index_blocks) {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();
    obs::span_end(&mut reg, span, (2 * m * k) as f64);

    // Step 4: intra-node AllGather reassembles the (sparse-aggregated)
    // full vector.
    let span = obs::span_begin(&mut reg, "hitopk/intra all-gather");
    ring_all_gather_scratch(peer, x, &intra, scratch);
    obs::span_end(&mut reg, span, d as f64);

    if let Some(reg) = reg.as_mut() {
        reg.counter_add("hitopk/invocations", 1);
        reg.counter_add("hitopk/inter_bytes_sent", inter_bytes_sent as u64);
        reg.counter_add("hitopk/shard_nonzeros", shard_nonzeros as u64);
        reg.gauge_set("hitopk/k_per_shard", k as f64);
    }

    HiTopKReport {
        k_per_shard: k,
        shard_nonzeros,
        inter_bytes_sent,
    }
}

/// HiTopKComm with error feedback: like [`hitopk_all_reduce`], but the
/// shard owner compensates its shard with a local residual before the
/// top-k selection and absorbs the unselected remainder afterwards.
///
/// The residual lives at the *sparsification point*: after the intra-node
/// dense ReduceScatter, GPU `j` of node `i` owns the node-local dense sum
/// of shard `j`, so its residual has dimension `d/n` and tracks exactly
/// the information HiTopKComm discards. (Intra-node aggregation is dense
/// and loses nothing.)
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
pub fn hitopk_all_reduce_ef<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut cloudtrain_compress::ErrorFeedback,
) -> HiTopKReport {
    hitopk_all_reduce_ef_scratch(peer, x, m, n, rho, compressor, ef, &mut CommScratch::new())
}

/// [`hitopk_all_reduce_ef`] drawing every communication buffer from
/// `scratch` (see [`hitopk_all_reduce_scratch`]).
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_ef_scratch<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut cloudtrain_compress::ErrorFeedback,
    scratch: &mut CommScratch,
) -> HiTopKReport {
    hitopk_ef_impl(peer, x, m, n, rho, compressor, ef, scratch, None)
}

/// [`hitopk_all_reduce_ef_scratch`] with per-stage spans and counters
/// recorded into `reg` (see [`hitopk_all_reduce_traced`] for the span
/// names and the logical work-unit clock).
#[allow(clippy::too_many_arguments)]
pub fn hitopk_all_reduce_ef_traced<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut cloudtrain_compress::ErrorFeedback,
    scratch: &mut CommScratch,
    reg: &mut Registry,
) -> HiTopKReport {
    hitopk_ef_impl(peer, x, m, n, rho, compressor, ef, scratch, Some(reg))
}

#[allow(clippy::too_many_arguments)]
fn hitopk_ef_impl<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut cloudtrain_compress::ErrorFeedback,
    scratch: &mut CommScratch,
    mut reg: Option<&mut Registry>,
) -> HiTopKReport {
    assert_eq!(peer.size(), m * n, "hitopk_all_reduce_ef: group is not m*n");
    let d = x.len();
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    let span = obs::span_begin(&mut reg, "hitopk/intra reduce-scatter");
    let shard = ring_reduce_scatter_scratch(peer, x, &intra, scratch);
    obs::span_end(&mut reg, span, d as f64);
    assert_eq!(
        ef.dim(),
        shard.len(),
        "hitopk_all_reduce_ef: residual must match the shard"
    );

    // Error compensation, selection, residual update — all on the shard.
    let k = shard_k(d, n, rho).min(shard.len());
    let span = obs::span_begin(&mut reg, "hitopk/top-k compression");
    let shard_buf = shard.slice_mut(x);
    ef.compensate(shard_buf);
    let selection: SparseGrad = compressor.compress(shard_buf, k);
    ef.absorb(shard_buf, &selection);
    obs::span_end(&mut reg, span, shard.len() as f64);

    let span = obs::span_begin(&mut reg, "hitopk/inter all-gather");
    let value_blocks = all_gather_f32_scratch(peer, &selection.values, &inter, scratch);
    let index_blocks = all_gather_u32_scratch(peer, &selection.indices, &inter, scratch);
    let inter_bytes_sent = group_wire_bytes(&selection, inter.len());

    let shard_buf = shard.slice_mut(x);
    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in value_blocks.into_iter().zip(index_blocks) {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();
    obs::span_end(&mut reg, span, (2 * m * k) as f64);

    let span = obs::span_begin(&mut reg, "hitopk/intra all-gather");
    ring_all_gather_scratch(peer, x, &intra, scratch);
    obs::span_end(&mut reg, span, d as f64);

    if let Some(reg) = reg.as_mut() {
        reg.counter_add("hitopk/invocations", 1);
        reg.counter_add("hitopk/inter_bytes_sent", inter_bytes_sent as u64);
        reg.counter_add("hitopk/shard_nonzeros", shard_nonzeros as u64);
        reg.gauge_set("hitopk/k_per_shard", k as f64);
    }

    HiTopKReport {
        k_per_shard: k,
        shard_nonzeros,
        inter_bytes_sent,
    }
}

/// NaiveAG (TopK-SGD's aggregation; Renggli et al. 2019): every rank
/// sparsifies its *own full* gradient to `k` elements and a flat AllGather
/// over all `P` ranks accumulates the selections. On return every rank's
/// `x` holds `Σ_p TopK(g_p, k)`.
///
/// Returns the bytes this rank sent.
pub fn sparse_all_reduce_naive<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    k: usize,
    compressor: &mut C,
) -> usize {
    let members: Vec<usize> = (0..peer.size()).collect();
    let selection = compressor.compress(x, k);
    let value_blocks = all_gather_f32(peer, &selection.values, &members);
    let index_blocks = all_gather_u32(peer, &selection.indices, &members);
    let sent = group_wire_bytes(&selection, members.len());

    ops::fill(x, 0.0);
    for (vals, idxs) in value_blocks.iter().zip(&index_blocks) {
        ops::scatter_add(x, idxs, vals);
    }
    sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use cloudtrain_compress::exact::{topk_sort, SortTopK};
    use cloudtrain_compress::MsTopK;
    use cloudtrain_tensor::init;
    use cloudtrain_tensor::partition::shards;

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(4000 + rank as u64);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    /// Sequential reference for Algorithm 2 with a deterministic (exact)
    /// selector.
    fn hitopk_reference(m: usize, n: usize, d: usize, rho: f64) -> Vec<f32> {
        let k = shard_k(d, n, rho);
        // Dense per-node sums.
        let node_sums: Vec<Vec<f32>> = (0..m)
            .map(|i| {
                let mut acc = vec![0.0; d];
                for j in 0..n {
                    ops::add_assign(&mut acc, &vec_for(i * n + j, d));
                }
                acc
            })
            .collect();
        // Per shard: sum of exact-top-k selections of each node's shard.
        let mut out = vec![0.0; d];
        for (j, sh) in shards(d, n).iter().enumerate() {
            let _ = j;
            let buf = sh.slice_mut(&mut out);
            for sums in &node_sums {
                let sel = topk_sort(sh.slice(sums), k.min(sh.len()));
                ops::scatter_add(buf, &sel.indices, &sel.values);
            }
        }
        out
    }

    #[test]
    fn matches_sequential_reference_with_exact_selector() {
        for (m, n, d, rho) in [
            (2usize, 4usize, 64usize, 0.1f64),
            (4, 2, 100, 0.05),
            (2, 2, 31, 0.2),
        ] {
            let expect = hitopk_reference(m, n, d, rho);
            let results = run_on_group(m * n, |peer| {
                let mut x = vec_for(peer.rank(), d);
                let mut c = SortTopK;
                hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c);
                x
            });
            for (r, x) in results.iter().enumerate() {
                assert!(
                    ops::approx_eq(x, &expect, 1e-4),
                    "m={m} n={n} rank {r} diverged from reference"
                );
            }
        }
    }

    #[test]
    fn density_one_equals_dense_all_reduce() {
        let (m, n, d) = (2, 4, 48);
        let mut expect = vec![0.0; d];
        for r in 0..m * n {
            ops::add_assign(&mut expect, &vec_for(r, d));
        }
        let results = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            hitopk_all_reduce(peer, &mut x, m, n, 1.0, &mut c);
            x
        });
        for x in &results {
            assert!(ops::approx_eq(x, &expect, 1e-4));
        }
    }

    #[test]
    fn all_ranks_agree_bitwise_with_mstopk() {
        let (m, n, d) = (4, 2, 1000);
        let results = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            // Seed per *shard owner group* must match: workers with the same
            // gpu index run the same selection on their own node's data, so
            // any per-rank seed works for agreement — selections are shared
            // via AllGather, never recomputed.
            let mut c = MsTopK::new(30, peer.rank() as u64);
            hitopk_all_reduce(peer, &mut x, m, n, 0.01, &mut c);
            x
        });
        for r in 1..m * n {
            assert_eq!(results[0], results[r], "rank {r} differs");
        }
    }

    #[test]
    fn report_counts_are_consistent() {
        let (m, n, d, rho) = (2, 4, 800, 0.05);
        let reports = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c)
        });
        let k = shard_k(d, n, rho);
        for rep in &reports {
            assert_eq!(rep.k_per_shard, k);
            assert!(rep.shard_nonzeros <= m * k);
            assert!(rep.shard_nonzeros >= k);
            // 2 AllGathers × (m-1) forwards × k elements × 4 bytes.
            assert_eq!(rep.inter_bytes_sent, 8 * k * (m - 1));
        }
    }

    #[test]
    fn naive_ag_matches_sum_of_selections() {
        let (p, d, k) = (4usize, 60usize, 6usize);
        let mut expect = vec![0.0; d];
        for r in 0..p {
            let sel = topk_sort(&vec_for(r, d), k);
            sel.add_into(&mut expect);
        }
        let results = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            let sent = sparse_all_reduce_naive(peer, &mut x, k, &mut c);
            (x, sent)
        });
        for (x, sent) in &results {
            assert!(ops::approx_eq(x, &expect, 1e-4));
            assert_eq!(*sent, 8 * k * (p - 1));
        }
    }

    #[test]
    fn ef_variant_with_full_density_matches_plain() {
        // With rho = 1 nothing is discarded, so residuals stay zero and the
        // EF variant must agree with the plain one.
        let (m, n, d) = (2, 2, 32);
        let results = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            let mut ef =
                cloudtrain_compress::ErrorFeedback::new(shards(d, n)[peer.rank() % n].len());
            let rep = hitopk_all_reduce_ef(peer, &mut x, m, n, 1.0, &mut c, &mut ef);
            (x, ef.residual_norm(), rep)
        });
        let plain = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            hitopk_all_reduce(peer, &mut x, m, n, 1.0, &mut c);
            x
        });
        for ((x, rnorm, _), px) in results.iter().zip(&plain) {
            assert_eq!(x, px);
            assert_eq!(*rnorm, 0.0);
        }
    }

    #[test]
    fn ef_variant_accumulates_discarded_mass() {
        // At low density the residual must pick up the unsent gradient and
        // re-inject it next round (the shard owner's residual norm is
        // nonzero after round 1 and influences round 2's selection count).
        let (m, n, d) = (2, 2, 64);
        let results = run_on_group(m * n, |peer| {
            let mut c = SortTopK;
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = cloudtrain_compress::ErrorFeedback::new(shard_len);
            let mut x = vec_for(peer.rank(), d);
            hitopk_all_reduce_ef(peer, &mut x, m, n, 0.1, &mut c, &mut ef);
            let after_round1 = ef.residual_norm();
            let mut x2 = vec_for(100 + peer.rank(), d);
            hitopk_all_reduce_ef(peer, &mut x2, m, n, 0.1, &mut c, &mut ef);
            after_round1
        });
        for r in &results {
            assert!(*r > 0.0, "residual should be nonzero at rho=0.1");
        }
    }

    #[test]
    fn scratch_variant_is_bitwise_identical_to_plain() {
        let (m, n, d, rho) = (2usize, 4usize, 300usize, 0.05f64);
        let plain = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(25, peer.rank() as u64);
            let rep = hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c);
            (x, rep)
        });
        let scratched = run_on_group(m * n, |peer| {
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(25, peer.rank() as u64);
            let rep = hitopk_all_reduce_scratch(peer, &mut x, m, n, rho, &mut c, &mut scratch);
            (x, rep)
        });
        assert_eq!(plain, scratched);
    }

    #[test]
    fn ef_scratch_variant_is_bitwise_identical_to_plain() {
        let (m, n, d, rho) = (2usize, 2usize, 64usize, 0.1f64);
        let run = |use_scratch: bool| {
            run_on_group(m * n, move |peer| {
                let shard_len = shards(d, n)[peer.rank() % n].len();
                let mut ef = cloudtrain_compress::ErrorFeedback::new(shard_len);
                let mut c = SortTopK;
                let mut scratch = CommScratch::new();
                let mut out = Vec::new();
                for round in 0..3 {
                    let mut x = vec_for(100 * round + peer.rank(), d);
                    if use_scratch {
                        hitopk_all_reduce_ef_scratch(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            &mut scratch,
                        );
                    } else {
                        hitopk_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef);
                    }
                    out.push(x);
                }
                (out, ef.residual_norm())
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn traced_variant_is_bitwise_identical_and_records_stages() {
        let (m, n, d, rho) = (2usize, 4usize, 300usize, 0.05f64);
        let plain = run_on_group(m * n, |peer| {
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(25, peer.rank() as u64);
            let rep = hitopk_all_reduce_scratch(peer, &mut x, m, n, rho, &mut c, &mut scratch);
            (x, rep)
        });
        let traced = run_on_group(m * n, |peer| {
            let mut scratch = CommScratch::new();
            let mut reg = Registry::new();
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(25, peer.rank() as u64);
            let rep =
                hitopk_all_reduce_traced(peer, &mut x, m, n, rho, &mut c, &mut scratch, &mut reg);
            scratch.publish_obs(&mut reg);
            ((x, rep), reg)
        });
        let k = shard_k(d, n, rho);
        for ((p, (t, reg)), peer_rank) in plain.iter().zip(&traced).zip(0..) {
            assert_eq!(p, t, "rank {peer_rank}: tracing perturbed the result");
            // Four stages, charged in logical work units, zero-gap.
            assert_eq!(reg.spans().len(), 4);
            assert_eq!(reg.span_total("hitopk/intra reduce-scatter"), d as f64);
            assert_eq!(reg.span_total("hitopk/top-k compression") as usize, d / n);
            assert_eq!(
                reg.span_total("hitopk/inter all-gather"),
                (2 * m * k) as f64
            );
            assert_eq!(reg.span_total("hitopk/intra all-gather"), d as f64);
            assert_eq!(reg.counter("hitopk/invocations"), 1);
            assert_eq!(
                reg.counter("hitopk/inter_bytes_sent") as usize,
                t.1.inter_bytes_sent
            );
            assert_eq!(reg.gauge("hitopk/k_per_shard"), Some(k as f64));
            assert!(reg.counter("scratch/f32_takes") > 0);
        }
    }

    #[test]
    fn ef_traced_variant_is_bitwise_identical_to_scratch() {
        let (m, n, d, rho) = (2usize, 2usize, 64usize, 0.1f64);
        let run = |trace: bool| {
            run_on_group(m * n, move |peer| {
                let shard_len = shards(d, n)[peer.rank() % n].len();
                let mut ef = cloudtrain_compress::ErrorFeedback::new(shard_len);
                let mut c = SortTopK;
                let mut scratch = CommScratch::new();
                let mut reg = Registry::new();
                let mut out = Vec::new();
                for round in 0..3 {
                    let mut x = vec_for(100 * round + peer.rank(), d);
                    if trace {
                        hitopk_all_reduce_ef_traced(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            &mut scratch,
                            &mut reg,
                        );
                    } else {
                        hitopk_all_reduce_ef_scratch(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            &mut scratch,
                        );
                    }
                    out.push(x);
                }
                if trace {
                    assert_eq!(reg.counter("hitopk/invocations"), 3);
                    assert_eq!(reg.spans().len(), 12);
                }
                (out, ef.residual_norm())
            })
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn hitopk_reaches_zero_miss_steady_state() {
        let (m, n, d, rho) = (2usize, 4usize, 240usize, 0.05f64);
        let miss_growth = run_on_group(m * n, |peer| {
            let mut scratch = CommScratch::new();
            let mut c = SortTopK;
            let mut x = vec_for(peer.rank(), d);
            hitopk_all_reduce_scratch(peer, &mut x, m, n, rho, &mut c, &mut scratch);
            let warm = scratch.misses();
            for round in 1..4 {
                let mut y = vec_for(50 * round + peer.rank(), d);
                hitopk_all_reduce_scratch(peer, &mut y, m, n, rho, &mut c, &mut scratch);
            }
            (warm, scratch.misses())
        });
        for (r, (warm, total)) in miss_growth.iter().enumerate() {
            assert!(*warm > 0, "rank {r}: warmup should allocate");
            assert_eq!(
                total, warm,
                "rank {r}: steady-state hitopk allocated communication buffers"
            );
        }
    }

    #[test]
    fn shard_k_formula() {
        // d=1000, n=8, rho=0.01 -> 1000*0.01/8 = 1.25 -> 1
        assert_eq!(shard_k(1000, 8, 0.01), 1);
        // d=25_000_000, n=8, rho=0.01 -> 31250
        assert_eq!(shard_k(25_000_000, 8, 0.01), 31_250);
        // clamps to at least 1 and at most the shard size
        assert_eq!(shard_k(100, 8, 1e-9), 1);
        assert_eq!(shard_k(16, 8, 1.0), 2);
    }
}
