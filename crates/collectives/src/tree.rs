//! Tree AllReduce ("TreeAR", the NCCL baseline of Fig. 7).
//!
//! NCCL's large-scale AllReduce uses the double-tree construction of Sanders
//! et al. (2009): two trees run concurrently, each carrying half of the
//! data, arranged so that (almost) every rank is interior in one tree and a
//! leaf in the other — doubling effective bandwidth over a single tree.
//!
//! We reproduce that structure with two binomial reduce+broadcast trees:
//! tree A over the natural member order (root = first member) carries the
//! first half of the vector, tree B over the *reversed* order (root = last
//! member) carries the second half, so rank roles swap between the halves.

use cloudtrain_tensor::ops;

use crate::group::Peer;

/// Binomial-tree reduce of `x` to the member at position 0 of `order`,
/// followed by a binomial broadcast back to all members. `pos` is the
/// calling peer's position within `order`.
fn binomial_reduce_broadcast(peer: &Peer, x: &mut [f32], order: &[usize], pos: usize) {
    let p = order.len();
    if p <= 1 || x.is_empty() {
        return;
    }

    // Reduce phase: children (higher positions) fold into parents.
    let mut mask = 1;
    while mask < p {
        if pos & mask == 0 {
            let src = pos | mask;
            if src < p {
                let recv = peer.recv_f32(order[src]);
                ops::add_assign(x, &recv);
            }
        } else {
            peer.send_f32(order[pos ^ mask], x.to_vec());
            break;
        }
        mask <<= 1;
    }

    // Broadcast phase: mirror of the reduce.
    let mut mask = 1;
    while mask < p {
        if pos & mask != 0 {
            let got = peer.recv_f32(order[pos ^ mask]);
            x.copy_from_slice(&got);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        let dst = pos | mask;
        if dst < p && dst != pos {
            peer.send_f32(order[dst], x.to_vec());
        }
        mask >>= 1;
    }
}

/// Double-tree AllReduce over `members`: on return every member's `x` holds
/// the element-wise sum over all members.
///
/// The first half of `x` is reduced/broadcast over the natural member order
/// and the second half over the reversed order, mirroring NCCL's double
/// tree. Cost per half: `2 log2(P)` steps of `d/2` elements.
pub fn tree_all_reduce(peer: &Peer, x: &mut [f32], members: &[usize]) {
    let p = members.len();
    let pos = members
        .iter()
        .position(|&m| m == peer.rank())
        // lint:allow(panic_free, reason = "a rank outside its own member list is a schedule construction bug; every collective would deadlock anyway")
        .unwrap_or_else(|| panic!("rank {} not in members", peer.rank()));
    if p == 1 {
        return;
    }
    let mid = x.len() / 2;
    let (lo, hi) = x.split_at_mut(mid);

    // Tree A: natural order, first half.
    binomial_reduce_broadcast(peer, lo, members, pos);

    // Tree B: reversed order, second half.
    let reversed: Vec<usize> = members.iter().rev().copied().collect();
    binomial_reduce_broadcast(peer, hi, &reversed, p - 1 - pos);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use cloudtrain_tensor::init;

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(2000 + rank as u64);
        init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec()
    }

    fn expected_sum(p: usize, d: usize) -> Vec<f32> {
        let mut acc = vec![0.0; d];
        for r in 0..p {
            ops::add_assign(&mut acc, &vec_for(r, d));
        }
        acc
    }

    #[test]
    fn tree_all_reduce_matches_sum_for_many_sizes() {
        for (p, d) in [
            (2usize, 8usize),
            (3, 11),
            (4, 64),
            (5, 7),
            (8, 100),
            (16, 33),
        ] {
            let members: Vec<usize> = (0..p).collect();
            let expect = expected_sum(p, d);
            let results = run_on_group(p, |peer| {
                let mut x = vec_for(peer.rank(), d);
                tree_all_reduce(peer, &mut x, &members);
                x
            });
            for (r, x) in results.iter().enumerate() {
                assert!(
                    ops::approx_eq(x, &expect, 1e-4),
                    "p={p} d={d} rank {r} diverged"
                );
            }
        }
    }

    #[test]
    fn all_ranks_agree_bitwise() {
        let p = 8;
        let d = 501; // odd split: halves of 250 and 251
        let members: Vec<usize> = (0..p).collect();
        let results = run_on_group(p, |peer| {
            let mut x = vec_for(peer.rank(), d);
            tree_all_reduce(peer, &mut x, &members);
            x
        });
        for r in 1..p {
            assert_eq!(results[0], results[r]);
        }
    }

    #[test]
    fn works_on_member_subset() {
        let p = 5;
        let members = vec![0usize, 2, 4];
        let results = run_on_group(p, |peer| {
            let mut x = vec![peer.rank() as f32; 6];
            if members.contains(&peer.rank()) {
                tree_all_reduce(peer, &mut x, &members);
            }
            x
        });
        for &m in &members {
            assert_eq!(results[m], vec![6.0; 6]);
        }
        assert_eq!(results[1], vec![1.0; 6]);
    }

    #[test]
    fn tiny_vectors_and_single_member() {
        // d=1: second half is empty; d=0: both empty; p=1: identity.
        for d in [0usize, 1, 2] {
            let members: Vec<usize> = (0..2).collect();
            let results = run_on_group(2, |peer| {
                let mut x = vec![1.0f32; d];
                tree_all_reduce(peer, &mut x, &members);
                x
            });
            assert_eq!(results[0], vec![2.0f32; d]);
        }
        let r = run_on_group(1, |peer| {
            let mut x = vec![3.0f32; 4];
            tree_all_reduce(peer, &mut x, &[0]);
            x
        });
        assert_eq!(r[0], vec![3.0; 4]);
    }
}
