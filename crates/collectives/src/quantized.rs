//! Quantized AllReduce: aggregate QSGD/TernGrad/sign-compressed gradients.
//!
//! Quantized codes are not summable on the wire (levels are relative to a
//! per-tensor scale), so the standard scheme is an AllGather of
//! `(scale, codes)` followed by local decode-and-sum — the quantization
//! sibling of the sparse NaiveAG path.

use cloudtrain_compress::quantize::{QuantizedGrad, Quantizer};
use cloudtrain_tensor::ops;

use crate::group::Peer;
use crate::ring::{all_gather_f32, all_gather_u32};

/// Packs i8 codes into u32 words (4 codes per word, little-endian).
pub fn pack_codes(codes: &[i8]) -> Vec<u32> {
    codes
        .chunks(4)
        .map(|c| {
            let mut w = 0u32;
            for (i, &b) in c.iter().enumerate() {
                w |= (b as u8 as u32) << (8 * i);
            }
            w
        })
        .collect()
}

/// Unpacks u32 words back to `len` i8 codes.
///
/// # Panics
/// Panics if `words` is too short for `len` codes.
pub fn unpack_codes(words: &[u32], len: usize) -> Vec<i8> {
    assert!(words.len() * 4 >= len, "unpack_codes: too few words");
    let mut out = Vec::with_capacity(len);
    for i in 0..len {
        let w = words[i / 4];
        out.push(((w >> (8 * (i % 4))) & 0xFF) as u8 as i8);
    }
    out
}

/// Quantized AllReduce: every rank quantizes its gradient, the `(scale,
/// codes)` pairs are AllGathered, and each rank decodes and sums all of
/// them. On return `x` holds the sum of the quantized gradients (identical
/// on every rank). Returns the bytes this rank sent.
pub fn quantized_all_reduce<Q: Quantizer + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    quantizer: &mut Q,
) -> usize {
    let members: Vec<usize> = (0..peer.size()).collect();
    let q = quantizer.quantize(x);
    let wire = q.wire_bytes();
    let packed = pack_codes(&q.codes);

    let scales = all_gather_f32(peer, &[q.scale], &members);
    let code_blocks = all_gather_u32(peer, &packed, &members);
    let sent = wire * (members.len() - 1);

    ops::fill(x, 0.0);
    for (scale_block, codes_block) in scales.iter().zip(&code_blocks) {
        let decoded = QuantizedGrad {
            // lint:allow(panic_free, reason = "each gathered block is the one-element scale slice sent two lines up; all_gather preserves block length")
            scale: scale_block[0],
            codes: unpack_codes(codes_block, x.len()),
            levels: q.levels,
        };
        decoded.add_into(x);
    }
    sent
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use cloudtrain_compress::quantize::{Qsgd, ScaledSign};
    use cloudtrain_tensor::init;

    #[test]
    fn pack_unpack_roundtrip() {
        let codes: Vec<i8> = vec![-128, -1, 0, 1, 127, 5, -7];
        let packed = pack_codes(&codes);
        assert_eq!(packed.len(), 2);
        assert_eq!(unpack_codes(&packed, codes.len()), codes);
    }

    #[test]
    fn all_ranks_get_the_same_quantized_sum() {
        let (p, d) = (4usize, 300usize);
        let results = run_on_group(p, |peer| {
            let mut rng = init::rng_from_seed(8000 + peer.rank() as u64);
            let mut x = init::gradient_like_tensor(d, &mut rng).into_vec();
            let mut q = Qsgd::new(127, peer.rank() as u64);
            let sent = quantized_all_reduce(peer, &mut x, &mut q);
            (x, sent)
        });
        for (x, _) in &results[1..] {
            assert_eq!(x, &results[0].0);
        }
        // Wire: (4 + d codes at 8 bits) x (p-1).
        assert_eq!(results[0].1, (4 + d) * (p - 1));
    }

    #[test]
    fn quantized_sum_approximates_dense_sum() {
        let (p, d) = (4usize, 500usize);
        let mut dense = vec![0.0f32; d];
        for r in 0..p {
            let mut rng = init::rng_from_seed(8100 + r as u64);
            ops::add_assign(
                &mut dense,
                init::gradient_like_tensor(d, &mut rng).as_slice(),
            );
        }
        let results = run_on_group(p, |peer| {
            let mut rng = init::rng_from_seed(8100 + peer.rank() as u64);
            let mut x = init::gradient_like_tensor(d, &mut rng).into_vec();
            let mut q = Qsgd::new(127, 5);
            quantized_all_reduce(peer, &mut x, &mut q);
            x
        });
        // 127-level QSGD: relative error per worker ~ ||x||/127.
        let err = ops::linf_distance(&results[0], &dense);
        let scale = ops::max_abs(&dense);
        assert!(err < 0.25 * scale, "err {err} vs scale {scale}");
    }

    #[test]
    fn sign_all_reduce_majority_direction_survives() {
        // All workers agree on the sign pattern; the aggregated sign sum
        // must preserve it.
        let d = 64;
        let pattern: Vec<f32> = (0..d)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        let results = run_on_group(4, |peer| {
            let mut x: Vec<f32> = pattern
                .iter()
                .map(|v| v * (1.0 + peer.rank() as f32))
                .collect();
            let mut q = ScaledSign;
            quantized_all_reduce(peer, &mut x, &mut q);
            x
        });
        for (i, v) in results[0].iter().enumerate() {
            assert_eq!(v.signum(), pattern[i].signum());
        }
    }
}
