//! 2D-Torus AllReduce ("2DTAR", Mikami et al. 2018; Cho et al. 2019) — the
//! paper's strongest dense baseline.
//!
//! The cluster is viewed as an `m × n` grid (m nodes, n GPUs per node;
//! rank = node * n + gpu). The AllReduce decomposes into three phases that
//! keep the bulk of the traffic on the fast intra-node links:
//!
//! 1. intra-node ring ReduceScatter (n GPUs, NVLink),
//! 2. inter-node ring AllReduce of each GPU's shard (m nodes, Ethernet) —
//!    n of these run concurrently, one per GPU index,
//! 3. intra-node ring AllGather (n GPUs, NVLink).
//!
//! Only phase 2 crosses the slow links, and it moves `d/n` elements per
//! GPU instead of `d`.

use cloudtrain_tensor::partition::shard_for;

use crate::group::Peer;
use crate::ring::{ring_all_gather, ring_all_reduce, ring_reduce_scatter};

/// Grid coordinates of a rank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GridPos {
    /// Node index `i` in `[0, m)`.
    pub node: usize,
    /// GPU index `j` within the node, in `[0, n)`.
    pub gpu: usize,
}

/// Splits `rank` into grid coordinates for an `m × n` grid.
///
/// # Panics
/// Panics if `rank >= m * n`.
pub fn grid_pos(rank: usize, m: usize, n: usize) -> GridPos {
    assert!(rank < m * n, "rank {rank} outside {m}x{n} grid");
    GridPos {
        node: rank / n,
        gpu: rank % n,
    }
}

/// Ranks of all GPUs in node `i` (the intra-node ring).
pub fn intra_node_members(i: usize, n: usize) -> Vec<usize> {
    (0..n).map(|j| i * n + j).collect()
}

/// Ranks of GPU `j` across all nodes (the inter-node ring / communication
/// stream `j`).
pub fn inter_node_members(j: usize, m: usize, n: usize) -> Vec<usize> {
    (0..m).map(|i| i * n + j).collect()
}

/// 2D-Torus AllReduce over the full `m × n` group: on return every rank's
/// `x` holds the element-wise sum over all `m * n` ranks.
///
/// # Panics
/// Panics if the group size is not `m * n`.
pub fn torus_all_reduce(peer: &Peer, x: &mut [f32], m: usize, n: usize) {
    assert_eq!(peer.size(), m * n, "torus_all_reduce: group is not m*n");
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    // Phase 1: intra-node ReduceScatter. This GPU ends owning shard `gpu`.
    let shard = ring_reduce_scatter(peer, x, &intra);
    debug_assert_eq!(shard, shard_for(x.len(), n, pos.gpu));

    // Phase 2: inter-node AllReduce of the owned shard (stream `gpu`).
    ring_all_reduce(peer, shard.slice_mut(x), &inter);

    // Phase 3: intra-node AllGather reassembles the full vector.
    ring_all_gather(peer, x, &intra);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use cloudtrain_tensor::{init, ops};

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(3000 + rank as u64);
        init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec()
    }

    fn expected_sum(p: usize, d: usize) -> Vec<f32> {
        let mut acc = vec![0.0; d];
        for r in 0..p {
            ops::add_assign(&mut acc, &vec_for(r, d));
        }
        acc
    }

    #[test]
    fn torus_matches_sequential_sum() {
        for (m, n, d) in [
            (2usize, 2usize, 16usize),
            (2, 4, 37),
            (4, 2, 100),
            (3, 3, 50),
        ] {
            let p = m * n;
            let expect = expected_sum(p, d);
            let results = run_on_group(p, |peer| {
                let mut x = vec_for(peer.rank(), d);
                torus_all_reduce(peer, &mut x, m, n);
                x
            });
            for (r, x) in results.iter().enumerate() {
                assert!(
                    ops::approx_eq(x, &expect, 1e-4),
                    "m={m} n={n} d={d} rank {r} diverged"
                );
            }
        }
    }

    #[test]
    fn all_ranks_agree_bitwise() {
        let (m, n, d) = (4, 4, 999);
        let results = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            torus_all_reduce(peer, &mut x, m, n);
            x
        });
        for r in 1..m * n {
            assert_eq!(results[0], results[r]);
        }
    }

    #[test]
    fn grid_helpers() {
        assert_eq!(grid_pos(11, 4, 8), GridPos { node: 1, gpu: 3 });
        assert_eq!(intra_node_members(2, 4), vec![8, 9, 10, 11]);
        assert_eq!(inter_node_members(3, 4, 8), vec![3, 11, 19, 27]);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn bad_rank_panics() {
        grid_pos(8, 2, 4);
    }

    #[test]
    fn degenerate_grids() {
        // 1 node: torus degenerates to intra RS + intra AG (inter ring is 1).
        let results = run_on_group(4, |peer| {
            let mut x = vec![1.0f32; 8];
            torus_all_reduce(peer, &mut x, 1, 4);
            x
        });
        assert_eq!(results[0], vec![4.0; 8]);
        // 1 GPU per node: pure inter-node ring.
        let results = run_on_group(4, |peer| {
            let mut x = vec![1.0f32; 8];
            torus_all_reduce(peer, &mut x, 4, 1);
            x
        });
        assert_eq!(results[0], vec![4.0; 8]);
    }
}
