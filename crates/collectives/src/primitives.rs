//! Rooted primitives: Broadcast and Reduce.
//!
//! The AllReduce family covers training's steady state, but the system
//! also needs rooted operations — broadcasting the initial parameters from
//! rank 0 (how real launchers guarantee identical replicas without shared
//! seeds) and reducing metrics to a logger rank. Both use the binomial
//! tree over an arbitrary member subset.

use cloudtrain_tensor::ops;

use crate::group::Peer;

fn member_index(members: &[usize], rank: usize) -> usize {
    members
        .iter()
        .position(|&m| m == rank)
        // lint:allow(panic_free, reason = "a rank outside its own member list is a schedule construction bug; every collective would deadlock anyway")
        .unwrap_or_else(|| panic!("rank {rank} is not in members {members:?}"))
}

/// Binomial-tree broadcast from `members[0]`: on return every member's `x`
/// equals the root's.
pub fn broadcast(peer: &Peer, x: &mut [f32], members: &[usize]) {
    let p = members.len();
    let pos = member_index(members, peer.rank());
    if p <= 1 {
        return;
    }
    // Receive once (non-roots), then forward down.
    let mut mask = 1;
    while mask < p {
        if pos & mask != 0 {
            let got = peer.recv_f32(members[pos ^ mask]);
            x.copy_from_slice(&got);
            break;
        }
        mask <<= 1;
    }
    mask >>= 1;
    while mask > 0 {
        let dst = pos | mask;
        if dst < p && dst != pos {
            peer.send_f32(members[dst], x.to_vec());
        }
        mask >>= 1;
    }
}

/// Binomial-tree reduce (sum) to `members[0]`: on return the root's `x`
/// holds the element-wise sum over all members; other members' buffers
/// hold partial sums and must be treated as garbage.
pub fn reduce(peer: &Peer, x: &mut [f32], members: &[usize]) {
    let p = members.len();
    let pos = member_index(members, peer.rank());
    let mut mask = 1;
    while mask < p {
        if pos & mask == 0 {
            let src = pos | mask;
            if src < p {
                let recv = peer.recv_f32(members[src]);
                ops::add_assign(x, &recv);
            }
        } else {
            peer.send_f32(members[pos ^ mask], x.to_vec());
            break;
        }
        mask <<= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;

    #[test]
    fn broadcast_replicates_the_root() {
        for p in [1usize, 2, 5, 8] {
            let members: Vec<usize> = (0..p).collect();
            let results = run_on_group(p, |peer| {
                let mut x = if peer.rank() == 0 {
                    vec![3.25, -1.5, 7.0]
                } else {
                    vec![0.0; 3]
                };
                broadcast(peer, &mut x, &members);
                x
            });
            for (r, x) in results.iter().enumerate() {
                assert_eq!(x, &vec![3.25, -1.5, 7.0], "p={p} rank {r}");
            }
        }
    }

    #[test]
    fn reduce_sums_to_the_root() {
        for p in [1usize, 3, 8] {
            let members: Vec<usize> = (0..p).collect();
            let results = run_on_group(p, |peer| {
                let mut x = vec![peer.rank() as f32 + 1.0; 4];
                reduce(peer, &mut x, &members);
                x
            });
            let expect = (p * (p + 1) / 2) as f32;
            assert_eq!(results[0], vec![expect; 4], "p={p}");
        }
    }

    #[test]
    fn broadcast_then_reduce_roundtrip() {
        // Broadcast w from root, every rank adds its rank, reduce back:
        // root gets P*w + sum(ranks).
        let p = 4;
        let members: Vec<usize> = (0..p).collect();
        let results = run_on_group(p, |peer| {
            let mut x = if peer.rank() == 0 {
                vec![10.0]
            } else {
                vec![0.0]
            };
            broadcast(peer, &mut x, &members);
            x[0] += peer.rank() as f32;
            reduce(peer, &mut x, &members);
            x
        });
        assert_eq!(results[0][0], 4.0 * 10.0 + 6.0);
    }

    #[test]
    fn works_on_subsets_with_non_zero_root() {
        let members = vec![3usize, 1, 4];
        let results = run_on_group(6, |peer| {
            let mut x = vec![peer.rank() as f32];
            if members.contains(&peer.rank()) {
                broadcast(peer, &mut x, &members);
            }
            x
        });
        // Root is members[0] = rank 3.
        assert_eq!(results[1], vec![3.0]);
        assert_eq!(results[4], vec![3.0]);
        assert_eq!(results[0], vec![0.0]); // non-member untouched
    }
}
