//! O(k) sparse allreduce — balanced index partitioning with split-and-merge
//! reduction (Li & Hoefler, *Near-Optimal Sparse Allreduce*, PPoPP 2022).
//!
//! HiTopKComm's inter-node step is a sparse All**Gather**: every member
//! broadcasts its whole `k̃`-selection to the other `m-1` members, costing
//! `O(m·k̃)` wire bytes per member. This module replaces that step with the
//! split-and-merge schedule:
//!
//! 1. **Partition.** The shard's index space is split into `m` balanced,
//!    contiguous ranges, one owned by each inter-group member (in member
//!    order). Each member *splits* its selection by owner.
//! 2. **Split.** Each member sends partition `t` of its selection to member
//!    `t` — point-to-point, `O(k̃)` bytes total per member.
//! 3. **Merge.** Each member reduces the `m` partition lists it holds (its
//!    own plus `m-1` received) into a dense accumulator over its range, in
//!    member order, then extracts the surviving nonzeros in ascending index
//!    order — the *merged* list, at most `range · 1` and typically `≈ k̃`
//!    entries thanks to selection overlap.
//! 4. **AllGather.** One sparse AllGather of the (already reduced) merged
//!    lists reassembles the aggregated shard everywhere.
//!
//! Total inter-node traffic per member is `≈ 8k̃` split bytes plus
//! `8·merged·(m-1)` gather bytes, where `merged ≈ nnz/m` and `nnz` is the
//! aggregated shard's nonzero count. When the members' selections overlap —
//! the steady state of error-feedback top-k training, whose heavy
//! coordinates are structural — `nnz` stays `O(k̃)` and the total is
//! `≈ 16k̃` *independent of `m`*, beating HiTopKComm's `8k̃(m-1)` from
//! `m ≥ 3`. With fully disjoint selections `nnz → m·k̃` and the schedule
//! degrades to HiTopKComm-like volume (never asymptotically worse). The
//! per-layer autotuner in `cloudtrain-engine` models exactly this with an
//! overlap parameter and picks the cheaper schedule per layer.
//!
//! **Determinism contract.** For every index, contributions accumulate in
//! inter-member order — the same order HiTopKComm's scatter-accumulate uses
//! — so with the same compressor state the aggregated vector is *bitwise
//! identical* to `hitopk_all_reduce*`'s. Only the wire schedule (and hence
//! the byte accounting) differs. The same twin discipline as the rest of
//! the crate applies: scratch, traced, identity-reordered, clean-resilient
//! and clean-deadline variants are all bitwise identical to the plain one.

use cloudtrain_compress::quantize::Quantizer;
use cloudtrain_compress::{Compressor, ErrorFeedback, SparseGrad};
use cloudtrain_obs::{self as obs, Registry};
use cloudtrain_tensor::ops;
use cloudtrain_tensor::partition::{shard_for, shards, Shard};

use crate::deadline::{DeadlineFaults, DeadlinePolicy, DeadlineReport};
use crate::group::Peer;
use crate::hierarchical::{pair_wire_bytes, shard_k};
use crate::reorder::inter_members_ordered;
use crate::resilience::{
    all_gather_f32_resilient, all_gather_u32_resilient, ring_all_gather_resilient,
    ring_reduce_scatter_resilient, ResilientPeer,
};
use crate::ring::{all_gather_pairs_scratch, ring_all_gather_scratch, ring_reduce_scatter_scratch};
use crate::scratch::CommScratch;
use crate::torus::{grid_pos, inter_node_members, intra_node_members};

/// Per-invocation statistics of an O(k) sparse allreduce.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OkSparseReport {
    /// Elements selected per shard (`k̃ = ρ·d/n`, same budget as HiTopKComm).
    pub k_per_shard: usize,
    /// Entries in this member's merged (reduced) partition list — the
    /// payload of its AllGather contribution. At most its range length.
    pub merged_len: usize,
    /// Distinct nonzero coordinates in this GPU's aggregated shard
    /// (identical to the HiTopKComm twin's by the determinism contract).
    pub shard_nonzeros: usize,
    /// Bytes this GPU sent over the inter-node links: split partitions
    /// plus the merged-list broadcast.
    pub inter_bytes_sent: usize,
}

/// What [`aggregate_selection`] measured while aggregating one selection.
struct AggregateStats {
    /// Selection entries sent away during the split (everything not in this
    /// member's own range).
    split_entries_sent: usize,
    /// Per-member split partition lengths (indexed by inter ordinal),
    /// for wire formats with per-message overhead.
    split_lens: Vec<usize>,
    /// Entries in this member's merged list.
    merged_len: usize,
    /// Nonzeros in the aggregated shard.
    shard_nonzeros: usize,
}

/// Position of `rank` within `members` (panics for non-members, mirroring
/// the plain ring collectives).
fn member_index(members: &[usize], rank: usize) -> usize {
    members
        .iter()
        .position(|&m| m == rank)
        // lint:allow(panic_free, reason = "a rank outside its own member list is a schedule construction bug, mirroring the plain ring collectives")
        .unwrap_or_else(|| panic!("rank {rank} is not in members {members:?}"))
}

/// Owner ordinal of shard-relative index `idx` under the balanced
/// contiguous partition `ranges`.
fn owner_of(ranges: &[Shard], idx: usize) -> usize {
    ranges.partition_point(|r| r.end <= idx)
}

/// Packs a `(values, indices)` pair into one `u32` frame:
/// `[len, indices…, value-bits…]`. The inverse of [`unframe_pair`].
fn frame_pair(values: &[f32], indices: &[u32], scratch: &mut CommScratch) -> Vec<u32> {
    let mut frame = scratch.take_u32(0);
    frame.push(values.len() as u32);
    frame.extend(indices.iter().copied());
    frame.extend(values.iter().map(|v| v.to_bits()));
    frame
}

/// Unpacks a frame built by [`frame_pair`], recycling the frame buffer.
fn unframe_pair(block: Vec<u32>, scratch: &mut CommScratch) -> (Vec<f32>, Vec<u32>) {
    let mut words = block.iter().copied();
    let len = words.next().unwrap_or(0) as usize;
    let mut idxs = scratch.take_u32(0);
    idxs.extend(words.by_ref().take(len));
    let mut vals = scratch.take_f32(0);
    vals.extend(words.by_ref().take(len).map(f32::from_bits));
    scratch.put_u32(block);
    (vals, idxs)
}

/// Splits `selection` by owner range into `q` scratch-backed partition
/// pairs (selection order preserved within each partition).
fn split_by_owner(
    selection: &SparseGrad,
    ranges: &[Shard],
    scratch: &mut CommScratch,
) -> (Vec<Vec<f32>>, Vec<Vec<u32>>) {
    let q = ranges.len();
    let mut part_vals: Vec<Vec<f32>> = (0..q).map(|_| scratch.take_f32(0)).collect();
    let mut part_idxs: Vec<Vec<u32>> = (0..q).map(|_| scratch.take_u32(0)).collect();
    for (v, i) in selection.values.iter().zip(&selection.indices) {
        let t = owner_of(ranges, *i as usize);
        part_vals[t].push(*v);
        part_idxs[t].push(*i);
    }
    (part_vals, part_idxs)
}

/// Merges partition lists into a dense accumulator over `my_range` (in the
/// order the closure yields them), then extracts the merged nonzero list in
/// ascending index order. Returns `(merged_vals, merged_idxs)` — both
/// scratch-backed, indices shard-relative.
fn merge_into_range(acc: &mut [f32], my_range: Shard, vals: &[f32], idxs: &[u32]) {
    for (v, i) in vals.iter().zip(idxs) {
        let off = *i as usize - my_range.start;
        acc[off] += v;
    }
}

/// The split → merge → AllGather → scatter core, shared by the plain, EF,
/// reordered, deadline and quantized variants. `selection` is this member's
/// (possibly empty, possibly lossy) shard-relative contribution; `inter`
/// fixes both the member order of the reduction and the partition
/// ownership.
fn aggregate_selection(
    peer: &Peer,
    x: &mut [f32],
    shard: Shard,
    selection: &SparseGrad,
    inter: &[usize],
    scratch: &mut CommScratch,
) -> AggregateStats {
    let q = inter.len();
    let me_ord = member_index(inter, peer.rank());
    let ranges = shards(shard.len(), q);
    let my_range = ranges[me_ord];

    // Split: send partition `t` to inter member `t` (non-blocking sends,
    // so every member can post all q-1 sends before its first receive —
    // deadlock-free without any ordering between groups).
    let (part_vals, part_idxs) = split_by_owner(selection, &ranges, scratch);
    let split_lens: Vec<usize> = part_vals.iter().map(Vec::len).collect();
    let split_entries_sent = selection.values.len() - split_lens[me_ord];
    for t in 0..q {
        if t == me_ord {
            continue;
        }
        let frame = frame_pair(&part_vals[t], &part_idxs[t], scratch);
        peer.send_u32(inter[t], frame);
    }

    // Merge: accumulate the q partition lists for my range in member order
    // (own partition at its ordinal), then extract ascending-index
    // nonzeros. Per index this is the same member-order accumulation the
    // hitopk scatter performs — the bitwise-identity hinge.
    let mut acc = scratch.take_f32(my_range.len());
    for (t, member) in inter.iter().enumerate() {
        if t == me_ord {
            merge_into_range(&mut acc, my_range, &part_vals[t], &part_idxs[t]);
        } else {
            let (vals, idxs) = unframe_pair(peer.recv_u32(*member), scratch);
            merge_into_range(&mut acc, my_range, &vals, &idxs);
            scratch.put_f32(vals);
            scratch.put_u32(idxs);
        }
    }
    for (vals, idxs) in part_vals.into_iter().zip(part_idxs) {
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let mut merged_vals = scratch.take_f32(0);
    let mut merged_idxs = scratch.take_u32(0);
    for (off, v) in acc.iter().enumerate() {
        if *v != 0.0 {
            merged_vals.push(*v);
            merged_idxs.push((my_range.start + off) as u32);
        }
    }
    scratch.put_f32(acc);
    let merged_len = merged_vals.len();

    // AllGather of the merged (already reduced) lists, then one scatter per
    // block into the zeroed shard. Ranges are disjoint, so each coordinate
    // is written exactly once.
    let blocks = all_gather_pairs_scratch(peer, &merged_vals, &merged_idxs, inter, scratch);
    scratch.put_f32(merged_vals);
    scratch.put_u32(merged_idxs);
    let shard_buf = shard.slice_mut(x);
    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in blocks {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();

    AggregateStats {
        split_entries_sent,
        split_lens,
        merged_len,
        shard_nonzeros,
    }
}

/// Standard byte accounting for one O(k) invocation: split partitions out
/// (values + indices each) plus the merged broadcast to `q - 1` members.
fn ok_sparse_wire_bytes(stats: &AggregateStats, q: usize) -> usize {
    pair_wire_bytes(stats.split_entries_sent) + pair_wire_bytes(stats.merged_len) * (q - 1)
}

#[allow(clippy::too_many_arguments)]
fn ok_sparse_impl<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    mut ef: Option<&mut ErrorFeedback>,
    node_order: Option<&[usize]>,
    scratch: &mut CommScratch,
    mut reg: Option<&mut Registry>,
) -> OkSparseReport {
    assert_eq!(peer.size(), m * n, "ok_sparse_all_reduce: group is not m*n");
    let d = x.len();
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = match node_order {
        Some(order) => inter_members_ordered(pos.gpu, order, n),
        None => inter_node_members(pos.gpu, m, n),
    };

    let span = obs::span_begin(&mut reg, "oksparse/intra reduce-scatter");
    let shard = ring_reduce_scatter_scratch(peer, x, &intra, scratch);
    obs::span_end(&mut reg, span, d as f64);
    debug_assert_eq!(shard, shard_for(d, n, pos.gpu));
    if let Some(ef) = ef.as_ref() {
        assert_eq!(
            ef.dim(),
            shard.len(),
            "ok_sparse_all_reduce_ef: residual must match the shard"
        );
    }

    let k = shard_k(d, n, rho).min(shard.len());
    let span = obs::span_begin(&mut reg, "oksparse/top-k compression");
    let shard_buf = shard.slice_mut(x);
    let selection: SparseGrad = match ef.as_mut() {
        Some(ef) => {
            ef.compensate(shard_buf);
            let sel = compressor.compress(shard_buf, k);
            ef.absorb(shard_buf, &sel);
            sel
        }
        None => compressor.compress(shard_buf, k),
    };
    obs::span_end(&mut reg, span, shard.len() as f64);

    let span = obs::span_begin(&mut reg, "oksparse/inter split-merge");
    let stats = aggregate_selection(peer, x, shard, &selection, &inter, scratch);
    let inter_bytes_sent = ok_sparse_wire_bytes(&stats, inter.len());
    obs::span_end(
        &mut reg,
        span,
        (2 * (stats.split_entries_sent + stats.merged_len * inter.len())) as f64,
    );

    let span = obs::span_begin(&mut reg, "oksparse/intra all-gather");
    ring_all_gather_scratch(peer, x, &intra, scratch);
    obs::span_end(&mut reg, span, d as f64);

    if let Some(reg) = reg.as_mut() {
        reg.counter_add("oksparse/invocations", 1);
        reg.counter_add("oksparse/inter_bytes_sent", inter_bytes_sent as u64);
        reg.counter_add("oksparse/shard_nonzeros", stats.shard_nonzeros as u64);
        reg.counter_add("oksparse/merged_len", stats.merged_len as u64);
        reg.gauge_set("oksparse/k_per_shard", k as f64);
    }

    OkSparseReport {
        k_per_shard: k,
        merged_len: stats.merged_len,
        shard_nonzeros: stats.shard_nonzeros,
        inter_bytes_sent,
    }
}

/// O(k) sparse allreduce over an `m × n` grid: HiTopKComm's hierarchy
/// (dense intra-node ReduceScatter, per-shard top-k, dense intra-node
/// AllGather) with the inter-node AllGather replaced by the split-and-merge
/// schedule. On return every rank's `x` holds the identical aggregated
/// vector — bitwise equal to [`crate::hierarchical::hitopk_all_reduce`]'s
/// with the same compressor state.
///
/// # Examples
/// ```
/// use cloudtrain_collectives::group::run_on_group;
/// use cloudtrain_collectives::sparse_allreduce::ok_sparse_all_reduce;
/// use cloudtrain_compress::MsTopK;
///
/// // 2 nodes x 2 GPUs aggregate sparsified gradients at density 0.25.
/// let results = run_on_group(4, |peer| {
///     let mut grad = vec![peer.rank() as f32 + 1.0; 64];
///     grad[peer.rank()] = 100.0;
///     let mut topk = MsTopK::new(30, peer.rank() as u64);
///     ok_sparse_all_reduce(peer, &mut grad, 2, 2, 0.25, &mut topk);
///     grad
/// });
/// assert!(results.iter().all(|r| r == &results[0]));
/// ```
///
/// # Panics
/// Panics if the group size is not `m * n`.
pub fn ok_sparse_all_reduce<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
) -> OkSparseReport {
    ok_sparse_all_reduce_scratch(peer, x, m, n, rho, compressor, &mut CommScratch::new())
}

/// [`ok_sparse_all_reduce`] drawing every communication buffer from
/// `scratch`; allocation-free on the wire path at steady state.
pub fn ok_sparse_all_reduce_scratch<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    scratch: &mut CommScratch,
) -> OkSparseReport {
    ok_sparse_impl(peer, x, m, n, rho, compressor, None, None, scratch, None)
}

/// [`ok_sparse_all_reduce_scratch`] with per-stage spans and counters
/// recorded into `reg` (logical work units; bitwise identical to the
/// untraced twin).
#[allow(clippy::too_many_arguments)]
pub fn ok_sparse_all_reduce_traced<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    scratch: &mut CommScratch,
    reg: &mut Registry,
) -> OkSparseReport {
    ok_sparse_impl(
        peer,
        x,
        m,
        n,
        rho,
        compressor,
        None,
        None,
        scratch,
        Some(reg),
    )
}

/// O(k) sparse allreduce with error feedback at the sparsification point
/// (the shard owner's residual, exactly as in
/// [`crate::hierarchical::hitopk_all_reduce_ef`] — the two are bitwise
/// interchangeable, so the mass-conservation ledger verifies either).
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
pub fn ok_sparse_all_reduce_ef<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
) -> OkSparseReport {
    ok_sparse_all_reduce_ef_scratch(peer, x, m, n, rho, compressor, ef, &mut CommScratch::new())
}

/// [`ok_sparse_all_reduce_ef`] drawing every communication buffer from
/// `scratch`.
#[allow(clippy::too_many_arguments)]
pub fn ok_sparse_all_reduce_ef_scratch<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
) -> OkSparseReport {
    ok_sparse_impl(
        peer,
        x,
        m,
        n,
        rho,
        compressor,
        Some(ef),
        None,
        scratch,
        None,
    )
}

/// [`ok_sparse_all_reduce_ef_scratch`] with per-stage spans and counters
/// recorded into `reg`.
#[allow(clippy::too_many_arguments)]
pub fn ok_sparse_all_reduce_ef_traced<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
    reg: &mut Registry,
) -> OkSparseReport {
    ok_sparse_impl(
        peer,
        x,
        m,
        n,
        rho,
        compressor,
        Some(ef),
        None,
        scratch,
        Some(reg),
    )
}

/// [`ok_sparse_all_reduce_ef_scratch`] with the inter-node group visited in
/// `node_order` (a topology-probed node permutation, as produced by
/// `crate::reorder`). All ranks must pass the same order. With the identity
/// order the result is bitwise identical to the plain EF twin; any other
/// order changes only the floating-point reduction order (and the
/// partition ownership), never the selected set.
///
/// # Panics
/// Panics if the group size is not `m * n`, `node_order` is not a
/// permutation of `0..m`, or the residual dimension does not match.
#[allow(clippy::too_many_arguments)]
pub fn ok_sparse_all_reduce_ef_reordered<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    node_order: &[usize],
    scratch: &mut CommScratch,
) -> OkSparseReport {
    assert_eq!(
        node_order.len(),
        m,
        "ok_sparse_all_reduce_ef_reordered: order must cover all m nodes"
    );
    ok_sparse_impl(
        peer,
        x,
        m,
        n,
        rho,
        compressor,
        Some(ef),
        Some(node_order),
        scratch,
        None,
    )
}

/// Quantized-wire byte accounting: one scale word plus a 32-bit index and a
/// packed level code per entry (`ceil(log2(2s+1))` bits each), matching
/// [`cloudtrain_compress::QuantizedGrad::wire_bytes`]'s packing.
fn quantized_pair_wire_bytes(entries: usize, levels: u8) -> usize {
    let bits = (2 * levels as u32 + 1).next_power_of_two().trailing_zeros() as usize;
    4 + 4 * entries + (entries * bits).div_ceil(8)
}

/// O(k) sparse allreduce with error feedback and **quantized split values**:
/// the selection's values are quantized once with `quantizer` (one shared
/// scale), and the split partitions travel as packed level codes instead of
/// FP32 — compounding the sparsification with `compress::quantize`'s
/// value compression on the slowest hop.
///
/// The simulation transmits the *decoded* values (each partition's decode
/// is elementwise, so receivers decoding `(scale, codes)` would reconstruct
/// them bit-exactly), while `inter_bytes_sent` charges the packed wire
/// format. The merged lists are sums of decoded values and travel as FP32.
///
/// The residual is updated with [`ErrorFeedback::absorb_lossy`] against the
/// decoded selection, so the per-coordinate quantization error stays in the
/// residual and the mass-conservation ledger holds exactly — the lossy wire
/// loses no gradient mass, it only defers it.
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
#[allow(clippy::too_many_arguments)]
pub fn ok_sparse_all_reduce_ef_quantized<C: Compressor + ?Sized, Q: Quantizer + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    quantizer: &mut Q,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
) -> OkSparseReport {
    assert_eq!(peer.size(), m * n, "ok_sparse_all_reduce: group is not m*n");
    let d = x.len();
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    let shard = ring_reduce_scatter_scratch(peer, x, &intra, scratch);
    assert_eq!(
        ef.dim(),
        shard.len(),
        "ok_sparse_all_reduce_ef: residual must match the shard"
    );

    let k = shard_k(d, n, rho).min(shard.len());
    let shard_buf = shard.slice_mut(x);
    ef.compensate(shard_buf);
    let exact = compressor.compress(shard_buf, k);
    let q = quantizer.quantize(&exact.values);
    let levels = q.levels;
    let selection = SparseGrad {
        values: q.decode(),
        indices: exact.indices,
        dim: exact.dim,
    };
    ef.absorb_lossy(shard_buf, &selection);

    let stats = aggregate_selection(peer, x, shard, &selection, &inter, scratch);
    let me_ord = member_index(&inter, peer.rank());
    let split_bytes: usize = stats
        .split_lens
        .iter()
        .enumerate()
        .filter(|(t, _)| *t != me_ord)
        .map(|(_, len)| quantized_pair_wire_bytes(*len, levels))
        .sum();
    let inter_bytes_sent = split_bytes + pair_wire_bytes(stats.merged_len) * (inter.len() - 1);

    ring_all_gather_scratch(peer, x, &intra, scratch);

    OkSparseReport {
        k_per_shard: k,
        merged_len: stats.merged_len,
        shard_nonzeros: stats.shard_nonzeros,
        inter_bytes_sent,
    }
}

/// The split → merge → AllGather → scatter core over a [`ResilientPeer`]:
/// every hop charged through the fault plan and retry policy. The payloads
/// always arrive (drops cost retries, not data), so with any plan the
/// aggregation values match the plain core's bitwise.
fn aggregate_selection_resilient(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    shard: Shard,
    selection: &SparseGrad,
    inter: &[usize],
    scratch: &mut CommScratch,
) -> AggregateStats {
    let q = inter.len();
    let me_ord = member_index(inter, rp.rank());
    let ranges = shards(shard.len(), q);
    let my_range = ranges[me_ord];

    let (part_vals, part_idxs) = split_by_owner(selection, &ranges, scratch);
    let split_lens: Vec<usize> = part_vals.iter().map(Vec::len).collect();
    let split_entries_sent = selection.values.len() - split_lens[me_ord];
    for t in 0..q {
        if t == me_ord {
            continue;
        }
        let frame = frame_pair(&part_vals[t], &part_idxs[t], scratch);
        rp.send_u32(inter[t], frame);
    }

    let mut acc = scratch.take_f32(my_range.len());
    for t in 0..q {
        if t == me_ord {
            merge_into_range(&mut acc, my_range, &part_vals[t], &part_idxs[t]);
        } else {
            let (vals, idxs) = unframe_pair(rp.recv_u32(inter[t]), scratch);
            merge_into_range(&mut acc, my_range, &vals, &idxs);
            scratch.put_f32(vals);
            scratch.put_u32(idxs);
        }
    }
    for (vals, idxs) in part_vals.into_iter().zip(part_idxs) {
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let mut merged_vals = scratch.take_f32(0);
    let mut merged_idxs = scratch.take_u32(0);
    for (off, v) in acc.iter().enumerate() {
        if *v != 0.0 {
            merged_vals.push(*v);
            merged_idxs.push((my_range.start + off) as u32);
        }
    }
    scratch.put_f32(acc);
    let merged_len = merged_vals.len();

    // The resilient gathers are the crate's paired-variant-free ones; the
    // gathered *values* match the pairs gather's bitwise, only the message
    // framing differs.
    let value_blocks = all_gather_f32_resilient(rp, &merged_vals, inter, scratch);
    let index_blocks = all_gather_u32_resilient(rp, &merged_idxs, inter, scratch);
    scratch.put_f32(merged_vals);
    scratch.put_u32(merged_idxs);
    let shard_buf = shard.slice_mut(x);
    ops::fill(shard_buf, 0.0);
    for (vals, idxs) in value_blocks.into_iter().zip(index_blocks) {
        ops::scatter_add(shard_buf, &idxs, &vals);
        scratch.put_f32(vals);
        scratch.put_u32(idxs);
    }
    let shard_nonzeros = shard_buf.iter().filter(|v| **v != 0.0).count();

    AggregateStats {
        split_entries_sent,
        split_lens,
        merged_len,
        shard_nonzeros,
    }
}

/// Resilient O(k) sparse allreduce with error feedback: every hop walks the
/// drop ladder, and a member whose contribution misses its deadline (per
/// the fault plan, decided identically on all ranks at the sparsification
/// point) transmits an empty selection — its whole compensated shard stays
/// in the residual and is re-injected next invocation. With a clean plan
/// the result is bitwise identical to [`ok_sparse_all_reduce_ef`].
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
#[allow(clippy::too_many_arguments)] // mirrors hitopk_all_reduce_ef_resilient's signature
pub fn ok_sparse_all_reduce_ef_resilient<C: Compressor + ?Sized>(
    rp: &mut ResilientPeer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    scratch: &mut CommScratch,
) -> OkSparseReport {
    assert_eq!(rp.size(), m * n, "ok_sparse_all_reduce: group is not m*n");
    let d = x.len();
    let instance = rp.begin_instance();
    let pos = grid_pos(rp.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    let shard = ring_reduce_scatter_resilient(rp, x, &intra, scratch);
    assert_eq!(
        ef.dim(),
        shard.len(),
        "ok_sparse_all_reduce_ef: residual must match the shard"
    );

    let k = shard_k(d, n, rho).min(shard.len());
    let shard_buf = shard.slice_mut(x);
    ef.compensate(shard_buf);
    // Degradation at the sparsification point, exactly as in the hitopk
    // twin: a degraded member selects nothing and absorb() keeps its whole
    // compensated shard as residual.
    let selection: SparseGrad = if rp.contribution_degraded(instance) {
        SparseGrad::empty(shard.len())
    } else {
        compressor.compress(shard_buf, k)
    };
    ef.absorb(shard_buf, &selection);

    let stats = aggregate_selection_resilient(rp, x, shard, &selection, &inter, scratch);
    let inter_bytes_sent = ok_sparse_wire_bytes(&stats, inter.len());

    ring_all_gather_resilient(rp, x, &intra, scratch);

    OkSparseReport {
        k_per_shard: k,
        merged_len: stats.merged_len,
        shard_nonzeros: stats.shard_nonzeros,
        inter_bytes_sent,
    }
}

/// Deadline-bounded O(k) sparse allreduce with error feedback: the data
/// flow of [`ok_sparse_all_reduce_ef_scratch`], with this rank's
/// contribution checked against the lateness budget at the sparsification
/// point (per *(instance, member)*, never per hop, so replicas stay
/// bitwise identical). A late member transmits an empty selection; its
/// compensated shard survives in the residual. With a clean plan the
/// result is bitwise identical to the plain EF twin.
///
/// # Panics
/// Panics if the group size is not `m * n` or the residual dimension does
/// not match this rank's shard.
#[allow(clippy::too_many_arguments)]
pub fn ok_sparse_all_reduce_ef_deadline<C: Compressor + ?Sized>(
    peer: &Peer,
    x: &mut [f32],
    m: usize,
    n: usize,
    rho: f64,
    compressor: &mut C,
    ef: &mut ErrorFeedback,
    instance: u64,
    faults: &DeadlineFaults,
    policy: &DeadlinePolicy,
    scratch: &mut CommScratch,
) -> (OkSparseReport, DeadlineReport) {
    assert_eq!(peer.size(), m * n, "ok_sparse_all_reduce: group is not m*n");
    let d = x.len();
    let pos = grid_pos(peer.rank(), m, n);
    let intra = intra_node_members(pos.node, n);
    let inter = inter_node_members(pos.gpu, m, n);

    let shard = ring_reduce_scatter_scratch(peer, x, &intra, scratch);
    assert_eq!(
        ef.dim(),
        shard.len(),
        "ok_sparse_all_reduce_ef: residual must match the shard"
    );

    let k = shard_k(d, n, rho).min(shard.len());
    let shard_buf = shard.slice_mut(x);
    ef.compensate(shard_buf);
    // Same budget question as the hitopk deadline twin: would this member's
    // compressed block (k values + k indices) have landed inside the
    // budget? A miss selects nothing.
    let mut report = DeadlineReport { hops: 1, missed: 0 };
    let lateness = faults.contribution_lateness(instance, peer.rank());
    let wire = pair_wire_bytes(k);
    let selection: SparseGrad = if policy.hop_missed(wire, lateness) {
        report.missed = 1;
        SparseGrad::empty(shard.len())
    } else {
        compressor.compress(shard_buf, k)
    };
    ef.absorb(shard_buf, &selection);

    let stats = aggregate_selection(peer, x, shard, &selection, &inter, scratch);
    let inter_bytes_sent = ok_sparse_wire_bytes(&stats, inter.len());

    ring_all_gather_scratch(peer, x, &intra, scratch);

    (
        OkSparseReport {
            k_per_shard: k,
            merged_len: stats.merged_len,
            shard_nonzeros: stats.shard_nonzeros,
            inter_bytes_sent,
        },
        report,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::run_on_group;
    use crate::hierarchical::{group_wire_bytes, hitopk_all_reduce, hitopk_all_reduce_ef};
    use crate::resilience::{CommFaults, ResiliencePolicy};
    use cloudtrain_compress::exact::SortTopK;
    use cloudtrain_compress::quantize::Qsgd;
    use cloudtrain_compress::MsTopK;
    use cloudtrain_tensor::init;

    fn vec_for(rank: usize, d: usize) -> Vec<f32> {
        let mut rng = init::rng_from_seed(14_000 + rank as u64);
        init::gradient_like_tensor(d, &mut rng).into_vec()
    }

    fn shard_len(d: usize, n: usize, rank: usize) -> usize {
        shard_for(d, n, rank % n).len()
    }

    /// The determinism contract: same compressor state → bitwise identical
    /// aggregate to the hitopk twin (only the wire schedule differs).
    #[test]
    fn matches_hitopk_bitwise() {
        for (m, n, d, rho) in [
            (2usize, 4usize, 300usize, 0.05f64),
            (4, 2, 257, 0.1),
            (3, 2, 128, 0.2),
            (2, 2, 31, 0.5),
        ] {
            let hitopk = run_on_group(m * n, |peer| {
                let mut x = vec_for(peer.rank(), d);
                let mut c = MsTopK::new(25, peer.rank() as u64);
                hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c);
                x
            });
            let oksparse = run_on_group(m * n, |peer| {
                let mut x = vec_for(peer.rank(), d);
                let mut c = MsTopK::new(25, peer.rank() as u64);
                let rep = ok_sparse_all_reduce(peer, &mut x, m, n, rho, &mut c);
                assert!(rep.shard_nonzeros >= 1);
                x
            });
            assert_eq!(hitopk, oksparse, "m={m} n={n}: schedules diverged");
        }
    }

    #[test]
    fn ef_matches_hitopk_ef_bitwise_over_rounds() {
        let (m, n, d, rho) = (2usize, 4usize, 300usize, 0.05f64);
        let run_hitopk = run_on_group(m * n, |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut out = Vec::new();
            for round in 0..3 {
                let mut x = vec_for(100 * round + peer.rank(), d);
                hitopk_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef);
                out.push(x);
            }
            (out, ef.residual().to_vec())
        });
        let run_oksparse = run_on_group(m * n, |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut out = Vec::new();
            for round in 0..3 {
                let mut x = vec_for(100 * round + peer.rank(), d);
                ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef);
                out.push(x);
            }
            (out, ef.residual().to_vec())
        });
        assert_eq!(run_hitopk, run_oksparse);
    }

    /// Gradients in the regime sparse training targets: a shared set of
    /// structural heavy coordinates (the same layer positions are large on
    /// every node) plus small per-rank noise, so node selections largely
    /// coincide.
    fn heavy_hitter_vec(rank: usize, d: usize) -> Vec<f32> {
        let mut v = vec_for(rank, d);
        let heavies = d / 10;
        for j in 0..heavies {
            let i = (j * 613) % d;
            let sign = if j % 2 == 0 { 1.0 } else { -1.0 };
            v[i] += sign * 10.0 * ((j % 7) as f32 + 1.0);
        }
        v
    }

    /// The point of the schedule: past two nodes, with overlapping
    /// selections split-and-merge moves fewer inter-node bytes than
    /// hitopk's selection broadcast.
    #[test]
    fn beats_hitopk_traffic_from_three_nodes() {
        let (n, d, rho) = (2usize, 480usize, 0.05f64);
        for m in [3usize, 4, 6] {
            let pairs = run_on_group(m * n, move |peer| {
                let mut x = heavy_hitter_vec(peer.rank(), d);
                let mut c = SortTopK;
                let ok = ok_sparse_all_reduce(peer, &mut x, m, n, rho, &mut c);
                let mut y = heavy_hitter_vec(peer.rank(), d);
                let hi = hitopk_all_reduce(peer, &mut y, m, n, rho, &mut c);
                (ok, hi)
            });
            for (r, (ok, hi)) in pairs.iter().enumerate() {
                assert!(
                    ok.inter_bytes_sent < hi.inter_bytes_sent,
                    "m={m} rank {r}: O(k) sent {} >= hitopk's {}",
                    ok.inter_bytes_sent,
                    hi.inter_bytes_sent
                );
            }
        }
    }

    #[test]
    fn report_byte_accounting_is_exact() {
        let (m, n, d, rho) = (4usize, 2usize, 400usize, 0.1f64);
        let reports = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            ok_sparse_all_reduce(peer, &mut x, m, n, rho, &mut c)
        });
        let k = shard_k(d, n, rho);
        for rep in &reports {
            assert_eq!(rep.k_per_shard, k);
            // Split sends at most the whole selection; merged entries are at
            // most the range, at least ceil(k/m) when selections collide.
            assert!(
                rep.inter_bytes_sent
                    <= pair_wire_bytes(k) + pair_wire_bytes(rep.merged_len) * (m - 1)
            );
            assert!(rep.merged_len >= 1);
            assert!(rep.shard_nonzeros <= m * k);
        }
    }

    /// `pair_wire_bytes` and `group_wire_bytes` agree on identical traffic,
    /// so O(k) and hitopk byte reports are directly comparable.
    #[test]
    fn wire_byte_helpers_agree() {
        let sel = SparseGrad {
            values: vec![1.0; 7],
            indices: (0..7).collect(),
            dim: 64,
        };
        for g in 1..6 {
            assert_eq!(
                group_wire_bytes(&sel, g),
                pair_wire_bytes(sel.values.len()) * g.saturating_sub(1)
            );
        }
    }

    #[test]
    fn scratch_and_traced_twins_are_bitwise_identical() {
        let (m, n, d, rho) = (2usize, 4usize, 300usize, 0.05f64);
        let plain = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(25, peer.rank() as u64);
            let rep = ok_sparse_all_reduce(peer, &mut x, m, n, rho, &mut c);
            (x, rep)
        });
        let scratched = run_on_group(m * n, |peer| {
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(25, peer.rank() as u64);
            let rep = ok_sparse_all_reduce_scratch(peer, &mut x, m, n, rho, &mut c, &mut scratch);
            (x, rep)
        });
        assert_eq!(plain, scratched);
        let traced = run_on_group(m * n, |peer| {
            let mut scratch = CommScratch::new();
            let mut reg = Registry::new();
            let mut x = vec_for(peer.rank(), d);
            let mut c = MsTopK::new(25, peer.rank() as u64);
            let rep = ok_sparse_all_reduce_traced(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut c,
                &mut scratch,
                &mut reg,
            );
            ((x, rep), reg)
        });
        for ((p, (t, reg)), rank) in plain.iter().zip(&traced).zip(0..) {
            assert_eq!(p, t, "rank {rank}: tracing perturbed the result");
            assert_eq!(reg.spans().len(), 4);
            assert_eq!(reg.span_total("oksparse/intra reduce-scatter"), d as f64);
            assert_eq!(
                reg.span_total("oksparse/top-k compression") as usize,
                shard_len(d, n, rank)
            );
            assert!(reg.span_total("oksparse/inter split-merge") > 0.0);
            assert_eq!(reg.span_total("oksparse/intra all-gather"), d as f64);
            assert_eq!(reg.counter("oksparse/invocations"), 1);
            assert_eq!(
                reg.counter("oksparse/inter_bytes_sent") as usize,
                t.1.inter_bytes_sent
            );
            assert_eq!(
                reg.gauge("oksparse/k_per_shard"),
                Some(t.1.k_per_shard as f64)
            );
        }
    }

    #[test]
    fn reordered_identity_is_bitwise_identical() {
        let (m, n, d, rho) = (3usize, 2usize, 240usize, 0.1f64);
        let identity: Vec<usize> = (0..m).collect();
        let run = |order: Option<Vec<usize>>| {
            run_on_group(m * n, move |peer| {
                let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
                let mut c = SortTopK;
                let mut scratch = CommScratch::new();
                let mut x = vec_for(peer.rank(), d);
                let rep = match &order {
                    Some(o) => ok_sparse_all_reduce_ef_reordered(
                        peer,
                        &mut x,
                        m,
                        n,
                        rho,
                        &mut c,
                        &mut ef,
                        o,
                        &mut scratch,
                    ),
                    None => ok_sparse_all_reduce_ef_scratch(
                        peer,
                        &mut x,
                        m,
                        n,
                        rho,
                        &mut c,
                        &mut ef,
                        &mut scratch,
                    ),
                };
                (x, ef.residual().to_vec(), rep)
            })
        };
        assert_eq!(run(None), run(Some(identity)));
    }

    #[test]
    fn reordered_rotation_keeps_replicas_identical_and_close_to_plain() {
        let (m, n, d, rho) = (3usize, 2usize, 240usize, 0.1f64);
        let rotated: Vec<usize> = (0..m).map(|i| (i + 1) % m).collect();
        let plain = run_on_group(m * n, |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut x = vec_for(peer.rank(), d);
            ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef);
            x
        });
        let reordered = run_on_group(m * n, move |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            ok_sparse_all_reduce_ef_reordered(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut c,
                &mut ef,
                &rotated,
                &mut scratch,
            );
            x
        });
        for r in 1..m * n {
            assert_eq!(reordered[0], reordered[r], "rank {r} differs");
        }
        for (p, q) in plain.iter().zip(&reordered) {
            assert!(ops::approx_eq(p, q, 1e-4));
        }
    }

    #[test]
    fn resilient_clean_plan_is_bitwise_identical_to_plain() {
        let (m, n, d, rho) = (2usize, 4usize, 240usize, 0.05f64);
        let plain = run_on_group(m * n, |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut out = Vec::new();
            for round in 0..2 {
                let mut x = vec_for(60 * round + peer.rank(), d);
                ok_sparse_all_reduce_ef_scratch(
                    peer,
                    &mut x,
                    m,
                    n,
                    rho,
                    &mut c,
                    &mut ef,
                    &mut scratch,
                );
                out.push(x);
            }
            (out, ef.residual().to_vec())
        });
        let resilient = run_on_group(m * n, |peer| {
            let mut rp = ResilientPeer::new(peer, CommFaults::new(7), ResiliencePolicy::default());
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut out = Vec::new();
            for round in 0..2 {
                let mut x = vec_for(60 * round + peer.rank(), d);
                ok_sparse_all_reduce_ef_resilient(
                    &mut rp,
                    &mut x,
                    m,
                    n,
                    rho,
                    &mut c,
                    &mut ef,
                    &mut scratch,
                );
                out.push(x);
            }
            (out, ef.residual().to_vec())
        });
        assert_eq!(plain, resilient);
    }

    #[test]
    fn hostile_faults_keep_replicas_identical_and_mass_in_residuals() {
        let (m, n, d, rho) = (2usize, 4usize, 240usize, 0.05f64);
        let faults = CommFaults::new(11).with_drops(0.2).straggle(5, 0.9);
        let results = run_on_group(m * n, move |peer| {
            let mut rp = ResilientPeer::new(peer, faults.clone(), ResiliencePolicy::default());
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut x = Vec::new();
            for round in 0..3 {
                x = vec_for(60 * round + peer.rank(), d);
                ok_sparse_all_reduce_ef_resilient(
                    &mut rp,
                    &mut x,
                    m,
                    n,
                    rho,
                    &mut c,
                    &mut ef,
                    &mut scratch,
                );
            }
            (x, ef.residual_norm(), rp.report())
        });
        for r in 1..m * n {
            assert_eq!(results[0].0, results[r].0, "rank {r} replica diverged");
        }
        // The straggler's degraded contributions stay in its residual.
        assert!(results[5].1 > 0.0, "straggler residual should hold mass");
        assert!(
            results.iter().any(|(_, _, rep)| rep.degraded_members > 0),
            "the plan should degrade someone"
        );
    }

    #[test]
    fn deadline_clean_plan_is_bitwise_identical_to_plain() {
        let (m, n, d, rho) = (2usize, 4usize, 240usize, 0.05f64);
        // Generous budget, no jitter: nothing misses.
        let policy = DeadlinePolicy::from_link(5e-5, 4e-10, 8 * d, 1e6);
        let faults = DeadlineFaults::new(3);
        let plain = run_on_group(m * n, |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut x = vec_for(peer.rank(), d);
            ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef);
            (x, ef.residual().to_vec())
        });
        let deadline = run_on_group(m * n, move |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let (_, drep) = ok_sparse_all_reduce_ef_deadline(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut c,
                &mut ef,
                0,
                &faults,
                &policy,
                &mut scratch,
            );
            assert_eq!(drep.missed, 0, "clean plan should not miss");
            (x, ef.residual().to_vec())
        });
        assert_eq!(plain, deadline);
    }

    #[test]
    fn deadline_stragglers_miss_but_replicas_agree() {
        let (m, n, d, rho) = (2usize, 4usize, 240usize, 0.05f64);
        // Tight budget + a heavily multiplied straggler node: its members'
        // contributions miss, the clean members' jitter stays inside the
        // 5% slack.
        let policy = DeadlinePolicy::from_link(5e-5, 4e-10, 8 * shard_k(d, n, rho), 1.05);
        let faults = DeadlineFaults::new(9)
            .with_jitter(1e-6)
            .straggle(4, 1e4)
            .straggle(5, 1e4)
            .straggle(6, 1e4)
            .straggle(7, 1e4);
        let results = run_on_group(m * n, move |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let (_, drep) = ok_sparse_all_reduce_ef_deadline(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut c,
                &mut ef,
                1,
                &faults,
                &policy,
                &mut scratch,
            );
            (x, drep.missed, ef.residual_norm())
        });
        for r in 1..m * n {
            assert_eq!(results[0].0, results[r].0, "rank {r} replica diverged");
        }
        let missed: u64 = results.iter().map(|(_, m, _)| *m).sum();
        assert!(missed > 0, "straggler node should miss the deadline");
        for (x, missed, rnorm) in &results {
            let _ = x;
            if *missed > 0 {
                assert!(*rnorm > 0.0, "a missing member keeps its mass");
            }
        }
    }

    #[test]
    fn quantized_replicas_agree_and_approximate_exact() {
        let (m, n, d, rho) = (2usize, 4usize, 240usize, 0.2f64);
        let exact = run_on_group(m * n, |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut x = vec_for(peer.rank(), d);
            ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef);
            x
        });
        let quantized = run_on_group(m * n, |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut q = Qsgd::new(127, 77);
            let mut scratch = CommScratch::new();
            let mut x = vec_for(peer.rank(), d);
            let rep = ok_sparse_all_reduce_ef_quantized(
                peer,
                &mut x,
                m,
                n,
                rho,
                &mut c,
                &mut q,
                &mut ef,
                &mut scratch,
            );
            (x, rep)
        });
        for r in 1..m * n {
            assert_eq!(quantized[0].0, quantized[r].0, "rank {r} differs");
        }
        // 8-bit levels keep the aggregate close to the exact-valued one.
        let norm = ops::l2_norm(&exact[0]).max(1e-6);
        let diff: f32 = exact[0]
            .iter()
            .zip(&quantized[0].0)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            .sqrt();
        assert!(
            diff / norm < 0.15,
            "quantized aggregate drifted: rel err {}",
            diff / norm
        );
        // Quantized split must be cheaper than the FP32 split it replaces.
        let (_, qrep) = (&quantized[0].0, &quantized[0].1);
        let exact_rep = run_on_group(m * n, |peer| {
            let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
            let mut c = SortTopK;
            let mut x = vec_for(peer.rank(), d);
            ok_sparse_all_reduce_ef(peer, &mut x, m, n, rho, &mut c, &mut ef)
        });
        assert!(qrep.inter_bytes_sent <= exact_rep[0].inter_bytes_sent);
    }

    /// The lossy absorb keeps the ledger exact: decoded selection plus
    /// residual reconstructs the compensated shard bitwise-exactly (f32
    /// subtraction of a value from itself is exact).
    #[test]
    fn quantized_residual_holds_quantization_error() {
        let d = 64;
        let mut ef = ErrorFeedback::new(d);
        let mut g = vec_for(0, d);
        ef.compensate(&mut g);
        let mut c = SortTopK;
        let exact = c.compress(&g, 8);
        let mut q = Qsgd::new(127, 3);
        let quant = q.quantize(&exact.values);
        let decoded = SparseGrad {
            values: quant.decode(),
            indices: exact.indices.clone(),
            dim: d,
        };
        ef.absorb_lossy(&g, &decoded);
        let mut recon = decoded.densify();
        ops::add_assign(&mut recon, ef.residual());
        for (a, b) in recon.iter().zip(&g) {
            assert!((a - b).abs() <= 1e-6 * b.abs().max(1.0));
        }
    }

    #[test]
    fn reaches_zero_miss_steady_state() {
        let (m, n, d, rho) = (2usize, 4usize, 240usize, 0.05f64);
        let miss_growth = run_on_group(m * n, |peer| {
            let mut scratch = CommScratch::new();
            let mut c = SortTopK;
            let mut x = vec_for(peer.rank(), d);
            ok_sparse_all_reduce_scratch(peer, &mut x, m, n, rho, &mut c, &mut scratch);
            let warm = scratch.misses();
            for round in 1..4 {
                let mut y = vec_for(50 * round + peer.rank(), d);
                ok_sparse_all_reduce_scratch(peer, &mut y, m, n, rho, &mut c, &mut scratch);
            }
            (warm, scratch.misses())
        });
        for (r, (warm, total)) in miss_growth.iter().enumerate() {
            assert!(*warm > 0, "rank {r}: warmup should allocate");
            assert_eq!(
                total, warm,
                "rank {r}: steady-state oksparse allocated communication buffers"
            );
        }
    }

    #[test]
    fn single_node_degenerates_gracefully() {
        let (m, n, d, rho) = (1usize, 4usize, 96usize, 0.2f64);
        let hitopk = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c);
            x
        });
        let oksparse = run_on_group(m * n, |peer| {
            let mut x = vec_for(peer.rank(), d);
            let mut c = SortTopK;
            ok_sparse_all_reduce(peer, &mut x, m, n, rho, &mut c);
            x
        });
        assert_eq!(hitopk, oksparse);
    }

    #[test]
    fn owner_lookup_covers_ranges() {
        let ranges = shards(10, 3); // [0,4) [4,7) [7,10)
        assert_eq!(owner_of(&ranges, 0), 0);
        assert_eq!(owner_of(&ranges, 3), 0);
        assert_eq!(owner_of(&ranges, 4), 1);
        assert_eq!(owner_of(&ranges, 6), 1);
        assert_eq!(owner_of(&ranges, 7), 2);
        assert_eq!(owner_of(&ranges, 9), 2);
    }

    /// EF twin scratch/traced equivalence, mirroring the hitopk suite.
    #[test]
    fn ef_traced_twin_is_bitwise_identical() {
        let (m, n, d, rho) = (2usize, 2usize, 64usize, 0.1f64);
        let run = |trace: bool| {
            run_on_group(m * n, move |peer| {
                let mut ef = ErrorFeedback::new(shard_len(d, n, peer.rank()));
                let mut c = SortTopK;
                let mut scratch = CommScratch::new();
                let mut reg = Registry::new();
                let mut out = Vec::new();
                for round in 0..3 {
                    let mut x = vec_for(100 * round + peer.rank(), d);
                    if trace {
                        ok_sparse_all_reduce_ef_traced(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            &mut scratch,
                            &mut reg,
                        );
                    } else {
                        ok_sparse_all_reduce_ef_scratch(
                            peer,
                            &mut x,
                            m,
                            n,
                            rho,
                            &mut c,
                            &mut ef,
                            &mut scratch,
                        );
                    }
                    out.push(x);
                }
                if trace {
                    assert_eq!(reg.counter("oksparse/invocations"), 3);
                    assert_eq!(reg.spans().len(), 12);
                }
                (out, ef.residual_norm())
            })
        };
        assert_eq!(run(false), run(true));
    }
}
