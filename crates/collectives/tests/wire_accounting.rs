//! Differential wire-byte accounting across the HiTopKComm variant family.
//!
//! Every hitopk twin — staged, fused, traced, reordered, resilient, and
//! deadline-bounded — moves exactly the same inter-node traffic when the
//! faults are clean and the node order is the identity. Since PR 8 they all
//! charge that traffic through one shared helper
//! (`group_wire_bytes(selection, g) == pair_wire_bytes(k) * (g - 1)`), so
//! a divergence here means a variant grew its own byte math again.

use cloudtrain_collectives::deadline::hitopk_all_reduce_ef_deadline;
use cloudtrain_collectives::fusion::hitopk_all_reduce_ef_fused_scratch;
use cloudtrain_collectives::group::run_on_group;
use cloudtrain_collectives::hierarchical::{
    hitopk_all_reduce_ef_scratch, hitopk_all_reduce_ef_traced, pair_wire_bytes, HiTopKReport,
};
use cloudtrain_collectives::reorder::hitopk_all_reduce_ef_reordered;
use cloudtrain_collectives::resilience::hitopk_all_reduce_ef_resilient;
use cloudtrain_collectives::{
    CommFaults, CommScratch, DeadlineFaults, DeadlinePolicy, ResiliencePolicy, ResilientPeer,
};
use cloudtrain_compress::exact::SortTopK;
use cloudtrain_compress::ErrorFeedback;
use cloudtrain_obs::Registry;
use cloudtrain_tensor::{init, partition};

const M: usize = 3;
const N: usize = 2;
const D: usize = 252;
const RHO: f64 = 0.1;

fn vec_for(rank: usize, d: usize) -> Vec<f32> {
    let mut rng = init::rng_from_seed(26_000 + rank as u64);
    init::gradient_like_tensor(d, &mut rng).into_vec()
}

fn shard_len(rank: usize) -> usize {
    partition::shards(D, N)[rank % N].len()
}

/// Runs one EF round of a hitopk variant on the standard payloads and
/// returns each rank's report.
type Variant = dyn Fn(
        &cloudtrain_collectives::Peer,
        &mut [f32],
        &mut SortTopK,
        &mut ErrorFeedback,
        &mut CommScratch,
    ) -> HiTopKReport
    + Sync;

fn reports_of(f: &Variant) -> Vec<HiTopKReport> {
    run_on_group(M * N, move |peer| {
        let mut x = vec_for(peer.rank(), D);
        let mut c = SortTopK;
        let mut ef = ErrorFeedback::new(shard_len(peer.rank()));
        let mut scratch = CommScratch::new();
        f(peer, &mut x, &mut c, &mut ef, &mut scratch)
    })
}

#[test]
fn all_hitopk_variants_report_identical_wire_bytes_for_identical_traffic() {
    let staged = reports_of(&|peer, x, c, ef, scratch| {
        hitopk_all_reduce_ef_scratch(peer, x, M, N, RHO, c, ef, scratch)
    });
    let fused = reports_of(&|peer, x, c, ef, scratch| {
        hitopk_all_reduce_ef_fused_scratch(peer, x, M, N, RHO, c, ef, scratch)
    });
    let traced = reports_of(&|peer, x, c, ef, scratch| {
        let mut reg = Registry::new();
        hitopk_all_reduce_ef_traced(peer, x, M, N, RHO, c, ef, scratch, &mut reg)
    });
    let reordered = reports_of(&|peer, x, c, ef, scratch| {
        let order: Vec<usize> = (0..M).collect();
        hitopk_all_reduce_ef_reordered(peer, x, M, N, RHO, c, ef, &order, scratch)
    });
    let resilient = reports_of(&|peer, x, c, ef, scratch| {
        let mut rp = ResilientPeer::new(peer, CommFaults::new(7), ResiliencePolicy::default());
        hitopk_all_reduce_ef_resilient(&mut rp, x, M, N, RHO, c, ef, scratch)
    });
    let deadline = reports_of(&|peer, x, c, ef, scratch| {
        let faults = DeadlineFaults::new(7);
        let policy = DeadlinePolicy::from_link(5e-5, 4e-10, 1 << 20, 1.5);
        let (rep, drep) =
            hitopk_all_reduce_ef_deadline(peer, x, M, N, RHO, c, ef, 0, &faults, &policy, scratch);
        assert_eq!(drep.missed, 0, "clean deadline run must not miss");
        rep
    });

    for (name, variant) in [
        ("fused", &fused),
        ("traced", &traced),
        ("reordered", &reordered),
        ("resilient", &resilient),
        ("deadline", &deadline),
    ] {
        assert_eq!(
            variant, &staged,
            "{name} variant disagrees with the staged report"
        );
    }

    // The shared helper is the single source of the byte math: every rank
    // selects exactly k̃ entries under error feedback, and the inter phase
    // gathers them across the m-member node group.
    for rep in &staged {
        assert_eq!(
            rep.inter_bytes_sent,
            pair_wire_bytes(rep.k_per_shard) * (M - 1),
            "staged report bytes disagree with pair_wire_bytes * (m - 1)"
        );
    }
}
