//! Differential tests: the torus (2D-Torus, §2.2) and recursive
//! halving-doubling AllReduce implementations are checked **against the
//! ring AllReduce** on the same per-rank payloads — two independent
//! implementations agreeing (and both agreeing with the sequential sum)
//! is much stronger evidence than either matching a hand-derived value.
//!
//! Topology edge cases the proptest sweeps rarely pin down get named
//! tests: non-power-of-two worlds, single-node (`m = 1`) and
//! single-GPU-per-node (`n = 1`) degenerate torus grids, the trivial
//! 1-rank world, and the rhd power-of-two precondition.

use cloudtrain_collectives::group::run_on_group;
use cloudtrain_collectives::rhd::rhd_all_reduce;
use cloudtrain_collectives::ring::ring_all_reduce;
use cloudtrain_collectives::torus::torus_all_reduce;
use cloudtrain_tensor::{init, ops};
use proptest::prelude::*;

const TOL: f32 = 1e-3;

fn per_rank_data(p: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..p)
        .map(|r| {
            let mut rng = init::rng_from_seed(seed ^ (r as u64).wrapping_mul(0x9E37));
            init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec()
        })
        .collect()
}

fn sequential_sum(data: &[Vec<f32>]) -> Vec<f32> {
    let mut acc = vec![0.0; data[0].len()];
    for x in data {
        ops::add_assign(&mut acc, x);
    }
    acc
}

/// Runs `ring_all_reduce` over the whole world on the given payloads.
fn ring_reference(data: &[Vec<f32>]) -> Vec<Vec<f32>> {
    let p = data.len();
    let members: Vec<usize> = (0..p).collect();
    let data = data.to_vec();
    run_on_group(p, move |peer| {
        let mut x = data[peer.rank()].clone();
        ring_all_reduce(peer, &mut x, &members);
        x
    })
}

/// Asserts the differential contract on one topology: every rank of
/// `results` matches rank 0 bitwise (the gather phases copy, never
/// recompute), and rank 0 matches both the ring reference and the
/// sequential sum within `TOL`.
fn assert_matches_ring(results: &[Vec<f32>], data: &[Vec<f32>], what: &str) {
    let ring = ring_reference(data);
    let expect = sequential_sum(data);
    for (r, x) in results.iter().enumerate() {
        assert_eq!(
            x.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            results[0].iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            "{what}: rank {r} disagrees bitwise with rank 0"
        );
    }
    assert!(
        ops::approx_eq(&results[0], &ring[0], TOL),
        "{what}: differs from ring AllReduce"
    );
    assert!(
        ops::approx_eq(&results[0], &expect, TOL),
        "{what}: differs from sequential sum"
    );
}

fn run_torus(m: usize, n: usize, d: usize, seed: u64) {
    let data = per_rank_data(m * n, d, seed);
    let results = {
        let data = data.clone();
        run_on_group(m * n, move |peer| {
            let mut x = data[peer.rank()].clone();
            torus_all_reduce(peer, &mut x, m, n);
            x
        })
    };
    assert_matches_ring(&results, &data, &format!("torus {m}x{n} d={d}"));
}

fn run_rhd(p: usize, d: usize, seed: u64) {
    let data = per_rank_data(p, d, seed);
    let results = {
        let data = data.clone();
        run_on_group(p, move |peer| {
            let mut x = data[peer.rank()].clone();
            rhd_all_reduce(peer, &mut x);
            x
        })
    };
    assert_matches_ring(&results, &data, &format!("rhd p={p} d={d}"));
}

// ---- torus vs ring: named topology edge cases --------------------------

#[test]
fn torus_matches_ring_on_non_power_of_two_grid() {
    // 3 nodes x 5 GPUs: both grid axes odd, world size 15 (non-pow2),
    // and d = 509 (prime) leaves ragged shards at every level.
    run_torus(3, 5, 509, 0xD1FF_0001);
}

#[test]
fn torus_matches_ring_on_single_node_grid() {
    // m = 1 degenerates the inter-node phase to a no-op.
    run_torus(1, 6, 257, 0xD1FF_0002);
}

#[test]
fn torus_matches_ring_on_single_gpu_per_node_grid() {
    // n = 1 degenerates the intra-node phases to no-ops.
    run_torus(5, 1, 130, 0xD1FF_0003);
}

#[test]
fn torus_matches_ring_on_trivial_world() {
    run_torus(1, 1, 17, 0xD1FF_0004);
}

#[test]
fn torus_matches_ring_when_vector_shorter_than_world() {
    // d < m*n forces empty shards in both phases.
    run_torus(3, 4, 5, 0xD1FF_0005);
}

// ---- rhd vs ring: power-of-two worlds and the precondition -------------

#[test]
fn rhd_matches_ring_on_power_of_two_worlds() {
    for p in [1usize, 2, 4, 8, 16] {
        run_rhd(p, 333, 0xD1FF_0010 ^ p as u64);
    }
}

#[test]
fn rhd_matches_ring_when_vector_shorter_than_world() {
    // d < p: halving produces empty exchange windows on some rounds.
    run_rhd(8, 3, 0xD1FF_0011);
}

#[test]
#[should_panic]
fn rhd_rejects_non_power_of_two_world() {
    run_rhd(3, 64, 0xD1FF_0012);
}

// ---- randomized differential sweep -------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Torus ≡ ring for arbitrary small grids and payload lengths.
    #[test]
    fn torus_vs_ring_differential(
        m in 1usize..4,
        n in 1usize..5,
        d in 1usize..300,
        seed in 0u64..1000,
    ) {
        run_torus(m, n, d, seed);
    }

    /// rhd ≡ ring for arbitrary power-of-two worlds and payload lengths.
    #[test]
    fn rhd_vs_ring_differential(
        logp in 0u32..4,
        d in 1usize..300,
        seed in 0u64..1000,
    ) {
        run_rhd(1 << logp, d, seed);
    }
}
