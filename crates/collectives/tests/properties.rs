//! Property-based tests: every dense collective computes the same sum as a
//! sequential reference for arbitrary cluster shapes and payloads, and the
//! sparse collectives keep their structural invariants.

use cloudtrain_collectives::group::run_on_group;
use cloudtrain_collectives::gtopk::{gtopk_all_reduce, merge_sparse, trim_topk};
use cloudtrain_collectives::hierarchical::{hitopk_all_reduce, shard_k};
use cloudtrain_collectives::ring::ring_all_reduce;
use cloudtrain_collectives::torus::torus_all_reduce;
use cloudtrain_collectives::tree::tree_all_reduce;
use cloudtrain_compress::exact::SortTopK;
use cloudtrain_compress::SparseGrad;
use cloudtrain_tensor::{init, ops};
use proptest::prelude::*;

fn per_rank_data(p: usize, d: usize, seed: u64) -> Vec<Vec<f32>> {
    (0..p)
        .map(|r| {
            let mut rng = init::rng_from_seed(seed ^ (r as u64).wrapping_mul(0x9E37));
            init::uniform_tensor(d, -1.0, 1.0, &mut rng).into_vec()
        })
        .collect()
}

fn sequential_sum(data: &[Vec<f32>]) -> Vec<f32> {
    let mut acc = vec![0.0; data[0].len()];
    for x in data {
        ops::add_assign(&mut acc, x);
    }
    acc
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Ring, tree, and torus AllReduce all match the sequential sum for
    /// arbitrary grid shapes and vector lengths.
    #[test]
    fn dense_collectives_match_sequential_sum(
        m in 1usize..4,
        n in 1usize..5,
        d in 1usize..200,
        seed in 0u64..1000,
    ) {
        let p = m * n;
        let data = per_rank_data(p, d, seed);
        let expect = sequential_sum(&data);
        let members: Vec<usize> = (0..p).collect();

        for algo in 0..3 {
            let data = data.clone();
            let members = members.clone();
            let results = run_on_group(p, move |peer| {
                let mut x = data[peer.rank()].clone();
                match algo {
                    0 => ring_all_reduce(peer, &mut x, &members),
                    1 => tree_all_reduce(peer, &mut x, &members),
                    _ => torus_all_reduce(peer, &mut x, m, n),
                }
                x
            });
            for (r, x) in results.iter().enumerate() {
                prop_assert!(
                    ops::approx_eq(x, &expect, 1e-3),
                    "algo {algo} rank {r} diverged (m={m}, n={n}, d={d})"
                );
                prop_assert_eq!(x, &results[0], "algo {} not identical across ranks", algo);
            }
        }
    }

    /// HiTopKComm at full density equals the dense sum; at any density all
    /// ranks agree and per-shard nonzeros stay within m*k.
    #[test]
    fn hitopk_invariants(
        m in 1usize..4,
        n in 1usize..5,
        d in 8usize..150,
        rho in 0.05f64..1.0,
        seed in 0u64..1000,
    ) {
        let p = m * n;
        let data = per_rank_data(p, d, seed);
        let expect = sequential_sum(&data);
        let results = {
            let data = data.clone();
            run_on_group(p, move |peer| {
                let mut x = data[peer.rank()].clone();
                let mut c = SortTopK;
                let rep = hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c);
                (x, rep)
            })
        };
        let k = shard_k(d, n, rho);
        for (x, rep) in &results {
            prop_assert_eq!(x, &results[0].0);
            prop_assert!(rep.shard_nonzeros <= m * k);
        }
        if rho == 1.0 {
            prop_assert!(ops::approx_eq(&results[0].0, &expect, 1e-3));
        }
        // (No norm bound is asserted: truncation can *raise* the norm of
        // the sum when a dropped small entry would have cancelled a kept
        // large one.)
    }

    /// merge + trim keeps indices sorted/unique and the dense equivalence
    /// merge(a, b).densify() == a.densify() + b.densify().
    #[test]
    fn merge_sparse_is_dense_addition(
        d in 4usize..100,
        ka in 1usize..20,
        kb in 1usize..20,
        seed in 0u64..1000,
    ) {
        let data = per_rank_data(2, d, seed);
        let a = cloudtrain_compress::exact::topk_sort(&data[0], ka.min(d));
        let b = cloudtrain_compress::exact::topk_sort(&data[1], kb.min(d));
        let m: SparseGrad = merge_sparse(&a, &b);
        // Sorted unique indices.
        prop_assert!(m.indices.windows(2).all(|w| w[0] < w[1]));
        // Dense equivalence.
        let mut expect = a.densify();
        ops::add_assign(&mut expect, &b.densify());
        prop_assert_eq!(m.densify(), expect);
        // Trim invariants.
        let t = trim_topk(&m, 5);
        prop_assert!(t.len() <= 5);
        prop_assert!(t.indices.windows(2).all(|w| w[0] < w[1]));
    }

    /// gTop-k returns identical k-sparse results on all ranks for any
    /// power-of-two group.
    #[test]
    fn gtopk_agreement(
        log_p in 1u32..4,
        d in 16usize..150,
        k in 1usize..12,
        seed in 0u64..1000,
    ) {
        let p = 1usize << log_p;
        let data = per_rank_data(p, d, seed);
        let results = run_on_group(p, move |peer| {
            let mut x = data[peer.rank()].clone();
            let mut c = SortTopK;
            gtopk_all_reduce(peer, &mut x, k, &mut c);
            x
        });
        for x in &results {
            prop_assert_eq!(x, &results[0]);
            prop_assert!(x.iter().filter(|v| **v != 0.0).count() <= k);
        }
    }
}

/// The shrunk counterexample from `properties.proptest-regressions`,
/// promoted to a named always-run test so the fix can never silently
/// regress even if the seed file is pruned: at m = 2, n = 4, d = 14 the
/// per-shard k rounds small enough that an off-by-one in `shard_k` once
/// let `shard_nonzeros` exceed `m * k`.
#[test]
fn regression_hitopk_invariants_shrunk_case() {
    let (m, n, d, rho, seed) = (2usize, 4usize, 14usize, 0.5682980775287474f64, 174u64);
    let p = m * n;
    let data = per_rank_data(p, d, seed);
    let results = {
        let data = data.clone();
        run_on_group(p, move |peer| {
            let mut x = data[peer.rank()].clone();
            let mut c = SortTopK;
            let rep = hitopk_all_reduce(peer, &mut x, m, n, rho, &mut c);
            (x, rep)
        })
    };
    let k = shard_k(d, n, rho);
    for (x, rep) in &results {
        assert_eq!(x, &results[0].0, "ranks disagree");
        assert!(
            rep.shard_nonzeros <= m * k,
            "shard_nonzeros {} > m*k {}",
            rep.shard_nonzeros,
            m * k
        );
    }
}
