//! Property-based tests of the resilience layer: error-feedback mass
//! conservation holds under *any* fault schedule.
//!
//! The safety argument for graceful degradation is an invariant, not a
//! special case: for every inter-node stream `j`, the gradient mass that
//! entered the sparsification point over a run equals the mass applied to
//! the model plus the mass still parked in residuals — whatever subset of
//! contributions the fault plan degraded. These properties drive random
//! fault schedules (degradation probabilities, stragglers, hop drops) and
//! assert that ledger balances element-wise.

use cloudtrain_collectives::group::run_on_group;
use cloudtrain_collectives::resilience::{
    gtopk_all_reduce_ef_resilient, hitopk_all_reduce_ef_resilient, CommFaults, ResiliencePolicy,
    ResilientPeer,
};
use cloudtrain_collectives::CommScratch;
use cloudtrain_compress::exact::SortTopK;
use cloudtrain_compress::ErrorFeedback;
use cloudtrain_tensor::partition::shards;
use cloudtrain_tensor::{init, ops};
use proptest::prelude::*;

fn data_for(rank: usize, round: usize, d: usize, seed: u64) -> Vec<f32> {
    let mut rng = init::rng_from_seed(seed ^ (rank as u64) << 8 ^ round as u64);
    init::gradient_like_tensor(d, &mut rng).into_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// HiTopKComm mass ledger: per stream `j`,
    /// `Σ_rounds applied_shard_j + Σ_nodes final_residual_(i,j)`
    /// `= Σ_rounds Σ_nodes shard_j(node-local dense sum)`
    /// element-wise, for any fault schedule.
    #[test]
    fn hitopk_mass_is_conserved_under_any_fault_schedule(
        grid in 0usize..3,
        d in 16usize..80,
        rounds in 1usize..4,
        seed in 0u64..10_000,
        degrade_prob in 0.0f64..1.0,
        drop_prob in 0.0f64..0.3,
        straggler in 0usize..8,
        straggler_prob in 0.0f64..1.0,
    ) {
        let (m, n) = [(2usize, 2usize), (2, 4), (4, 2)][grid];
        let p = m * n;
        let rho = 0.2;
        let faults = CommFaults::new(seed)
            .with_drops(drop_prob)
            .with_degrade(degrade_prob)
            .straggle(straggler % p, straggler_prob);

        let results = run_on_group(p, |peer| {
            let mut rp = ResilientPeer::new(peer, faults.clone(), ResiliencePolicy::default());
            let shard_len = shards(d, n)[peer.rank() % n].len();
            let mut ef = ErrorFeedback::new(shard_len);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut applied = vec![0.0f32; d];
            for round in 0..rounds {
                let mut x = data_for(peer.rank(), round, d, seed);
                hitopk_all_reduce_ef_resilient(
                    &mut rp, &mut x, m, n, rho, &mut c, &mut ef, &mut scratch,
                );
                ops::add_assign(&mut applied, &x);
            }
            (applied, ef.residual().to_vec())
        });

        // All ranks applied the identical aggregate.
        for (r, (applied, _)) in results.iter().enumerate() {
            prop_assert_eq!(applied, &results[0].0, "rank {} diverged", r);
        }

        // Ledger, per stream j: what entered the sparsification points.
        let mut entered = vec![0.0f32; d];
        for round in 0..rounds {
            for i in 0..m {
                // Node i's dense sum this round.
                let mut node_sum = vec![0.0f32; d];
                for g in 0..n {
                    ops::add_assign(&mut node_sum, &data_for(i * n + g, round, d, seed));
                }
                ops::add_assign(&mut entered, &node_sum);
            }
        }
        // What left: applied aggregate + every owner's final residual,
        // scattered back to its shard coordinates.
        let mut left = results[0].0.clone();
        let chunks = shards(d, n);
        for i in 0..m {
            for (j, chunk) in chunks.iter().enumerate() {
                let residual = &results[i * n + j].1;
                ops::add_assign(chunk.slice_mut(&mut left), residual);
            }
        }
        for (idx, (a, b)) in entered.iter().zip(&left).enumerate() {
            prop_assert!(
                (a - b).abs() <= 1e-3 * (1.0 + a.abs()),
                "coordinate {}: entered {} != applied+residual {}",
                idx, a, b
            );
        }
    }

    /// gTop-k mass ledger: `Σ_rounds applied + Σ_ranks final_residual`
    /// accounts for every rank's *selected* contribution — and a fully
    /// degraded rank's entire stream survives in its residual.
    #[test]
    fn gtopk_degraded_rank_mass_survives_in_residual(
        psel in 0usize..3,
        d in 16usize..60,
        seed in 0u64..10_000,
        straggler_prob in 0.0f64..1.0,
    ) {
        let p = [2usize, 4, 8][psel];
        let k = 4;
        let faults = CommFaults::new(seed).straggle(1 % p, straggler_prob);
        let results = run_on_group(p, |peer| {
            let mut rp = ResilientPeer::new(peer, faults.clone(), ResiliencePolicy::default());
            let mut ef = ErrorFeedback::new(d);
            let mut c = SortTopK;
            let mut scratch = CommScratch::new();
            let mut outs = Vec::new();
            for round in 0..3 {
                let mut x = data_for(peer.rank(), round, d, seed);
                gtopk_all_reduce_ef_resilient(&mut rp, &mut x, k, &mut c, &mut ef, &mut scratch);
                outs.push(x);
            }
            (outs, ef.residual().to_vec(), rp.report())
        });
        for (r, (outs, _, _)) in results.iter().enumerate() {
            prop_assert_eq!(outs, &results[0].0, "rank {} diverged", r);
        }
        // Whenever a round degraded a rank, its residual right after holds
        // the full compensated gradient; at minimum, total degradations and
        // nonzero residuals must be consistent.
        for (_, residual, report) in &results {
            if report.degraded_members == 3 {
                // Every round degraded: residual = sum of all 3 compensated
                // inputs, i.e. exactly sum of the rank's raw gradients.
                prop_assert!(ops::l2_norm(residual) > 0.0);
            }
        }
    }
}
