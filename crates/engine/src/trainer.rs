//! The convergence plane: real synchronous data-parallel training over
//! worker threads (Fig. 10, Table 2).
//!
//! Every worker thread owns a full model replica (identically seeded), a
//! shard of the synthetic data stream, and — for sparse strategies — its
//! error-feedback residual. Gradients are aggregated with the *real*
//! collectives, the optimizer is LARS (rates optionally computed with
//! PTO), and determinism is end-to-end: replicas stay bitwise identical
//! across workers, which the test suite asserts.

use cloudtrain_collectives::fusion::{
    hitopk_all_reduce_ef_fused_resilient, hitopk_all_reduce_ef_fused_traced,
};
use cloudtrain_collectives::group::run_on_group;
use cloudtrain_collectives::gtopk::gtopk_all_reduce_scratch;
use cloudtrain_collectives::hierarchical::{hitopk_all_reduce_ef_traced, sparse_all_reduce_naive};
use cloudtrain_collectives::quantized::quantized_all_reduce;
use cloudtrain_collectives::reorder::{hitopk_all_reduce_ef_reordered, torus_all_reduce_reordered};
use cloudtrain_collectives::resilience::{
    gtopk_all_reduce_ef_resilient, hitopk_all_reduce_ef_resilient, torus_all_reduce_resilient,
    ResilienceReport,
};
use cloudtrain_collectives::ring::all_gather_f32;
use cloudtrain_collectives::torus::torus_all_reduce;
use cloudtrain_collectives::tree::tree_all_reduce;
use cloudtrain_collectives::{
    optimize_ring_order, CommFaults, CommScratch, PairCost, Peer, ResiliencePolicy, ResilientPeer,
};
use cloudtrain_compress::exact::QuickTopK;
use cloudtrain_compress::quantize::Qsgd;
use cloudtrain_compress::{ErrorFeedback, MsTopK};
use cloudtrain_dnn::data::{Batch, SyntheticImages, SyntheticSeq};
use cloudtrain_dnn::loss::{softmax_cross_entropy, top_k_accuracy};
use cloudtrain_dnn::model::Model;
use cloudtrain_dnn::models::{mlp, resnet_lite, vgg_lite, TransformerModel};
use cloudtrain_obs::Registry;
use cloudtrain_optim::adam::{Adam, AdamConfig};
use cloudtrain_optim::lamb::{Lamb, LambConfig};
use cloudtrain_optim::lars::{apply_with_rates, compute_rates, LarsConfig};
use cloudtrain_optim::mixed::{fp16_wire, LossScaler};
use cloudtrain_optim::schedule::{LrSchedule, WarmupCosine};
use cloudtrain_optim::Optimizer;
use cloudtrain_simnet::{clouds, probe_pairwise, FaultPlan};
use cloudtrain_tensor::{init, ops, partition};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use crate::fusion::{
    bucket_spans, cloud_calibrated_model, plan_buckets, plan_buckets_cost_model, FusionMode,
};
use crate::strategy::Strategy;

/// Which reference workload to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Workload {
    /// ResNet-lite on synthetic class-conditional images.
    ResNetLite,
    /// VGG-lite on synthetic class-conditional images.
    VggLite,
    /// MLP on synthetic class-conditional images (flattened).
    Mlp,
    /// TinyTransformer on synthetic marker sequences.
    Transformer,
}

/// Which optimizer drives the update step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OptimizerKind {
    /// LARS + momentum (the paper's large-batch recipe; rates via PTO when
    /// `use_pto` is set).
    #[default]
    Lars,
    /// Plain momentum SGD.
    Momentum,
    /// LAMB (the paper's choice for attention models).
    Lamb,
    /// Plain Adam.
    Adam,
}

/// Fault schedule of one run's communication plane (convergence side).
///
/// The decisions expand into a [`CommFaults`] plan: virtual hop drops are
/// absorbed by the retry ladder (dense traffic stays exact), and degraded
/// contributions collapse to empty sparse blocks that the error-feedback
/// residual re-injects on the next step — so a faulted run *completes every
/// step* and differs from the clean run only through the gradient subsets
/// that arrived late.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Seed of the fault decision stream (independent of the model seed).
    pub seed: u64,
    /// Per-hop virtual drop probability.
    pub drop_prob: f64,
    /// Baseline per-(step, member) degradation probability for sparse
    /// contributions.
    pub degrade_prob: f64,
    /// Ranks behaving as stragglers.
    pub straggler_ranks: Vec<usize>,
    /// Elevated degradation probability applied to straggler ranks.
    pub straggler_degrade_prob: f64,
}

impl FaultConfig {
    /// A clean plan under `seed` — decisions all come up "no fault".
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            drop_prob: 0.0,
            degrade_prob: 0.0,
            straggler_ranks: Vec::new(),
            straggler_degrade_prob: 0.0,
        }
    }

    /// Sets the per-hop drop probability.
    pub fn with_drops(mut self, prob: f64) -> Self {
        self.drop_prob = prob;
        self
    }

    /// Sets the baseline degradation probability.
    pub fn with_degrade(mut self, prob: f64) -> Self {
        self.degrade_prob = prob;
        self
    }

    /// Marks `rank` as a straggler degrading with probability `prob`.
    pub fn straggle(mut self, rank: usize, prob: f64) -> Self {
        self.straggler_ranks.push(rank);
        self.straggler_degrade_prob = prob;
        self
    }

    /// Expands the schedule into the collectives-layer fault plan.
    pub fn comm_faults(&self) -> CommFaults {
        let mut f = CommFaults::new(self.seed)
            .with_drops(self.drop_prob)
            .with_degrade(self.degrade_prob);
        for &rank in &self.straggler_ranks {
            f = f.straggle(rank, self.straggler_degrade_prob);
        }
        f
    }
}

/// Configuration of one distributed training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DistConfig {
    /// Number of simulated nodes (`m`).
    pub nodes: usize,
    /// Workers per node (`n`).
    pub gpus_per_node: usize,
    /// Aggregation strategy.
    pub strategy: Strategy,
    /// Workload to train.
    pub workload: Workload,
    /// Per-worker batch size.
    pub local_batch: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Iterations per epoch.
    pub iters_per_epoch: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Optimizer for the update step.
    pub optimizer: OptimizerKind,
    /// Whether LARS rates are computed with PTO.
    pub use_pto: bool,
    /// Validation samples evaluated at the end of each epoch.
    pub eval_samples: usize,
    /// Number of classes in the synthetic task.
    pub classes: usize,
    /// Mixed precision: dynamic loss scaling around backprop (§5.5.2).
    pub mixed_precision: bool,
    /// Emulate the FP16 gradient wire on the dense aggregation paths
    /// (CommLib transmits FP16 elements, Fig. 7).
    pub fp16_wire: bool,
    /// Master seed (model init, data, compressor randomness).
    pub seed: u64,
    /// Communication fault schedule; `None` trains on the clean plane.
    /// When set, `DenseTorus`, `MsTopKHiTopK` and `GTopK` route through the
    /// resilient collectives (other strategies keep the clean path).
    pub faults: Option<FaultConfig>,
    /// How per-layer gradients are grouped into collectives on the dense
    /// aggregation paths (see [`FusionMode`]). Sparse strategies always
    /// aggregate the whole compensated tensor.
    #[serde(default)]
    pub fusion: FusionMode,
    /// Route `MsTopKHiTopK` through the fused compress–reduce collective
    /// (one ring-buffer hop feeds the sparsifier directly; bitwise
    /// identical to the unfused pipeline on both the clean and faulted
    /// planes).
    #[serde(default)]
    pub fused_compress_reduce: bool,
    /// Probe the modeled cloud fabric (pairwise α/β over the simulator,
    /// virtual clock only) and reorder the inter-node rings with the
    /// seeded cost-model optimizer ([`probed_node_order`]). Applies to the
    /// clean `DenseTorus` and `MsTopKHiTopK` paths; resilient and fused
    /// routes keep their natural order. On the uniform modeled fabric the
    /// optimizer returns the identity order, so training is bitwise
    /// identical either way.
    #[serde(default)]
    pub rank_reorder: bool,
}

impl DistConfig {
    /// A small-but-real default: 2 nodes × 4 workers on ResNet-lite.
    pub fn small(strategy: Strategy, workload: Workload) -> Self {
        Self {
            nodes: 2,
            gpus_per_node: 4,
            strategy,
            workload,
            local_batch: 8,
            epochs: 3,
            iters_per_epoch: 12,
            lr: 0.08,
            optimizer: OptimizerKind::Lars,
            use_pto: true,
            eval_samples: 64,
            classes: 4,
            mixed_precision: false,
            fp16_wire: false,
            seed: 42,
            faults: None,
            fusion: FusionMode::WholeTensor,
            fused_compress_reduce: false,
            rank_reorder: false,
        }
    }

    /// Total worker count (`P = m · n`).
    pub fn world(&self) -> usize {
        self.nodes * self.gpus_per_node
    }
}

/// Probes the modeled cloud fabric for `cfg` and returns the optimized
/// inter-node ring order.
///
/// The probe runs two-point transfers over fresh `NetSim` instances on the
/// config's cluster shape (Tencent-class links, `cfg.gpus_per_node`
/// workers per node) — virtual clock only — and the estimates feed the
/// seeded rank-reordering optimizer, targeting the per-node chunk of
/// `payload_bytes` that rides the dense inter ring. The result is a pure
/// function of `(cfg, payload_bytes)`: every rank computes the same
/// canonical permutation, so no extra agreement round is needed.
pub fn probed_node_order(cfg: &DistConfig, payload_bytes: usize) -> Vec<usize> {
    let mut spec = clouds::tencent(cfg.nodes);
    spec.gpus_per_node = cfg.gpus_per_node;
    let est = probe_pairwise(&spec, &FaultPlan::new(cfg.seed));
    let cost = PairCost::from_matrices(
        est.nodes(),
        est.alpha_matrix().to_vec(),
        est.beta_matrix().to_vec(),
    );
    let chunk = (payload_bytes / cfg.world().max(1)).max(1);
    optimize_ring_order(&cost, chunk, cfg.seed)
}

/// End-of-epoch metrics (identical on every worker).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EpochMetrics {
    /// 0-indexed epoch.
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Top-1 validation accuracy.
    pub val_top1: f32,
    /// Top-5 validation accuracy (the paper's CNN metric); equals top-1
    /// when fewer than 5 classes.
    pub val_top5: f32,
    /// L2 norm of this worker's error-feedback residual (0 for dense).
    pub residual_norm: f32,
    /// Hop retries this worker's resilience policy charged this epoch
    /// (0 on the clean plane).
    pub fault_retries: u64,
    /// Sparse contributions this worker degraded to empty blocks this
    /// epoch (0 on the clean plane).
    pub fault_degraded: u64,
    /// Allocating scratch-arena takes this epoch — must drop to 0 once
    /// the communication path reaches steady state, faults or not.
    pub scratch_misses: u64,
}

/// Result of one distributed run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Strategy label (e.g. `"MSTopK-SGD"`).
    pub strategy: String,
    /// Per-epoch metrics.
    pub epochs: Vec<EpochMetrics>,
}

impl TrainReport {
    /// Final validation top-1 accuracy.
    pub fn final_top1(&self) -> f32 {
        self.epochs.last().map(|e| e.val_top1).unwrap_or(0.0)
    }

    /// Final validation top-5 accuracy.
    pub fn final_top5(&self) -> f32 {
        self.epochs.last().map(|e| e.val_top5).unwrap_or(0.0)
    }
}

/// One worker's dataset view.
enum Data {
    Images(SyntheticImages),
    Seq(SyntheticSeq),
}

impl Data {
    fn train_batch(&self, cfg: &DistConfig, step: u64, rank: usize) -> Batch {
        let start = (step * cfg.world() as u64 + rank as u64) * cfg.local_batch as u64;
        match self {
            Data::Images(g) => g.batch(start, cfg.local_batch),
            Data::Seq(g) => g.batch(start, cfg.local_batch),
        }
    }

    fn val_batch(&self, cfg: &DistConfig) -> Batch {
        // Validation ids live far beyond any training id.
        let start = 1u64 << 40;
        match self {
            Data::Images(g) => g.batch(start, cfg.eval_samples),
            Data::Seq(g) => g.batch(start, cfg.eval_samples),
        }
    }
}

fn build_model(cfg: &DistConfig) -> Box<dyn Model> {
    let mut rng = init::rng_from_seed(cfg.seed);
    match cfg.workload {
        Workload::ResNetLite => Box::new(resnet_lite(8, cfg.classes, &mut rng)),
        Workload::VggLite => Box::new(vgg_lite(8, 16, cfg.classes, &mut rng)),
        Workload::Mlp => Box::new(mlp(3 * 16 * 16, 64, cfg.classes, &mut rng)),
        Workload::Transformer => {
            Box::new(TransformerModel::new(64, 16, 16, 2, cfg.classes, &mut rng))
        }
    }
}

/// Forward-ordered layer ranges of a workload's model as the trainer
/// builds it — what the autotuner and fusion planner price. The ranges
/// depend only on the architecture, not on the seed.
pub fn workload_layer_ranges(workload: Workload) -> Vec<cloudtrain_dnn::model::ParamRange> {
    let cfg = DistConfig::small(Strategy::DenseTreeAr, workload);
    build_model(&cfg).layer_ranges()
}

fn build_data(cfg: &DistConfig) -> Data {
    match cfg.workload {
        Workload::Transformer => Data::Seq(SyntheticSeq::new(cfg.classes, 64, 16, cfg.seed)),
        Workload::Mlp => Data::Images(SyntheticImages::new(cfg.classes, 3, 16, 0.6, cfg.seed)),
        _ => Data::Images(SyntheticImages::new(cfg.classes, 3, 16, 0.6, cfg.seed)),
    }
}

/// Reshapes an image batch for MLP consumption (flatten) — other models
/// take the batch as-is.
fn adapt_input(cfg: &DistConfig, mut batch: Batch) -> Batch {
    if cfg.workload == Workload::Mlp {
        if let cloudtrain_dnn::model::Input::Dense(t) = &mut batch.input {
            let b = t.shape()[0];
            let rest = t.len() / b;
            // lint:allow(panic_free, reason = "b * rest == t.len() by construction of rest on the previous line, so the reshape cannot fail")
            t.reshape(vec![b, rest]).expect("flatten for mlp");
        }
    }
    batch
}

/// Mid-run context threaded into one training segment by the elastic
/// runtime. The `Default` (epoch 0, step 0, no snapshot) reproduces a
/// from-scratch run bit for bit — the non-elastic entry points all pass
/// it.
#[derive(Debug, Clone, Default)]
pub(crate) struct SegmentCtx {
    /// Global epoch index the segment starts at.
    pub start_epoch: usize,
    /// Global step counter at segment start.
    pub start_step: u64,
    /// Total epochs of the full planned schedule, for the LR schedule;
    /// 0 means "use the phase sum" (the non-elastic paths).
    pub schedule_total_epochs: usize,
    /// Snapshot to resume from; `None` starts from the seeded init.
    pub init: Option<SegmentInit>,
    /// Stable node id backing each group of `gpus_per_node` ranks,
    /// ascending. Empty means the identity topology `0..nodes`.
    pub node_ids: Vec<usize>,
}

/// State restored at the start of a resumed segment.
#[derive(Debug, Clone)]
pub(crate) struct SegmentInit {
    /// Flat model parameters (identical on every rank).
    pub params: Vec<f32>,
    /// Optimizer velocity (identical on every rank).
    pub velocity: Vec<f32>,
    /// Error-feedback shard residuals keyed by `(node id, local rank)`.
    pub ef_shards: BTreeMap<(u64, u64), Vec<f32>>,
}

/// State a worker hands back at the end of a segment, from which the
/// elastic runtime cuts a sharded checkpoint.
#[derive(Debug, Clone)]
pub(crate) struct SegmentEnd {
    /// Flat model parameters after the segment's last step.
    pub params: Vec<f32>,
    /// Optimizer velocity after the segment's last step.
    pub velocity: Vec<f32>,
    /// This worker's error-feedback shard residual.
    pub ef_shard: Vec<f32>,
    /// Global step counter after the segment.
    pub step: u64,
}

/// Runs one distributed training job and returns rank 0's report (all
/// ranks produce identical reports; the harness asserts so in tests).
#[derive(Debug, Clone)]
pub struct DistTrainer {
    /// Run configuration.
    pub cfg: DistConfig,
}

impl DistTrainer {
    /// Creates a trainer for the given configuration.
    pub fn new(cfg: DistConfig) -> Self {
        Self { cfg }
    }

    /// Executes the run; returns the per-rank reports in rank order.
    pub fn run_all_ranks(&self) -> Vec<TrainReport> {
        let phases = [(self.cfg.strategy, self.cfg.epochs)];
        run_on_group(self.cfg.world(), |peer| self.worker(peer, &phases))
            .into_iter()
            .map(|(report, _)| report)
            .collect()
    }

    /// Executes the run and returns rank 0's report.
    pub fn run(&self) -> TrainReport {
        self.run_all_ranks().remove(0)
    }

    /// Executes the run and returns rank 0's report together with its
    /// observability registry: per-epoch `train/epoch` spans (with the
    /// HiTopKComm stage spans nested inside on the MSTopK strategy),
    /// per-epoch fault/allocation counters, and final-accuracy gauges.
    /// The training outcome is bitwise identical to [`Self::run`] —
    /// instrumentation only reads values the untraced path computes.
    pub fn run_observed(&self) -> (TrainReport, Registry) {
        let phases = [(self.cfg.strategy, self.cfg.epochs)];
        run_on_group(self.cfg.world(), |peer| self.worker(peer, &phases)).remove(0)
    }

    /// Executes a multi-phase run — the DAWNBench mechanic (§5.6): the
    /// *same* model replicas continue across `(strategy, epochs)` phases,
    /// with error-feedback residuals dropped at each aggregation switch.
    /// `cfg.strategy`/`cfg.epochs` are ignored in favour of the phases.
    ///
    /// # Panics
    /// Panics if `phases` is empty.
    pub fn run_phases(&self, phases: &[(Strategy, usize)]) -> TrainReport {
        assert!(!phases.is_empty(), "run_phases: need at least one phase");
        run_on_group(self.cfg.world(), |peer| self.worker(peer, phases))
            .remove(0)
            .0
    }

    fn worker(&self, peer: &Peer, phases: &[(Strategy, usize)]) -> (TrainReport, Registry) {
        let (report, reg, _) = self.worker_at(peer, phases, &SegmentCtx::default());
        (report, reg)
    }

    /// The worker body, parameterized by a [`SegmentCtx`] so the elastic
    /// runtime can resume mid-schedule from a sharded checkpoint. With the
    /// default context (epoch 0, step 0, no snapshot) this *is* the
    /// classic worker — the non-elastic entry points delegate here, so the
    /// two paths cannot drift.
    pub(crate) fn worker_at(
        &self,
        peer: &Peer,
        phases: &[(Strategy, usize)],
        seg: &SegmentCtx,
    ) -> (TrainReport, Registry, SegmentEnd) {
        let cfg = &self.cfg;
        let (m, n) = (cfg.nodes, cfg.gpus_per_node);
        let rank = peer.rank();
        let mut model = build_model(cfg);
        let data = build_data(cfg);
        let d = model.param_count();
        let ranges = model.layer_ranges();
        let world = cfg.world() as f32;

        // Topology-probed node order for the inter-node rings. Every rank
        // derives the same permutation from the config alone.
        let node_order = cfg
            .rank_reorder
            .then(|| probed_node_order(cfg, d * std::mem::size_of::<f32>()));

        // Per-strategy state.
        let mut ef_full = ErrorFeedback::new(d);
        let shard_len = partition::shard_for(d, n, rank % n).len();
        let mut ef_shard = ErrorFeedback::new(shard_len);
        let samplings = phases
            .iter()
            .find_map(|(s, _)| match s {
                Strategy::MsTopKHiTopK { samplings, .. } => Some(*samplings),
                _ => None,
            })
            .unwrap_or(30);
        let mut mstopk = MsTopK::new(samplings, cfg.seed);
        let mut exact = QuickTopK;
        let levels = phases
            .iter()
            .find_map(|(s, _)| match s {
                Strategy::Qsgd { levels } => Some(*levels),
                _ => None,
            })
            .unwrap_or(127);
        let mut qsgd = Qsgd::new(levels, cfg.seed ^ rank as u64);

        // Optimizer state.
        let lars_cfg = LarsConfig::default();
        let mut velocity = vec![0.0f32; d];
        let mut lamb = matches!(cfg.optimizer, OptimizerKind::Lamb)
            .then(|| Lamb::new(d, ranges.clone(), LambConfig::default()));
        let mut adam = matches!(cfg.optimizer, OptimizerKind::Adam)
            .then(|| Adam::new(d, AdamConfig::default()));
        // The LR schedule spans the *full* planned run — a resumed
        // segment must anneal exactly where the uninterrupted run would.
        let total_epochs: usize = if seg.schedule_total_epochs > 0 {
            seg.schedule_total_epochs
        } else {
            phases.iter().map(|(_, e)| e).sum()
        };
        let schedule = WarmupCosine {
            base: cfg.lr,
            warmup_steps: (cfg.iters_per_epoch / 2) as u64,
            total_steps: (total_epochs * cfg.iters_per_epoch) as u64,
            final_lr: cfg.lr * 0.01,
        };

        let mut scaler = LossScaler::default();
        let mut params = vec![0.0f32; d];
        let mut grads = vec![0.0f32; d];
        // One communication arena per worker: after the first iteration the
        // sparse collectives run without per-hop allocations.
        let mut scratch = CommScratch::new();
        // Resilience wrapper (per-pair hop counters persist across steps so
        // sender and receiver replay identical fault ladders).
        let mut resilient = cfg
            .faults
            .as_ref()
            .map(|f| ResilientPeer::new(peer, f.comm_faults(), ResiliencePolicy::default()));
        let mut fault_mark = ResilienceReport::default();
        let mut miss_mark = 0usize;
        let mut report = TrainReport {
            strategy: cfg.strategy.label().to_string(),
            epochs: Vec::new(),
        };
        // Observability journal: spans advance on a logical clock — one
        // unit per iteration plus whatever the nested traced collectives
        // charge in elements touched — so the trace is deterministic and
        // byte-stable across runs.
        let mut reg = Registry::new();

        // Tensor-fusion plan for the dense paths: backward-order buckets
        // map to contiguous forward spans of the flat gradient, so each
        // bucket is one collective over one slice. The plan is a function
        // of the model and the config — published to the registry once.
        let elem_bytes = std::mem::size_of::<f32>();
        let spans = match cfg.fusion {
            FusionMode::WholeTensor => None,
            FusionMode::PerLayer => Some((plan_buckets(&ranges, elem_bytes, 1), 1usize)),
            FusionMode::Bucketed { threshold_bytes } => Some((
                plan_buckets(&ranges, elem_bytes, threshold_bytes),
                threshold_bytes,
            )),
            FusionMode::CostModel => {
                let model = cloud_calibrated_model(&ranges);
                Some(plan_buckets_cost_model(&ranges, elem_bytes, &model))
            }
        };
        let spans = spans.map(|(buckets, threshold)| {
            let spans = bucket_spans(&ranges, &buckets);
            let saved = (ranges.len() - spans.len()) as u64;
            reg.counter_add("fusion/buckets", spans.len() as u64);
            reg.counter_add("fusion/layers", ranges.len() as u64);
            reg.counter_add("fusion/messages_saved", saved);
            reg.gauge_set("fusion/threshold_bytes", threshold as f64);
            reg.gauge_set("fusion/payload_bytes", (d * elem_bytes) as f64);
            // Launch-latency seconds the plan saves per iteration relative
            // to a per-layer launch schedule, under the calibrated model.
            reg.gauge_set(
                "fusion/modeled_alpha_saved_seconds",
                saved as f64 * cloud_calibrated_model(&ranges).comm_alpha,
            );
            spans
        });

        // Resume from a segment snapshot: model replicas, optimizer
        // velocity, and this worker's error-feedback shard residual —
        // keyed by the *stable node id*, so a survivor keeps its residual
        // across a world-size change while a joiner starts from zeros.
        if let Some(init) = &seg.init {
            model.write_params(&init.params);
            velocity.copy_from_slice(&init.velocity);
            let node = seg.node_ids.get(rank / n).copied().unwrap_or(rank / n) as u64;
            if let Some(residual) = init.ef_shards.get(&(node, (rank % n) as u64)) {
                if residual.len() == shard_len {
                    ef_shard.set_residual(residual);
                }
            }
        }

        let mut step = seg.start_step;
        let mut epoch = seg.start_epoch;
        for (phase_idx, &(strategy, phase_epochs)) in phases.iter().enumerate() {
            if phase_idx > 0 {
                // Strategy switch: drop stale residuals (their content was
                // meaningful only under the previous sparsifier) and open a
                // fresh allocation window — the new schedule's first epoch
                // legitimately warms the arena up again.
                ef_full.reset();
                ef_shard.reset();
                scratch.reset_stats();
                miss_mark = 0;
            }
            for _ in 0..phase_epochs {
                let epoch_span = reg.span_open("train/epoch", reg.now());
                let mut loss_sum = 0.0f32;
                for _ in 0..cfg.iters_per_epoch {
                    reg.advance(1.0);
                    let batch = adapt_input(cfg, data.train_batch(cfg, step, rank));
                    let logits = model.forward(&batch.input, true);
                    let (loss, mut dlogits) = softmax_cross_entropy(&logits, &batch.labels);
                    loss_sum += loss;
                    if cfg.mixed_precision {
                        // Backprop on the scaled loss (linear, so scaling the
                        // logits gradient is equivalent).
                        scaler.scale_grad(dlogits.as_mut_slice());
                    }
                    model.backward(dlogits);
                    model.read_grads(&mut grads);
                    model.zero_grads();
                    if cfg.fp16_wire && !cfg.strategy.is_sparse() {
                        fp16_wire(&mut grads);
                    }

                    // Aggregate.
                    match strategy {
                        Strategy::DenseTreeAr => {
                            let members: Vec<usize> = (0..peer.size()).collect();
                            match &spans {
                                // Per-element reduction order in the double
                                // binary tree depends only on the member
                                // list, so bucketed launches are bitwise
                                // identical to the whole-tensor launch.
                                Some(spans) => {
                                    for s in spans {
                                        tree_all_reduce(
                                            peer,
                                            &mut grads[s.offset..s.offset + s.len],
                                            &members,
                                        );
                                    }
                                }
                                None => tree_all_reduce(peer, &mut grads, &members),
                            }
                        }
                        Strategy::DenseTorus => {
                            let whole = [cloudtrain_dnn::model::ParamRange { offset: 0, len: d }];
                            for s in spans.as_deref().unwrap_or(&whole) {
                                let g = &mut grads[s.offset..s.offset + s.len];
                                if let Some(rp) = resilient.as_mut() {
                                    // Retry ladder: dense traffic always
                                    // arrives, so the sum stays exact under
                                    // any drop rate.
                                    torus_all_reduce_resilient(rp, g, m, n, &mut scratch);
                                } else if let Some(order) = node_order.as_deref() {
                                    torus_all_reduce_reordered(peer, g, m, n, order);
                                } else {
                                    torus_all_reduce(peer, g, m, n);
                                }
                            }
                        }
                        Strategy::TopKNaiveAg { rho } => {
                            ef_full.compensate(&mut grads);
                            let k = ((d as f64 * rho).round() as usize).max(1);
                            // The selection is recomputed inside the collective;
                            // absorb needs it too, so compress once here.
                            let sel =
                                cloudtrain_compress::Compressor::compress(&mut exact, &grads, k);
                            ef_full.absorb(&grads, &sel);
                            sparse_all_reduce_naive(peer, &mut grads, k, &mut exact);
                        }
                        Strategy::MsTopKHiTopK { rho, .. } => {
                            if let Some(rp) = resilient.as_mut() {
                                // Graceful degradation: a member missing its
                                // deadline ships an empty block; its shard
                                // gradient survives in `ef_shard`.
                                if cfg.fused_compress_reduce {
                                    hitopk_all_reduce_ef_fused_resilient(
                                        rp,
                                        &mut grads,
                                        m,
                                        n,
                                        rho,
                                        &mut mstopk,
                                        &mut ef_shard,
                                        &mut scratch,
                                    );
                                } else {
                                    hitopk_all_reduce_ef_resilient(
                                        rp,
                                        &mut grads,
                                        m,
                                        n,
                                        rho,
                                        &mut mstopk,
                                        &mut ef_shard,
                                        &mut scratch,
                                    );
                                }
                            } else if cfg.fused_compress_reduce {
                                hitopk_all_reduce_ef_fused_traced(
                                    peer,
                                    &mut grads,
                                    m,
                                    n,
                                    rho,
                                    &mut mstopk,
                                    &mut ef_shard,
                                    &mut scratch,
                                    &mut reg,
                                );
                            } else if let Some(order) = node_order.as_deref() {
                                // Reordered inter ring (untraced: the stage
                                // spans belong to the natural-order path).
                                hitopk_all_reduce_ef_reordered(
                                    peer,
                                    &mut grads,
                                    m,
                                    n,
                                    rho,
                                    &mut mstopk,
                                    &mut ef_shard,
                                    order,
                                    &mut scratch,
                                );
                            } else {
                                hitopk_all_reduce_ef_traced(
                                    peer,
                                    &mut grads,
                                    m,
                                    n,
                                    rho,
                                    &mut mstopk,
                                    &mut ef_shard,
                                    &mut scratch,
                                    &mut reg,
                                );
                            }
                        }
                        Strategy::GTopK { rho } => {
                            let k = ((d as f64 * rho).round() as usize).max(1);
                            if let Some(rp) = resilient.as_mut() {
                                // Compensate/select/absorb happen inside the
                                // resilient variant (degradation must precede
                                // absorb to park the full shard as residual).
                                gtopk_all_reduce_ef_resilient(
                                    rp,
                                    &mut grads,
                                    k,
                                    &mut exact,
                                    &mut ef_full,
                                    &mut scratch,
                                );
                            } else {
                                ef_full.compensate(&mut grads);
                                let sel = cloudtrain_compress::Compressor::compress(
                                    &mut exact, &grads, k,
                                );
                                ef_full.absorb(&grads, &sel);
                                gtopk_all_reduce_scratch(
                                    peer,
                                    &mut grads,
                                    k,
                                    &mut exact,
                                    &mut scratch,
                                );
                            }
                        }
                        Strategy::Qsgd { .. } => {
                            // Unbiased quantization needs no error feedback.
                            quantized_all_reduce(peer, &mut grads, &mut qsgd);
                        }
                    }
                    ops::scale(&mut grads, 1.0 / world);
                    if cfg.mixed_precision {
                        // Unscale *after* aggregation: the aggregated gradient
                        // is identical on every rank, so the overflow/skip
                        // decision is too, keeping replicas in lockstep.
                        if !scaler.unscale_and_update(&mut grads) {
                            step += 1;
                            continue; // skipped step (grads were zeroed)
                        }
                    }

                    // Update.
                    let lr = schedule.lr(step);
                    model.read_params(&mut params);
                    match cfg.optimizer {
                        OptimizerKind::Lars => {
                            let rates = if cfg.use_pto {
                                cloudtrain_pto::lars_rates(
                                    peer, &params, &grads, &ranges, &lars_cfg,
                                )
                            } else {
                                compute_rates(&params, &grads, &ranges, &lars_cfg)
                            };
                            apply_with_rates(
                                &mut params,
                                &grads,
                                &mut velocity,
                                &ranges,
                                &rates,
                                lr,
                                &lars_cfg,
                            );
                        }
                        OptimizerKind::Momentum => {
                            for ((w, g), v) in params.iter_mut().zip(&grads).zip(&mut velocity) {
                                *v = 0.9 * *v + g;
                                *w -= lr * *v;
                            }
                        }
                        OptimizerKind::Lamb => {
                            lamb.as_mut()
                                // lint:allow(panic_free, reason = "lamb state is constructed above whenever the optimizer kind is Lamb; a None is an engine wiring bug")
                                .expect("lamb state")
                                .step(&mut params, &grads, lr)
                        }
                        OptimizerKind::Adam => {
                            adam.as_mut()
                                // lint:allow(panic_free, reason = "adam state is constructed above whenever the optimizer kind is Adam; a None is an engine wiring bug")
                                .expect("adam state")
                                .step(&mut params, &grads, lr)
                        }
                    }
                    model.write_params(&params);
                    step += 1;
                }

                // Validation (same batch on every rank — no communication).
                let val = adapt_input(cfg, data.val_batch(cfg));
                let logits = model.forward(&val.input, false);
                let top1 = top_k_accuracy(&logits, &val.labels, 1);
                let top5 = top_k_accuracy(&logits, &val.labels, 5.min(cfg.classes));
                let residual_norm = match strategy {
                    Strategy::TopKNaiveAg { .. } | Strategy::GTopK { .. } => {
                        ef_full.residual_norm()
                    }
                    Strategy::MsTopKHiTopK { .. } => ef_shard.residual_norm(),
                    _ => 0.0,
                };
                // Fault accounting: per-epoch deltas of the cumulative
                // resilience report and the arena's allocation counter.
                let fr = resilient.as_ref().map(|rp| rp.report()).unwrap_or_default();
                let misses = scratch.misses();
                let metrics = EpochMetrics {
                    epoch,
                    train_loss: loss_sum / cfg.iters_per_epoch as f32,
                    val_top1: top1,
                    val_top5: top5,
                    residual_norm,
                    fault_retries: fr.retries - fault_mark.retries,
                    fault_degraded: fr.degraded_members - fault_mark.degraded_members,
                    scratch_misses: (misses - miss_mark) as u64,
                };
                reg.counter_add("train/fault_retries", metrics.fault_retries);
                reg.counter_add("train/fault_degraded", metrics.fault_degraded);
                reg.counter_add("train/scratch_misses", metrics.scratch_misses);
                report.epochs.push(metrics);
                reg.span_close(epoch_span, reg.now());
                fault_mark = fr;
                miss_mark = misses;
                epoch += 1;
                // Keep collective schedules aligned across ranks.
                let _ = all_gather_f32(peer, &[top1], &(0..peer.size()).collect::<Vec<_>>());
            }
        }
        reg.counter_add("train/epochs", report.epochs.len() as u64);
        reg.gauge_set("train/final_top1", report.final_top1() as f64);
        reg.gauge_set("train/final_top5", report.final_top5() as f64);
        if let Some(last) = report.epochs.last() {
            reg.gauge_set("train/final_loss", last.train_loss as f64);
            reg.gauge_set("train/residual_norm", last.residual_norm as f64);
        }
        scratch.publish_obs(&mut reg);
        model.read_params(&mut params);
        let end = SegmentEnd {
            params,
            velocity,
            ef_shard: ef_shard.residual().to_vec(),
            step,
        };
        (report, reg, end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(strategy: Strategy, workload: Workload) -> DistConfig {
        DistConfig {
            epochs: 2,
            iters_per_epoch: 8,
            ..DistConfig::small(strategy, workload)
        }
    }

    #[test]
    fn dense_training_learns_and_ranks_agree() {
        let trainer = DistTrainer::new(quick(Strategy::DenseTorus, Workload::Mlp));
        let reports = trainer.run_all_ranks();
        let first = &reports[0];
        assert!(
            first.final_top1() > 0.6,
            "val acc {} too low; losses {:?}",
            first.final_top1(),
            first.epochs
        );
        for r in &reports[1..] {
            assert_eq!(r.epochs.len(), first.epochs.len());
            for (a, b) in r.epochs.iter().zip(&first.epochs) {
                // Validation runs on the same batch with synced replicas,
                // so it must agree bitwise. Train loss is local to each
                // rank's data shard and legitimately differs.
                assert_eq!(a.val_top1, b.val_top1, "ranks diverged");
                assert_eq!(a.val_top5, b.val_top5);
            }
        }
    }

    #[test]
    fn tree_and_torus_dense_agree() {
        let a = DistTrainer::new(quick(Strategy::DenseTreeAr, Workload::Mlp)).run();
        let b = DistTrainer::new(quick(Strategy::DenseTorus, Workload::Mlp)).run();
        // Both are exact dense sums; training curves match to float noise.
        for (ea, eb) in a.epochs.iter().zip(&b.epochs) {
            assert!(
                (ea.train_loss - eb.train_loss).abs() < 1e-3,
                "dense variants diverged: {} vs {}",
                ea.train_loss,
                eb.train_loss
            );
        }
    }

    #[test]
    fn sparse_strategies_learn_with_error_feedback() {
        for strategy in [
            Strategy::TopKNaiveAg { rho: 0.05 },
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 20,
            },
        ] {
            let mut cfg = quick(strategy, Workload::Mlp);
            cfg.epochs = 3;
            let report = DistTrainer::new(cfg).run();
            assert!(
                report.final_top1() > 0.5,
                "{} failed to learn: {:?}",
                report.strategy,
                report.epochs
            );
            assert!(report.epochs.last().unwrap().residual_norm > 0.0);
        }
    }

    #[test]
    fn mstopk_ranks_stay_bitwise_synced() {
        let trainer = DistTrainer::new(quick(
            Strategy::MsTopKHiTopK {
                rho: 0.1,
                samplings: 15,
            },
            Workload::Mlp,
        ));
        let reports = trainer.run_all_ranks();
        for r in &reports[1..] {
            for (a, b) in r.epochs.iter().zip(&reports[0].epochs) {
                assert_eq!(a.val_top1, b.val_top1);
            }
        }
    }

    #[test]
    fn gtopk_learns_with_error_feedback() {
        let mut cfg = quick(Strategy::GTopK { rho: 0.05 }, Workload::Mlp);
        cfg.epochs = 3;
        let report = DistTrainer::new(cfg).run();
        assert!(
            report.final_top1() > 0.5,
            "gTopK failed to learn: {:?}",
            report.epochs
        );
        assert!(report.epochs.last().unwrap().residual_norm > 0.0);
    }

    #[test]
    fn qsgd_learns_without_error_feedback() {
        let mut cfg = quick(Strategy::Qsgd { levels: 127 }, Workload::Mlp);
        cfg.epochs = 3;
        let report = DistTrainer::new(cfg).run();
        assert!(
            report.final_top1() > 0.5,
            "QSGD failed to learn: {:?}",
            report.epochs
        );
        // Unbiased quantization runs without a residual.
        assert_eq!(report.epochs.last().unwrap().residual_norm, 0.0);
    }

    #[test]
    fn qsgd_ranks_stay_synced_despite_stochastic_codes() {
        // Per-rank RNGs differ, but the aggregated (gathered + decoded)
        // gradient is identical everywhere, so replicas stay in lockstep.
        let trainer = DistTrainer::new(quick(Strategy::Qsgd { levels: 63 }, Workload::Mlp));
        let reports = trainer.run_all_ranks();
        for r in &reports[1..] {
            for (a, b) in r.epochs.iter().zip(&reports[0].epochs) {
                assert_eq!(a.val_top1, b.val_top1);
            }
        }
    }

    #[test]
    fn mixed_precision_with_fp16_wire_learns_and_stays_synced() {
        let mut cfg = quick(Strategy::DenseTorus, Workload::Mlp);
        cfg.mixed_precision = true;
        cfg.fp16_wire = true;
        cfg.epochs = 3;
        let reports = DistTrainer::new(cfg).run_all_ranks();
        assert!(
            reports[0].final_top1() > 0.6,
            "mixed precision failed to learn: {:?}",
            reports[0].epochs
        );
        for r in &reports[1..] {
            assert_eq!(
                r.final_top1(),
                reports[0].final_top1(),
                "loss-scaled replicas diverged"
            );
        }
    }

    #[test]
    fn fp16_wire_tracks_fp32_training() {
        let base = quick(Strategy::DenseTorus, Workload::Mlp);
        let fp32 = DistTrainer::new(base.clone()).run();
        let mut cfg = base;
        cfg.fp16_wire = true;
        let fp16 = DistTrainer::new(cfg).run();
        // Half-precision wire loses ~2^-11 relative per element; training
        // outcomes stay close.
        assert!(
            (fp16.final_top1() - fp32.final_top1()).abs() < 0.1,
            "fp16 wire diverged: {} vs {}",
            fp16.final_top1(),
            fp32.final_top1()
        );
    }

    #[test]
    fn phase_switching_continues_the_same_model() {
        // Warmup sparse, then dense — accuracy must carry over the switch
        // (the same replicas keep training), and the residual must reset.
        let cfg = quick(Strategy::DenseTorus, Workload::Mlp);
        let report = DistTrainer::new(cfg).run_phases(&[
            (
                Strategy::MsTopKHiTopK {
                    rho: 0.05,
                    samplings: 20,
                },
                2,
            ),
            (Strategy::DenseTorus, 2),
        ]);
        assert_eq!(report.epochs.len(), 4);
        // The sparse phase accumulates a residual; the dense phase has none.
        assert!(report.epochs[1].residual_norm > 0.0);
        assert_eq!(report.epochs[2].residual_norm, 0.0);
        // No catastrophic reset of learning across the switch.
        let before = report.epochs[1].val_top1;
        let after = report.epochs[2].val_top1;
        assert!(
            after >= before - 0.1,
            "switch destroyed progress: {before} -> {after}"
        );
        assert!(report.final_top1() > 0.6, "{:?}", report.epochs);
    }

    #[test]
    fn lamb_and_adam_optimizers_train_the_transformer() {
        for optimizer in [OptimizerKind::Lamb, OptimizerKind::Adam] {
            let mut cfg = quick(Strategy::DenseTorus, Workload::Transformer);
            cfg.optimizer = optimizer;
            cfg.lr = 0.01;
            cfg.epochs = 3;
            cfg.iters_per_epoch = 10;
            let report = DistTrainer::new(cfg).run();
            let first = report.epochs.first().unwrap().train_loss;
            let last = report.epochs.last().unwrap().train_loss;
            assert!(
                last < first,
                "{optimizer:?} failed to reduce loss: {first} -> {last}"
            );
        }
    }

    /// The acceptance scenario: 1% hop drops plus two stragglers whose
    /// contributions frequently degrade to empty blocks.
    fn hostile_faults() -> FaultConfig {
        FaultConfig::new(77)
            .with_drops(0.01)
            .straggle(1, 0.7)
            .straggle(5, 0.7)
    }

    #[test]
    fn resilient_hitopk_completes_and_converges_under_faults() {
        let mut clean_cfg = quick(
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 20,
            },
            Workload::Mlp,
        );
        clean_cfg.epochs = 3;
        let mut faulty_cfg = clean_cfg.clone();
        faulty_cfg.faults = Some(hostile_faults());

        let clean = DistTrainer::new(clean_cfg).run();
        let reports = DistTrainer::new(faulty_cfg).run_all_ranks();
        let faulty = &reports[0];

        // Every simulated step completed: full epoch roster, replicas in
        // lockstep despite per-rank degradation decisions.
        assert_eq!(faulty.epochs.len(), clean.epochs.len());
        for r in &reports[1..] {
            for (a, b) in r.epochs.iter().zip(&faulty.epochs) {
                assert_eq!(a.val_top1, b.val_top1, "faulted ranks diverged");
            }
        }
        // Converges within tolerance of the fault-free run.
        assert!(
            faulty.final_top1() > 0.5,
            "faulted run failed to learn: {:?}",
            faulty.epochs
        );
        assert!(
            (faulty.final_top1() - clean.final_top1()).abs() < 0.2,
            "faulted {} vs clean {} outside tolerance",
            faulty.final_top1(),
            clean.final_top1()
        );
        // The stragglers really did degrade (rank 1 is one of them), and the
        // retry ladder really did fire somewhere.
        let total_degraded: u64 = reports[1].epochs.iter().map(|e| e.fault_degraded).sum();
        assert!(total_degraded > 0, "straggler never degraded");
        let total_retries: u64 = reports
            .iter()
            .flat_map(|r| r.epochs.iter().map(|e| e.fault_retries))
            .sum();
        assert!(total_retries > 0, "1% drops never triggered a retry");
    }

    #[test]
    fn resilient_dense_torus_matches_clean_run_exactly() {
        // Hop drops are virtual: the retry ladder charges time but every
        // payload still arrives, so dense training under heavy drops is
        // bitwise the clean run.
        let base = quick(Strategy::DenseTorus, Workload::Mlp);
        let clean = DistTrainer::new(base.clone()).run();
        let mut cfg = base;
        cfg.faults = Some(FaultConfig::new(9).with_drops(0.3));
        let faulty = DistTrainer::new(cfg).run();
        for (a, b) in clean.epochs.iter().zip(&faulty.epochs) {
            assert_eq!(a.val_top1, b.val_top1);
            assert_eq!(a.train_loss, b.train_loss);
        }
        let retries: u64 = faulty.epochs.iter().map(|e| e.fault_retries).sum();
        assert!(retries > 0, "30% drops must exercise the ladder");
        assert_eq!(
            faulty.epochs.iter().map(|e| e.fault_degraded).sum::<u64>(),
            0
        );
    }

    #[test]
    fn resilient_gtopk_learns_and_ranks_agree_under_faults() {
        let mut cfg = quick(Strategy::GTopK { rho: 0.05 }, Workload::Mlp);
        cfg.epochs = 3;
        cfg.faults = Some(FaultConfig::new(3).with_drops(0.02).with_degrade(0.2));
        let reports = DistTrainer::new(cfg).run_all_ranks();
        for r in &reports[1..] {
            for (a, b) in r.epochs.iter().zip(&reports[0].epochs) {
                assert_eq!(a.val_top1, b.val_top1, "gtopk faulted ranks diverged");
            }
        }
        assert!(
            reports[0].final_top1() > 0.5,
            "faulted gtopk failed to learn: {:?}",
            reports[0].epochs
        );
        assert!(reports[0].epochs.last().unwrap().residual_norm > 0.0);
    }

    #[test]
    fn scratch_misses_reach_zero_steady_state_under_faults() {
        let mut cfg = quick(
            Strategy::MsTopKHiTopK {
                rho: 0.1,
                samplings: 15,
            },
            Workload::Mlp,
        );
        cfg.epochs = 3;
        cfg.faults = Some(hostile_faults());
        let report = DistTrainer::new(cfg).run();
        assert!(report.epochs[0].scratch_misses > 0, "warmup must allocate");
        for e in &report.epochs[1..] {
            assert_eq!(
                e.scratch_misses, 0,
                "epoch {} allocated on the comm path under faults",
                e.epoch
            );
        }
    }

    #[test]
    fn faulted_phase_switch_keeps_training() {
        // DAWNBench mechanic under faults: sparse warmup phase, then dense —
        // the switch resets residuals and the allocation window, and the
        // model keeps converging.
        let mut cfg = quick(Strategy::DenseTorus, Workload::Mlp);
        cfg.faults = Some(hostile_faults());
        let report = DistTrainer::new(cfg).run_phases(&[
            (
                Strategy::MsTopKHiTopK {
                    rho: 0.05,
                    samplings: 20,
                },
                2,
            ),
            (Strategy::DenseTorus, 2),
        ]);
        assert_eq!(report.epochs.len(), 4);
        assert_eq!(report.epochs[2].residual_norm, 0.0);
        assert_eq!(report.epochs[2].fault_degraded, 0, "dense phase degraded");
        let before = report.epochs[1].val_top1;
        let after = report.epochs[2].val_top1;
        assert!(
            after >= before - 0.1,
            "faulted switch destroyed progress: {before} -> {after}"
        );
        assert!(report.final_top1() > 0.6, "{:?}", report.epochs);
    }

    #[test]
    fn observed_run_matches_plain_and_records_trace() {
        let cfg = quick(
            Strategy::MsTopKHiTopK {
                rho: 0.1,
                samplings: 15,
            },
            Workload::Mlp,
        );
        let plain = DistTrainer::new(cfg.clone()).run();
        let (observed, reg) = DistTrainer::new(cfg.clone()).run_observed();
        // Instrumentation must not perturb training.
        assert_eq!(plain.final_top1(), observed.final_top1());
        for (a, b) in plain.epochs.iter().zip(&observed.epochs) {
            assert_eq!(a.val_top1, b.val_top1);
            assert_eq!(a.train_loss, b.train_loss);
        }
        // One epoch span per epoch, HiTopKComm stage spans nested inside.
        let epoch_spans: Vec<_> = reg
            .spans()
            .iter()
            .filter(|s| s.name == "train/epoch")
            .collect();
        assert_eq!(epoch_spans.len(), cfg.epochs);
        assert!(epoch_spans.iter().all(|s| s.depth == 0));
        let hitopk_iters = cfg.epochs * cfg.iters_per_epoch;
        assert_eq!(
            reg.counter("hitopk/invocations"),
            hitopk_iters as u64,
            "one traced hitopk per iteration"
        );
        assert!(reg
            .spans()
            .iter()
            .any(|s| s.name == "hitopk/inter all-gather" && s.depth == 1));
        assert_eq!(reg.counter("train/epochs"), cfg.epochs as u64);
        assert_eq!(
            reg.gauge("train/final_top1"),
            Some(observed.final_top1() as f64)
        );
        assert!(reg.counter("scratch/f32_takes") > 0);
        // Same-seed traces are byte-identical.
        let (_, reg2) = DistTrainer::new(cfg).run_observed();
        assert_eq!(reg.to_jsonl(), reg2.to_jsonl());
    }

    #[test]
    fn fused_compress_reduce_matches_unfused_bitwise() {
        let base = quick(
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 20,
            },
            Workload::Mlp,
        );
        let unfused = DistTrainer::new(base.clone()).run();
        let mut cfg = base;
        cfg.fused_compress_reduce = true;
        let fused = DistTrainer::new(cfg).run();
        assert_eq!(fused.epochs.len(), unfused.epochs.len());
        for (a, b) in fused.epochs.iter().zip(&unfused.epochs) {
            assert_eq!(a.train_loss, b.train_loss, "fused path changed training");
            assert_eq!(a.val_top1, b.val_top1);
            assert_eq!(a.residual_norm, b.residual_norm);
        }
    }

    #[test]
    fn fused_compress_reduce_under_faults_matches_unfused_bitwise() {
        let mut base = quick(
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 20,
            },
            Workload::Mlp,
        );
        base.faults = Some(hostile_faults());
        let unfused = DistTrainer::new(base.clone()).run_all_ranks();
        let mut cfg = base;
        cfg.fused_compress_reduce = true;
        let fused = DistTrainer::new(cfg).run_all_ranks();
        // Same fault seed → same degradation decisions → same training
        // trajectory, and replicas stay in lockstep.
        for (fr, ur) in fused.iter().zip(&unfused) {
            for (a, b) in fr.epochs.iter().zip(&ur.epochs) {
                assert_eq!(a.val_top1, b.val_top1, "faulted fused path diverged");
                assert_eq!(a.train_loss, b.train_loss);
                assert_eq!(a.fault_degraded, b.fault_degraded);
            }
        }
        let degraded: u64 = fused[1].epochs.iter().map(|e| e.fault_degraded).sum();
        assert!(degraded > 0, "straggler never degraded on the fused path");
    }

    #[test]
    fn bucketed_tree_allreduce_is_bitwise_whole_tensor() {
        // The double binary tree reduces each element in a rank order fixed
        // by the member list alone, so bucketing cannot change bits.
        let base = quick(Strategy::DenseTreeAr, Workload::Mlp);
        let whole = DistTrainer::new(base.clone()).run();
        for fusion in [
            FusionMode::PerLayer,
            FusionMode::Bucketed {
                threshold_bytes: 16 * 1024,
            },
        ] {
            let mut cfg = base.clone();
            cfg.fusion = fusion;
            let bucketed = DistTrainer::new(cfg).run();
            for (a, b) in bucketed.epochs.iter().zip(&whole.epochs) {
                assert_eq!(a.train_loss, b.train_loss, "{fusion:?} changed training");
                assert_eq!(a.val_top1, b.val_top1);
            }
        }
    }

    #[test]
    fn bucketed_torus_tracks_whole_tensor_and_ranks_agree() {
        // Torus shard boundaries move with the launch length, so bucketing
        // reassociates the sum: equal within float noise, not bitwise.
        let base = quick(Strategy::DenseTorus, Workload::Mlp);
        let whole = DistTrainer::new(base.clone()).run();
        let mut cfg = base;
        cfg.fusion = FusionMode::CostModel;
        let reports = DistTrainer::new(cfg).run_all_ranks();
        for r in &reports[1..] {
            for (a, b) in r.epochs.iter().zip(&reports[0].epochs) {
                assert_eq!(a.val_top1, b.val_top1, "bucketed ranks diverged");
            }
        }
        for (a, b) in reports[0].epochs.iter().zip(&whole.epochs) {
            assert!(
                (a.train_loss - b.train_loss).abs() < 1e-3,
                "bucketed torus diverged: {} vs {}",
                a.train_loss,
                b.train_loss
            );
        }
        assert!(reports[0].final_top1() > 0.6, "{:?}", reports[0].epochs);
    }

    #[test]
    fn fusion_stats_reach_the_registry_and_stay_byte_stable() {
        let mut cfg = quick(Strategy::DenseTorus, Workload::Mlp);
        cfg.fusion = FusionMode::CostModel;
        let (_, reg) = DistTrainer::new(cfg.clone()).run_observed();
        let buckets = reg.counter("fusion/buckets");
        let layers = reg.counter("fusion/layers");
        assert!(buckets >= 1);
        assert!(layers >= buckets);
        assert_eq!(reg.counter("fusion/messages_saved"), layers - buckets);
        assert!(reg.gauge("fusion/threshold_bytes").unwrap_or(0.0) >= 1.0);
        assert!(reg.gauge("fusion/payload_bytes").unwrap_or(0.0) > 0.0);
        // Same-seed bucketed traces are byte-identical.
        let (_, reg2) = DistTrainer::new(cfg).run_observed();
        assert_eq!(reg.to_jsonl(), reg2.to_jsonl());
    }

    #[test]
    fn fused_observed_run_records_fused_spans() {
        let mut cfg = quick(
            Strategy::MsTopKHiTopK {
                rho: 0.1,
                samplings: 15,
            },
            Workload::Mlp,
        );
        cfg.fused_compress_reduce = true;
        let (report, reg) = DistTrainer::new(cfg.clone()).run_observed();
        assert!(report.final_top1() > 0.0);
        let iters = (cfg.epochs * cfg.iters_per_epoch) as u64;
        assert_eq!(reg.counter("hitopk/invocations"), iters);
        assert_eq!(reg.counter("hitopk/fused_invocations"), iters);
        assert!(reg
            .spans()
            .iter()
            .any(|s| s.name == "hitopk/fused reduce-compress" && s.depth == 1));
        // The dense-materialization span never opens on the fused path.
        assert!(!reg
            .spans()
            .iter()
            .any(|s| s.name == "hitopk/intra reduce-scatter"));
    }

    #[test]
    fn dist_config_without_fusion_fields_deserializes() {
        // Configs serialized before the fusion knobs existed must load
        // with the whole-tensor default.
        let mut v = Serialize::to_value(&quick(Strategy::DenseTorus, Workload::Mlp));
        let serde::Value::Object(entries) = &mut v else {
            panic!("DistConfig must serialize to an object");
        };
        entries
            .retain(|(k, _)| k != "fusion" && k != "fused_compress_reduce" && k != "rank_reorder");
        let cfg = DistConfig::from_value(&v).unwrap();
        assert_eq!(cfg.fusion, FusionMode::WholeTensor);
        assert!(!cfg.fused_compress_reduce);
        assert!(!cfg.rank_reorder);
    }

    #[test]
    fn probed_node_order_is_deterministic_and_canonical() {
        let cfg = quick(Strategy::DenseTorus, Workload::Mlp);
        let a = probed_node_order(&cfg, 1 << 20);
        let b = probed_node_order(&cfg, 1 << 20);
        // Same config, same probe, same permutation — no agreement round
        // is needed between ranks.
        assert_eq!(a, b);
        assert_eq!(a[0], 0, "order must be canonical (node 0 first)");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..cfg.nodes).collect::<Vec<_>>());
    }

    #[test]
    fn rank_reordered_dense_training_is_bitwise_identical_on_uniform_fabric() {
        // The modeled fabric is uniform, so the optimizer keeps the
        // identity order and the reordered twin must not change a bit.
        let base = quick(Strategy::DenseTorus, Workload::Mlp);
        let plain = DistTrainer::new(base.clone()).run();
        let mut cfg = base;
        cfg.rank_reorder = true;
        let reordered = DistTrainer::new(cfg).run();
        for (a, b) in reordered.epochs.iter().zip(&plain.epochs) {
            assert_eq!(a.train_loss, b.train_loss, "reorder changed training");
            assert_eq!(a.val_top1, b.val_top1);
        }
    }

    #[test]
    fn rank_reordered_sparse_training_matches_plain_and_ranks_agree() {
        let base = quick(
            Strategy::MsTopKHiTopK {
                rho: 0.05,
                samplings: 20,
            },
            Workload::Mlp,
        );
        let plain = DistTrainer::new(base.clone()).run();
        let mut cfg = base;
        cfg.rank_reorder = true;
        let reports = DistTrainer::new(cfg).run_all_ranks();
        for r in &reports[1..] {
            for (a, b) in r.epochs.iter().zip(&reports[0].epochs) {
                assert_eq!(a.val_top1, b.val_top1, "reordered ranks diverged");
            }
        }
        for (a, b) in reports[0].epochs.iter().zip(&plain.epochs) {
            assert_eq!(a.train_loss, b.train_loss, "reorder changed training");
            assert_eq!(a.val_top1, b.val_top1);
            assert_eq!(a.residual_norm, b.residual_norm);
        }
    }

    #[test]
    fn transformer_workload_trains() {
        let mut cfg = quick(Strategy::DenseTorus, Workload::Transformer);
        cfg.lr = 0.02;
        cfg.epochs = 3;
        cfg.iters_per_epoch = 10;
        let report = DistTrainer::new(cfg).run();
        let first = report.epochs.first().unwrap().train_loss;
        let last = report.epochs.last().unwrap().train_loss;
        assert!(
            last < first,
            "transformer loss did not drop: {first} -> {last}"
        );
    }
}
