//! The iteration-time model: compute profiles + simulated communication +
//! compression/LARS/I-O cost models, composed with wait-free-backprop
//! overlap. This is the source of Fig. 1, Fig. 9, and Tables 3–5.

use cloudtrain_compress::gpu_cost::{exact_topk_cost, mstopk_cost, GpuRates};
use cloudtrain_simnet::collectives::{
    sim_gtopk_all_reduce, sim_hitopk, sim_naive_sparse_all_gather, sim_quantized_all_reduce,
    sim_torus_all_reduce, sim_tree_all_reduce_hier,
};
use cloudtrain_simnet::{ClusterSpec, FaultCounters, FaultPlan, NetSim, SimResilience};
use serde::{Deserialize, Serialize};

use crate::profile::ModelProfile;
use crate::strategy::Strategy;

/// Fraction of the FF&BP time during which gradient communication can be
/// overlapped (wait-free backpropagation: layers communicate while earlier
/// layers still compute their backward pass).
pub const OVERLAP_FRACTION: f64 = 0.4;

/// Parallel data-loading worker threads per GPU.
pub const IO_WORKERS: f64 = 16.0;

/// NFS (CFS) bandwidth available to one GPU's input stream, bytes/s
/// (Table 1-class shared filer divided among the node's GPUs).
pub const NFS_BW_PER_GPU: f64 = 150e6;

/// NFS per-request latency, seconds.
pub const NFS_LATENCY: f64 = 2e-3;

/// Aggregate JPEG-class decode throughput of one GPU's share of host CPUs,
/// bytes/s.
pub const DECODE_BW: f64 = 1.6e9;

/// In-memory cache read bandwidth, bytes/s.
pub const MEMCACHE_BW: f64 = 10e9;

/// AllGather cost of sharing PTO results (a handful of scalars per GPU
/// through the framework's collective path), seconds. Calibrated to §5.4's
/// measured 11 ms → 7 ms LARS improvement on 128 GPUs.
pub const PTO_ALL_GATHER_SECONDS: f64 = 6.5e-3;

/// System-level switches of one run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SystemConfig {
    /// Gradient aggregation scheme.
    pub strategy: Strategy,
    /// Multi-level data caching (§4.1) enabled.
    pub datacache: bool,
    /// LARS via the parallel tensor operator (§4.2) enabled.
    pub pto: bool,
}

impl SystemConfig {
    /// The paper's full system: MSTopK + HiTopKComm + DataCache + PTO.
    pub fn paper_full() -> Self {
        Self {
            strategy: Strategy::mstopk_default(),
            datacache: true,
            pto: true,
        }
    }

    /// The plain TensorFlow + Horovod baseline.
    pub fn baseline_dense() -> Self {
        Self {
            strategy: Strategy::DenseTreeAr,
            datacache: false,
            pto: false,
        }
    }
}

/// Per-component times of one training iteration, seconds. `total` is the
/// wall-clock estimate; `comm_total` is the raw collective time of which
/// only `comm_visible` extends the iteration (the rest hides behind the
/// backward pass).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct IterationBreakdown {
    /// Visible (non-overlapped) data-pipeline time.
    pub io: f64,
    /// Feed-forward + backpropagation (+ update) compute.
    pub ffbp: f64,
    /// Top-k compression time (zero for dense schemes).
    pub compression: f64,
    /// Full gradient-aggregation time.
    pub comm_total: f64,
    /// Aggregation time not hidden by wait-free backprop.
    pub comm_visible: f64,
    /// Learning-rate (LARS) computation time.
    pub lars: f64,
    /// Extra barrier time lost to the slowest straggling node (BSP pays
    /// the max over nodes; 0 without a fault plan).
    pub straggler: f64,
    /// Communication time attributable to faults: the faulted collective's
    /// makespan minus a clean replay of the same schedule.
    pub fault_delay: f64,
    /// Iteration wall-clock time.
    pub total: f64,
}

impl IterationBreakdown {
    /// Publishes the breakdown as gauges into an observability registry
    /// (`iter/io`, `iter/ffbp`, `iter/compression`, `iter/comm_total`,
    /// `iter/comm_visible`, `iter/lars`, `iter/straggler`,
    /// `iter/fault_delay`, `iter/total`) — the Fig. 8 decomposition in
    /// snapshot form.
    pub fn publish(&self, reg: &mut cloudtrain_obs::Registry) {
        reg.gauge_set("iter/io", self.io);
        reg.gauge_set("iter/ffbp", self.ffbp);
        reg.gauge_set("iter/compression", self.compression);
        reg.gauge_set("iter/comm_total", self.comm_total);
        reg.gauge_set("iter/comm_visible", self.comm_visible);
        reg.gauge_set("iter/lars", self.lars);
        reg.gauge_set("iter/straggler", self.straggler);
        reg.gauge_set("iter/fault_delay", self.fault_delay);
        reg.gauge_set("iter/total", self.total);
    }
}

/// The iteration model for one (cluster, system, workload) combination.
///
/// # Examples
/// ```
/// use cloudtrain_engine::{IterationModel, ModelProfile, SystemConfig};
/// use cloudtrain_simnet::clouds;
///
/// let model = IterationModel::new(
///     clouds::tencent(16),
///     SystemConfig::paper_full(),
///     ModelProfile::resnet50_96(),
/// );
/// let b = model.breakdown();
/// assert!(b.total >= b.ffbp);
/// assert!(model.scaling_efficiency() > 0.5);
/// ```
#[derive(Debug, Clone)]
pub struct IterationModel {
    /// Simulated cluster.
    pub cluster: ClusterSpec,
    /// System switches.
    pub system: SystemConfig,
    /// Workload compute profile.
    pub profile: ModelProfile,
    /// Fault plan injected into the communication simulation (`None` for
    /// the clean model).
    pub faults: Option<FaultPlan>,
}

impl IterationModel {
    /// Creates a model for the given combination.
    pub fn new(cluster: ClusterSpec, system: SystemConfig, profile: ModelProfile) -> Self {
        Self {
            cluster,
            system,
            profile,
            faults: None,
        }
    }

    /// Injects a fault plan into the communication model.
    ///
    /// The resilience policy follows the strategy: dense schedules run the
    /// retry ladder (every payload must arrive — the BSP penalty), sparse
    /// schedules degrade (abandon a dropped hop after one timeout; error
    /// feedback makes that safe). That asymmetry *is* the
    /// BSP-penalty-vs-resilience ablation.
    #[must_use]
    pub fn with_faults(mut self, plan: FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// The resilience policy this model's strategy runs under.
    pub fn policy(&self) -> SimResilience {
        if self.system.strategy.is_sparse() {
            SimResilience::degrading()
        } else {
            SimResilience::default()
        }
    }

    /// Visible data-pipeline seconds per iteration.
    fn io_seconds(&self) -> f64 {
        let b = self.profile.local_batch as f64;
        let sample = self.profile.sample_bytes as f64;
        if self.system.datacache {
            // Pre-processed samples from the memory KV store; fully
            // overlapped with compute from epoch 2 onward (§4.1).
            let pipeline = b * (4.0 * sample / MEMCACHE_BW);
            (pipeline - self.profile.iter_compute_seconds()).max(0.0)
        } else {
            // NFS fetch + decode, not hidden (the baseline input pipeline
            // stalls on the filer — Fig. 1/9).
            b * (sample / NFS_BW_PER_GPU + NFS_LATENCY / IO_WORKERS + sample / DECODE_BW)
        }
    }

    /// Raw collective time for one aggregation, on a clean simulator.
    fn comm_seconds(&self) -> f64 {
        let mut sim = NetSim::new(self.cluster);
        self.comm_seconds_on(&mut sim)
    }

    /// Raw collective time with this model's fault plan injected (equals
    /// the clean time when no plan is set).
    fn comm_seconds_faulted(&self) -> f64 {
        let mut sim = NetSim::new(self.cluster);
        if let Some(plan) = &self.faults {
            sim.inject_faults(plan.clone(), self.policy());
        }
        self.comm_seconds_on(&mut sim)
    }

    /// Fault counters accumulated over one simulated aggregation (all zero
    /// without a plan).
    pub fn fault_counters(&self) -> FaultCounters {
        let mut sim = NetSim::new(self.cluster);
        if let Some(plan) = &self.faults {
            sim.inject_faults(plan.clone(), self.policy());
        }
        self.comm_seconds_on(&mut sim);
        sim.fault_counters()
    }

    /// Runs this model's collective schedule on `sim` and returns its time.
    fn comm_seconds_on(&self, sim: &mut NetSim) -> f64 {
        let d = self.profile.params;
        match self.system.strategy {
            // Horovod's dense path all-reduces FP32 gradients.
            Strategy::DenseTreeAr => sim_tree_all_reduce_hier(sim, &self.cluster, d * 4).total,
            // CommLib's dense path uses the FP16 wire (§5.3).
            Strategy::DenseTorus => sim_torus_all_reduce(sim, &self.cluster, d * 2).total,
            Strategy::TopKNaiveAg { rho } => {
                let k = ((d as f64 * rho) as usize).max(1);
                sim_naive_sparse_all_gather(sim, &self.cluster, k).total
            }
            Strategy::MsTopKHiTopK { rho, .. } => {
                sim_hitopk(sim, &self.cluster, d, 4, rho, 0.0).total
            }
            Strategy::GTopK { rho } => {
                let k = ((d as f64 * rho) as usize).max(1);
                sim_gtopk_all_reduce(sim, &self.cluster, k, 4).total
            }
            Strategy::Qsgd { levels } => {
                let bits = (2 * levels as u32 + 1).next_power_of_two().trailing_zeros();
                sim_quantized_all_reduce(sim, &self.cluster, d, bits as usize).total
            }
        }
    }

    /// Compression time per iteration (runs on the GPU before the sparse
    /// collective).
    fn compression_seconds(&self) -> f64 {
        let rates = GpuRates::default();
        let d = self.profile.params;
        match self.system.strategy {
            Strategy::DenseTreeAr | Strategy::DenseTorus => 0.0,
            Strategy::TopKNaiveAg { rho } => {
                let k = ((d as f64 * rho) as usize).max(1);
                exact_topk_cost(d, &rates).seconds + 0.0 * k as f64
            }
            Strategy::MsTopKHiTopK { rho, samplings } => {
                // MSTopK runs on the post-ReduceScatter shard of d/n.
                let n = self.cluster.gpus_per_node;
                let shard = d.div_ceil(n);
                let k = ((d as f64 * rho / n as f64) as usize).max(1);
                mstopk_cost(shard, k, samplings, &rates).seconds
            }
            Strategy::GTopK { rho } => {
                // One exact local selection, plus log2(P) cheap merges.
                let k = ((d as f64 * rho) as usize).max(1);
                exact_topk_cost(d, &rates).seconds
                    + (self.cluster.world().trailing_zeros() as f64)
                        * exact_topk_cost(2 * k, &rates).seconds
            }
            // One coalesced quantization pass over the gradient.
            Strategy::Qsgd { .. } => d as f64 / rates.stream + rates.launch,
        }
    }

    /// LARS time per iteration.
    fn lars_seconds(&self) -> f64 {
        if self.system.pto {
            self.profile.lars_seconds / self.cluster.world() as f64 + PTO_ALL_GATHER_SECONDS
        } else {
            self.profile.lars_seconds
        }
    }

    /// Full per-iteration breakdown.
    pub fn breakdown(&self) -> IterationBreakdown {
        let ffbp = self.profile.iter_compute_seconds();
        let io = self.io_seconds();
        let comm_total = self.comm_seconds_faulted();
        // BSP waits for the slowest node's backward pass; only the excess
        // over the healthy ffbp is attributed to the straggler.
        let straggler = self
            .faults
            .as_ref()
            .map(|p| ffbp * (p.max_compute_factor() - 1.0))
            .unwrap_or(0.0);
        let fault_delay = if self.faults.is_some() {
            (comm_total - self.comm_seconds()).max(0.0)
        } else {
            0.0
        };
        let comm_visible = (comm_total - OVERLAP_FRACTION * ffbp).max(0.0);
        let compression = self.compression_seconds();
        let lars = self.lars_seconds();
        IterationBreakdown {
            io,
            ffbp,
            compression,
            comm_total,
            comm_visible,
            lars,
            straggler,
            fault_delay,
            total: io + ffbp + straggler + comm_visible + compression + lars,
        }
    }

    /// System throughput in samples/second over the whole cluster.
    pub fn throughput(&self) -> f64 {
        let b = self.breakdown();
        self.profile.local_batch as f64 * self.cluster.world() as f64 / b.total
    }

    /// Scaling efficiency versus `world ×` the single-GPU throughput
    /// (the paper's Table 3 metric).
    pub fn scaling_efficiency(&self) -> f64 {
        self.throughput() / (self.cluster.world() as f64 * self.profile.single_gpu_throughput)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_simnet::clouds;

    fn model(strategy: Strategy, profile: ModelProfile) -> IterationModel {
        let system = SystemConfig {
            strategy,
            datacache: true,
            pto: true,
        };
        IterationModel::new(clouds::tencent(16), system, profile)
    }

    #[test]
    fn table3_resnet224_ordering_and_bands() {
        let dense = model(Strategy::DenseTreeAr, ModelProfile::resnet50_224());
        let torus = model(Strategy::DenseTorus, ModelProfile::resnet50_224());
        let mstopk = model(Strategy::mstopk_default(), ModelProfile::resnet50_224());
        let (se_d, se_t, se_m) = (
            dense.scaling_efficiency(),
            torus.scaling_efficiency(),
            mstopk.scaling_efficiency(),
        );
        // Paper: 43.5% / 91.4% / 90.6%.
        assert!(se_d > 0.25 && se_d < 0.60, "dense SE {se_d}");
        assert!(se_t > 0.80, "2dtar SE {se_t}");
        assert!(se_m > 0.80, "mstopk SE {se_m}");
        // At 224 the compute window hides 2DTAR's communication, so 2DTAR
        // edges out MSTopK by the compression overhead (§5.5.2).
        assert!(
            se_t >= se_m,
            "2dtar {se_t} should be >= mstopk {se_m} at 224"
        );
    }

    #[test]
    fn table3_resnet96_mstopk_wins() {
        let dense = model(Strategy::DenseTreeAr, ModelProfile::resnet50_96());
        let torus = model(Strategy::DenseTorus, ModelProfile::resnet50_96());
        let mstopk = model(Strategy::mstopk_default(), ModelProfile::resnet50_96());
        let (se_d, se_t, se_m) = (
            dense.scaling_efficiency(),
            torus.scaling_efficiency(),
            mstopk.scaling_efficiency(),
        );
        // Paper: 20.1% / 56.7% / 70.5%.
        assert!(se_d < 0.35, "dense SE {se_d}");
        assert!(se_m > se_t, "mstopk {se_m} should beat 2dtar {se_t} at 96");
        assert!(se_t > se_d, "2dtar {se_t} should beat dense {se_d}");
    }

    #[test]
    fn table3_vgg_and_transformer_orderings() {
        for profile in [ModelProfile::vgg19(), ModelProfile::transformer()] {
            let dense = model(Strategy::DenseTreeAr, profile.clone());
            let torus = model(Strategy::DenseTorus, profile.clone());
            let mstopk = model(Strategy::mstopk_default(), profile.clone());
            assert!(
                mstopk.scaling_efficiency() > torus.scaling_efficiency(),
                "{}: mstopk {} !> 2dtar {}",
                profile.name,
                mstopk.scaling_efficiency(),
                torus.scaling_efficiency()
            );
            assert!(
                torus.scaling_efficiency() > dense.scaling_efficiency(),
                "{}: 2dtar !> dense",
                profile.name
            );
        }
    }

    #[test]
    fn fig1_topk_compression_overhead_matches_paper() {
        // Fig. 1: exact top-k costs ~0.239 s on 25M gradients, larger than
        // the whole FF&BP at 224 (0.204 s).
        let m = model(Strategy::topk_default(), ModelProfile::resnet50_224());
        let b = m.breakdown();
        assert!(
            b.compression > 0.18 && b.compression < 0.32,
            "topk compression {}",
            b.compression
        );
        assert!(b.compression > 0.9 * b.ffbp);
        // MSTopK's compression is negligible by comparison.
        let ms = model(Strategy::mstopk_default(), ModelProfile::resnet50_224());
        assert!(ms.breakdown().compression < 0.01);
    }

    #[test]
    fn fig9_datacache_doubles_throughput_at_96() {
        let cached = IterationModel::new(
            clouds::tencent(1),
            SystemConfig {
                strategy: Strategy::DenseTorus,
                datacache: true,
                pto: false,
            },
            ModelProfile::resnet50_96(),
        );
        let naive = IterationModel::new(
            clouds::tencent(1),
            SystemConfig {
                strategy: Strategy::DenseTorus,
                datacache: false,
                pto: false,
            },
            ModelProfile::resnet50_96(),
        );
        let (bc, bn) = (cached.breakdown(), naive.breakdown());
        assert!(bn.io > 10.0 * bc.io.max(1e-4), "io {} vs {}", bn.io, bc.io);
        let speedup = bn.total / bc.total;
        assert!(
            speedup > 1.5 && speedup < 3.0,
            "datacache speedup {speedup} (paper ~2x)"
        );
    }

    #[test]
    fn pto_halves_lars_time() {
        let with = model(Strategy::DenseTorus, ModelProfile::resnet50_224());
        let mut without = with.clone();
        without.system.pto = false;
        let (lw, lo) = (with.breakdown().lars, without.breakdown().lars);
        assert!(lo > 1.5 * lw, "lars {lo} -> {lw} not ~2x");
        assert!((lo - 11e-3).abs() < 1e-6);
    }

    #[test]
    fn dense_comm_is_mostly_visible_at_96() {
        let m = model(Strategy::DenseTreeAr, ModelProfile::resnet50_96());
        let b = m.breakdown();
        assert!(b.comm_visible > 0.5 * b.comm_total);
        assert!(b.comm_visible > b.ffbp);
    }

    #[test]
    fn clean_fault_plan_is_a_no_op() {
        let base = model(Strategy::DenseTorus, ModelProfile::resnet50_96());
        let faulted = base.clone().with_faults(FaultPlan::new(7));
        let (a, b) = (base.breakdown(), faulted.breakdown());
        assert_eq!(a.total, b.total);
        assert_eq!(b.straggler, 0.0);
        assert_eq!(b.fault_delay, 0.0);
        let c = faulted.fault_counters();
        assert!(c.transfers > 0);
        assert_eq!(c.drops + c.spikes + c.slowed, 0);
    }

    #[test]
    fn drops_charge_fault_delay_and_slow_the_iteration() {
        let base = model(Strategy::DenseTorus, ModelProfile::resnet50_96());
        let faulted = base
            .clone()
            .with_faults(FaultPlan::new(11).with_drops(0.05));
        let (a, b) = (base.breakdown(), faulted.breakdown());
        assert!(b.fault_delay > 0.0, "5% drops charged no delay");
        assert!(b.total > a.total, "faults did not extend the iteration");
        // Dense runs the retry ladder: drops split into retries and
        // escalations, never degradations.
        let c = faulted.fault_counters();
        assert_eq!(c.drops, c.retries + c.escalations);
        assert_eq!(c.degraded, 0);
    }

    #[test]
    fn sparse_strategy_degrades_instead_of_escalating() {
        let m = model(Strategy::mstopk_default(), ModelProfile::resnet50_96())
            .with_faults(FaultPlan::new(11).with_drops(0.05));
        assert_eq!(m.policy().mode, cloudtrain_simnet::DeadlineMode::Degrade);
        let c = m.fault_counters();
        assert!(c.degraded > 0, "sparse plan never degraded a hop");
        assert_eq!(c.escalations, 0, "degrade mode must not escalate");
        assert!(m.breakdown().fault_delay > 0.0);
    }

    #[test]
    fn straggler_time_is_attributed_separately() {
        let base = model(Strategy::DenseTorus, ModelProfile::resnet50_224());
        let faulted = base.clone().with_faults(FaultPlan::new(1).straggle(2, 1.5));
        let (a, b) = (base.breakdown(), faulted.breakdown());
        assert!((b.straggler - 0.5 * b.ffbp).abs() < 1e-12);
        assert!(b.total >= a.total + b.straggler - 1e-12);
    }

    #[test]
    fn throughput_consistency() {
        let m = model(Strategy::mstopk_default(), ModelProfile::resnet50_96());
        let t = m.throughput();
        let se = m.scaling_efficiency();
        assert!((t / (128.0 * 4400.0) - se).abs() < 1e-9);
        assert!(se > 0.0 && se <= 1.0);
    }
}
