//! Compute profiles of the paper's workloads.
//!
//! The performance plane needs only the *durations* of the GPU compute
//! stages, and the paper publishes exactly those: single-GPU throughputs
//! for every model/resolution (Tables 3 and 4, §5.5.2) and LARS timings
//! (§5.4). Profiles below are transcribed from the paper; the simulated
//! cluster supplies everything else.

use serde::{Deserialize, Serialize};

/// Measured compute profile of one model at one input configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ModelProfile {
    /// Human-readable name (e.g. `"ResNet-50 (224x224)"`).
    pub name: String,
    /// Number of model parameters `d`.
    pub params: usize,
    /// Number of parameter tensors ("layers" in the LARS sense; ResNet-50
    /// has 161).
    pub layers: usize,
    /// Local batch size per GPU.
    pub local_batch: usize,
    /// Single-GPU training throughput, samples/second (paper, Table 3/4).
    pub single_gpu_throughput: f64,
    /// Single-GPU LARS computation time per iteration, seconds (§5.4).
    pub lars_seconds: f64,
    /// Encoded size of one training sample on the NFS, bytes.
    pub sample_bytes: usize,
}

impl ModelProfile {
    /// FF&BP (plus update) time of one iteration on one GPU.
    pub fn iter_compute_seconds(&self) -> f64 {
        self.local_batch as f64 / self.single_gpu_throughput
    }

    /// Gradient size in bytes at `elem_bytes` per element.
    pub fn grad_bytes(&self, elem_bytes: usize) -> usize {
        self.params * elem_bytes
    }

    /// ResNet-50 at 224×224 (Table 3: 1150 samples/s single GPU; Fig. 1:
    /// FF&BP ≈ 0.204 s at b = 256; LARS 11 ms).
    pub fn resnet50_224() -> Self {
        Self {
            name: "ResNet-50 (224x224)".into(),
            params: 25_557_032,
            layers: 161,
            local_batch: 256,
            single_gpu_throughput: 1150.0,
            lars_seconds: 11e-3,
            sample_bytes: 224 * 224 * 3,
        }
    }

    /// ResNet-50 at 96×96 (Table 4: 4400 samples/s).
    pub fn resnet50_96() -> Self {
        Self {
            name: "ResNet-50 (96x96)".into(),
            single_gpu_throughput: 4400.0,
            sample_bytes: 96 * 96 * 3,
            ..Self::resnet50_224()
        }
    }

    /// ResNet-50 at 128×128 (Table 4: 3010 samples/s).
    pub fn resnet50_128() -> Self {
        Self {
            name: "ResNet-50 (128x128)".into(),
            single_gpu_throughput: 3010.0,
            sample_bytes: 128 * 128 * 3,
            ..Self::resnet50_224()
        }
    }

    /// ResNet-50 at 288×288, local batch 128 (Table 4: 710 samples/s).
    pub fn resnet50_288() -> Self {
        Self {
            name: "ResNet-50 (288x288)".into(),
            single_gpu_throughput: 710.0,
            local_batch: 128,
            sample_bytes: 288 * 288 * 3,
            ..Self::resnet50_224()
        }
    }

    /// VGG-19 at 224×224 (Table 3: 560 samples/s; parameters dominated by
    /// the FC head).
    pub fn vgg19() -> Self {
        Self {
            name: "VGG-19".into(),
            params: 143_667_240,
            layers: 38,
            local_batch: 256,
            single_gpu_throughput: 560.0,
            lars_seconds: 4e-3,
            sample_bytes: 224 * 224 * 3,
        }
    }

    /// Transformer (base) on WMT17 (Table 3: 32 samples/s; one sample =
    /// one 256-word sentence; LARS/LAMB rate computation 30 ms, §5.4).
    pub fn transformer() -> Self {
        Self {
            name: "Transformer".into(),
            params: 110_000_000,
            layers: 150,
            local_batch: 16,
            single_gpu_throughput: 32.0,
            lars_seconds: 30e-3,
            sample_bytes: 256 * 4,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resnet_iteration_time_matches_fig1() {
        // 256 / 1150 ≈ 0.2226 s, consistent with Fig. 1's FF&BP ≈ 0.204 s
        // (which excludes the update step).
        let p = ModelProfile::resnet50_224();
        let t = p.iter_compute_seconds();
        assert!((t - 0.2226).abs() < 1e-3, "t = {t}");
    }

    #[test]
    fn resolutions_scale_throughput_monotonically() {
        let t96 = ModelProfile::resnet50_96().single_gpu_throughput;
        let t128 = ModelProfile::resnet50_128().single_gpu_throughput;
        let t224 = ModelProfile::resnet50_224().single_gpu_throughput;
        let t288 = ModelProfile::resnet50_288().single_gpu_throughput;
        assert!(t96 > t128 && t128 > t224 && t224 > t288);
    }

    #[test]
    fn grad_bytes_fp16_vs_fp32() {
        let p = ModelProfile::resnet50_224();
        assert_eq!(p.grad_bytes(4), 2 * p.grad_bytes(2));
        assert!(p.grad_bytes(4) > 95 << 20); // ~102 MB FP32
    }
}
