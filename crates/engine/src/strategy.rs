//! The aggregation strategies the paper compares.

use serde::{Deserialize, Serialize};

/// Gradient-aggregation scheme for one training run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Strategy {
    /// Dense synchronous SGD with NCCL's tree AllReduce ("Dense-SGD" /
    /// "TreeAR"): the plain TensorFlow+Horovod baseline, FP32 wire.
    DenseTreeAr,
    /// Dense synchronous SGD with the 2D-Torus AllReduce ("2DTAR-SGD"),
    /// FP16 wire (CommLib).
    DenseTorus,
    /// Exact top-k sparsification with the flat sparse AllGather
    /// ("TopK-SGD" / NaiveAG): exact GPU top-k + TF `IndexedSlices`
    /// (FP32 values, int64 indices, host staging).
    TopKNaiveAg {
        /// Density ρ (fraction of coordinates sent).
        rho: f64,
    },
    /// The paper's scheme ("MSTopK-SGD"): approximate top-k + HiTopKComm,
    /// packed FP32/int32 wire on GPU buffers.
    MsTopKHiTopK {
        /// Density ρ.
        rho: f64,
        /// MSTopK threshold-search iterations (`N`, paper uses 30).
        samplings: usize,
    },
    /// gTop-k SGD (Shi et al. 2019, §6): global top-k by recursive
    /// doubling, keeping exactly `ρ·d` entries end to end.
    GTopK {
        /// Density ρ.
        rho: f64,
    },
    /// QSGD (Alistarh et al. 2017, §6): unbiased stochastic quantization
    /// aggregated by a flat code AllGather.
    Qsgd {
        /// Positive quantization levels (127 = 8-bit codes).
        levels: u8,
    },
}

impl Strategy {
    /// Short label used in tables and reports.
    pub fn label(&self) -> &'static str {
        match self {
            Strategy::DenseTreeAr => "Dense-SGD",
            Strategy::DenseTorus => "2DTAR-SGD",
            Strategy::TopKNaiveAg { .. } => "TopK-SGD",
            Strategy::MsTopKHiTopK { .. } => "MSTopK-SGD",
            Strategy::GTopK { .. } => "gTopK-SGD",
            Strategy::Qsgd { .. } => "QSGD",
        }
    }

    /// Whether gradients are sparsified (and thus need error feedback).
    pub fn is_sparse(&self) -> bool {
        matches!(
            self,
            Strategy::TopKNaiveAg { .. } | Strategy::MsTopKHiTopK { .. } | Strategy::GTopK { .. }
        )
    }

    /// The paper's default MSTopK-SGD configuration (ρ = 0.01, N = 30).
    pub fn mstopk_default() -> Self {
        Strategy::MsTopKHiTopK {
            rho: 0.01,
            samplings: 30,
        }
    }

    /// The paper's default TopK-SGD configuration (ρ = 0.01).
    pub fn topk_default() -> Self {
        Strategy::TopKNaiveAg { rho: 0.01 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_sparsity() {
        assert_eq!(Strategy::DenseTreeAr.label(), "Dense-SGD");
        assert!(!Strategy::DenseTreeAr.is_sparse());
        assert!(!Strategy::DenseTorus.is_sparse());
        assert!(Strategy::topk_default().is_sparse());
        assert!(Strategy::mstopk_default().is_sparse());
    }

    #[test]
    fn serde_roundtrip() {
        let s = Strategy::mstopk_default();
        let json = serde_json::to_string(&s).unwrap();
        let back: Strategy = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
