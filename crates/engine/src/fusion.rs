//! Tensor fusion and wait-free backpropagation (§2's pipelining
//! mechanisms: Zhang et al. 2017; Shi et al. 2019b/2020 — "the gradient
//! communication tasks ... may be executed in parallel if possible").
//!
//! Two cooperating ideas:
//!
//! * **Wait-free backprop**: a layer's gradient can be aggregated as soon
//!   as its backward pass finishes, overlapping communication with the
//!   backward computation of earlier layers.
//! * **Tensor fusion**: launching one collective per layer drowns in
//!   per-message latency (`α` × 161 for ResNet-50), so consecutive
//!   layers' gradients are fused into buckets up to a threshold; too much
//!   fusion destroys the overlap (one giant bucket can only start after
//!   the whole backward pass).
//!
//! [`plan_buckets`] builds the bucket schedule from a model's layer
//! ranges, and [`WfbpModel::iteration_time`] evaluates the classic
//! MG-WFBP-style timing recurrence: bucket `b`'s collective starts at
//! `max(gradients ready, previous collective done)`. The
//! `ablation_fusion` bench sweeps the threshold to expose the sweet spot
//! that justifies the engine-level overlap fraction.

use cloudtrain_dnn::model::ParamRange;
use serde::{Deserialize, Serialize};

/// How the trainer groups per-layer gradients into collectives on the
/// dense aggregation paths.
///
/// Sparse strategies always aggregate the whole compensated tensor (the
/// shard partition *is* their fusion), so this knob only routes
/// `DenseTreeAr` / `DenseTorus`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FusionMode {
    /// One collective over the whole flat gradient (the seed behaviour).
    #[default]
    WholeTensor,
    /// One collective per layer: maximal overlap potential, maximal
    /// per-message `α` cost (the Fig.-1 pathology tensor fusion exists to
    /// fix).
    PerLayer,
    /// Greedy buckets of consecutive backward-order layers up to a fixed
    /// byte threshold (Horovod's `HOROVOD_FUSION_THRESHOLD`).
    Bucketed {
        /// Maximum fused payload per collective, bytes.
        threshold_bytes: usize,
    },
    /// Threshold chosen by sweeping candidate bucket sizes through the
    /// α–β [`WfbpModel`] and taking the argmin of modelled iteration time.
    CostModel,
}

/// One fused bucket of consecutive layers, in backward-completion order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bucket {
    /// Indices (into the backward-ordered layer list) fused together.
    pub first_layer: usize,
    /// One past the last fused layer.
    pub last_layer: usize,
    /// Total payload bytes of the bucket.
    pub bytes: usize,
}

impl Bucket {
    /// Number of layers fused.
    pub fn layer_count(&self) -> usize {
        self.last_layer - self.first_layer
    }
}

/// Groups layers (taken in backward order: last layer of the model first)
/// into buckets of at most `threshold_bytes`, never splitting a layer.
/// A single layer larger than the threshold gets its own bucket.
///
/// # Examples
/// ```
/// use cloudtrain_dnn::model::ParamRange;
/// use cloudtrain_engine::fusion::plan_buckets;
///
/// let ranges = vec![
///     ParamRange { offset: 0, len: 100 },
///     ParamRange { offset: 100, len: 100 },
///     ParamRange { offset: 200, len: 5000 },
/// ];
/// // FP32, 1 KiB threshold: the fat layer stands alone, the small two fuse.
/// let buckets = plan_buckets(&ranges, 4, 1024);
/// assert_eq!(buckets.len(), 2);
/// assert_eq!(buckets[0].bytes, 20_000); // backward order: fat layer first
/// assert_eq!(buckets[1].bytes, 800);
/// ```
///
/// # Panics
/// Panics if `threshold_bytes == 0`.
pub fn plan_buckets(
    ranges: &[ParamRange],
    elem_bytes: usize,
    threshold_bytes: usize,
) -> Vec<Bucket> {
    assert!(
        threshold_bytes > 0,
        "plan_buckets: threshold must be positive"
    );
    let mut buckets = Vec::new();
    let mut start = 0;
    let mut bytes = 0usize;
    // Backward order: reverse the forward-ordered ranges.
    let layer_bytes: Vec<usize> = ranges.iter().rev().map(|r| r.len * elem_bytes).collect();
    for (i, &lb) in layer_bytes.iter().enumerate() {
        if bytes > 0 && bytes + lb > threshold_bytes {
            buckets.push(Bucket {
                first_layer: start,
                last_layer: i,
                bytes,
            });
            start = i;
            bytes = 0;
        }
        bytes += lb;
    }
    if bytes > 0 || ranges.is_empty() {
        buckets.push(Bucket {
            first_layer: start,
            last_layer: layer_bytes.len(),
            bytes,
        });
    }
    buckets
}

/// Timing outcome of one wait-free, fused iteration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WfbpTiming {
    /// Pure backward-pass compute time.
    pub backward: f64,
    /// End-to-end time until the last bucket's collective completes.
    pub total: f64,
    /// Communication time not hidden behind the backward pass.
    pub exposed_comm: f64,
    /// Number of collectives launched.
    pub collectives: usize,
}

/// The analytic wait-free-backprop model.
#[derive(Debug, Clone)]
pub struct WfbpModel {
    /// Backward compute seconds of each layer, in backward order.
    pub layer_backward_seconds: Vec<f64>,
    /// Startup latency of one fused collective, seconds.
    pub comm_alpha: f64,
    /// Per-byte cost of the collective, seconds.
    pub comm_beta: f64,
}

impl WfbpModel {
    /// Evenly spreads a model's backward time over its layers — adequate
    /// when per-layer profiles are unavailable (the paper's models have
    /// hundreds of similar-cost layers).
    pub fn uniform(layers: usize, backward_seconds: f64, comm_alpha: f64, comm_beta: f64) -> Self {
        Self {
            layer_backward_seconds: vec![backward_seconds / layers.max(1) as f64; layers],
            comm_alpha,
            comm_beta,
        }
    }

    /// Evaluates the iteration under a bucket plan: bucket `b` becomes
    /// ready when the backward pass reaches past its last layer, and its
    /// collective runs after the previous bucket's finishes (one network
    /// stream).
    ///
    /// # Panics
    /// Panics if a bucket references layers outside the model.
    pub fn iteration_time(&self, buckets: &[Bucket]) -> WfbpTiming {
        let backward: f64 = self.layer_backward_seconds.iter().sum();
        let mut prefix = vec![0.0f64; self.layer_backward_seconds.len() + 1];
        for (i, t) in self.layer_backward_seconds.iter().enumerate() {
            prefix[i + 1] = prefix[i] + t;
        }
        let mut net_free = 0.0f64;
        for b in buckets {
            assert!(
                b.last_layer <= self.layer_backward_seconds.len(),
                "bucket exceeds layer count"
            );
            let ready = prefix[b.last_layer];
            let start = ready.max(net_free);
            net_free = start + self.comm_alpha + b.bytes as f64 * self.comm_beta;
        }
        let total = net_free.max(backward);
        WfbpTiming {
            backward,
            total,
            exposed_comm: total - backward,
            collectives: buckets.len(),
        }
    }
}

/// Backward-compute seconds charged per parameter when no measured
/// profile is available: V100 ResNet-50 backward ≈ 80 ms over 25.5 M
/// parameters (the paper's Table 2 workload) ≈ 3.2 ns/param.
pub const BACKWARD_SECONDS_PER_PARAM: f64 = 3.2e-9;

/// A [`WfbpModel`] calibrated to the paper's testbed instead of caller
/// guesses: per-layer backward time from the layer's parameter count at
/// [`BACKWARD_SECONDS_PER_PARAM`], per-collective `α` from the VPC
/// Ethernet latency plus two kernel launches
/// ([`cloudtrain_simnet::clouds::ETH_ALPHA`],
/// [`cloudtrain_compress::gpu_cost::GpuRates::launch`]), and `β` from the
/// 25 Gbps Tencent link at ring-AllReduce cost (≈ 2 bytes moved per
/// payload byte).
pub fn cloud_calibrated_model(ranges: &[ParamRange]) -> WfbpModel {
    use cloudtrain_compress::gpu_cost::GpuRates;
    use cloudtrain_simnet::clouds;

    let launch = GpuRates::default().launch;
    let inter = clouds::tencent(2).inter;
    WfbpModel {
        // Backward order: the model's last layer finishes first.
        layer_backward_seconds: ranges
            .iter()
            .rev()
            .map(|r| r.len as f64 * BACKWARD_SECONDS_PER_PARAM)
            .collect(),
        comm_alpha: inter.alpha + 2.0 * launch,
        comm_beta: 2.0 * inter.beta,
    }
}

/// Picks the fusion threshold by sweeping power-of-two candidates through
/// `model.iteration_time` and keeping the cheapest plan (first winner on
/// ties, so the result is deterministic). Returns the plan together with
/// the winning threshold in bytes.
///
/// # Panics
/// Panics if `model` has a different layer count than `ranges`.
pub fn plan_buckets_cost_model(
    ranges: &[ParamRange],
    elem_bytes: usize,
    model: &WfbpModel,
) -> (Vec<Bucket>, usize) {
    assert_eq!(
        model.layer_backward_seconds.len(),
        ranges.len(),
        "plan_buckets_cost_model: model/layer count mismatch"
    );
    let total_bytes: usize = ranges.iter().map(|r| r.len * elem_bytes).sum();
    let mut best: Option<(f64, Vec<Bucket>, usize)> = None;
    // 1 (per-layer) → smallest power of two covering everything (full
    // fusion); the sweep brackets both extremes of the U-curve.
    let mut threshold = 1usize;
    loop {
        let plan = plan_buckets(ranges, elem_bytes, threshold);
        let t = model.iteration_time(&plan).total;
        if best.as_ref().is_none_or(|(bt, _, _)| t < *bt) {
            best = Some((t, plan, threshold));
        }
        if threshold >= total_bytes.max(1) {
            break;
        }
        threshold = threshold.saturating_mul(2);
    }
    // lint:allow(panic_free, reason = "the loop body always runs at least once, so best is Some")
    let (_, plan, threshold) = best.expect("cost-model sweep evaluated no candidate");
    (plan, threshold)
}

/// Maps a backward-order bucket plan onto contiguous spans of the
/// *forward*-ordered flat parameter vector, in bucket (backward launch)
/// order. Consecutive backward-order layers are consecutive forward-order
/// layers, so every bucket is one contiguous slice of the gradient.
///
/// # Panics
/// Panics if a bucket references layers outside `ranges`.
pub fn bucket_spans(ranges: &[ParamRange], buckets: &[Bucket]) -> Vec<ParamRange> {
    buckets
        .iter()
        .filter(|b| b.layer_count() > 0)
        .map(|b| {
            assert!(b.last_layer <= ranges.len(), "bucket exceeds layer count");
            let lo = ranges.len() - b.last_layer;
            let hi = ranges.len() - b.first_layer;
            ParamRange {
                offset: ranges[lo].offset,
                len: ranges[lo..hi].iter().map(|r| r.len).sum(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ranges(sizes: &[usize]) -> Vec<ParamRange> {
        let mut out = Vec::new();
        let mut off = 0;
        for &len in sizes {
            out.push(ParamRange { offset: off, len });
            off += len;
        }
        out
    }

    #[test]
    fn buckets_respect_threshold_and_cover_all_layers() {
        let r = ranges(&[100, 200, 50, 400, 10]);
        let buckets = plan_buckets(&r, 4, 1000);
        let total_layers: usize = buckets.iter().map(Bucket::layer_count).sum();
        assert_eq!(total_layers, 5);
        let total_bytes: usize = buckets.iter().map(|b| b.bytes).sum();
        assert_eq!(total_bytes, 760 * 4);
        for b in &buckets {
            assert!(b.bytes <= 1000 || b.layer_count() == 1);
        }
        // Buckets tile the backward order.
        let mut pos = 0;
        for b in &buckets {
            assert_eq!(b.first_layer, pos);
            pos = b.last_layer;
        }
    }

    #[test]
    fn oversized_layer_gets_own_bucket() {
        let r = ranges(&[10, 5000, 10]);
        let buckets = plan_buckets(&r, 4, 100);
        assert!(buckets
            .iter()
            .any(|b| b.bytes == 20000 && b.layer_count() == 1));
    }

    #[test]
    fn one_big_bucket_with_huge_threshold() {
        let r = ranges(&[100, 200, 300]);
        let buckets = plan_buckets(&r, 4, usize::MAX);
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].bytes, 2400);
    }

    #[test]
    fn full_fusion_has_zero_overlap() {
        // One bucket: comm starts only after all backward compute.
        let r = ranges(&[1000; 10]);
        let model = WfbpModel::uniform(10, 1.0, 0.01, 1e-6);
        let one = plan_buckets(&r, 4, usize::MAX);
        let t = model.iteration_time(&one);
        let comm = 0.01 + 40_000.0 * 1e-6;
        assert!((t.total - (1.0 + comm)).abs() < 1e-9);
        assert!((t.exposed_comm - comm).abs() < 1e-9);
    }

    #[test]
    fn per_layer_fusion_pays_latency_but_overlaps() {
        let r = ranges(&[1000; 10]);
        let model = WfbpModel::uniform(10, 1.0, 0.01, 1e-8);
        let per_layer = plan_buckets(&r, 4, 1);
        assert_eq!(per_layer.len(), 10);
        let t = model.iteration_time(&per_layer);
        // Comm is latency-bound (10 x 10 ms = 100 ms) but mostly hidden
        // behind the 1 s backward pass; only the tail bucket is exposed.
        assert!(t.total < 1.0 + 2.0 * 0.01 + 1e-6, "total {}", t.total);
        assert!(t.exposed_comm < 0.02);
    }

    #[test]
    fn moderate_fusion_beats_both_extremes_when_alpha_matters() {
        // 100 small layers, high per-collective latency, noticeable bytes:
        // the classic U-shape.
        let r = ranges(&[10_000; 100]);
        let model = WfbpModel::uniform(100, 0.2, 2e-3, 2e-10);
        let t_none = model.iteration_time(&plan_buckets(&r, 4, 1));
        let t_full = model.iteration_time(&plan_buckets(&r, 4, usize::MAX));
        let t_mid = model.iteration_time(&plan_buckets(&r, 4, 400_000));
        assert!(
            t_mid.total < t_none.total && t_mid.total < t_full.total,
            "mid {} none {} full {}",
            t_mid.total,
            t_none.total,
            t_full.total
        );
    }

    #[test]
    fn cost_model_picks_the_u_curve_minimum() {
        // Same shape as `moderate_fusion_beats_both_extremes_when_alpha_matters`:
        // the sweep must land at (or below) the hand-picked mid plan and
        // strictly beat both extremes.
        let r = ranges(&[10_000; 100]);
        let model = WfbpModel::uniform(100, 0.2, 2e-3, 2e-10);
        let (plan, threshold) = plan_buckets_cost_model(&r, 4, &model);
        let t_best = model.iteration_time(&plan).total;
        let t_none = model.iteration_time(&plan_buckets(&r, 4, 1)).total;
        let t_full = model.iteration_time(&plan_buckets(&r, 4, usize::MAX)).total;
        assert!(t_best < t_none, "sweep no better than per-layer");
        assert!(t_best < t_full, "sweep no better than full fusion");
        assert!(
            plan.len() > 1 && plan.len() < 100,
            "expected moderate fusion, got {} buckets at threshold {}",
            plan.len(),
            threshold
        );
    }

    #[test]
    fn cost_model_sweep_is_deterministic() {
        let r = ranges(&[500, 2000, 100, 40_000, 3000, 3000]);
        let model = cloud_calibrated_model(&r);
        let (p1, t1) = plan_buckets_cost_model(&r, 4, &model);
        let (p2, t2) = plan_buckets_cost_model(&r, 4, &model);
        assert_eq!(p1, p2);
        assert_eq!(t1, t2);
    }

    #[test]
    fn calibrated_model_follows_layer_structure() {
        let r = ranges(&[100, 300]);
        let m = cloud_calibrated_model(&r);
        assert_eq!(m.layer_backward_seconds.len(), 2);
        // Backward order: the 300-param layer (last in forward order) first.
        assert!(m.layer_backward_seconds[0] > m.layer_backward_seconds[1]);
        assert!(m.comm_alpha > 0.0 && m.comm_beta > 0.0);
    }

    #[test]
    fn bucket_spans_tile_the_forward_vector() {
        let r = ranges(&[100, 200, 50, 400, 10]);
        for threshold in [1usize, 1000, usize::MAX] {
            let buckets = plan_buckets(&r, 4, threshold);
            let spans = bucket_spans(&r, &buckets);
            let total: usize = spans.iter().map(|s| s.len).sum();
            assert_eq!(total, 760);
            // Sorted by offset, the spans tile [0, 760) with no gaps.
            let mut sorted = spans.clone();
            sorted.sort_by_key(|s| s.offset);
            let mut pos = 0;
            for s in &sorted {
                assert_eq!(s.offset, pos);
                pos += s.len;
            }
            // Launch order is backward: first span ends the vector, the
            // last starts it.
            assert_eq!(spans[0].offset + spans[0].len, 760);
            assert_eq!(spans.last().unwrap().offset, 0);
        }
    }

    #[test]
    fn total_never_below_backward() {
        let r = ranges(&[100; 4]);
        let model = WfbpModel::uniform(4, 2.0, 1e-9, 1e-12);
        let t = model.iteration_time(&plan_buckets(&r, 4, 200));
        assert!(t.total >= t.backward);
        assert!(t.exposed_comm >= 0.0);
    }
}
