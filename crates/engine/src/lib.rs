//! The distributed training engine: the paper's full system (Fig. 4)
//! assembled from the workspace's substrates.
//!
//! Two planes, matching the reproduction strategy in DESIGN.md:
//!
//! * **Convergence plane** ([`trainer`]) — real synchronous data-parallel
//!   SGD over worker threads: real models (`cloudtrain-dnn`), real
//!   collectives (`cloudtrain-collectives`), real compression with error
//!   feedback, LARS with PTO. Reproduces Fig. 10 and Table 2.
//! * **Performance plane** ([`perf`], [`dawnbench`]) — the iteration-time
//!   model: measured-throughput compute profiles ([`profile`]) composed
//!   with simulated communication (`cloudtrain-simnet`), compression cost
//!   models, the DataCache I/O model, and wait-free-backprop overlap.
//!   Reproduces Fig. 1, Fig. 9, Tables 3–5.
//!
//! [`strategy::Strategy`] names the four aggregation schemes the paper
//! compares and is shared by both planes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autotune;
pub mod checkpoint;
pub mod dawnbench;
pub mod elastic_run;
pub mod fusion;
pub mod perf;
pub mod profile;
pub mod strategy;
pub mod trainer;

pub use autotune::{autotune_layers, AutotuneConfig, AutotuneReport, CommModel, CommScheme};
pub use elastic_run::{ElasticReport, ElasticSegment};
pub use fusion::FusionMode;
pub use perf::{IterationBreakdown, IterationModel, SystemConfig};
pub use profile::ModelProfile;
pub use strategy::Strategy;
pub use trainer::{DistConfig, DistTrainer, EpochMetrics, FaultConfig, OptimizerKind, TrainReport};
