//! Elastic training runtime: membership-driven segmented runs.
//!
//! `DistTrainer::run_elastic` consumes a scripted [`ElasticScenario`],
//! folds it (through the `cloudtrain-elastic` coordinator) to an
//! epoch-level membership timeline, and trains each contiguous stretch of
//! epochs under its fixed membership as one *segment*. At every segment
//! boundary the runtime cuts a sharded v2 [`Checkpoint`] — flat replicas,
//! optimizer velocity, and per-`(node, local rank)` error-feedback
//! residuals — round-trips it through the wire format, re-plans the
//! autotuner and fusion buckets for the new world size, and resumes.
//!
//! Determinism contracts, both asserted by the elastic gauntlet:
//!
//! * **No membership event** → `run_elastic` is the single-segment
//!   delegate of the classic worker, so its loss trajectory is bitwise
//!   identical to [`DistTrainer::run`].
//! * **With events** → `run_elastic` (which round-trips every boundary
//!   checkpoint through bytes) is bitwise identical to
//!   [`DistTrainer::run_elastic_planned`], the in-memory twin that hands
//!   the same state across segments without serialization. Divergence
//!   means the checkpoint format lost information.
//!
//! Rollback semantics: epochs are the commit points. An eviction detected
//! during epoch `e` rolls the run back to the start of `e` (the last
//! committed checkpoint) and replays it with the survivors; a join
//! becomes effective at the next epoch boundary.

use std::collections::BTreeMap;

use cloudtrain_collectives::group::run_on_group;
use cloudtrain_elastic::{ElasticScenario, MembershipEvent, ReshardEvent};
use cloudtrain_obs::Registry;
use cloudtrain_simnet::clouds;
use serde::Serialize;

use crate::autotune::{autotune_layers, AutotuneConfig, CommModel};
use crate::checkpoint::{Checkpoint, ShardManifest};
use crate::fusion::{cloud_calibrated_model, plan_buckets, plan_buckets_cost_model, FusionMode};
use crate::strategy::Strategy;
use crate::trainer::{
    workload_layer_ranges, DistConfig, DistTrainer, OptimizerKind, SegmentCtx, SegmentEnd,
    SegmentInit, TrainReport,
};

/// One contiguous stretch of epochs trained under a fixed membership.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ElasticSegment {
    /// Global index of the segment's first epoch.
    pub start_epoch: usize,
    /// Number of epochs in the segment.
    pub epochs: usize,
    /// Active node ids, ascending.
    pub nodes: Vec<usize>,
}

/// Result of an elastic run: the stitched training report plus the
/// membership story that produced it.
#[derive(Debug, Clone)]
pub struct ElasticReport {
    /// Per-epoch metrics stitched across segments (global epoch indices;
    /// a rolled-back epoch appears once, from its replay).
    pub report: TrainReport,
    /// The segments the schedule folded to, in order.
    pub segments: Vec<ElasticSegment>,
    /// Membership events the coordinator logged (virtual time).
    pub events: Vec<MembershipEvent>,
    /// Consistent-hash resharding stats, one per topology change.
    pub resharding: Vec<ReshardEvent>,
    /// Final flat model parameters (identical on every rank).
    pub final_params: Vec<f32>,
    /// Global step counter after the last segment.
    pub final_step: u64,
    /// Control-plane + rank-0 worker observability, byte-stable.
    pub registry: Registry,
}

impl ElasticReport {
    /// Whether two runs of the same scenario produced bit-for-bit the same
    /// training trajectory: per-epoch metrics, final parameters, and the
    /// step counter. This is the replay-determinism gate — comparing a
    /// [`DistTrainer::run_elastic`] report against its
    /// [`DistTrainer::run_elastic_planned`] twin proves the checkpoint
    /// wire format lossless.
    pub fn bitwise_eq(&self, other: &Self) -> bool {
        self.final_step == other.final_step
            && self.final_params.len() == other.final_params.len()
            && self
                .final_params
                .iter()
                .zip(&other.final_params)
                .all(|(a, b)| a.to_bits() == b.to_bits())
            && self.report.epochs.len() == other.report.epochs.len()
            && self
                .report
                .epochs
                .iter()
                .zip(&other.report.epochs)
                .all(|(a, b)| {
                    a.epoch == b.epoch
                        && a.train_loss.to_bits() == b.train_loss.to_bits()
                        && a.val_top1.to_bits() == b.val_top1.to_bits()
                        && a.val_top5.to_bits() == b.val_top5.to_bits()
                        && a.residual_norm.to_bits() == b.residual_norm.to_bits()
                })
    }
}

impl DistTrainer {
    /// Runs the scenario elastically, round-tripping every segment
    /// boundary through the sharded checkpoint wire format — the
    /// production path.
    ///
    /// # Panics
    /// Panics if the config disagrees with the scenario's initial
    /// topology/epochs, or uses optimizer state the checkpoint format
    /// does not carry (LAMB/Adam moments, the loss scaler).
    pub fn run_elastic(&self, scenario: &ElasticScenario) -> ElasticReport {
        self.run_membership(scenario, true)
    }

    /// The in-memory twin of [`Self::run_elastic`]: identical segmenting
    /// and replanning, but boundary state passes across segments without
    /// serialization. Bitwise equality of the two is the replay-
    /// determinism gate.
    ///
    /// # Panics
    /// Same conditions as [`Self::run_elastic`].
    pub fn run_elastic_planned(&self, scenario: &ElasticScenario) -> ElasticReport {
        self.run_membership(scenario, false)
    }

    fn run_membership(
        &self,
        scenario: &ElasticScenario,
        through_checkpoint: bool,
    ) -> ElasticReport {
        let cfg = &self.cfg;
        assert!(
            matches!(cfg.optimizer, OptimizerKind::Lars | OptimizerKind::Momentum),
            "run_elastic: only LARS/momentum state is checkpointed"
        );
        assert!(
            !cfg.mixed_precision,
            "run_elastic: loss-scaler state is not checkpointed"
        );
        assert_eq!(
            cfg.nodes, scenario.initial_nodes,
            "run_elastic: cfg.nodes must match the scenario's initial membership"
        );
        assert_eq!(
            cfg.epochs, scenario.epochs,
            "run_elastic: cfg.epochs must match the scenario schedule"
        );

        let timeline = scenario.simulate();
        let segments = timeline.segments();
        let resharding = timeline.reshard_events(scenario.seed, scenario.dataset_len);

        // Control-plane observability: membership events and spans from
        // the coordinator, then the datacache resharding ledger.
        let mut reg = Registry::new();
        timeline.coordinator.publish(&mut reg);
        for ev in &resharding {
            ev.publish(&mut reg);
        }
        reg.counter_add("elastic/segments", segments.len() as u64);

        let mut stitched = TrainReport {
            strategy: cfg.strategy.label().to_string(),
            epochs: Vec::new(),
        };
        let mut seg_infos = Vec::new();
        let mut init: Option<SegmentInit> = None;
        let mut last_end: Option<SegmentEnd> = None;
        let total = segments.len();
        for (si, (start_epoch, len, members)) in segments.into_iter().enumerate() {
            let mut seg_cfg = cfg.clone();
            seg_cfg.nodes = members.len();
            if si > 0 {
                // Epoch-boundary world-size change: re-plan the per-layer
                // autotuner and the fusion buckets for the new topology.
                publish_replan(&mut reg, &seg_cfg);
            }
            let ctx = SegmentCtx {
                start_epoch,
                start_step: (start_epoch * cfg.iters_per_epoch) as u64,
                schedule_total_epochs: scenario.epochs,
                init: init.take(),
                node_ids: members.clone(),
            };
            let phases = [(cfg.strategy, len)];
            let runner = DistTrainer::new(seg_cfg.clone());
            let mut outs = run_on_group(seg_cfg.world(), |peer| {
                runner.worker_at(peer, &phases, &ctx)
            });
            let ends: Vec<SegmentEnd> = outs.iter().map(|(_, _, e)| e.clone()).collect();
            let (seg_report, seg_reg, _) = outs.remove(0);
            stitched.epochs.extend(seg_report.epochs.iter().copied());
            reg.merge(&seg_reg);
            seg_infos.push(ElasticSegment {
                start_epoch,
                epochs: len,
                nodes: members.clone(),
            });
            if si + 1 < total {
                let ckpt = cut_checkpoint(&seg_cfg, start_epoch + len, &ends, &members);
                let ckpt = if through_checkpoint {
                    let bytes = ckpt.to_bytes();
                    reg.counter_add("elastic/checkpoint_bytes", bytes.len() as u64);
                    reg.counter_add("elastic/checkpoints_cut", 1);
                    // lint:allow(panic_free, reason = "decoding bytes this process just encoded can only fail on an engine bug; the gauntlet's bitwise twin would catch a silent miss")
                    Checkpoint::from_bytes(&bytes).expect("round-trip of a just-encoded checkpoint")
                } else {
                    ckpt
                };
                init = Some(segment_init(&ckpt));
            }
            last_end = ends.into_iter().next();
        }
        let end = last_end.unwrap_or(SegmentEnd {
            params: Vec::new(),
            velocity: Vec::new(),
            ef_shard: Vec::new(),
            step: 0,
        });
        reg.gauge_set(
            "elastic/final_world",
            stitched_world(&seg_infos, cfg) as f64,
        );
        ElasticReport {
            report: stitched,
            segments: seg_infos,
            events: timeline.events.clone(),
            resharding,
            final_params: end.params,
            final_step: end.step,
            registry: reg,
        }
    }
}

fn stitched_world(segments: &[ElasticSegment], cfg: &DistConfig) -> usize {
    segments
        .last()
        .map(|s| s.nodes.len() * cfg.gpus_per_node)
        .unwrap_or(0)
}

/// Assembles the sharded v2 checkpoint for a segment boundary from every
/// rank's segment-end state. Replicas are identical across ranks (the
/// trainer's core invariant), so rank 0 donates params/velocity; each
/// rank donates its error-feedback shard keyed by `(node id, local)`.
fn cut_checkpoint(
    cfg: &DistConfig,
    epoch: usize,
    ends: &[SegmentEnd],
    members: &[usize],
) -> Checkpoint {
    let n = cfg.gpus_per_node;
    let mut ef_shards = BTreeMap::new();
    for (rank, end) in ends.iter().enumerate() {
        let node = members.get(rank / n).copied().unwrap_or(rank / n) as u64;
        ef_shards.insert((node, (rank % n) as u64), end.ef_shard.clone());
    }
    let first = ends.first();
    let (step, params, velocity) = first
        .map(|e| (e.step, e.params.clone(), e.velocity.clone()))
        .unwrap_or((0, Vec::new(), Vec::new()));
    let ckpt = match Checkpoint::new(step, params, velocity) {
        Ok(c) => c,
        // The same worker donated both vectors, so dimensions agree.
        Err(_) => unreachable!("segment end state is dimension-consistent"),
    };
    ckpt.with_manifest(ShardManifest {
        epoch: epoch as u64,
        gpus_per_node: n as u64,
        nodes: members.iter().map(|&x| x as u64).collect(),
        ef_shards,
    })
}

/// Expands a boundary checkpoint into the next segment's init state.
fn segment_init(ckpt: &Checkpoint) -> SegmentInit {
    SegmentInit {
        params: ckpt.params.clone(),
        velocity: ckpt.velocity.clone(),
        ef_shards: ckpt
            .manifest
            .as_ref()
            .map(|m| m.ef_shards.clone())
            .unwrap_or_default(),
    }
}

/// Publishes the post-change plans: the per-layer autotuner re-run on the
/// new world size and the fusion bucket count for the new launch plan.
fn publish_replan(reg: &mut Registry, cfg: &DistConfig) {
    reg.counter_add("elastic/replans", 1);
    let ranges = workload_layer_ranges(cfg.workload);
    let mut spec = clouds::tencent(cfg.nodes);
    spec.gpus_per_node = cfg.gpus_per_node;
    let mut at = AutotuneConfig::default();
    match cfg.strategy {
        Strategy::MsTopKHiTopK { rho, samplings } => {
            at.rho = rho;
            at.samplings = samplings;
        }
        Strategy::TopKNaiveAg { rho } | Strategy::GTopK { rho } => at.rho = rho,
        _ => {}
    }
    autotune_layers(&ranges, &CommModel::new(spec), &at).publish(reg);
    let elem_bytes = std::mem::size_of::<f32>();
    let buckets = match cfg.fusion {
        FusionMode::WholeTensor => 1,
        FusionMode::PerLayer => plan_buckets(&ranges, elem_bytes, 1).len(),
        FusionMode::Bucketed { threshold_bytes } => {
            plan_buckets(&ranges, elem_bytes, threshold_bytes).len()
        }
        FusionMode::CostModel => {
            plan_buckets_cost_model(&ranges, elem_bytes, &cloud_calibrated_model(&ranges))
                .0
                .len()
        }
    };
    reg.gauge_set("elastic/fusion_buckets", buckets as f64);
    reg.gauge_set("elastic/world", cfg.world() as f64);
}
