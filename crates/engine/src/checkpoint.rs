//! Training-state checkpointing.
//!
//! Long cloud runs get preempted; the DAWNBench schedule also switches
//! strategies mid-run (MSTopK → 2DTAR after epoch 13), which in practice
//! means restarting the training process from saved state. The format is
//! a small self-describing binary: magic, version, step counter, the flat
//! parameter vector, the optimizer velocity, and a FNV-1a checksum so a
//! torn write is detected instead of silently training from garbage.
//!
//! Two framings share the `CLDTRN0` magic prefix; the eighth byte is the
//! format version:
//!
//! * **v1** (`CLDTRN01`) — step, params, velocity. Emitted whenever
//!   [`Checkpoint::manifest`] is `None`, byte-identical to every
//!   checkpoint this crate ever wrote.
//! * **v2** (`CLDTRN02`) — v1 plus a [`ShardManifest`] trailer: the epoch
//!   boundary the snapshot commits, the cluster topology that produced
//!   it, and the per-worker error-feedback residual shards keyed by
//!   `(node id, local rank)`. This is what the elastic control plane cuts
//!   at every membership boundary so training can roll back and replay
//!   deterministically after churn.
//!
//! Earlier revisions treated the trailing `1` as part of an opaque magic,
//! so a future format bump would have parsed v1 fields out of a v2 body.
//! The decoder now dispatches on the version byte and rejects unknown
//! versions cleanly; golden fixtures of both framings are pinned under
//! `tests/fixtures/`.

use std::collections::BTreeMap;
use std::fs;
use std::io::{Read, Write};
use std::path::Path;

/// Sharded-checkpoint trailer (format v2): what beyond the flat model
/// state the elastic trainer needs to resume after a membership change.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ShardManifest {
    /// Epoch boundary this snapshot commits (the next epoch to run).
    pub epoch: u64,
    /// Workers per node of the producing topology.
    pub gpus_per_node: u64,
    /// Active node ids of the producing topology, ascending.
    pub nodes: Vec<u64>,
    /// Per-worker error-feedback residual shards keyed by
    /// `(node id, local rank)`. Survivors restore theirs on resume;
    /// joiners start from zeros.
    pub ef_shards: BTreeMap<(u64, u64), Vec<f32>>,
}

/// Serialized training state.
///
/// # Examples
/// ```
/// use cloudtrain_engine::checkpoint::Checkpoint;
///
/// let ckpt = Checkpoint::new(42, vec![1.0, 2.0], vec![0.0, 0.5]).unwrap();
/// let bytes = ckpt.to_bytes();
/// assert_eq!(Checkpoint::from_bytes(&bytes).unwrap(), ckpt);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Global step counter.
    pub step: u64,
    /// Flat model parameters.
    pub params: Vec<f32>,
    /// Optimizer velocity (same length as `params`).
    pub velocity: Vec<f32>,
    /// Elastic shard manifest; `None` encodes the legacy v1 framing.
    pub manifest: Option<ShardManifest>,
}

const MAGIC_PREFIX: &[u8; 7] = b"CLDTRN0";
const VERSION_V1: u8 = b'1';
const VERSION_V2: u8 = b'2';

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a checkpoint file, or an unsupported version.
    BadMagic,
    /// Structure inconsistent with the declared lengths.
    Truncated,
    /// Checksum mismatch (torn or corrupted write).
    Corrupted,
    /// `params` and `velocity` lengths disagree (construction-time check).
    Mismatched,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a cloudtrain checkpoint"),
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::Corrupted => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Mismatched => {
                write!(f, "checkpoint params/velocity length mismatch")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Checked reader over an untrusted byte buffer: every read advances an
/// offset through `get`-based slicing, failing into `Truncated` instead of
/// panicking or wrapping.
struct Cursor<'a> {
    bytes: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(bytes: &'a [u8], off: usize) -> Self {
        Self { bytes, off }
    }

    fn read_u64(&mut self) -> Result<u64, CheckpointError> {
        let end = self.off.checked_add(8).ok_or(CheckpointError::Truncated)?;
        let arr: [u8; 8] = self
            .bytes
            .get(self.off..end)
            .and_then(|s| s.try_into().ok())
            .ok_or(CheckpointError::Truncated)?;
        self.off = end;
        Ok(u64::from_le_bytes(arr))
    }

    fn read_len(&mut self) -> Result<usize, CheckpointError> {
        usize::try_from(self.read_u64()?).map_err(|_| CheckpointError::Truncated)
    }

    fn read_f32s(&mut self, count: usize) -> Result<Vec<f32>, CheckpointError> {
        let nbytes = count.checked_mul(4).ok_or(CheckpointError::Truncated)?;
        let end = self
            .off
            .checked_add(nbytes)
            .ok_or(CheckpointError::Truncated)?;
        let slice = self
            .bytes
            .get(self.off..end)
            .ok_or(CheckpointError::Truncated)?;
        self.off = end;
        Ok(slice
            .chunks_exact(4)
            .map(|c| {
                let &[b0, b1, b2, b3] = c else {
                    unreachable!("chunks_exact(4) yields exactly 4 bytes")
                };
                f32::from_le_bytes([b0, b1, b2, b3])
            })
            .collect())
    }
}

impl Checkpoint {
    /// Validating constructor: rejects mismatched `params`/`velocity`
    /// lengths up front, where [`Self::to_bytes`] would panic later. The
    /// manifest starts empty (`None` → legacy v1 framing); attach one
    /// with [`Self::with_manifest`].
    ///
    /// # Errors
    /// Returns [`CheckpointError::Mismatched`] when the lengths disagree.
    pub fn new(step: u64, params: Vec<f32>, velocity: Vec<f32>) -> Result<Self, CheckpointError> {
        if params.len() != velocity.len() {
            return Err(CheckpointError::Mismatched);
        }
        Ok(Self {
            step,
            params,
            velocity,
            manifest: None,
        })
    }

    /// Attaches a shard manifest, switching the encoding to format v2.
    #[must_use]
    pub fn with_manifest(mut self, manifest: ShardManifest) -> Self {
        self.manifest = Some(manifest);
        self
    }

    /// Encodes the checkpoint to bytes — v1 framing without a manifest
    /// (byte-identical to the legacy format), v2 with one.
    ///
    /// # Panics
    /// Panics if `params` and `velocity` have different lengths — an
    /// invariant [`Self::new`] establishes; construct through it (or keep
    /// the fields consistent) before encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert_eq!(
            self.params.len(),
            self.velocity.len(),
            "Checkpoint: params and velocity must match"
        );
        let mut out = Vec::with_capacity(32 + self.params.len() * 8);
        out.extend_from_slice(MAGIC_PREFIX);
        out.push(if self.manifest.is_some() {
            VERSION_V2
        } else {
            VERSION_V1
        });
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for v in &self.params {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.velocity {
            out.extend_from_slice(&v.to_le_bytes());
        }
        if let Some(m) = &self.manifest {
            out.extend_from_slice(&m.epoch.to_le_bytes());
            out.extend_from_slice(&m.gpus_per_node.to_le_bytes());
            out.extend_from_slice(&(m.nodes.len() as u64).to_le_bytes());
            for &n in &m.nodes {
                out.extend_from_slice(&n.to_le_bytes());
            }
            out.extend_from_slice(&(m.ef_shards.len() as u64).to_le_bytes());
            for (&(node, local), residual) in &m.ef_shards {
                out.extend_from_slice(&node.to_le_bytes());
                out.extend_from_slice(&local.to_le_bytes());
                out.extend_from_slice(&(residual.len() as u64).to_le_bytes());
                for v in residual {
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a checkpoint from bytes, dispatching on the format-version
    /// byte. Unknown versions fail as [`CheckpointError::BadMagic`].
    ///
    /// # Errors
    /// Returns a [`CheckpointError`] for malformed or corrupted input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // The buffer is input-controlled (a crafted, correctly checksummed
        // buffer can declare any length), so every read goes through the
        // checked cursor and all length arithmetic must fail into
        // `Truncated` instead of wrapping into a passing bounds check.
        if bytes.len() < 32 || bytes.get(..7) != Some(MAGIC_PREFIX.as_slice()) {
            return Err(CheckpointError::BadMagic);
        }
        let version = bytes.get(7).copied().ok_or(CheckpointError::BadMagic)?;
        if version != VERSION_V1 && version != VERSION_V2 {
            return Err(CheckpointError::BadMagic);
        }
        let body_len = bytes.len() - 8;
        let mut tail = Cursor::new(bytes, body_len);
        let declared = tail.read_u64()?;
        if fnv1a(&bytes[..body_len]) != declared {
            return Err(CheckpointError::Corrupted);
        }
        let mut cur = Cursor::new(&bytes[..body_len], 8);
        let step = cur.read_u64()?;
        let d = cur.read_len()?;
        let params = cur.read_f32s(d)?;
        let velocity = cur.read_f32s(d)?;
        let manifest = if version == VERSION_V2 {
            let epoch = cur.read_u64()?;
            let gpus_per_node = cur.read_u64()?;
            let node_count = cur.read_len()?;
            // Each node id costs 8 bytes; bound the declared count by the
            // remaining buffer before allocating.
            if node_count > body_len / 8 {
                return Err(CheckpointError::Truncated);
            }
            let mut nodes = Vec::with_capacity(node_count);
            for _ in 0..node_count {
                nodes.push(cur.read_u64()?);
            }
            let ef_count = cur.read_len()?;
            if ef_count > body_len / 24 {
                return Err(CheckpointError::Truncated);
            }
            let mut ef_shards = BTreeMap::new();
            for _ in 0..ef_count {
                let node = cur.read_u64()?;
                let local = cur.read_u64()?;
                let len = cur.read_len()?;
                let residual = cur.read_f32s(len)?;
                ef_shards.insert((node, local), residual);
            }
            Some(ShardManifest {
                epoch,
                gpus_per_node,
                nodes,
                ef_shards,
            })
        } else {
            None
        };
        // Exact-length framing: trailing garbage is corruption, not slack.
        if cur.off != body_len {
            return Err(CheckpointError::Truncated);
        }
        Ok(Self {
            step,
            params,
            velocity,
            manifest,
        })
    }

    /// Writes the checkpoint atomically (tmp file + rename).
    ///
    /// # Errors
    /// Returns any I/O error.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a checkpoint from disk.
    ///
    /// # Errors
    /// Returns a [`CheckpointError`] on I/O failure or corruption.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            step: 12345,
            params: (0..100).map(|i| i as f32 * 0.5 - 10.0).collect(),
            velocity: (0..100).map(|i| (i as f32).sin()).collect(),
            manifest: None,
        }
    }

    fn sample_manifest() -> ShardManifest {
        let mut ef_shards = BTreeMap::new();
        ef_shards.insert((0, 0), vec![0.25, -0.5]);
        ef_shards.insert((0, 1), vec![1.5]);
        ef_shards.insert((3, 0), vec![]);
        ShardManifest {
            epoch: 2,
            gpus_per_node: 2,
            nodes: vec![0, 1, 3],
            ef_shards,
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let c = sample();
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn v2_bytes_roundtrip_with_manifest() {
        let c = sample().with_manifest(sample_manifest());
        let bytes = c.to_bytes();
        assert_eq!(&bytes[..8], b"CLDTRN02");
        let back = Checkpoint::from_bytes(&bytes).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn v1_framing_is_the_legacy_bytes() {
        // A manifest-free checkpoint must keep the exact legacy layout:
        // magic ‖ step ‖ d ‖ params ‖ velocity ‖ fnv1a.
        let c = sample();
        let bytes = c.to_bytes();
        assert_eq!(&bytes[..8], b"CLDTRN01");
        assert_eq!(bytes.len(), 32 + 8 * c.params.len());
        let mut legacy = Vec::new();
        legacy.extend_from_slice(b"CLDTRN01");
        legacy.extend_from_slice(&c.step.to_le_bytes());
        legacy.extend_from_slice(&(c.params.len() as u64).to_le_bytes());
        for v in c.params.iter().chain(&c.velocity) {
            legacy.extend_from_slice(&v.to_le_bytes());
        }
        let sum = fnv1a(&legacy);
        legacy.extend_from_slice(&sum.to_le_bytes());
        assert_eq!(bytes, legacy);
    }

    #[test]
    fn unknown_version_is_rejected() {
        let mut bytes = sample().to_bytes();
        bytes[7] = b'3';
        // Re-seal the checksum so only the version is wrong.
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        bytes.truncate(body);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn v1_body_with_v2_version_byte_is_rejected() {
        // The regression this format bump fixes: framing and version must
        // agree. A v1 body stamped v2 has no manifest to parse.
        let mut bytes = sample().to_bytes();
        bytes[7] = VERSION_V2;
        let body = bytes.len() - 8;
        let sum = fnv1a(&bytes[..body]);
        bytes.truncate(body);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn v2_trailing_garbage_is_rejected() {
        let c = sample().with_manifest(sample_manifest());
        let mut bytes = c.to_bytes();
        let body = bytes.len() - 8;
        bytes.truncate(body);
        bytes.extend_from_slice(&0u64.to_le_bytes()); // junk "extra field"
        let sum = fnv1a(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Truncated)
        ));
    }

    #[test]
    fn v2_huge_declared_counts_are_rejected_cleanly() {
        // Absurd node/ef counts must fail before allocation.
        for (nodes, efs) in [(u64::MAX, 0u64), (0, u64::MAX), (1 << 40, 0)] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC_PREFIX);
            bytes.push(VERSION_V2);
            bytes.extend_from_slice(&7u64.to_le_bytes()); // step
            bytes.extend_from_slice(&0u64.to_le_bytes()); // d = 0
            bytes.extend_from_slice(&1u64.to_le_bytes()); // epoch
            bytes.extend_from_slice(&1u64.to_le_bytes()); // gpus
            bytes.extend_from_slice(&nodes.to_le_bytes());
            bytes.extend_from_slice(&efs.to_le_bytes());
            let sum = fnv1a(&bytes);
            bytes.extend_from_slice(&sum.to_le_bytes());
            assert!(matches!(
                Checkpoint::from_bytes(&bytes),
                Err(CheckpointError::Truncated)
            ));
        }
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!("ct-ckpt-{}.ckpt", std::process::id()));
        let c = sample().with_manifest(sample_manifest());
        c.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(c, back);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected() {
        for c in [sample(), sample().with_manifest(sample_manifest())] {
            let mut bytes = c.to_bytes();
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0xFF;
            assert!(matches!(
                Checkpoint::from_bytes(&bytes),
                Err(CheckpointError::Corrupted)
            ));
        }
    }

    #[test]
    fn truncation_and_bad_magic_are_detected() {
        let bytes = sample().to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(&bytes[..bytes.len() - 20]),
            Err(CheckpointError::Corrupted) | Err(CheckpointError::Truncated)
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::BadMagic)
        ));
        assert!(matches!(
            Checkpoint::from_bytes(b"short"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn new_rejects_mismatched_lengths() {
        let err = Checkpoint::new(1, vec![1.0; 3], vec![0.0; 2]).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatched));
        assert!(err.to_string().contains("mismatch"));
        let ok = Checkpoint::new(1, vec![1.0; 3], vec![0.0; 3]).unwrap();
        assert_eq!(Checkpoint::from_bytes(&ok.to_bytes()).unwrap(), ok);
    }

    #[test]
    fn huge_declared_length_is_rejected_cleanly() {
        // A correctly checksummed header declaring an absurd element count:
        // the length arithmetic must not overflow into a passing check.
        for d in [u64::MAX, u64::MAX / 8, (usize::MAX as u64 - 31) / 8 + 1] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC_PREFIX);
            bytes.push(VERSION_V1);
            bytes.extend_from_slice(&7u64.to_le_bytes());
            bytes.extend_from_slice(&d.to_le_bytes());
            let sum = fnv1a(&bytes);
            bytes.extend_from_slice(&sum.to_le_bytes());
            assert!(
                matches!(
                    Checkpoint::from_bytes(&bytes),
                    Err(CheckpointError::Truncated)
                ),
                "d={d} must be rejected as truncated"
            );
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
