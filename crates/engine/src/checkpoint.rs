//! Training-state checkpointing.
//!
//! Long cloud runs get preempted; the DAWNBench schedule also switches
//! strategies mid-run (MSTopK → 2DTAR after epoch 13), which in practice
//! means restarting the training process from saved state. The format is
//! a small self-describing binary: magic, version, step counter, the flat
//! parameter vector, the optimizer velocity, and a FNV-1a checksum so a
//! torn write is detected instead of silently training from garbage.

use std::fs;
use std::io::{Read, Write};
use std::path::Path;

/// Serialized training state.
///
/// # Examples
/// ```
/// use cloudtrain_engine::checkpoint::Checkpoint;
///
/// let ckpt = Checkpoint {
///     step: 42,
///     params: vec![1.0, 2.0],
///     velocity: vec![0.0, 0.5],
/// };
/// let bytes = ckpt.to_bytes();
/// assert_eq!(Checkpoint::from_bytes(&bytes).unwrap(), ckpt);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Checkpoint {
    /// Global step counter.
    pub step: u64,
    /// Flat model parameters.
    pub params: Vec<f32>,
    /// Optimizer velocity (same length as `params`).
    pub velocity: Vec<f32>,
}

const MAGIC: &[u8; 8] = b"CLDTRN01";

/// Errors from loading a checkpoint.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Not a checkpoint file, or an unsupported version.
    BadMagic,
    /// Structure inconsistent with the declared lengths.
    Truncated,
    /// Checksum mismatch (torn or corrupted write).
    Corrupted,
    /// `params` and `velocity` lengths disagree (construction-time check).
    Mismatched,
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::BadMagic => write!(f, "not a cloudtrain checkpoint"),
            CheckpointError::Truncated => write!(f, "checkpoint is truncated"),
            CheckpointError::Corrupted => write!(f, "checkpoint checksum mismatch"),
            CheckpointError::Mismatched => {
                write!(f, "checkpoint params/velocity length mismatch")
            }
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

impl Checkpoint {
    /// Validating constructor: rejects mismatched `params`/`velocity`
    /// lengths up front, where [`Self::to_bytes`] would panic later.
    ///
    /// # Errors
    /// Returns [`CheckpointError::Mismatched`] when the lengths disagree.
    pub fn new(step: u64, params: Vec<f32>, velocity: Vec<f32>) -> Result<Self, CheckpointError> {
        if params.len() != velocity.len() {
            return Err(CheckpointError::Mismatched);
        }
        Ok(Self {
            step,
            params,
            velocity,
        })
    }

    /// Encodes the checkpoint to bytes.
    ///
    /// # Panics
    /// Panics if `params` and `velocity` have different lengths — an
    /// invariant [`Self::new`] establishes; construct through it (or keep
    /// the fields consistent) before encoding.
    pub fn to_bytes(&self) -> Vec<u8> {
        assert_eq!(
            self.params.len(),
            self.velocity.len(),
            "Checkpoint: params and velocity must match"
        );
        let mut out = Vec::with_capacity(32 + self.params.len() * 8);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&self.step.to_le_bytes());
        out.extend_from_slice(&(self.params.len() as u64).to_le_bytes());
        for v in &self.params {
            out.extend_from_slice(&v.to_le_bytes());
        }
        for v in &self.velocity {
            out.extend_from_slice(&v.to_le_bytes());
        }
        let sum = fnv1a(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decodes a checkpoint from bytes.
    ///
    /// # Errors
    /// Returns a [`CheckpointError`] for malformed or corrupted input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CheckpointError> {
        // Every read goes through `get` + checked offsets: the buffer is
        // input-controlled (a crafted, correctly checksummed buffer can
        // declare any length), so arithmetic that could wrap into a
        // passing bounds check must fail into `Truncated` instead.
        fn read_u64(bytes: &[u8], off: usize) -> Result<u64, CheckpointError> {
            let end = off.checked_add(8).ok_or(CheckpointError::Truncated)?;
            let arr: [u8; 8] = bytes
                .get(off..end)
                .and_then(|s| s.try_into().ok())
                .ok_or(CheckpointError::Truncated)?;
            Ok(u64::from_le_bytes(arr))
        }
        if bytes.len() < 32 || bytes.get(..8) != Some(MAGIC.as_slice()) {
            return Err(CheckpointError::BadMagic);
        }
        let body_len = bytes.len() - 8;
        let declared = read_u64(bytes, body_len)?;
        if fnv1a(&bytes[..body_len]) != declared {
            return Err(CheckpointError::Corrupted);
        }
        let step = read_u64(bytes, 8)?;
        let d_u64 = read_u64(bytes, 16)?;
        let d = usize::try_from(d_u64).map_err(|_| CheckpointError::Truncated)?;
        let expect = d
            .checked_mul(8)
            .and_then(|v| v.checked_add(32))
            .ok_or(CheckpointError::Truncated)?;
        if bytes.len() != expect {
            return Err(CheckpointError::Truncated);
        }
        let vec_bytes = d.checked_mul(4).ok_or(CheckpointError::Truncated)?;
        let read_f32s = |off: usize| -> Result<Vec<f32>, CheckpointError> {
            let end = off
                .checked_add(vec_bytes)
                .ok_or(CheckpointError::Truncated)?;
            let slice = bytes.get(off..end).ok_or(CheckpointError::Truncated)?;
            Ok(slice
                .chunks_exact(4)
                .map(|c| {
                    let &[b0, b1, b2, b3] = c else {
                        unreachable!("chunks_exact(4) yields exactly 4 bytes")
                    };
                    f32::from_le_bytes([b0, b1, b2, b3])
                })
                .collect())
        };
        Ok(Self {
            step,
            params: read_f32s(24)?,
            velocity: read_f32s(
                24usize
                    .checked_add(vec_bytes)
                    .ok_or(CheckpointError::Truncated)?,
            )?,
        })
    }

    /// Writes the checkpoint atomically (tmp file + rename).
    ///
    /// # Errors
    /// Returns any I/O error.
    pub fn save(&self, path: &Path) -> Result<(), CheckpointError> {
        let tmp = path.with_extension("ckpt.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&self.to_bytes())?;
            f.sync_all()?;
        }
        fs::rename(&tmp, path)?;
        Ok(())
    }

    /// Loads a checkpoint from disk.
    ///
    /// # Errors
    /// Returns a [`CheckpointError`] on I/O failure or corruption.
    pub fn load(path: &Path) -> Result<Self, CheckpointError> {
        let mut bytes = Vec::new();
        fs::File::open(path)?.read_to_end(&mut bytes)?;
        Self::from_bytes(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Checkpoint {
        Checkpoint {
            step: 12345,
            params: (0..100).map(|i| i as f32 * 0.5 - 10.0).collect(),
            velocity: (0..100).map(|i| (i as f32).sin()).collect(),
        }
    }

    #[test]
    fn bytes_roundtrip() {
        let c = sample();
        let back = Checkpoint::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c, back);
    }

    #[test]
    fn file_roundtrip() {
        let path = std::env::temp_dir().join(format!("ct-ckpt-{}.ckpt", std::process::id()));
        let c = sample();
        c.save(&path).unwrap();
        let back = Checkpoint::load(&path).unwrap();
        assert_eq!(c, back);
        let _ = fs::remove_file(&path);
    }

    #[test]
    fn corruption_is_detected() {
        let mut bytes = sample().to_bytes();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Corrupted)
        ));
    }

    #[test]
    fn truncation_and_bad_magic_are_detected() {
        let bytes = sample().to_bytes();
        assert!(matches!(
            Checkpoint::from_bytes(&bytes[..bytes.len() - 20]),
            Err(CheckpointError::Corrupted) | Err(CheckpointError::Truncated)
        ));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(
            Checkpoint::from_bytes(&bad),
            Err(CheckpointError::BadMagic)
        ));
        assert!(matches!(
            Checkpoint::from_bytes(b"short"),
            Err(CheckpointError::BadMagic)
        ));
    }

    #[test]
    fn new_rejects_mismatched_lengths() {
        let err = Checkpoint::new(1, vec![1.0; 3], vec![0.0; 2]).unwrap_err();
        assert!(matches!(err, CheckpointError::Mismatched));
        assert!(err.to_string().contains("mismatch"));
        let ok = Checkpoint::new(1, vec![1.0; 3], vec![0.0; 3]).unwrap();
        assert_eq!(Checkpoint::from_bytes(&ok.to_bytes()).unwrap(), ok);
    }

    #[test]
    fn huge_declared_length_is_rejected_cleanly() {
        // A correctly checksummed header declaring an absurd element count:
        // the length arithmetic must not overflow into a passing check.
        for d in [u64::MAX, u64::MAX / 8, (usize::MAX as u64 - 31) / 8 + 1] {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(MAGIC);
            bytes.extend_from_slice(&7u64.to_le_bytes());
            bytes.extend_from_slice(&d.to_le_bytes());
            let sum = fnv1a(&bytes);
            bytes.extend_from_slice(&sum.to_le_bytes());
            assert!(
                matches!(
                    Checkpoint::from_bytes(&bytes),
                    Err(CheckpointError::Truncated)
                ),
                "d={d} must be rejected as truncated"
            );
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = Checkpoint::load(Path::new("/nonexistent/ckpt")).unwrap_err();
        assert!(matches!(err, CheckpointError::Io(_)));
        assert!(err.to_string().contains("I/O"));
    }
}
