//! Per-layer communication autotuner: picks the aggregation scheme for
//! every layer from its size, the target density, and the probed α–β
//! topology, extending [`crate::fusion`]'s wait-free-backprop cost model
//! from "how big are the buckets" to "which collective family moves each
//! bucket".
//!
//! Four schemes compete per layer (DESIGN.md §13):
//!
//! * **Dense 2D-torus** — no compression cost, but the full FP32 payload
//!   crosses the inter-node NIC. Wins on tiny layers where the top-k
//!   selection's kernel passes cost more than the bytes they save.
//! * **HiTopKComm, staged** — top-k per shard, then two inter-node
//!   AllGathers (values, indices): `2(m−1)` messages of `8k̃` bytes total.
//! * **HiTopKComm, fused** — the same bytes in one framed pair pipeline:
//!   `m−1` messages, half the per-message α, paid for with a streaming
//!   bookkeeping charge over the shard the fused ReduceScatter consumes.
//!   The staged-vs-fused crossover is therefore *predicted*, not assumed:
//!   α-dominated layers fuse, overhead-dominated shards stay staged, and
//!   [`DistConfig`](crate::trainer::DistConfig)`::fused_compress_reduce`
//!   can be set from [`AutotuneReport::fused_compress_reduce`] instead of
//!   guessed.
//! * **O(k) sparse allreduce** — balanced index partitioning plus
//!   split-and-merge (Li & Hoefler 2022,
//!   `cloudtrain_collectives::sparse_allreduce`). Its merge phase moves
//!   `8·merged·(m−1)` bytes where `merged` shrinks as the per-node
//!   selections overlap, so the model carries an explicit **overlap**
//!   parameter ω: at ω→1 (error-feedback steady state, shared heavy
//!   coordinates) total traffic is `≈16k̃` independent of `m` and O(k)
//!   beats HiTopKComm from `m ≥ 3`; at ω→0 the merged lists grow like
//!   `m·k̃` and HiTopKComm keeps the crown. The crossover condition is
//!   `ω > 1/(m−1)` before α terms (see [`Crossovers::oksparse_min_overlap`]).
//!
//! The report composes back into the α–β [`WfbpModel`] recurrence:
//! [`AutotuneReport::iteration_time`] prices the autotuned schedule with
//! the same one-network-stream model `fusion::plan_buckets_cost_model`
//! uses, so "autotuned" and "hand-picked" plans are comparable numbers.

use crate::fusion::{WfbpModel, WfbpTiming, BACKWARD_SECONDS_PER_PARAM};
use cloudtrain_compress::gpu_cost::{mstopk_cost, GpuRates};
use cloudtrain_dnn::model::ParamRange;
use cloudtrain_obs::Registry;
use cloudtrain_simnet::ClusterSpec;
use serde::{Deserialize, Serialize};

/// The collective families the tuner chooses between, in deterministic
/// tie-break order (earlier wins on exactly equal cost).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CommScheme {
    /// Dense FP32 2D-torus AllReduce (no compression).
    DenseTorus,
    /// HiTopKComm with staged inter-node gathers (values, then indices).
    HiTopKStaged,
    /// HiTopKComm with the fused compress–reduce pair pipeline.
    HiTopKFused,
    /// O(k) sparse allreduce (split-and-merge index partitioning).
    OkSparse,
}

/// All schemes, in the tie-break order the planner scans them.
pub const SCHEMES: [CommScheme; 4] = [
    CommScheme::DenseTorus,
    CommScheme::HiTopKStaged,
    CommScheme::HiTopKFused,
    CommScheme::OkSparse,
];

impl CommScheme {
    /// Short label used in tables and JSON snapshots.
    pub fn label(&self) -> &'static str {
        match self {
            CommScheme::DenseTorus => "dense-torus",
            CommScheme::HiTopKStaged => "hitopk-staged",
            CommScheme::HiTopKFused => "hitopk-fused",
            CommScheme::OkSparse => "oksparse",
        }
    }
}

/// Tunables of the sparse schemes (the knobs the paper sweeps).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AutotuneConfig {
    /// Density ρ (fraction of coordinates each shard transmits).
    pub rho: f64,
    /// Selection-overlap fraction ω ∈ [0, 1]: how much of one node's
    /// top-k index set the other nodes also select. Error-feedback
    /// steady state on real gradients sits high (shared heavy
    /// coordinates); adversarially disjoint selections sit at 0.
    pub overlap: f64,
    /// MSTopK threshold-search iterations (`N`, paper uses 30).
    pub samplings: usize,
}

impl Default for AutotuneConfig {
    fn default() -> Self {
        Self {
            rho: 0.01,
            overlap: 0.75,
            samplings: 30,
        }
    }
}

/// The probed machine the tuner prices against: an α–β cluster plus GPU
/// kernel rates and the fused path's streaming-bookkeeping charge.
#[derive(Debug, Clone, Copy)]
pub struct CommModel {
    /// Two-level cluster (probed or preset α/β per link class).
    pub cluster: ClusterSpec,
    /// GPU kernel cost rates for the top-k selection passes.
    pub gpu: GpuRates,
    /// Seconds of fused-pipeline bookkeeping per shard byte streamed:
    /// the fused ReduceScatter's ring-buffer consumption is not free, and
    /// this charge is what gives staged-vs-fused a crossover instead of
    /// letting the halved message count win unconditionally.
    pub fuse_overhead_per_byte: f64,
}

impl CommModel {
    /// A model over the given cluster with default GPU rates and a fused
    /// bookkeeping charge calibrated so the crossover lands between the
    /// paper's small attention tensors (fuse) and its fattest conv/embed
    /// shards (stay staged).
    pub fn new(cluster: ClusterSpec) -> Self {
        Self {
            cluster,
            gpu: GpuRates::default(),
            fuse_overhead_per_byte: 2e-12,
        }
    }

    /// Per-shard top-k elements for a `d`-parameter layer at density ρ
    /// (`k̃ = ρ·d/n`, Eq. 5; at least 1).
    pub fn k_per_shard(&self, d: usize, rho: f64) -> usize {
        let n = self.cluster.gpus_per_node;
        (((d as f64) * rho / n as f64) as usize).max(1)
    }

    /// Intra-node cost common to every scheme: ring ReduceScatter plus
    /// ring AllGather of the dense FP32 layer over the node's `n` GPUs.
    fn intra_seconds(&self, d: usize) -> f64 {
        let n = self.cluster.gpus_per_node;
        if n <= 1 {
            return 0.0;
        }
        let hop = self.cluster.intra.alpha + (4.0 * d as f64 / n as f64) * self.cluster.intra.beta;
        2.0 * (n - 1) as f64 * hop
    }

    /// Expected distinct nonzeros in one owner range after merging `m`
    /// node selections of `k̃` entries with overlap ω: each contributes
    /// `k̃/m` to the range; ω of the foreign mass lands on already-owned
    /// coordinates.
    fn merged_entries(&self, k: usize, overlap: f64) -> f64 {
        let m = self.cluster.nodes as f64;
        (k as f64 / m) * (1.0 + (1.0 - overlap) * (m - 1.0))
    }

    /// Predicted inter-node bytes one GPU sends for a `d`-parameter layer
    /// under `scheme` (the quantity `OkSparseReport::inter_bytes_sent`
    /// and `HiTopKReport::inter_bytes_sent` measure).
    pub fn inter_bytes(&self, scheme: CommScheme, d: usize, cfg: &AutotuneConfig) -> f64 {
        let m = self.cluster.nodes as f64;
        let n = self.cluster.gpus_per_node as f64;
        if m <= 1.0 {
            return 0.0;
        }
        let k = self.k_per_shard(d, cfg.rho) as f64;
        match scheme {
            // Ring AllReduce on the intra shard: 2(m−1) hops of d/(n·m)
            // FP32 elements.
            CommScheme::DenseTorus => 2.0 * (m - 1.0) * (4.0 * d as f64 / (n * m)),
            // 8 bytes per selected (index, value) pair, replicated to the
            // other m−1 node-group members — identical bytes either way;
            // fusing changes the message count, not the payload.
            CommScheme::HiTopKStaged | CommScheme::HiTopKFused => 8.0 * k * (m - 1.0),
            // Split phase ships the k̃(1−1/m) foreign entries once; the
            // merge AllGather replicates the owner range's merged list.
            CommScheme::OkSparse => {
                8.0 * k * (1.0 - 1.0 / m)
                    + 8.0 * self.merged_entries(k as usize, cfg.overlap) * (m - 1.0)
            }
        }
    }

    /// Predicted seconds to aggregate one `d`-parameter layer under
    /// `scheme`: intra phases + compression + inter messages, α–β priced.
    pub fn layer_seconds(&self, scheme: CommScheme, d: usize, cfg: &AutotuneConfig) -> f64 {
        let m = self.cluster.nodes as f64;
        let n = self.cluster.gpus_per_node;
        let intra = self.intra_seconds(d);
        if m <= 1.0 {
            return intra;
        }
        let alpha = self.cluster.inter.alpha;
        let beta = self.cluster.inter.beta;
        let bytes = self.inter_bytes(scheme, d, cfg);
        let shard = d.div_ceil(n);
        let k = self.k_per_shard(d, cfg.rho);
        let topk = || mstopk_cost(shard, k, cfg.samplings, &self.gpu).seconds;
        match scheme {
            CommScheme::DenseTorus => intra + 2.0 * (m - 1.0) * alpha + bytes * beta,
            CommScheme::HiTopKStaged => intra + topk() + 2.0 * (m - 1.0) * alpha + bytes * beta,
            CommScheme::HiTopKFused => {
                // One framed pair pipeline: m−1 messages (+4 frame bytes
                // each), plus the streaming bookkeeping over the shard.
                intra
                    + topk()
                    + (m - 1.0) * alpha
                    + (bytes + 4.0 * (m - 1.0)) * beta
                    + self.fuse_overhead_per_byte * 4.0 * shard as f64
            }
            CommScheme::OkSparse => {
                // Split to m−1 owners, then the merge AllGather's m−1
                // pipeline hops: 2(m−1) messages total.
                intra + topk() + 2.0 * (m - 1.0) * alpha + bytes * beta
            }
        }
    }
}

/// The tuner's verdict for one layer.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LayerPlan {
    /// Index into the backward-ordered layer list.
    pub layer: usize,
    /// Layer parameters.
    pub params: usize,
    /// Winning scheme.
    pub choice: CommScheme,
    /// Predicted seconds per scheme, in [`SCHEMES`] order.
    pub predicted_seconds: [f64; 4],
}

/// Model-predicted crossover points for the probed topology — the
/// boundaries of each scheme's winning region.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Crossovers {
    /// Smallest layer size (params) where the best sparse scheme beats
    /// dense-torus, or `None` if dense wins everywhere scanned.
    pub sparse_min_params: Option<usize>,
    /// Largest shard size (params) where fused HiTopKComm still beats
    /// staged, or `None` if fused wins everywhere scanned.
    pub fused_max_shard_params: Option<usize>,
    /// Smallest overlap ω (on a 1/64 grid) where O(k) inter bytes drop
    /// below HiTopKComm's for this node count, or `None` when `m < 3`
    /// (O(k)'s extra split never amortizes on 2 nodes).
    pub oksparse_min_overlap: Option<f64>,
}

/// The full autotuning outcome for one model on one probed topology.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AutotuneReport {
    /// Per-layer verdicts, in backward order.
    pub layers: Vec<LayerPlan>,
    /// Summed predicted seconds per scheme had it been forced on every
    /// layer, in [`SCHEMES`] order.
    pub forced_totals: [f64; 4],
    /// Summed predicted seconds of the per-layer argmin schedule.
    pub autotuned_total: f64,
    /// Winning-region boundaries for this topology.
    pub crossovers: Crossovers,
    /// The config the tuner priced.
    pub config: AutotuneConfig,
}

impl AutotuneReport {
    /// Per-layer verdict counts, in [`SCHEMES`] order.
    pub fn counts(&self) -> [usize; 4] {
        let mut counts = [0usize; 4];
        for p in &self.layers {
            for (slot, s) in SCHEMES.iter().enumerate() {
                if p.choice == *s {
                    counts[slot] += 1;
                }
            }
        }
        counts
    }

    /// The scheme that wins when one global choice must cover every layer
    /// (what a single `Strategy` knob can express): argmin of
    /// [`Self::forced_totals`], first on ties.
    pub fn global_choice(&self) -> CommScheme {
        let mut best = 0;
        for i in 1..SCHEMES.len() {
            if self.forced_totals[i] < self.forced_totals[best] {
                best = i;
            }
        }
        SCHEMES[best]
    }

    /// What `DistConfig::fused_compress_reduce` should be on this
    /// topology: fused iff the fused HiTopKComm total beats the staged
    /// one. This is the satellite contract — the flag is derived from the
    /// crossover model, never guessed, so the slower path cannot be
    /// silently selected.
    pub fn fused_compress_reduce(&self) -> bool {
        // lint:allow(panic_free, reason = "forced_totals is [f64; 4] indexed by the fixed SCHEMES slots (1 = staged, 2 = fused); literal indexing on a fixed-size array cannot panic")
        self.forced_totals[2] <= self.forced_totals[1]
    }

    /// Prices the autotuned schedule through the [`WfbpModel`] recurrence
    /// (bucket `b` starts at `max(gradients ready, network free)`), with
    /// each layer charged its chosen scheme's predicted seconds.
    pub fn iteration_time(&self, model: &WfbpModel) -> WfbpTiming {
        assert_eq!(
            model.layer_backward_seconds.len(),
            self.layers.len(),
            "iteration_time: model/plan layer count mismatch"
        );
        let backward: f64 = model.layer_backward_seconds.iter().sum();
        let mut ready = 0.0f64;
        let mut net_free = 0.0f64;
        for (plan, bw) in self.layers.iter().zip(&model.layer_backward_seconds) {
            ready += bw;
            let slot = SCHEMES
                .iter()
                .position(|s| *s == plan.choice)
                .unwrap_or_default();
            let start = ready.max(net_free);
            net_free = start + plan.predicted_seconds[slot];
        }
        let total = net_free.max(backward);
        WfbpTiming {
            backward,
            total,
            exposed_comm: total - backward,
            collectives: self.layers.len(),
        }
    }

    /// Publishes the verdict counts and totals as gauges
    /// (`autotune/<scheme>`, `autotune/total_seconds`).
    pub fn publish(&self, reg: &mut Registry) {
        for (slot, s) in SCHEMES.iter().enumerate() {
            reg.gauge_set(
                &format!("autotune/{}", s.label()),
                self.counts()[slot] as f64,
            );
        }
        reg.gauge_set("autotune/total_seconds", self.autotuned_total);
    }
}

/// Scans layer sizes from 1 to `max_params` (powers of two) and returns
/// the crossover boundaries for this model and config.
fn find_crossovers(model: &CommModel, cfg: &AutotuneConfig, max_params: usize) -> Crossovers {
    let n = model.cluster.gpus_per_node;
    let mut sparse_min_params = None;
    let mut fused_max_shard_params = None;
    let mut d = 1usize;
    while d <= max_params.max(1) {
        let dense = model.layer_seconds(CommScheme::DenseTorus, d, cfg);
        let staged = model.layer_seconds(CommScheme::HiTopKStaged, d, cfg);
        let fused = model.layer_seconds(CommScheme::HiTopKFused, d, cfg);
        let oksparse = model.layer_seconds(CommScheme::OkSparse, d, cfg);
        let best_sparse = staged.min(fused).min(oksparse);
        if sparse_min_params.is_none() && best_sparse < dense {
            sparse_min_params = Some(d);
        }
        if fused <= staged {
            fused_max_shard_params = Some(d.div_ceil(n));
        }
        d = d.saturating_mul(2);
    }
    let oksparse_min_overlap = (model.cluster.nodes >= 3).then(|| {
        let probe = AutotuneConfig { ..*cfg };
        // 1/64 grid: first ω where O(k) moves fewer inter bytes than
        // HiTopKComm on a reference fat layer.
        let d_ref = max_params.max(64 * n);
        (0..=64)
            .map(|i| i as f64 / 64.0)
            .find(|&omega| {
                let c = AutotuneConfig {
                    overlap: omega,
                    ..probe
                };
                model.inter_bytes(CommScheme::OkSparse, d_ref, &c)
                    < model.inter_bytes(CommScheme::HiTopKStaged, d_ref, &c)
            })
            .unwrap_or(1.0)
    });
    Crossovers {
        sparse_min_params,
        fused_max_shard_params,
        oksparse_min_overlap,
    }
}

/// Runs the tuner over a model's layers (forward-ordered ranges, as
/// [`cloudtrain_dnn::model::Model::layer_ranges`] returns them) on the
/// given probed topology. Deterministic: same inputs → same report.
pub fn autotune_layers(
    ranges: &[ParamRange],
    model: &CommModel,
    cfg: &AutotuneConfig,
) -> AutotuneReport {
    let mut layers = Vec::with_capacity(ranges.len());
    let mut forced_totals = [0.0f64; 4];
    let mut autotuned_total = 0.0;
    // Backward order: the model's last layer finishes (and aggregates)
    // first, matching WfbpModel's layer convention.
    for (i, r) in ranges.iter().rev().enumerate() {
        let mut predicted = [0.0f64; 4];
        for (slot, s) in SCHEMES.iter().enumerate() {
            predicted[slot] = model.layer_seconds(*s, r.len, cfg);
            forced_totals[slot] += predicted[slot];
        }
        let mut best = 0;
        for slot in 1..SCHEMES.len() {
            if predicted[slot] < predicted[best] {
                best = slot;
            }
        }
        autotuned_total += predicted[best];
        layers.push(LayerPlan {
            layer: i,
            params: r.len,
            choice: SCHEMES[best],
            predicted_seconds: predicted,
        });
    }
    let max_params = ranges.iter().map(|r| r.len).max().unwrap_or(1);
    AutotuneReport {
        layers,
        forced_totals,
        autotuned_total,
        crossovers: find_crossovers(model, cfg, max_params),
        config: *cfg,
    }
}

/// The [`WfbpModel`] twin of [`crate::fusion::cloud_calibrated_model`]
/// for an explicit cluster: per-layer backward seconds from parameter
/// counts, α/β from the cluster's inter link (the stream the autotuned
/// collectives share).
pub fn wfbp_model_for(ranges: &[ParamRange], cluster: &ClusterSpec) -> WfbpModel {
    WfbpModel {
        layer_backward_seconds: ranges
            .iter()
            .rev()
            .map(|r| r.len as f64 * BACKWARD_SECONDS_PER_PARAM)
            .collect(),
        comm_alpha: cluster.inter.alpha,
        comm_beta: 2.0 * cluster.inter.beta,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_simnet::clouds;

    fn ranges(sizes: &[usize]) -> Vec<ParamRange> {
        let mut out = Vec::new();
        let mut off = 0;
        for &len in sizes {
            out.push(ParamRange { offset: off, len });
            off += len;
        }
        out
    }

    fn model(nodes: usize) -> CommModel {
        CommModel::new(clouds::tencent(nodes))
    }

    #[test]
    fn tiny_layers_stay_dense_fat_layers_go_sparse() {
        let r = ranges(&[64, 20_000_000]);
        let rep = autotune_layers(&r, &model(4), &AutotuneConfig::default());
        // Backward order: the fat layer is scanned first.
        assert_eq!(rep.layers[0].params, 20_000_000);
        assert!(
            rep.layers[0].choice != CommScheme::DenseTorus,
            "20M-param layer should compress, got {:?}",
            rep.layers[0].choice
        );
        assert_eq!(
            rep.layers[1].choice,
            CommScheme::DenseTorus,
            "64-param layer should skip the top-k kernel passes"
        );
        let cross = rep
            .crossovers
            .sparse_min_params
            .expect("sparse must win somewhere");
        assert!(cross > 64 && cross <= 20_000_000, "crossover {cross}");
    }

    #[test]
    fn autotuned_total_never_worse_than_any_forced_scheme() {
        let r = ranges(&[100, 5_000, 200_000, 4_000_000, 32]);
        for nodes in [2usize, 4, 8] {
            let rep = autotune_layers(&r, &model(nodes), &AutotuneConfig::default());
            for (slot, total) in rep.forced_totals.iter().enumerate() {
                assert!(
                    rep.autotuned_total <= total + 1e-15,
                    "autotuned {} worse than forced {} ({})",
                    rep.autotuned_total,
                    total,
                    SCHEMES[slot].label()
                );
            }
            assert!(rep.forced_totals.contains(
                &rep.forced_totals[SCHEMES
                    .iter()
                    .position(|s| *s == rep.global_choice())
                    .unwrap()]
            ));
        }
    }

    #[test]
    fn overlap_raises_oksparse_into_the_winning_region() {
        // m = 4: the crossover model says O(k) needs ω > 1/(m−1) = 1/3.
        let m = model(4);
        let d = 8_000_000;
        let low = AutotuneConfig {
            overlap: 0.0,
            ..AutotuneConfig::default()
        };
        let high = AutotuneConfig {
            overlap: 1.0,
            ..AutotuneConfig::default()
        };
        let hitopk = m.inter_bytes(CommScheme::HiTopKStaged, d, &low);
        assert!(
            m.inter_bytes(CommScheme::OkSparse, d, &low) > hitopk,
            "disjoint selections must not beat hitopk"
        );
        assert!(
            m.inter_bytes(CommScheme::OkSparse, d, &high) < hitopk,
            "fully shared selections must beat hitopk"
        );
        let rep = autotune_layers(&ranges(&[d]), &m, &AutotuneConfig::default());
        let omega = rep.crossovers.oksparse_min_overlap.expect("m >= 3");
        assert!(
            (omega - 1.0 / 3.0).abs() < 0.1,
            "predicted crossover ω {omega} far from 1/(m−1)"
        );
    }

    #[test]
    fn two_nodes_never_predict_an_oksparse_win() {
        let rep = autotune_layers(
            &ranges(&[1_000_000]),
            &model(2),
            &AutotuneConfig {
                overlap: 1.0,
                ..AutotuneConfig::default()
            },
        );
        assert_eq!(rep.crossovers.oksparse_min_overlap, None);
        assert!(rep.layers[0].choice != CommScheme::OkSparse);
    }

    #[test]
    fn fused_crossover_moves_with_the_bookkeeping_charge() {
        let cluster = clouds::tencent(4);
        let free = CommModel {
            fuse_overhead_per_byte: 0.0,
            ..CommModel::new(cluster)
        };
        let costly = CommModel {
            fuse_overhead_per_byte: 1e-9,
            ..CommModel::new(cluster)
        };
        let cfg = AutotuneConfig::default();
        let d = 50_000_000;
        // Free bookkeeping: halved α always wins.
        assert!(
            free.layer_seconds(CommScheme::HiTopKFused, d, &cfg)
                < free.layer_seconds(CommScheme::HiTopKStaged, d, &cfg)
        );
        // Heavy bookkeeping: the fat shard pays more than the α it saves.
        assert!(
            costly.layer_seconds(CommScheme::HiTopKFused, d, &cfg)
                > costly.layer_seconds(CommScheme::HiTopKStaged, d, &cfg)
        );
        // Small layers fuse under either charge (α-dominated).
        assert!(
            costly.layer_seconds(CommScheme::HiTopKFused, 1000, &cfg)
                < costly.layer_seconds(CommScheme::HiTopKStaged, 1000, &cfg)
        );
        let rep = autotune_layers(&ranges(&[1000, d]), &costly, &cfg);
        let cross = rep
            .crossovers
            .fused_max_shard_params
            .expect("fused wins somewhere");
        assert!(cross < d / cluster.gpus_per_node);
    }

    #[test]
    fn report_is_deterministic_and_serde_roundtrips() {
        let r = ranges(&[500, 2000, 100, 40_000, 3_000_000]);
        let cfg = AutotuneConfig::default();
        let a = autotune_layers(&r, &model(4), &cfg);
        let b = autotune_layers(&r, &model(4), &cfg);
        let ja = serde_json::to_string(&a).unwrap();
        assert_eq!(ja, serde_json::to_string(&b).unwrap());
        let back: AutotuneReport = serde_json::from_str(&ja).unwrap();
        assert_eq!(serde_json::to_string(&back).unwrap(), ja);
    }

    #[test]
    fn iteration_time_respects_the_wfbp_recurrence() {
        let r = ranges(&[10_000; 20]);
        let m = model(4);
        let cfg = AutotuneConfig::default();
        let rep = autotune_layers(&r, &m, &cfg);
        let wfbp = wfbp_model_for(&r, &m.cluster);
        let t = rep.iteration_time(&wfbp);
        assert!(t.total >= t.backward);
        assert!(t.exposed_comm >= 0.0);
        assert_eq!(t.collectives, 20);
        // Serial lower bound: total can never beat backward + last comm.
        let last = &rep.layers[rep.layers.len() - 1];
        let slot = SCHEMES.iter().position(|s| *s == last.choice).unwrap();
        assert!(t.total + 1e-15 >= t.backward.max(last.predicted_seconds[slot]));
    }

    #[test]
    fn publish_exports_counts_and_total() {
        let r = ranges(&[64, 4_000_000]);
        let rep = autotune_layers(&r, &model(4), &AutotuneConfig::default());
        let mut reg = Registry::new();
        rep.publish(&mut reg);
        let sum: f64 = SCHEMES
            .iter()
            .map(|s| reg.gauge(&format!("autotune/{}", s.label())).unwrap_or(0.0))
            .sum();
        assert_eq!(sum as usize, 2);
    }

    #[test]
    fn fused_flag_matches_forced_totals() {
        for nodes in [2usize, 4] {
            let r = ranges(&[2000; 40]);
            let rep = autotune_layers(&r, &model(nodes), &AutotuneConfig::default());
            assert_eq!(
                rep.fused_compress_reduce(),
                rep.forced_totals[2] <= rep.forced_totals[1]
            );
        }
    }
}
