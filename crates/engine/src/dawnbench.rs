//! The DAWNBench case study (§5.6, Tables 4 and 5): 28 epochs of
//! multi-resolution ImageNet training to 93% top-5 accuracy on 128 V100s.
//!
//! The recipe (following the Alibaba entry the paper builds on): 13 epochs
//! at 96×96, 11 at 128×128, 3 at 224×224, 1 at 288×288 — with MSTopK-SGD
//! during the low-resolution warmup (where dense aggregation cannot scale)
//! and 2DTAR-SGD once the input is ≥128² (where compute hides the dense
//! communication and full-precision aggregation protects accuracy).

use serde::{Deserialize, Serialize};

use crate::perf::{IterationModel, SystemConfig};
use crate::profile::ModelProfile;
use crate::strategy::Strategy;
use cloudtrain_simnet::ClusterSpec;

/// Number of ImageNet training samples.
pub const IMAGENET_TRAIN: u64 = 1_281_167;

/// One stage of the multi-resolution schedule.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Stage {
    /// Epochs trained at this stage.
    pub epochs: u32,
    /// Compute profile (resolution + batch + single-GPU throughput).
    pub profile: ModelProfile,
    /// Aggregation strategy for the stage.
    pub strategy: Strategy,
}

/// Per-stage results of a schedule evaluation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StageResult {
    /// Stage description (resolution).
    pub name: String,
    /// Epochs in the stage.
    pub epochs: u32,
    /// Single-GPU throughput (samples/s) of this stage's profile.
    pub single_gpu: f64,
    /// Modelled 128-GPU system throughput, samples/s (Table 4).
    pub system_throughput: f64,
    /// Scaling efficiency (Table 4's SE column).
    pub scaling_efficiency: f64,
    /// Stage wall-clock seconds.
    pub seconds: f64,
}

/// The full schedule outcome (Table 5's "Time" row for our system).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScheduleResult {
    /// Per-stage breakdown.
    pub stages: Vec<StageResult>,
    /// Total training seconds to the accuracy target.
    pub total_seconds: f64,
}

/// The paper's 28-epoch schedule on the given cluster.
pub fn paper_schedule() -> Vec<Stage> {
    vec![
        Stage {
            epochs: 13,
            profile: ModelProfile::resnet50_96(),
            strategy: Strategy::mstopk_default(),
        },
        Stage {
            epochs: 11,
            profile: ModelProfile::resnet50_128(),
            strategy: Strategy::DenseTorus,
        },
        Stage {
            epochs: 3,
            profile: ModelProfile::resnet50_224(),
            strategy: Strategy::DenseTorus,
        },
        Stage {
            epochs: 1,
            profile: ModelProfile::resnet50_288(),
            strategy: Strategy::DenseTorus,
        },
    ]
}

/// An all-dense variant of the schedule (the ablation: what Table 5 would
/// look like without MSTopK in the warmup epochs).
pub fn dense_only_schedule() -> Vec<Stage> {
    paper_schedule()
        .into_iter()
        .map(|mut s| {
            s.strategy = Strategy::DenseTorus;
            s
        })
        .collect()
}

/// Evaluates a schedule on a cluster: per-stage throughput (Table 4) and
/// the total time to traverse all epochs (Table 5).
pub fn evaluate_schedule(cluster: ClusterSpec, stages: &[Stage]) -> ScheduleResult {
    let mut results = Vec::new();
    let mut total = 0.0;
    for stage in stages {
        let system = SystemConfig {
            strategy: stage.strategy,
            datacache: true,
            pto: true,
        };
        let model = IterationModel::new(cluster, system, stage.profile.clone());
        let throughput = model.throughput();
        let seconds = stage.epochs as f64 * IMAGENET_TRAIN as f64 / throughput;
        total += seconds;
        results.push(StageResult {
            name: stage.profile.name.clone(),
            epochs: stage.epochs,
            single_gpu: stage.profile.single_gpu_throughput,
            system_throughput: throughput,
            scaling_efficiency: model.scaling_efficiency(),
            seconds,
        });
    }
    ScheduleResult {
        stages: results,
        total_seconds: total,
    }
}

/// A DAWNBench leaderboard row (Table 5).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LeaderboardEntry {
    /// Team name.
    pub team: String,
    /// Entry date.
    pub date: &'static str,
    /// Interconnect description.
    pub interconnect: &'static str,
    /// Time to 93% top-5 accuracy, seconds.
    pub seconds: f64,
}

/// The published leaderboard the paper compares against (Table 5).
pub fn published_leaderboard() -> Vec<LeaderboardEntry> {
    vec![
        LeaderboardEntry {
            team: "FastAI".into(),
            date: "Sep 2018",
            interconnect: "100GbIB",
            seconds: 1086.0,
        },
        LeaderboardEntry {
            team: "Huawei".into(),
            date: "Dec 2018",
            interconnect: "-",
            seconds: 562.0,
        },
        LeaderboardEntry {
            team: "Huawei".into(),
            date: "May 2019",
            interconnect: "100GbIB",
            seconds: 163.0,
        },
        LeaderboardEntry {
            team: "Alibaba".into(),
            date: "Mar 2020",
            interconnect: "32GbE",
            seconds: 158.0,
        },
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudtrain_simnet::clouds;

    #[test]
    fn table4_scaling_efficiency_rises_with_resolution() {
        // Paper Table 4: SE 65% @96 -> 70% @128 -> 83% @224 (the 288 stage
        // drops batch size, so it is excluded from the monotone claim).
        let r = evaluate_schedule(clouds::tencent(16), &paper_schedule());
        assert_eq!(r.stages.len(), 4);
        assert!(r.stages[0].scaling_efficiency < r.stages[2].scaling_efficiency);
        for s in &r.stages {
            assert!(
                s.scaling_efficiency > 0.5 && s.scaling_efficiency <= 1.0,
                "{}: SE {}",
                s.name,
                s.scaling_efficiency
            );
        }
    }

    #[test]
    fn table5_total_time_in_paper_range() {
        // Paper: 151 s on 25GbE. The model should land in the same league
        // (tens-of-seconds accuracy is not expected from a simulator).
        let r = evaluate_schedule(clouds::tencent(16), &paper_schedule());
        assert!(
            r.total_seconds > 100.0 && r.total_seconds < 260.0,
            "total {}",
            r.total_seconds
        );
    }

    #[test]
    fn mstopk_warmup_beats_dense_only_schedule() {
        // The reason the paper uses MSTopK for the first 13 epochs.
        let tencent = clouds::tencent(16);
        let paper = evaluate_schedule(tencent, &paper_schedule());
        let dense = evaluate_schedule(tencent, &dense_only_schedule());
        assert!(
            paper.total_seconds < dense.total_seconds,
            "paper {} !< dense-only {}",
            paper.total_seconds,
            dense.total_seconds
        );
    }

    #[test]
    fn faster_interconnect_shrinks_the_gap() {
        // On 100Gb InfiniBand the dense-only schedule loses much less —
        // the paper's contribution specifically targets slow interconnects.
        let slow = clouds::tencent(16);
        let fast = clouds::infiniband_100g(16);
        let gap = |c| {
            let p = evaluate_schedule(c, &paper_schedule()).total_seconds;
            let d = evaluate_schedule(c, &dense_only_schedule()).total_seconds;
            d / p
        };
        assert!(
            gap(slow) > gap(fast),
            "slow gap {} fast gap {}",
            gap(slow),
            gap(fast)
        );
    }

    #[test]
    fn leaderboard_is_the_published_one() {
        let lb = published_leaderboard();
        assert_eq!(lb.len(), 4);
        assert_eq!(lb[3].seconds, 158.0);
        assert!(lb.windows(2).all(|w| w[0].seconds >= w[1].seconds));
    }

    #[test]
    fn epochs_sum_to_28() {
        assert_eq!(paper_schedule().iter().map(|s| s.epochs).sum::<u32>(), 28);
    }
}
