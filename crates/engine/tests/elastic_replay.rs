//! Replay-determinism tests of the elastic runtime (ISSUE 10 satellite):
//! kill a worker at a scripted virtual time, resume from the sharded
//! checkpoint, and assert the result is bitwise what determinism demands
//! — against the uninterrupted run when nothing fires, against the
//! in-memory planned twin when a boundary checkpoint is round-tripped,
//! and against a survivors-from-the-start run when the eviction rolls
//! back to epoch 0.

use cloudtrain_elastic::{ElasticScenario, HeartbeatConfig, ScriptedChange};
use cloudtrain_engine::strategy::Strategy;
use cloudtrain_engine::trainer::{DistConfig, DistTrainer, Workload};

fn base_cfg(nodes: usize) -> DistConfig {
    let mut cfg = DistConfig::small(
        Strategy::MsTopKHiTopK {
            rho: 0.05,
            samplings: 20,
        },
        Workload::Mlp,
    );
    cfg.nodes = nodes;
    cfg.gpus_per_node = 2;
    cfg.epochs = 3;
    cfg.iters_per_epoch = 6;
    cfg
}

fn steady(nodes: usize) -> ElasticScenario {
    ElasticScenario::steady(11, nodes, 3)
}

#[test]
fn steady_elastic_run_is_bitwise_the_plain_run() {
    // No membership event → run_elastic is one segment through the same
    // worker code path as run(); every metric must agree bitwise.
    let cfg = base_cfg(4);
    let plain = DistTrainer::new(cfg.clone()).run();
    let elastic = DistTrainer::new(cfg).run_elastic(&steady(4));
    // The only membership events are the initial admissions at t=0 —
    // nothing fires mid-run, and no resharding happens.
    assert!(elastic
        .events
        .iter()
        .all(|e| e.kind == cloudtrain_elastic::MembershipEventKind::Joined && e.at == 0.0));
    assert!(elastic.resharding.is_empty());
    assert_eq!(elastic.segments.len(), 1);
    assert_eq!(elastic.report.epochs.len(), plain.epochs.len());
    for (a, b) in elastic.report.epochs.iter().zip(&plain.epochs) {
        assert_eq!(a.train_loss, b.train_loss, "elastic steady run diverged");
        assert_eq!(a.val_top1, b.val_top1);
        assert_eq!(a.residual_norm, b.residual_norm);
    }
}

#[test]
fn checkpoint_replay_after_mid_run_eviction_is_bitwise_the_planned_twin() {
    // Death at 12s with a 5s eviction window → detected during epoch 1 →
    // rollback to the epoch-1 boundary checkpoint and replay with the
    // survivors. run_elastic round-trips that checkpoint through bytes;
    // the planned twin hands the same state over in memory. Bitwise
    // equality means the wire format lost nothing — including the
    // error-feedback residual shards.
    let cfg = base_cfg(4);
    let scenario = ElasticScenario::evict(7, 4, 3);
    let replayed = DistTrainer::new(cfg.clone()).run_elastic(&scenario);
    let planned = DistTrainer::new(cfg).run_elastic_planned(&scenario);

    assert_eq!(replayed.segments.len(), 2, "evict must split the schedule");
    assert_eq!(replayed.segments, planned.segments);
    assert_eq!(replayed.report.epochs.len(), 3);
    for (a, b) in replayed.report.epochs.iter().zip(&planned.report.epochs) {
        assert_eq!(a.epoch, b.epoch);
        assert_eq!(a.train_loss, b.train_loss, "replay diverged at {}", a.epoch);
        assert_eq!(a.val_top1, b.val_top1);
        assert_eq!(a.residual_norm, b.residual_norm);
    }
    assert_eq!(
        replayed.final_params, planned.final_params,
        "final model parameters diverged across the checkpoint round-trip"
    );
    assert_eq!(replayed.final_step, planned.final_step);
    // The survivor world really did shrink, and the reshard moved only
    // the victim's share — about 1/m of the samples (the <5% bound is a
    // large-cluster property; the gauntlet asserts it at 32 nodes) and
    // nothing between survivors.
    assert_eq!(replayed.segments[1].nodes.len(), 3);
    assert_eq!(replayed.resharding.len(), 1);
    for ev in &replayed.resharding {
        assert!(
            ev.stats.moved_pct() < 2.0 * 100.0 / 4.0,
            "reshard moved {:?}",
            ev.stats
        );
        assert_eq!(ev.stats.excess_moved, 0, "survivor-to-survivor churn");
    }
}

#[test]
fn eviction_detected_in_epoch_zero_replays_as_survivors_from_the_start() {
    // Kill early enough that the eviction lands in epoch 0: the rollback
    // point is the initial state, so the whole run replays with the
    // surviving membership — bitwise a run that *started* with that many
    // nodes (model init depends only on the seed, not the world).
    let scenario = ElasticScenario {
        name: "early-evict".to_string(),
        seed: 5,
        initial_nodes: 4,
        epochs: 3,
        epoch_seconds: 10.0,
        heartbeat: HeartbeatConfig::default(),
        heartbeat_drop_prob: 0.0,
        deaths: vec![ScriptedChange { node: 2, at: 0.5 }],
        joins: Vec::new(),
        dataset_len: 10_000,
    };
    let elastic = DistTrainer::new(base_cfg(4)).run_elastic(&scenario);
    assert_eq!(
        elastic.segments.len(),
        1,
        "rollback to epoch 0 is one segment"
    );
    assert_eq!(elastic.segments[0].nodes, vec![0, 1, 3]);

    let survivors = DistTrainer::new(base_cfg(3)).run_elastic(&steady(3));
    assert_eq!(elastic.report.epochs.len(), survivors.report.epochs.len());
    for (a, b) in elastic.report.epochs.iter().zip(&survivors.report.epochs) {
        assert_eq!(a.train_loss, b.train_loss, "replay != survivor run");
        assert_eq!(a.val_top1, b.val_top1);
        assert_eq!(a.residual_norm, b.residual_norm);
    }
    assert_eq!(elastic.final_params, survivors.final_params);
}

#[test]
fn join_resumes_through_checkpoint_bitwise_and_grows_the_world() {
    let cfg = base_cfg(4);
    let scenario = ElasticScenario::evict_join(3, 4, 3);
    let replayed = DistTrainer::new(cfg.clone()).run_elastic(&scenario);
    let planned = DistTrainer::new(cfg).run_elastic_planned(&scenario);
    assert!(replayed.segments.len() >= 2);
    assert_eq!(replayed.segments, planned.segments);
    for (a, b) in replayed.report.epochs.iter().zip(&planned.report.epochs) {
        assert_eq!(a.train_loss, b.train_loss, "join replay diverged");
        assert_eq!(a.val_top1, b.val_top1);
        assert_eq!(a.residual_norm, b.residual_norm);
    }
    assert_eq!(replayed.final_params, planned.final_params);
    // The joiner really entered: some segment includes the new node id.
    assert!(replayed
        .segments
        .iter()
        .any(|s| s.nodes.contains(&scenario.initial_nodes)));
}
