//! Property-based tests for the iteration-time model: the performance
//! plane must behave physically for arbitrary strategies and workloads.

use cloudtrain_engine::{IterationModel, ModelProfile, Strategy, SystemConfig};
use cloudtrain_simnet::clouds;
use proptest::prelude::*;

fn profiles() -> Vec<ModelProfile> {
    vec![
        ModelProfile::resnet50_224(),
        ModelProfile::resnet50_96(),
        ModelProfile::vgg19(),
        ModelProfile::transformer(),
    ]
}

fn strategies(rho: f64) -> Vec<Strategy> {
    vec![
        Strategy::DenseTreeAr,
        Strategy::DenseTorus,
        Strategy::TopKNaiveAg { rho },
        Strategy::MsTopKHiTopK { rho, samplings: 30 },
        Strategy::GTopK { rho },
        Strategy::Qsgd { levels: 127 },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Breakdown components are non-negative, consistent with the total,
    /// and scaling efficiency lies in (0, 1] for every combination.
    #[test]
    fn breakdown_is_physical(
        profile_idx in 0usize..4,
        strategy_idx in 0usize..6,
        rho in 0.001f64..0.1,
        nodes in 2usize..16,
        datacache in any::<bool>(),
        pto in any::<bool>(),
    ) {
        let profile = profiles()[profile_idx].clone();
        let strategy = strategies(rho)[strategy_idx];
        let model = IterationModel::new(
            clouds::tencent(nodes),
            SystemConfig { strategy, datacache, pto },
            profile,
        );
        let b = model.breakdown();
        prop_assert!(b.io >= 0.0 && b.ffbp > 0.0 && b.compression >= 0.0);
        prop_assert!(b.comm_total >= 0.0 && b.comm_visible >= 0.0);
        prop_assert!(b.comm_visible <= b.comm_total + 1e-12);
        prop_assert!(b.lars >= 0.0);
        let sum = b.io + b.ffbp + b.comm_visible + b.compression + b.lars;
        prop_assert!((b.total - sum).abs() < 1e-12);
        let se = model.scaling_efficiency();
        prop_assert!(se > 0.0 && se <= 1.0, "SE {se}");
    }

    /// Dense strategies never charge compression; sparse ones always do.
    #[test]
    fn compression_matches_strategy_family(
        profile_idx in 0usize..4,
        rho in 0.001f64..0.1,
    ) {
        let profile = profiles()[profile_idx].clone();
        let cluster = clouds::tencent(16);
        for strategy in strategies(rho) {
            let b = IterationModel::new(
                cluster,
                SystemConfig { strategy, datacache: true, pto: true },
                profile.clone(),
            )
            .breakdown();
            match strategy {
                Strategy::DenseTreeAr | Strategy::DenseTorus => {
                    prop_assert_eq!(b.compression, 0.0)
                }
                _ => prop_assert!(b.compression > 0.0, "{}", strategy.label()),
            }
        }
    }

    /// DataCache never hurts, PTO never hurts (for the paper's profiles,
    /// whose LARS cost exceeds the PTO AllGather).
    #[test]
    fn optimizations_are_non_regressive(
        profile_idx in 0usize..4,
        strategy_idx in 0usize..6,
    ) {
        let profile = profiles()[profile_idx].clone();
        let strategy = strategies(0.01)[strategy_idx];
        let cluster = clouds::tencent(16);
        let total = |datacache: bool, pto: bool| {
            IterationModel::new(
                cluster,
                SystemConfig { strategy, datacache, pto },
                profile.clone(),
            )
            .breakdown()
            .total
        };
        prop_assert!(total(true, false) <= total(false, false) + 1e-12);
        let with_pto = total(false, true);
        let without = total(false, false);
        // PTO wins exactly when lars/P + AllGather < lars (Eq. 13/14's
        // condition): true for ResNet (11 ms) and the Transformer (30 ms),
        // false for VGG-19's 4 ms LARS — the model must reflect both sides.
        let p = 128.0;
        let pto_lars = profile.lars_seconds / p
            + cloudtrain_engine::perf::PTO_ALL_GATHER_SECONDS;
        if pto_lars < profile.lars_seconds {
            prop_assert!(with_pto <= without + 1e-12);
        } else {
            prop_assert!(with_pto >= without - 1e-12);
            // And the regression is bounded by the AllGather constant.
            prop_assert!(
                with_pto - without
                    <= cloudtrain_engine::perf::PTO_ALL_GATHER_SECONDS + 1e-12
            );
        }
    }

    /// Faster interconnects never slow any strategy down.
    #[test]
    fn faster_fabric_is_monotone(
        profile_idx in 0usize..4,
        strategy_idx in 0usize..6,
    ) {
        let profile = profiles()[profile_idx].clone();
        let strategy = strategies(0.01)[strategy_idx];
        let t = |cluster| {
            IterationModel::new(
                cluster,
                SystemConfig { strategy, datacache: true, pto: true },
                profile.clone(),
            )
            .breakdown()
            .total
        };
        let slow = t(clouds::tencent(16));
        let mid = t(clouds::aliyun(16));
        let fast = t(clouds::infiniband_100g(16));
        prop_assert!(mid <= slow + 1e-9, "aliyun {mid} > tencent {slow}");
        prop_assert!(fast <= mid + 1e-9, "ib {fast} > aliyun {mid}");
    }
}

/// The shrunk counterexample from `perf_properties.proptest-regressions`,
/// promoted to a named always-run test: resnet50_224 under GTopK at
/// rho = 0.001 on 9 Tencent nodes (no cache, no PTO) once produced a
/// breakdown whose visible communication exceeded the total. Pinning the
/// exact tuple keeps the fix live even if the seed file is pruned.
#[test]
fn regression_breakdown_is_physical_shrunk_case() {
    let profile = profiles()[0].clone(); // resnet50_224
    let strategy = strategies(0.001)[4]; // GTopK { rho: 0.001 }
    let model = IterationModel::new(
        clouds::tencent(9),
        SystemConfig {
            strategy,
            datacache: false,
            pto: false,
        },
        profile,
    );
    let b = model.breakdown();
    assert!(b.io >= 0.0 && b.ffbp > 0.0 && b.compression >= 0.0);
    assert!(b.comm_total >= 0.0 && b.comm_visible >= 0.0);
    assert!(b.comm_visible <= b.comm_total + 1e-12);
    assert!(b.lars >= 0.0);
    let sum = b.io + b.ffbp + b.comm_visible + b.compression + b.lars;
    assert!(
        (b.total - sum).abs() < 1e-12,
        "total {} != sum {}",
        b.total,
        sum
    );
    let se = model.scaling_efficiency();
    assert!(se > 0.0 && se <= 1.0, "SE {se}");
}
