//! Property tests hardening [`Checkpoint::from_bytes`] against malformed
//! input: whatever bytes arrive — random garbage, or a valid encoding with
//! arbitrary mutations — decoding must return a clean `Err`, never panic,
//! and a successful decode must be a faithful roundtrip.

use cloudtrain_engine::checkpoint::{Checkpoint, CheckpointError};
use proptest::prelude::*;

fn ckpt(step: u64, params: Vec<f32>) -> Checkpoint {
    let velocity = params.iter().map(|v| v * 0.5).collect();
    Checkpoint::new(step, params, velocity).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
        // Random garbage essentially never checksums; any outcome is fine
        // as long as it is a clean Result.
        let _ = Checkpoint::from_bytes(&bytes);
    }

    #[test]
    fn mutated_valid_encoding_never_panics(
        step in any::<u64>(),
        params in prop::collection::vec(-1e3f32..1e3, 0..64),
        flips in prop::collection::vec((0usize..4096, any::<u8>()), 1..8),
        cut in 0usize..4096,
    ) {
        let mut bytes = ckpt(step, params).to_bytes();
        for (pos, mask) in flips {
            let len = bytes.len();
            bytes[pos % len] ^= mask;
        }
        bytes.truncate(cut.min(bytes.len()));
        match Checkpoint::from_bytes(&bytes) {
            // A no-op mutation set (mask 0, no truncation) may still decode.
            Ok(c) => prop_assert_eq!(c.to_bytes(), bytes),
            Err(
                CheckpointError::BadMagic
                | CheckpointError::Truncated
                | CheckpointError::Corrupted,
            ) => {}
            Err(e) => prop_assert!(false, "unexpected error variant: {e}"),
        }
    }

    #[test]
    fn roundtrip_is_faithful(
        step in any::<u64>(),
        params in prop::collection::vec(-1e3f32..1e3, 0..128),
    ) {
        let c = ckpt(step, params);
        prop_assert_eq!(Checkpoint::from_bytes(&c.to_bytes()).unwrap(), c);
    }

    #[test]
    fn declared_length_is_cross_checked(
        step in any::<u64>(),
        params in prop::collection::vec(-1e3f32..1e3, 1..32),
        declared in any::<u64>(),
    ) {
        // Rewrite the length field (and re-checksum so only the length
        // check can object): any declared length but the true one must be
        // rejected as Truncated.
        let c = ckpt(step, params);
        let true_d = c.params.len() as u64;
        prop_assume!(declared != true_d);
        let mut bytes = c.to_bytes();
        bytes[16..24].copy_from_slice(&declared.to_le_bytes());
        let body = bytes.len() - 8;
        let sum_src: Vec<u8> = bytes[..body].to_vec();
        let sum = {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for &b in &sum_src {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        };
        bytes[body..].copy_from_slice(&sum.to_le_bytes());
        prop_assert!(matches!(
            Checkpoint::from_bytes(&bytes),
            Err(CheckpointError::Truncated)
        ));
    }
}
