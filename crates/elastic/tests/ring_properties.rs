//! Property-based tests of the consistent-hash ring (ISSUE 10 satellite):
//! across seeded topologies, a single join or evict moves <5% of sample
//! assignments, no sample is ever orphaned, and assignment is
//! byte-identical across two independently built rings.

use cloudtrain_elastic::ring::{reshard_stats, HashRing, DEFAULT_VNODES};
use proptest::prelude::*;

const DATASET: u64 = 20_000;

/// Serializes an assignment to bytes so "byte-identical" is literal.
fn assignment_bytes(ring: &HashRing, dataset: u64) -> Vec<u8> {
    ring.assignment(dataset)
        .into_iter()
        .flat_map(|o| {
            (o.expect("non-empty ring orphaned a sample") as u64)
                .to_le_bytes()
                .to_vec()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// A single evict on a 24..64-node ring moves <5% of assignments,
    /// never moves a sample between survivors, and leaves no orphan.
    #[test]
    fn single_evict_moves_under_five_percent(
        seed in 0u64..1_000_000,
        nodes in 24usize..65,
        victim_pick in 0usize..64,
    ) {
        let members: Vec<usize> = (0..nodes).collect();
        let before = HashRing::with_members(seed, DEFAULT_VNODES, &members);
        let mut after = before.clone();
        let victim = victim_pick % nodes;
        prop_assert!(after.evict(victim));
        let stats = reshard_stats(&before, &after, DATASET);
        prop_assert_eq!(stats.excess_moved, 0, "survivor churn");
        prop_assert!(
            stats.moved_pct() < 5.0,
            "evict of 1/{} moved {:.3}%", nodes, stats.moved_pct()
        );
        // No orphans, and every remaining member still serves something.
        let assign = after.assignment(DATASET);
        let mut served = vec![0u64; nodes];
        for o in assign {
            let owner = o.expect("orphaned sample");
            prop_assert!(owner != victim, "evicted node still owns samples");
            served[owner] += 1;
        }
        for (n, &count) in served.iter().enumerate() {
            if n != victim {
                prop_assert!(count > 0, "member {n} serves nothing");
            }
        }
    }

    /// A single join moves <5%, only onto the newcomer, and the newcomer
    /// picks up a non-empty share.
    #[test]
    fn single_join_moves_under_five_percent(
        seed in 0u64..1_000_000,
        nodes in 24usize..65,
    ) {
        let members: Vec<usize> = (0..nodes).collect();
        let before = HashRing::with_members(seed, DEFAULT_VNODES, &members);
        let mut after = before.clone();
        let newcomer = nodes + 7;
        prop_assert!(after.join(newcomer));
        let stats = reshard_stats(&before, &after, DATASET);
        prop_assert_eq!(stats.excess_moved, 0, "survivor churn");
        prop_assert!(
            stats.moved_pct() < 5.0,
            "join onto {} nodes moved {:.3}%", nodes, stats.moved_pct()
        );
        prop_assert!(stats.moved > 0, "newcomer serves nothing");
        for id in 0..DATASET {
            let (a, b) = (before.owner(id), after.owner(id));
            if a != b {
                prop_assert_eq!(b, Some(newcomer), "moved key landed on a survivor");
            }
        }
    }

    /// Assignment is byte-identical across two rings built from the same
    /// seeded topology — regardless of the join order.
    #[test]
    fn assignment_is_byte_identical_across_runs(
        seed in 0u64..1_000_000,
        nodes in 2usize..65,
    ) {
        let members: Vec<usize> = (0..nodes).collect();
        let reversed: Vec<usize> = members.iter().rev().copied().collect();
        let a = HashRing::with_members(seed, DEFAULT_VNODES, &members);
        let b = HashRing::with_members(seed, DEFAULT_VNODES, &reversed);
        prop_assert_eq!(
            assignment_bytes(&a, DATASET),
            assignment_bytes(&b, DATASET)
        );
    }
}
