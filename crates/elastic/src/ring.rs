//! Consistent-hash sample ownership with virtual nodes.
//!
//! The modulo sharding of `cloudtrain-datacache` (`owner(id) = id % m`)
//! reassigns almost every sample when `m` changes — on a 32-node cluster a
//! single eviction rehashes ~97% of the data set, which on a public cloud
//! means an epoch of peer traffic and NFS refills right when the cluster
//! is degraded. The classic fix is a consistent-hash ring: each member
//! projects `vnodes` seeded points onto a 64-bit circle and a sample
//! belongs to the first point at or clockwise of its own hash. A single
//! join or evict then only moves the keys of the arcs that member covers —
//! an expected `1/m` of the data set — and, crucially, **never moves a key
//! between two surviving members**.
//!
//! Determinism: point placement is a pure function of
//! `(seed, member, replica)` via the same SplitMix64-style mixer the fault
//! plane uses, the ring is a `BTreeMap` keyed by `(hash, member)` (the
//! member id breaks hash ties), and ownership is a pure lookup — two rings
//! built from the same membership history agree bitwise.

use std::collections::BTreeMap;

/// Default virtual nodes per member. 128 points keep per-member ownership
/// shares within a few tenths of a percent of the ideal `1/m`, which is
/// what makes the "<5% moved per single topology change" bound hold on
/// clusters of 21+ nodes (an evict *necessarily* moves the victim's own
/// `~1/m` share).
pub const DEFAULT_VNODES: usize = 128;

const POINT_SALT: u64 = 0x7E1A_571C_9B3D_0F42;
const KEY_SALT: u64 = 0x94D1_28D7_6A0C_55E3;

/// SplitMix64-style 3-input mixer — the same construction as the fault
/// plane's decision sampler (`cloudtrain-simnet`), duplicated here because
/// that helper is private to the fault module.
fn hash3(a: u64, b: u64, c: u64) -> u64 {
    let mut x = a
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(b.rotate_left(17))
        .wrapping_add(c.rotate_left(41));
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// A consistent-hash ring mapping `u64` sample ids to member node ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HashRing {
    seed: u64,
    vnodes: usize,
    /// `(point hash, member) -> member`: the member in the key makes
    /// iteration order total even under point-hash collisions.
    points: BTreeMap<(u64, u64), usize>,
    members: BTreeMap<usize, ()>,
}

impl HashRing {
    /// An empty ring. `seed` fixes the point placement; `vnodes` is the
    /// number of points each member projects (see [`DEFAULT_VNODES`]).
    ///
    /// # Panics
    /// Panics if `vnodes == 0`.
    pub fn new(seed: u64, vnodes: usize) -> Self {
        assert!(vnodes > 0, "HashRing: need at least one virtual node");
        Self {
            seed,
            vnodes,
            points: BTreeMap::new(),
            members: BTreeMap::new(),
        }
    }

    /// A ring populated with `members`.
    pub fn with_members(seed: u64, vnodes: usize, members: &[usize]) -> Self {
        let mut ring = Self::new(seed, vnodes);
        for &m in members {
            ring.join(m);
        }
        ring
    }

    /// Adds a member; returns `false` (and changes nothing) if it was
    /// already present.
    pub fn join(&mut self, member: usize) -> bool {
        if self.members.contains_key(&member) {
            return false;
        }
        self.members.insert(member, ());
        for replica in 0..self.vnodes {
            let h = hash3(self.seed ^ POINT_SALT, member as u64, replica as u64);
            self.points.insert((h, member as u64), member);
        }
        true
    }

    /// Removes a member; returns `false` if it was not present.
    pub fn evict(&mut self, member: usize) -> bool {
        if self.members.remove(&member).is_none() {
            return false;
        }
        self.points.retain(|_, &mut m| m != member);
        true
    }

    /// Whether `member` is on the ring.
    pub fn contains(&self, member: usize) -> bool {
        self.members.contains_key(&member)
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Whether the ring has no members.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Member ids in ascending order.
    pub fn members(&self) -> Vec<usize> {
        self.members.keys().copied().collect()
    }

    /// The member owning sample `id`, or `None` on an empty ring. Total
    /// over all ids whenever the ring is non-empty — no sample is ever
    /// orphaned.
    pub fn owner(&self, id: u64) -> Option<usize> {
        let h = hash3(self.seed ^ KEY_SALT, id, 0);
        self.points
            .range((h, 0)..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, &m)| m)
    }

    /// Owner of every sample in `0..dataset_len`.
    pub fn assignment(&self, dataset_len: u64) -> Vec<Option<usize>> {
        (0..dataset_len).map(|id| self.owner(id)).collect()
    }
}

/// Movement accounting of one resharding step.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct ReshardStats {
    /// Samples considered.
    pub samples: u64,
    /// Samples whose owner changed.
    pub moved: u64,
    /// Moved samples whose old **and** new owners both survive the change
    /// — gratuitous churn. Exactly 0 for a consistent-hash ring; ~`(m-1)/m`
    /// of all samples for modulo rehashing.
    pub excess_moved: u64,
}

impl ReshardStats {
    /// Moved samples as a percentage of the data set.
    pub fn moved_pct(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            100.0 * self.moved as f64 / self.samples as f64
        }
    }

    /// Survivor-to-survivor movement as a percentage of the data set.
    pub fn excess_pct(&self) -> f64 {
        if self.samples == 0 {
            0.0
        } else {
            100.0 * self.excess_moved as f64 / self.samples as f64
        }
    }
}

/// Compares sample ownership between two rings over `0..dataset_len`.
///
/// A move is *excess* when the sample's owner changed even though both the
/// old and the new owner are members of **both** rings — movement the
/// topology change did not force.
pub fn reshard_stats(before: &HashRing, after: &HashRing, dataset_len: u64) -> ReshardStats {
    let mut stats = ReshardStats {
        samples: dataset_len,
        moved: 0,
        excess_moved: 0,
    };
    for id in 0..dataset_len {
        let (a, b) = (before.owner(id), after.owner(id));
        if a == b {
            continue;
        }
        stats.moved += 1;
        let survivor_pair =
            a.is_some_and(|m| after.contains(m)) && b.is_some_and(|m| before.contains(m));
        if survivor_pair {
            stats.excess_moved += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ownership_is_total_and_deterministic() {
        let ring = HashRing::with_members(7, DEFAULT_VNODES, &[0, 1, 2, 3]);
        let again = HashRing::with_members(7, DEFAULT_VNODES, &[3, 2, 1, 0]);
        for id in 0..1000 {
            let o = ring.owner(id).expect("non-empty ring");
            assert!(o < 4);
            // Membership order must not matter.
            assert_eq!(again.owner(id), Some(o));
        }
        assert!(HashRing::new(7, 8).owner(3).is_none());
    }

    #[test]
    fn evict_moves_only_the_victims_keys() {
        let members: Vec<usize> = (0..32).collect();
        let before = HashRing::with_members(11, DEFAULT_VNODES, &members);
        let mut after = before.clone();
        assert!(after.evict(5));
        let n = 100_000;
        let stats = reshard_stats(&before, &after, n);
        assert_eq!(stats.excess_moved, 0, "survivor keys must not move");
        assert!(stats.moved > 0);
        assert!(
            stats.moved_pct() < 5.0,
            "evict moved {}% of keys",
            stats.moved_pct()
        );
        // Every moved key left the victim.
        for id in 0..n {
            if before.owner(id) != after.owner(id) {
                assert_eq!(before.owner(id), Some(5));
            }
        }
    }

    #[test]
    fn join_moves_only_keys_onto_the_newcomer() {
        let members: Vec<usize> = (0..32).collect();
        let before = HashRing::with_members(3, DEFAULT_VNODES, &members);
        let mut after = before.clone();
        assert!(after.join(99));
        let stats = reshard_stats(&before, &after, 100_000);
        assert_eq!(stats.excess_moved, 0);
        assert!(stats.moved_pct() < 5.0, "join moved {}%", stats.moved_pct());
        for id in 0..100_000 {
            if before.owner(id) != after.owner(id) {
                assert_eq!(after.owner(id), Some(99));
            }
        }
    }

    #[test]
    fn modulo_rehash_is_the_catastrophe_the_ring_avoids() {
        // The baseline this module replaces: owner = id % m. Dropping one
        // node reassigns nearly everything, all of it survivor churn.
        let n = 10_000u64;
        let (m_before, m_after) = (32u64, 31u64);
        let moved = (0..n).filter(|id| id % m_before != id % m_after).count();
        assert!(moved as f64 / n as f64 > 0.9);
    }

    #[test]
    fn join_and_evict_are_idempotent() {
        let mut ring = HashRing::with_members(1, 16, &[0, 1]);
        assert!(!ring.join(0));
        assert!(ring.evict(1));
        assert!(!ring.evict(1));
        assert_eq!(ring.members(), vec![0]);
        assert_eq!(ring.len(), 1);
        assert!(!ring.is_empty());
        // Sole member owns everything.
        assert!(ring.assignment(64).iter().all(|&o| o == Some(0)));
    }
}
