//! Elastic cluster control plane (ROADMAP item 1).
//!
//! The source paper targets public cloud clusters, where the defining
//! failure is not a dropped packet but a node dying mid-run and a
//! replacement joining later. This crate is the deterministic control
//! plane for that churn, split into three layers:
//!
//! * [`membership`] — a heartbeat coordinator on the fault plane's
//!   virtual clock: members turn Suspect and are Evicted on timeout,
//!   joiners are admitted, and the event log plus `elastic/*`
//!   counters/gauges/spans publish into `cloudtrain-obs` byte-stably.
//! * [`ring`] — consistent-hash sample ownership with virtual nodes, so
//!   a single topology change moves `~1/m` of the data set (<5% on the
//!   clusters the gauntlet runs) and **never** moves a sample between two
//!   survivors — versus ~97% for the modulo rehash it replaces.
//! * [`scenario`] — scripted churn (evict, evict+join, correlated rack
//!   loss) folded to an epoch-level membership timeline: evictions roll
//!   back to the start of their detection epoch (the last commit point),
//!   joins defer to the next boundary.
//!
//! The engine consumes the timeline in `DistTrainer::run_elastic`,
//! cutting sharded checkpoints at every membership boundary and replaying
//! deterministically; the datacache consumes the ring for cooperative
//! cache ownership. Everything here is pure in the scenario seed — no
//! wall clock, no ambient randomness, ordered maps only.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod membership;
pub mod ring;
pub mod scenario;

pub use membership::{
    Coordinator, HeartbeatConfig, MemberState, MembershipEvent, MembershipEventKind,
};
pub use ring::{reshard_stats, HashRing, ReshardStats, DEFAULT_VNODES};
pub use scenario::{ElasticScenario, MembershipTimeline, ReshardEvent, ScriptedChange};
