//! Scripted churn scenarios and their epoch-level membership timeline.
//!
//! A scenario scripts *what the cloud does* — which nodes die or join and
//! when, on the virtual clock — and the coordinator turns that into a
//! membership event log. Training consumes the log at **epoch
//! granularity**: epochs are the commit points (a sharded checkpoint is
//! cut at every boundary), so
//!
//! * an eviction detected during epoch `e` takes effect *at the start of
//!   epoch `e`* — the partial epoch is lost, the trainer rolls back to the
//!   epoch-`e` checkpoint and replays it with the survivors;
//! * a join admitted during epoch `e` takes effect at the start of epoch
//!   `e + 1` — a newcomer never invalidates committed work.
//!
//! The timeline also prices the datacache impact: every single-node
//! membership change is one consistent-hash resharding event with its
//! moved/excess accounting (see [`crate::ring`]).

use cloudtrain_obs::Registry;
use cloudtrain_simnet::FaultPlan;
use serde::{Deserialize, Serialize};

use crate::membership::{Coordinator, HeartbeatConfig, MembershipEvent, MembershipEventKind};
use crate::ring::{reshard_stats, HashRing, ReshardStats, DEFAULT_VNODES};

/// A scripted membership change.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScriptedChange {
    /// Node id affected.
    pub node: usize,
    /// Virtual time of the change (death: last heartbeat; join: admission).
    pub at: f64,
}

/// One scripted membership scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ElasticScenario {
    /// Scenario name (stable label for reports).
    pub name: String,
    /// Seed of the heartbeat-loss decision stream.
    pub seed: u64,
    /// Nodes present at t = 0 (ids `0..initial_nodes`).
    pub initial_nodes: usize,
    /// Training epochs the scenario spans.
    pub epochs: usize,
    /// Virtual seconds one epoch takes.
    pub epoch_seconds: f64,
    /// Heartbeat cadence and detection windows.
    pub heartbeat: HeartbeatConfig,
    /// Per-heartbeat drop probability of the lossy control plane.
    pub heartbeat_drop_prob: f64,
    /// Scripted silent deaths.
    pub deaths: Vec<ScriptedChange>,
    /// Scripted admissions.
    pub joins: Vec<ScriptedChange>,
    /// Samples in the data set the cluster caches (reshard accounting).
    pub dataset_len: u64,
}

impl ElasticScenario {
    fn base(name: &str, seed: u64, initial_nodes: usize, epochs: usize) -> Self {
        Self {
            name: name.to_string(),
            seed,
            initial_nodes,
            epochs,
            epoch_seconds: 10.0,
            heartbeat: HeartbeatConfig::default(),
            heartbeat_drop_prob: 0.0,
            deaths: Vec::new(),
            joins: Vec::new(),
            dataset_len: 100_000,
        }
    }

    /// No churn at all: the timeline is a single segment and the elastic
    /// trainer must match the uninterrupted run bitwise.
    pub fn steady(seed: u64, initial_nodes: usize, epochs: usize) -> Self {
        Self::base("steady", seed, initial_nodes, epochs)
    }

    /// One node dies during epoch 1 and is evicted on timeout.
    ///
    /// # Panics
    /// Panics if `initial_nodes < 2` or `epochs < 2`.
    pub fn evict(seed: u64, initial_nodes: usize, epochs: usize) -> Self {
        assert!(
            initial_nodes >= 2 && epochs >= 2,
            "evict needs >= 2 nodes and epochs"
        );
        let mut s = Self::base("evict", seed, initial_nodes, epochs);
        // Seed-varied victim; never node 0 (keeps reports anchored).
        let victim = 1 + (seed as usize % (initial_nodes - 1));
        s.deaths.push(ScriptedChange {
            node: victim,
            at: 1.2 * s.epoch_seconds,
        });
        s
    }

    /// One node dies during epoch 1; a replacement is admitted during the
    /// next epoch and serves from the one after.
    ///
    /// # Panics
    /// Panics if `initial_nodes < 2` or `epochs < 3`.
    pub fn evict_join(seed: u64, initial_nodes: usize, epochs: usize) -> Self {
        assert!(epochs >= 3, "evict_join needs >= 3 epochs");
        let mut s = Self::evict(seed, initial_nodes, epochs);
        s.name = "evict-join".to_string();
        s.joins.push(ScriptedChange {
            node: initial_nodes, // fresh hostname
            at: 1.5 * s.epoch_seconds,
        });
        s
    }

    /// A correlated rack loss: two nodes of the same rack die at the same
    /// instant during epoch 1. The datacache reshards them as two
    /// single-node topology changes.
    ///
    /// # Panics
    /// Panics if `initial_nodes < 3` or `epochs < 2`.
    pub fn rack_loss(seed: u64, initial_nodes: usize, epochs: usize) -> Self {
        assert!(
            initial_nodes >= 3 && epochs >= 2,
            "rack loss needs >= 3 nodes"
        );
        let mut s = Self::base("rack-loss", seed, initial_nodes, epochs);
        // A "rack" is a consecutive id pair; pick one by seed, sparing 0.
        let first = 1 + (seed as usize % (initial_nodes - 2));
        let at = 1.3 * s.epoch_seconds;
        s.deaths.push(ScriptedChange { node: first, at });
        s.deaths.push(ScriptedChange {
            node: first + 1,
            at,
        });
        s
    }

    /// Total virtual duration.
    pub fn duration(&self) -> f64 {
        self.epochs as f64 * self.epoch_seconds
    }

    /// Runs the coordinator over the script and folds the event log into
    /// the epoch-level [`MembershipTimeline`].
    ///
    /// # Panics
    /// Panics if the scenario has no epochs or no initial nodes, or if
    /// churn ever empties the cluster.
    pub fn simulate(&self) -> MembershipTimeline {
        assert!(self.epochs > 0, "scenario needs at least one epoch");
        assert!(self.initial_nodes > 0, "scenario needs at least one node");
        let plan = FaultPlan::new(self.seed).with_drops(self.heartbeat_drop_prob);
        let mut coord = Coordinator::new(plan, self.heartbeat);
        for n in 0..self.initial_nodes {
            coord.admit(n, 0.0);
        }
        // Interleave scripted kills/joins with clock advances, in time order.
        let mut script: Vec<(f64, bool, usize)> = self
            .deaths
            .iter()
            .map(|c| (c.at, false, c.node))
            .chain(self.joins.iter().map(|c| (c.at, true, c.node)))
            .collect();
        script.sort_by(|a, b| {
            (a.0, a.1, a.2)
                .partial_cmp(&(b.0, b.1, b.2))
                .expect("finite times")
        });
        for (at, is_join, node) in script {
            let at = at.min(self.duration());
            coord.advance_to(at);
            if is_join {
                coord.admit(node, at);
            } else {
                coord.kill(node, at);
            }
        }
        coord.advance_to(self.duration());

        // Fold events into per-epoch membership: evictions rewind to the
        // start of their detection epoch, joins defer to the next boundary.
        let last = self.epochs - 1;
        let mut effective: Vec<(usize, bool, usize)> = Vec::new(); // (epoch, is_join, node)
        for e in coord.events() {
            let epoch_of = |at: f64| ((at / self.epoch_seconds) as usize).min(last);
            match e.kind {
                MembershipEventKind::Evicted => effective.push((epoch_of(e.at), false, e.node)),
                MembershipEventKind::Joined if e.at > 0.0 => {
                    effective.push((epoch_of(e.at).saturating_add(1).min(last), true, e.node));
                }
                _ => {}
            }
        }
        let mut active: Vec<usize> = (0..self.initial_nodes).collect();
        let mut schedule = Vec::with_capacity(self.epochs);
        for epoch in 0..self.epochs {
            for &(at_epoch, is_join, node) in &effective {
                if at_epoch != epoch {
                    continue;
                }
                if is_join {
                    if !active.contains(&node) {
                        active.push(node);
                        active.sort_unstable();
                    }
                } else {
                    active.retain(|&n| n != node);
                }
            }
            assert!(
                !active.is_empty(),
                "churn emptied the cluster at epoch {epoch}"
            );
            schedule.push(active.clone());
        }
        MembershipTimeline {
            schedule,
            events: coord.events().to_vec(),
            coordinator: coord,
        }
    }
}

/// One consistent-hash resharding event on the epoch timeline.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReshardEvent {
    /// Epoch at whose boundary the change applies.
    pub epoch: usize,
    /// `"evict"` or `"join"`.
    pub kind: String,
    /// Node leaving or entering the ring.
    pub node: usize,
    /// Movement accounting over the scenario's data set.
    pub stats: ReshardStats,
}

impl ReshardEvent {
    /// Publishes the event into the `elastic/*` counter namespace — the
    /// shared ledger format of the engine, CLI, and gauntlet.
    pub fn publish(&self, reg: &mut Registry) {
        reg.counter_add("elastic/reshard_events", 1);
        reg.counter_add(&format!("elastic/reshard/{}", self.kind), 1);
        reg.counter_add("elastic/samples_moved", self.stats.moved);
        reg.counter_add("elastic/samples_moved_excess", self.stats.excess_moved);
        reg.gauge_set("elastic/last_reshard_moved_pct", self.stats.moved_pct());
    }
}

/// Epoch-level product of a scenario: who trains when.
#[derive(Debug, Clone)]
pub struct MembershipTimeline {
    /// Active node ids per epoch (ascending within each epoch).
    pub schedule: Vec<Vec<usize>>,
    /// Raw coordinator event log.
    pub events: Vec<MembershipEvent>,
    /// The coordinator after the full script (for publishing).
    pub coordinator: Coordinator,
}

impl MembershipTimeline {
    /// Contiguous epoch segments of constant membership:
    /// `(start_epoch, epochs, members)`.
    pub fn segments(&self) -> Vec<(usize, usize, Vec<usize>)> {
        let mut out: Vec<(usize, usize, Vec<usize>)> = Vec::new();
        for (epoch, active) in self.schedule.iter().enumerate() {
            match out.last_mut() {
                Some((_, len, members)) if members == active => *len += 1,
                _ => out.push((epoch, 1, active.clone())),
            }
        }
        out
    }

    /// Replays the membership diffs against a consistent-hash ring and
    /// returns one [`ReshardEvent`] per single-node change, in epoch
    /// order. `dataset_len` samples are priced per event.
    pub fn reshard_events(&self, ring_seed: u64, dataset_len: u64) -> Vec<ReshardEvent> {
        let mut out = Vec::new();
        let mut ring = match self.schedule.first() {
            Some(first) => HashRing::with_members(ring_seed, DEFAULT_VNODES, first),
            None => return out,
        };
        for (epoch, active) in self.schedule.iter().enumerate().skip(1) {
            let current = ring.members();
            // Evictions first (ascending), then joins — one event each.
            for &gone in current.iter().filter(|n| !active.contains(n)) {
                let before = ring.clone();
                ring.evict(gone);
                out.push(ReshardEvent {
                    epoch,
                    kind: "evict".to_string(),
                    node: gone,
                    stats: reshard_stats(&before, &ring, dataset_len),
                });
            }
            for &new in active.iter().filter(|n| !current.contains(n)) {
                let before = ring.clone();
                ring.join(new);
                out.push(ReshardEvent {
                    epoch,
                    kind: "join".to_string(),
                    node: new,
                    stats: reshard_stats(&before, &ring, dataset_len),
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steady_timeline_is_one_segment() {
        let t = ElasticScenario::steady(0, 4, 3).simulate();
        assert_eq!(t.schedule, vec![vec![0, 1, 2, 3]; 3]);
        assert_eq!(t.segments(), vec![(0, 3, vec![0, 1, 2, 3])]);
        assert!(t.reshard_events(0, 10_000).is_empty());
    }

    #[test]
    fn evict_rolls_back_to_the_detection_epoch() {
        let s = ElasticScenario::evict(0, 4, 3);
        let victim = s.deaths[0].node;
        let t = s.simulate();
        // Death at 12s, last heartbeat 12s, evict_after 5s: detection at
        // 18s = epoch 1 → epochs 1 and 2 run with the survivors.
        assert_eq!(t.schedule[0], vec![0, 1, 2, 3]);
        assert_eq!(t.schedule[1].len(), 3);
        assert!(!t.schedule[1].contains(&victim));
        assert_eq!(t.schedule[1], t.schedule[2]);
        assert_eq!(t.segments().len(), 2);
    }

    #[test]
    fn evict_join_has_three_segments() {
        let s = ElasticScenario::evict_join(2, 4, 4);
        let t = s.simulate();
        let segs = t.segments();
        assert_eq!(segs.len(), 3, "full, survivors, survivors+joiner: {segs:?}");
        // Joiner admitted at 15s (epoch 1) → serves from epoch 2.
        assert!(t.schedule[2].contains(&4));
        assert!(!t.schedule[1].contains(&4));
    }

    #[test]
    fn rack_loss_reshards_as_two_single_node_events() {
        let s = ElasticScenario::rack_loss(1, 32, 3);
        let t = s.simulate();
        let events = t.reshard_events(s.seed, s.dataset_len);
        assert_eq!(events.len(), 2);
        for e in &events {
            assert_eq!(e.kind, "evict");
            assert_eq!(e.stats.excess_moved, 0, "ring must not churn survivors");
            assert!(
                e.stats.moved_pct() < 5.0,
                "single change moved {}%",
                e.stats.moved_pct()
            );
        }
        assert_eq!(t.schedule[1].len(), 30);
    }

    #[test]
    fn simulate_is_deterministic() {
        let s = ElasticScenario::evict_join(5, 8, 4);
        let (a, b) = (s.simulate(), s.simulate());
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn scenario_roundtrips_through_serde() {
        let s = ElasticScenario::rack_loss(3, 8, 3);
        let v = serde::Serialize::to_value(&s);
        let back: ElasticScenario = serde::Deserialize::from_value(&v).expect("roundtrip");
        assert_eq!(back, s);
    }
}
