//! Heartbeat-driven membership on the fault plane's virtual clock.
//!
//! A deterministic coordinator tracks which workers are alive. Every
//! member emits a heartbeat each `period` virtual seconds; delivery is
//! decided by the *same* seeded [`FaultPlan`] decision stream that drives
//! transfer drops in `cloudtrain-simnet`, keyed on a per-member heartbeat
//! sequence number — so a lossy control plane is replayable bit for bit.
//! A member whose last delivered heartbeat is older than `suspect_after`
//! turns *Suspect*; older than `evict_after`, it is *Evicted* and leaves
//! the group. A suspect that gets a heartbeat through recovers. Scripted
//! deaths (a node silently stops heartbeating) and admissions model the
//! cloud's churn.
//!
//! The state machine is:
//!
//! ```text
//!            admit                 silence > suspect_after
//!   (absent) -----> Active  ----------------------------> Suspect
//!                     ^                                      |
//!                     |  heartbeat delivered                 | silence > evict_after
//!                     +--------------------------------------+--> Evicted (terminal)
//! ```
//!
//! Everything advances on the virtual clock only — no wall time — and all
//! collections are ordered, so two coordinators fed the same script
//! produce byte-identical event logs and observability streams.

use std::collections::BTreeMap;

use cloudtrain_obs::Registry;
use cloudtrain_simnet::FaultPlan;
use serde::{Deserialize, Serialize};

/// Liveness state of one member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MemberState {
    /// Heartbeating within the suspect window.
    Active,
    /// Silent past `suspect_after` but still inside the eviction budget;
    /// still part of the training group.
    Suspect,
    /// Silent past `evict_after`; removed from the group (terminal).
    Evicted,
}

/// Heartbeat cadence and failure-detection windows, virtual seconds.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// Interval between a member's heartbeats.
    pub period: f64,
    /// Silence after which a member turns [`MemberState::Suspect`].
    pub suspect_after: f64,
    /// Silence after which a member is evicted.
    pub evict_after: f64,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        Self {
            period: 1.0,
            suspect_after: 3.0,
            evict_after: 5.0,
        }
    }
}

/// What happened to a member.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum MembershipEventKind {
    /// Admitted to the group.
    Joined,
    /// Crossed the suspect window.
    Suspected,
    /// A suspect's heartbeat got through again.
    Recovered,
    /// Crossed the eviction window and left the group.
    Evicted,
}

impl MembershipEventKind {
    /// Stable lowercase label used in counters and span names.
    pub fn label(&self) -> &'static str {
        match self {
            MembershipEventKind::Joined => "joined",
            MembershipEventKind::Suspected => "suspected",
            MembershipEventKind::Recovered => "recovered",
            MembershipEventKind::Evicted => "evicted",
        }
    }
}

/// One entry of the membership event log.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MembershipEvent {
    /// Virtual time of the transition.
    pub at: f64,
    /// Member node id.
    pub node: usize,
    /// The transition.
    pub kind: MembershipEventKind,
}

#[derive(Debug, Clone)]
struct Member {
    state: MemberState,
    joined_at: f64,
    last_seen: f64,
    /// Virtual time after which the node sends no more heartbeats
    /// (scripted death); `None` while healthy.
    dead_from: Option<f64>,
}

/// Deterministic membership coordinator.
#[derive(Debug, Clone)]
pub struct Coordinator {
    cfg: HeartbeatConfig,
    plan: FaultPlan,
    clock: f64,
    members: BTreeMap<usize, Member>,
    events: Vec<MembershipEvent>,
    heartbeats_sent: u64,
    heartbeats_dropped: u64,
}

impl Coordinator {
    /// A coordinator with no members. Heartbeat losses are drawn from
    /// `plan`'s drop stream (`FaultPlan::dropped`), keyed per member and
    /// heartbeat index.
    ///
    /// # Panics
    /// Panics if any window of `cfg` is non-positive or the windows are
    /// not ordered `period <= suspect_after <= evict_after`.
    pub fn new(plan: FaultPlan, cfg: HeartbeatConfig) -> Self {
        assert!(cfg.period > 0.0, "heartbeat period must be positive");
        assert!(
            cfg.period <= cfg.suspect_after && cfg.suspect_after <= cfg.evict_after,
            "windows must be ordered: period <= suspect_after <= evict_after"
        );
        Self {
            cfg,
            plan,
            clock: 0.0,
            members: BTreeMap::new(),
            events: Vec::new(),
            heartbeats_sent: 0,
            heartbeats_dropped: 0,
        }
    }

    /// Current virtual time.
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Admits `node` at virtual time `at` (no-op if it is already a
    /// non-evicted member). Evicted ids may rejoin — the cloud recycles
    /// hostnames.
    ///
    /// # Panics
    /// Panics if `at` is before the coordinator's clock.
    pub fn admit(&mut self, node: usize, at: f64) {
        assert!(at >= self.clock, "admit must not rewind the clock");
        if self
            .members
            .get(&node)
            .is_some_and(|m| m.state != MemberState::Evicted)
        {
            return;
        }
        self.members.insert(
            node,
            Member {
                state: MemberState::Active,
                joined_at: at,
                last_seen: at,
                dead_from: None,
            },
        );
        self.events.push(MembershipEvent {
            at,
            node,
            kind: MembershipEventKind::Joined,
        });
    }

    /// Scripts a silent death: `node` sends no heartbeats after `at`.
    /// Detection (suspicion, then eviction) happens on the heartbeat
    /// timeline as the clock advances.
    pub fn kill(&mut self, node: usize, at: f64) {
        if let Some(m) = self.members.get_mut(&node) {
            m.dead_from = Some(m.dead_from.map_or(at, |d| d.min(at)));
        }
    }

    /// Advances the virtual clock to `t`, processing every heartbeat tick
    /// in `(clock, t]` in deterministic (time, node) order and applying
    /// the suspect/evict windows.
    ///
    /// # Panics
    /// Panics if `t` is before the current clock.
    pub fn advance_to(&mut self, t: f64) {
        assert!(t >= self.clock, "advance_to must not rewind the clock");
        // Global tick index: k-th tick fires at k * period.
        let first = (self.clock / self.cfg.period).floor() as u64 + 1;
        let mut k = first;
        while (k as f64) * self.cfg.period <= t {
            let now = (k as f64) * self.cfg.period;
            self.tick(k, now);
            k += 1;
        }
        self.clock = t;
        // Windows also expire between ticks (e.g. when `t` lands mid-period).
        self.apply_windows(t);
    }

    fn tick(&mut self, k: u64, now: f64) {
        let mut transitions = Vec::new();
        for (&node, m) in self.members.iter_mut() {
            if m.state == MemberState::Evicted || m.joined_at > now {
                continue;
            }
            let alive = m.dead_from.is_none_or(|d| now <= d);
            if alive {
                self.heartbeats_sent += 1;
                // One decision per (member, tick); attempt 1 keeps the
                // stream disjoint from the data plane's attempt-0 draws.
                let seq = (node as u64) << 32 | (k & 0xFFFF_FFFF);
                if self.plan.dropped(seq, 1) {
                    self.heartbeats_dropped += 1;
                } else {
                    m.last_seen = now;
                    if m.state == MemberState::Suspect {
                        m.state = MemberState::Active;
                        transitions.push((node, MembershipEventKind::Recovered));
                    }
                }
            }
        }
        for (node, kind) in transitions {
            self.events.push(MembershipEvent {
                at: now,
                node,
                kind,
            });
        }
        self.apply_windows(now);
    }

    fn apply_windows(&mut self, now: f64) {
        let mut transitions = Vec::new();
        for (&node, m) in self.members.iter_mut() {
            if m.state == MemberState::Evicted {
                continue;
            }
            let silence = now - m.last_seen;
            if silence > self.cfg.evict_after {
                m.state = MemberState::Evicted;
                transitions.push((node, MembershipEventKind::Evicted));
            } else if silence > self.cfg.suspect_after && m.state == MemberState::Active {
                m.state = MemberState::Suspect;
                transitions.push((node, MembershipEventKind::Suspected));
            }
        }
        for (node, kind) in transitions {
            self.events.push(MembershipEvent {
                at: now,
                node,
                kind,
            });
        }
    }

    /// Members currently in the training group (Active + Suspect),
    /// ascending by id.
    pub fn active(&self) -> Vec<usize> {
        self.members
            .iter()
            .filter(|(_, m)| m.state != MemberState::Evicted)
            .map(|(&n, _)| n)
            .collect()
    }

    /// The liveness state of `node`, if it was ever admitted.
    pub fn state(&self, node: usize) -> Option<MemberState> {
        self.members.get(&node).map(|m| m.state)
    }

    /// The event log so far, in (time, emission) order.
    pub fn events(&self) -> &[MembershipEvent] {
        &self.events
    }

    /// Publishes the control-plane picture into `reg`: `elastic/*`
    /// counters and gauges plus one span per membership event (opened and
    /// closed on the event's virtual time, so the JSONL timeline carries
    /// the full churn history) and one `elastic/member` span per member
    /// lifetime.
    pub fn publish(&self, reg: &mut Registry) {
        reg.counter_add("elastic/heartbeats_sent", self.heartbeats_sent);
        reg.counter_add("elastic/heartbeats_dropped", self.heartbeats_dropped);
        for kind in [
            MembershipEventKind::Joined,
            MembershipEventKind::Suspected,
            MembershipEventKind::Recovered,
            MembershipEventKind::Evicted,
        ] {
            let count = self.events.iter().filter(|e| e.kind == kind).count() as u64;
            reg.counter_add(&format!("elastic/events/{}", kind.label()), count);
        }
        reg.gauge_set("elastic/members", self.active().len() as f64);
        reg.gauge_set("elastic/clock_seconds", self.clock);
        for e in &self.events {
            let id = reg.span_open(&format!("elastic/event/{}", e.kind.label()), e.at);
            reg.span_close(id, e.at);
        }
        for (&node, m) in &self.members {
            let id = reg.span_open(&format!("elastic/member/{node}"), m.joined_at);
            let end = if m.state == MemberState::Evicted {
                // The eviction event carries the exact detection time.
                self.events
                    .iter()
                    .find(|e| e.node == node && e.kind == MembershipEventKind::Evicted)
                    .map_or(self.clock, |e| e.at)
            } else {
                self.clock
            };
            reg.span_close(id, end);
        }
        reg.sync_clock(self.clock);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn coord() -> Coordinator {
        Coordinator::new(FaultPlan::new(7), HeartbeatConfig::default())
    }

    #[test]
    fn healthy_members_stay_active() {
        let mut c = coord();
        for n in 0..4 {
            c.admit(n, 0.0);
        }
        c.advance_to(50.0);
        assert_eq!(c.active(), vec![0, 1, 2, 3]);
        assert!(c
            .events()
            .iter()
            .all(|e| e.kind == MembershipEventKind::Joined));
        assert_eq!(c.state(0), Some(MemberState::Active));
    }

    #[test]
    fn a_killed_member_is_suspected_then_evicted() {
        let mut c = coord();
        for n in 0..3 {
            c.admit(n, 0.0);
        }
        c.kill(1, 10.0);
        c.advance_to(12.0);
        assert_eq!(c.state(1), Some(MemberState::Active), "still inside window");
        c.advance_to(14.0);
        assert_eq!(c.state(1), Some(MemberState::Suspect));
        assert_eq!(c.active(), vec![0, 1, 2], "suspects stay in the group");
        c.advance_to(30.0);
        assert_eq!(c.state(1), Some(MemberState::Evicted));
        assert_eq!(c.active(), vec![0, 2]);
        let evict = c
            .events()
            .iter()
            .find(|e| e.kind == MembershipEventKind::Evicted)
            .expect("eviction recorded");
        assert_eq!(evict.node, 1);
        // Last heartbeat at t=10, evict_after=5: detection on the first
        // tick past t=15.
        assert_eq!(evict.at, 16.0);
    }

    #[test]
    fn lossy_heartbeats_recover_without_eviction() {
        // 30% drops: multi-tick gaps happen (suspicion), but with a
        // 9-tick eviction budget a fatal run of losses is ~2e-5 per
        // member-tick — nobody is evicted over this horizon, and every
        // suspicion heals.
        let plan = FaultPlan::new(3).with_drops(0.3);
        let cfg = HeartbeatConfig {
            period: 1.0,
            suspect_after: 3.0,
            evict_after: 8.0,
        };
        let mut c = Coordinator::new(plan, cfg);
        for n in 0..4 {
            c.admit(n, 0.0);
        }
        c.advance_to(200.0);
        assert_eq!(c.active(), vec![0, 1, 2, 3]);
        assert!(c.heartbeats_dropped > 0, "drops must fire at 30%");
        let suspects = c
            .events()
            .iter()
            .filter(|e| e.kind == MembershipEventKind::Suspected)
            .count();
        let recoveries = c
            .events()
            .iter()
            .filter(|e| e.kind == MembershipEventKind::Recovered)
            .count();
        assert_eq!(suspects, recoveries, "every suspicion healed");
    }

    #[test]
    fn late_joiner_enters_and_stays() {
        let mut c = coord();
        c.admit(0, 0.0);
        c.advance_to(8.0);
        c.admit(7, 8.0);
        c.advance_to(40.0);
        assert_eq!(c.active(), vec![0, 7]);
    }

    #[test]
    fn replay_is_deterministic() {
        let build = || {
            let mut c = Coordinator::new(
                FaultPlan::new(11).with_drops(0.2),
                HeartbeatConfig::default(),
            );
            for n in 0..6 {
                c.admit(n, 0.0);
            }
            c.kill(2, 13.0);
            c.advance_to(60.0);
            c
        };
        let (a, b) = (build(), build());
        assert_eq!(a.events(), b.events());
        let (mut ra, mut rb) = (Registry::new(), Registry::new());
        a.publish(&mut ra);
        b.publish(&mut rb);
        assert_eq!(ra.to_jsonl(), rb.to_jsonl());
        assert!(ra.counter("elastic/events/evicted") >= 1);
        assert!(!ra.to_jsonl().is_empty());
    }
}
